//! `afp` — command-line front end over the unified [`afp::Engine`].
//!
//! ```text
//! afp [OPTIONS] [FILE]          read a program from FILE (default: stdin)
//!
//! OPTIONS:
//!   -s, --semantics <S>   wfs (default) | stable | fitting | perfect | ifp
//!   -q, --query <ATOM>    print the truth value of one atom (e.g. 'wins(a)')
//!   -t                    print the alternating sequence (wfs only)
//!   -a, --active-domain   range-restrict unsafe rules to the active domain
//!   -n, --max-models <N>  cap stable-model enumeration
//!       --threads <N>     solver threads for per-SCC wfs solves (default 1;
//!                         0 = auto-detect): independent components are
//!                         evaluated concurrently by a work-stealing wavefront
//!                         pool — the model is bit-identical for every N
//!   -j, --json            machine-readable output on stdout
//!       --assert <TEXT>   apply rules/facts to the loaded session (repeatable)
//!       --retract <TEXT>  remove rules/facts from the session (repeatable)
//!       --stats           print session (and serve-mode service) counters as JSON
//!       --serve           serve FILE: read update/query commands from stdin
//!       --listen <ADDR>   also serve the framed protocol over TCP (implies --serve;
//!                         port 0 picks an ephemeral port, announced on stdout)
//!       --socket <PATH>   also serve the framed protocol over a unix socket
//!                         (implies --serve)
//!       --queue-depth <N> bound the networked write queue (default 64); a full
//!                         queue rejects submissions with an overloaded error
//!       --max-conns <N>   connection limit per listener (default 32)
//!       --submit-timeout-ms <N>  deadline for queued submissions (default: none)
//!       --journal <DIR>   durable serve mode (implies --serve): write-ahead
//!                         journal + checkpoints in DIR; a DIR that already
//!                         holds a journal is recovered from — FILE's text is
//!                         then superseded by the recovered history
//!       --fsync <P>       journal sync policy: always (default) | never | N
//!                         (sync every N records)
//!       --checkpoint-every <N>  checkpoint + compact the journal every N
//!                         versions (default 0 = only on the checkpoint command)
//!       --ack-durable     resolve submissions only after their journal record
//!                         is synced, whatever --fsync says
//!       --changelog-cap <N>  bound changelog retention (default 1024); reads
//!                         behind the evicted horizon get a version-evicted
//!                         error
//!       --metrics-format <F>  how the serve-mode `metrics` command renders:
//!                         json (default) | prom (Prometheus text exposition)
//!       --trace <FILE>    stream write-cycle phase spans to FILE as JSONL
//!                         trace events (Chrome trace-event format; load the
//!                         file in chrome://tracing or Perfetto). Bounded
//!                         buffer: events beyond it are counted as dropped,
//!                         never block a write cycle
//!       --slow-cycle-ms <N>  log any write cycle slower than N ms to stderr
//!                         with its full phase breakdown
//!       --ground          print the ground program and exit
//!   -h, --help            this text
//! ```
//!
//! `--assert` / `--retract` apply **after** the program is loaded, in
//! command-line order, through the session's incremental rule/fact delta
//! machinery — the grounding is patched in place, not rebuilt, exactly as
//! a long-running embedder of [`afp::Session`] would do it.
//!
//! `--serve` runs the program behind [`afp::Service`]: the model is
//! solved once and published as version 0, then stdin is read as one
//! command per line against the live service. The grammar (shared with
//! the network transport — see [`afp::net::codec`]):
//!
//! ```text
//! query ATOM            truth of ATOM in the current version
//! at VERSION ATOM       truth of ATOM in a cached earlier version
//! assert TEXT           submit rules/facts; prints the published version
//! retract TEXT          remove rules/facts; prints the published version
//! assert-facts TEXT     submit ground facts (fact fast path)
//! retract-facts TEXT    remove ground facts (fact fast path)
//! model                 print the current version's full model
//! version               print the current version number
//! log [SINCE]           applied deltas with version > SINCE
//! stats                 print service + session (+ net/journal) counters as JSON
//! metrics               telemetry exposition: per-phase write-cycle histograms,
//!                       counters and recent cycles (--metrics-format picks
//!                       JSON or Prometheus text)
//! ping                  readiness probe: version + writer liveness + uptime
//! checkpoint            write a durability checkpoint now (needs --journal)
//! quit                  exit (EOF works too)
//! ```
//!
//! Command errors are reported inline as structured error lines
//! (`error: …` or `{"error":{"kind":…,"message":…}}`) and the server
//! keeps running — the published model chain is never left in a
//! half-applied state, and serve mode exits nonzero only when the
//! *transport* (stdin or a listener) fails, never because a command was
//! malformed.
//!
//! With `--listen`/`--socket` the same service is additionally exposed
//! over length-prefixed TCP / unix-socket framing ([`afp::NetServer`]):
//! each bound endpoint is announced on stdout first
//! (`% listening tcp 127.0.0.1:PORT` or its JSON twin), then stdin is
//! served as usual; EOF or `quit` on stdin shuts the listeners down
//! (draining queued writes) and exits.
//!
//! Exit codes: 0 ok; 1 no stable model (with `-s stable`) or query false;
//! 2 usage / parse / grounding / transport error.

use afp::net::codec::{self, Request, Response, ServeBackend};
use afp::{
    AsyncOptions, AsyncService, Engine, Error, FsyncPolicy, Journal, JournalOptions, JournalStats,
    MetricsFormat, Model, NetOptions, NetServer, NetStats, Semantics, Service, ServiceOptions,
    SessionStats, Shutdown, Telemetry, TraceSink, Truth,
};
use std::io::{BufRead, Read};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

const USAGE_HINT: &str = "usage: afp [-s wfs|stable|fitting|perfect|ifp] [-q ATOM] [-t] [-a] \
     [-n N] [--threads N] [-j] [--assert TEXT] [--retract TEXT] [--stats] [--serve] [--listen ADDR] \
     [--socket PATH] [--queue-depth N] [--max-conns N] [--submit-timeout-ms N] \
     [--journal DIR] [--fsync always|never|N] [--checkpoint-every N] [--ack-durable] \
     [--changelog-cap N] [--metrics-format json|prom] [--trace FILE] [--slow-cycle-ms N] \
     [--ground] [FILE]";

struct Options {
    semantics: String,
    query: Option<String>,
    trace: bool,
    active_domain: bool,
    max_models: usize,
    /// Solver threads (`0` = auto-detect at engine build).
    threads: usize,
    json: bool,
    ground_only: bool,
    stats: bool,
    serve: bool,
    listen: Option<String>,
    socket: Option<String>,
    queue_depth: usize,
    max_conns: usize,
    submit_timeout_ms: Option<u64>,
    journal: Option<String>,
    fsync: FsyncPolicy,
    checkpoint_every: u64,
    ack_durable: bool,
    changelog_cap: Option<usize>,
    metrics_format: MetricsFormat,
    /// Serve-mode trace stream target (`--trace FILE`); distinct from
    /// the one-shot `-t` alternating-sequence trace.
    trace_file: Option<String>,
    slow_cycle_ms: Option<u64>,
    /// Session updates in command-line order: `(assert?, program text)`.
    updates: Vec<(bool, String)>,
    file: Option<String>,
}

fn usage() -> ! {
    eprintln!("afp — well-founded and stable model solver\n{USAGE_HINT}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        semantics: "wfs".into(),
        query: None,
        trace: false,
        active_domain: false,
        max_models: usize::MAX,
        threads: 1,
        json: false,
        ground_only: false,
        stats: false,
        serve: false,
        listen: None,
        socket: None,
        queue_depth: 64,
        max_conns: 32,
        submit_timeout_ms: None,
        journal: None,
        fsync: FsyncPolicy::Always,
        checkpoint_every: 0,
        ack_durable: false,
        changelog_cap: None,
        metrics_format: MetricsFormat::Json,
        trace_file: None,
        slow_cycle_ms: None,
        updates: Vec::new(),
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-s" | "--semantics" => {
                options.semantics = args.next().unwrap_or_else(|| usage());
            }
            "-q" | "--query" => {
                options.query = Some(args.next().unwrap_or_else(|| usage()));
            }
            "-t" => options.trace = true,
            "--trace" => {
                options.trace_file = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--metrics-format" => {
                let f = args.next().unwrap_or_else(|| usage());
                options.metrics_format = MetricsFormat::parse(&f).unwrap_or_else(|| usage());
            }
            "--slow-cycle-ms" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.slow_cycle_ms = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "-a" | "--active-domain" => options.active_domain = true,
            "-n" | "--max-models" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.max_models = n.parse().unwrap_or_else(|_| usage());
            }
            "--threads" => {
                let n = args.next().unwrap_or_else(|| usage());
                let n: usize = n.parse().unwrap_or_else(|_| usage());
                // A four-digit pool is a typo, not a machine.
                if n > 1024 {
                    usage();
                }
                options.threads = n;
            }
            "-j" | "--json" => options.json = true,
            "--assert" => {
                let text = args.next().unwrap_or_else(|| usage());
                options.updates.push((true, text));
            }
            "--retract" => {
                let text = args.next().unwrap_or_else(|| usage());
                options.updates.push((false, text));
            }
            "--listen" => {
                options.listen = Some(args.next().unwrap_or_else(|| usage()));
                options.serve = true;
            }
            "--socket" => {
                options.socket = Some(args.next().unwrap_or_else(|| usage()));
                options.serve = true;
            }
            "--queue-depth" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.queue_depth = n.parse().unwrap_or_else(|_| usage());
            }
            "--max-conns" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.max_conns = n.parse().unwrap_or_else(|_| usage());
            }
            "--submit-timeout-ms" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.submit_timeout_ms = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--journal" => {
                options.journal = Some(args.next().unwrap_or_else(|| usage()));
                options.serve = true;
            }
            "--fsync" => {
                let policy = args.next().unwrap_or_else(|| usage());
                options.fsync = match policy.as_str() {
                    "always" => FsyncPolicy::Always,
                    "never" => FsyncPolicy::Never,
                    n => FsyncPolicy::EveryN(n.parse().unwrap_or_else(|_| usage())),
                };
            }
            "--checkpoint-every" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.checkpoint_every = n.parse().unwrap_or_else(|_| usage());
            }
            "--ack-durable" => options.ack_durable = true,
            "--changelog-cap" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.changelog_cap = Some(n.parse().unwrap_or_else(|_| usage()));
            }
            "--ground" => options.ground_only = true,
            "--stats" => options.stats = true,
            "--serve" => options.serve = true,
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => {
                if options.file.is_some() {
                    usage();
                }
                options.file = Some(arg);
            }
        }
    }
    options
}

fn semantics_of(name: &str, max_models: usize) -> Option<Semantics> {
    Some(match name {
        "wfs" => Semantics::WellFounded {
            strategy: Default::default(),
        },
        "stable" => Semantics::Stable { max_models },
        "fitting" => Semantics::Fitting,
        "perfect" => Semantics::Perfect,
        "ifp" => Semantics::Inflationary,
        _ => None?,
    })
}

fn main() -> ExitCode {
    let options = parse_args();
    let src = match &options.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("afp: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("afp: cannot read stdin");
                return ExitCode::from(2);
            }
            s
        }
    };
    // Validated only after stdin is drained: exiting while the writer is
    // still feeding the pipe would hand well-behaved callers an EPIPE.
    let Some(semantics) = semantics_of(&options.semantics, options.max_models) else {
        eprintln!(
            "afp: unknown semantics {:?}\n{USAGE_HINT}",
            options.semantics
        );
        return ExitCode::from(2);
    };

    // Resolve the query to (pred, args-as-names) before solving so bad
    // queries exit 2 without wasted work.
    let query: Option<(String, Vec<String>)> = match &options.query {
        None => None,
        Some(text) => match codec::parse_query(text) {
            Ok(q) => Some(q),
            Err(msg) => {
                eprintln!("afp: bad query: {msg}\n{USAGE_HINT}");
                return ExitCode::from(2);
            }
        },
    };

    let engine = Engine::builder()
        .semantics(semantics)
        .safety(if options.active_domain {
            afp::SafetyPolicy::ActiveDomain
        } else {
            afp::SafetyPolicy::Reject
        })
        .trace(options.trace)
        .threads(options.threads)
        .build();

    if options.serve {
        return run_serve(&engine, &src, &options);
    }

    let mut session = match engine.load(&src) {
        Ok(s) => s,
        Err(e) => return report_error(&e),
    };
    for (assert, text) in &options.updates {
        let result = if *assert {
            session.assert_rules(text)
        } else {
            session.retract_rules(text)
        };
        if let Err(e) = result {
            return report_error(&e);
        }
    }
    if options.ground_only {
        print!("{}", session.ground());
        return ExitCode::SUCCESS;
    }
    let model = match session.solve() {
        Ok(m) => m,
        Err(e) => return report_error(&e),
    };

    if options.trace {
        if let Some(trace) = model.trace() {
            println!("% alternating sequence");
            for s in &trace.steps {
                println!(
                    "% k={} |negatives|={} |positives|={}",
                    s.k,
                    s.i_tilde.count(),
                    s.s_p.count()
                );
            }
        }
    }

    let code = if let Some((pred, args)) = &query {
        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let truth = model.truth(pred, &arg_refs);
        if options.json {
            println!(
                "{{\"semantics\":{},\"query\":{},\"truth\":{}}}",
                codec::json_str(model.semantics().name()),
                codec::json_str(options.query.as_deref().unwrap_or_default()),
                codec::json_str(codec::truth_name(truth))
            );
        } else {
            println!("{truth:?}");
        }
        // Exit-code contract: wfs signals a non-true query; stable still
        // signals "no stable model" even when a query is printed.
        let failed = match semantics {
            Semantics::WellFounded { .. } => truth != Truth::True,
            Semantics::Stable { .. } => model.stable_models().is_empty(),
            _ => false,
        };
        if failed {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    } else {
        print_result(&model, semantics, &options)
    };
    if options.stats {
        print_stats(session.stats(), None, None, None, options.json);
    }
    code
}

fn print_result(model: &Model, semantics: Semantics, options: &Options) -> ExitCode {
    match semantics {
        Semantics::Stable { .. } => {
            if options.json {
                print_stable_json(model);
            } else {
                for (i, m) in model.stable_models().iter().enumerate() {
                    println!("% stable model {}", i + 1);
                    for name in model.ground().set_to_names(m) {
                        println!("{name}.");
                    }
                }
                if model.stable_models().is_empty() {
                    println!("% no stable model");
                }
            }
            if model.stable_models().is_empty() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Semantics::Inflationary => {
            if options.json {
                print_assignment_json(model);
            } else {
                for name in sorted(model.true_atoms()) {
                    println!("{name}.");
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            if options.json {
                print_assignment_json(model);
            } else {
                print_partial(model);
                if matches!(other, Semantics::WellFounded { .. }) {
                    println!("% total: {}", model.is_total());
                }
            }
            ExitCode::SUCCESS
        }
    }
}

/// Serve mode: publish the program behind [`afp::Service`], optionally
/// expose it over TCP/unix listeners, and process one command per stdin
/// line against the live service — through the shared
/// [`codec`](afp::net::codec), so stdin and the wire speak one grammar
/// and one error shape. Command failures are reported inline and the
/// loop continues; only transport failures exit nonzero.
fn run_serve(engine: &Engine, src: &str, options: &Options) -> ExitCode {
    let mut service_options = ServiceOptions::default();
    if let Some(cap) = options.changelog_cap {
        service_options.changelog_capacity = cap;
    }
    let journal_options = JournalOptions {
        fsync: options.fsync,
        checkpoint_every: options.checkpoint_every,
        ack_durable: options.ack_durable,
    };
    // With `--journal`, a directory that already holds a journal wins
    // over FILE: the service is rebuilt from the newest checkpoint plus
    // the journal tail. A fresh directory seeds the journal from FILE.
    let service = match &options.journal {
        Some(dir) if Journal::exists(dir) => {
            match Service::recover(engine, dir, service_options, journal_options) {
                Ok(s) => {
                    announce_recovery(s.version(), options.json);
                    s
                }
                Err(e) => return report_error(&e),
            }
        }
        Some(dir) => {
            let session = match engine.load(src) {
                Ok(s) => s,
                Err(e) => return report_error(&e),
            };
            match Service::with_journal(session, service_options, dir, journal_options) {
                Ok(s) => s,
                Err(e) => return report_error(&e),
            }
        }
        None => {
            let session = match engine.load(src) {
                Ok(s) => s,
                Err(e) => return report_error(&e),
            };
            match Service::with_options(session, service_options) {
                Ok(s) => s,
                Err(e) => return report_error(&e),
            }
        }
    };
    // Telemetry is configured before any listener or seed delta, so the
    // very first write cycle is phase-timed (and traced, when asked).
    let trace_sink = match &options.trace_file {
        Some(path) => match TraceSink::create(std::path::Path::new(path)) {
            Ok(sink) => Some(sink),
            Err(e) => {
                eprintln!("afp: cannot open trace file {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    service.set_telemetry(Telemetry::configured(
        options.metrics_format,
        trace_sink,
        options.slow_cycle_ms,
    ));

    // --assert/--retract seed the service before commands are read.
    for (assert, text) in &options.updates {
        let result = if *assert {
            service.assert_rules(text)
        } else {
            service.retract_rules(text)
        };
        if let Err(e) = result {
            return report_error(&e);
        }
    }

    // The networked tier, when any listener is requested: one dedicated
    // writer thread and bounded queue shared by every endpoint
    // (including stdin submissions, so backpressure is uniform).
    let mut tier: Option<Arc<AsyncService>> = None;
    let mut servers: Vec<NetServer> = Vec::new();
    if options.listen.is_some() || options.socket.is_some() {
        let t = Arc::new(AsyncService::new(
            service.clone(),
            AsyncOptions {
                queue_depth: options.queue_depth,
                submit_deadline: options.submit_timeout_ms.map(Duration::from_millis),
            },
        ));
        let net_options = NetOptions {
            max_conns: options.max_conns,
            ..NetOptions::default()
        };
        if let Some(addr) = &options.listen {
            match NetServer::bind_tcp(Arc::clone(&t), addr.as_str(), net_options) {
                Ok(server) => {
                    announce("tcp", server.addr(), options.json);
                    servers.push(server);
                }
                Err(e) => {
                    eprintln!("afp: cannot listen on {addr}: {e}");
                    return ExitCode::from(2);
                }
            }
        }
        if let Some(path) = &options.socket {
            match NetServer::bind_unix(Arc::clone(&t), path, net_options) {
                Ok(server) => {
                    announce("unix", server.addr(), options.json);
                    servers.push(server);
                }
                Err(e) => {
                    eprintln!("afp: cannot bind socket {path}: {e}");
                    for server in &servers {
                        server.shutdown();
                    }
                    return ExitCode::from(2);
                }
            }
        }
        tier = Some(t);
    }

    // Writes from stdin take the networked queue when it exists, so one
    // admission-control policy governs every front end.
    let backend: &dyn ServeBackend = match &tier {
        Some(t) => t.as_ref(),
        None => &service,
    };
    let full_stats = || {
        codec::stats_json(
            &service.session_stats(),
            Some(&service.stats()),
            tier.as_ref()
                .map(|t| merged_net_stats(t, &servers))
                .as_ref(),
            service.journal_stats().as_ref(),
        )
    };

    let mut transport_failed = false;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(line) => line,
            Err(e) => {
                eprintln!("afp: stdin transport failure: {e}");
                transport_failed = true;
                break;
            }
        };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let response = match codec::parse_command(line) {
            Ok(Request::Quit) => break,
            // `stats` is answered here, not in `execute`, so the CLI can
            // fold in connection counters from its listeners.
            Ok(Request::Stats) => Response::Stats { json: full_stats() },
            Ok(request) => codec::execute(backend, &request),
            Err(message) => Response::protocol_error(message),
        };
        if options.json {
            println!("{}", codec::render_json(&response));
        } else {
            println!("{}", codec::render_plain(&response));
        }
    }

    // Deterministic teardown: stop accepting, close connections, then
    // drain the write queue so every accepted submission resolves.
    for server in &servers {
        server.shutdown();
    }
    if let Some(t) = &tier {
        t.shutdown(Shutdown::Drain);
    }

    // `--stats` reports the final counters at exit, like one-shot mode
    // (the interactive `stats` command reports them mid-session).
    if options.stats {
        print_stats(
            &service.session_stats(),
            Some(&service.stats()),
            tier.as_ref()
                .map(|t| merged_net_stats(t, &servers))
                .as_ref(),
            service.journal_stats().as_ref(),
            options.json,
        );
    }
    if transport_failed {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

/// Announce a bound endpoint on stdout — first, so callers binding port
/// 0 (or waiting for readiness) can parse the real address.
fn announce(transport: &str, addr: &str, json: bool) {
    if json {
        println!(
            "{{\"listening\":{{\"transport\":{},\"addr\":{}}}}}",
            codec::json_str(transport),
            codec::json_str(addr)
        );
    } else {
        println!("% listening {transport} {addr}");
    }
}

/// Announce a successful journal recovery on stdout, before any
/// listener lines, so supervisors can confirm the restored version.
fn announce_recovery(version: u64, json: bool) {
    if json {
        println!("{{\"journal\":{{\"recovered\":{version}}}}}");
    } else {
        println!("% journal recovered version {version}");
    }
}

/// Queue/latency counters from the shared tier plus connection counters
/// from every listener (tier stats leave connection fields zero, so the
/// sum never double-counts).
fn merged_net_stats(tier: &AsyncService, servers: &[NetServer]) -> NetStats {
    let mut net = tier.stats();
    for server in servers {
        let s = server.stats();
        net.conns_accepted += s.conns_accepted;
        net.conns_rejected += s.conns_rejected;
        net.conns_open += s.conns_open;
        net.frames_in += s.frames_in;
        net.frames_out += s.frames_out;
    }
    net
}

/// Print session (and, in serve mode, service + net) counters as one
/// JSON object — serialized by [`codec::stats_json`], the same helper
/// behind the interactive `stats` command and the wire protocol, so the
/// shapes cannot drift. Plain (non-`--json`) output prefixes it as a
/// `%` comment so downstream fact parsers stay happy.
fn print_stats(
    session: &SessionStats,
    service: Option<&afp::ServiceStats>,
    net: Option<&NetStats>,
    journal: Option<&JournalStats>,
    as_json: bool,
) {
    let body = codec::stats_json(session, service, net, journal);
    if as_json {
        println!("{body}");
    } else {
        println!("% stats {body}");
    }
}

fn report_error(e: &Error) -> ExitCode {
    match e {
        Error::NotLocallyStratified => eprintln!("afp: program is not locally stratified"),
        other => eprintln!("afp: {other}"),
    }
    ExitCode::from(2)
}

fn sorted(iter: impl Iterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = iter.collect();
    v.sort();
    v
}

fn print_partial(model: &Model) {
    for name in sorted(model.true_atoms()) {
        println!("{name}.");
    }
    for name in sorted(model.undefined_atoms()) {
        println!("{name}?  % undefined");
    }
}

fn print_assignment_json(model: &Model) {
    println!(
        "{{\"semantics\":{},\"total\":{},\"true\":{},\"false\":{},\"undefined\":{}}}",
        codec::json_str(model.semantics().name()),
        model.is_total(),
        codec::json_list(&sorted(model.true_atoms())),
        codec::json_list(&sorted(model.false_atoms())),
        codec::json_list(&sorted(model.undefined_atoms())),
    );
}

fn print_stable_json(model: &Model) {
    let models: Vec<String> = model
        .stable_models()
        .iter()
        .map(|m| codec::json_list(&model.ground().set_to_names(m)))
        .collect();
    println!(
        "{{\"semantics\":\"stable\",\"complete\":{},\"count\":{},\"models\":[{}]}}",
        model.is_complete(),
        model.stable_models().len(),
        models.join(",")
    );
}
