//! `afp` — command-line front end over the unified [`afp::Engine`].
//!
//! ```text
//! afp [OPTIONS] [FILE]          read a program from FILE (default: stdin)
//!
//! OPTIONS:
//!   -s, --semantics <S>   wfs (default) | stable | fitting | perfect | ifp
//!   -q, --query <ATOM>    print the truth value of one atom (e.g. 'wins(a)')
//!   -t, --trace           print the alternating sequence (wfs only)
//!   -a, --active-domain   range-restrict unsafe rules to the active domain
//!   -n, --max-models <N>  cap stable-model enumeration
//!   -j, --json            machine-readable output on stdout
//!       --assert <TEXT>   apply rules/facts to the loaded session (repeatable)
//!       --retract <TEXT>  remove rules/facts from the session (repeatable)
//!       --stats           print session (and serve-mode service) counters as JSON
//!       --serve           serve FILE: read update/query commands from stdin
//!       --ground          print the ground program and exit
//!   -h, --help            this text
//! ```
//!
//! `--assert` / `--retract` apply **after** the program is loaded, in
//! command-line order, through the session's incremental rule/fact delta
//! machinery — the grounding is patched in place, not rebuilt, exactly as
//! a long-running embedder of [`afp::Session`] would do it.
//!
//! `--serve` runs the program behind [`afp::Service`]: the model is
//! solved once and published as version 0, then stdin is read as one
//! command per line against the live service —
//!
//! ```text
//! query ATOM        truth of ATOM in the current version
//! at VERSION ATOM   truth of ATOM in a cached earlier version
//! assert TEXT       submit rules/facts; prints the published version
//! retract TEXT      remove rules/facts; prints the published version
//! model             print the current version's full model
//! version           print the current version number
//! stats             print service + session counters as JSON
//! quit              exit (EOF works too)
//! ```
//!
//! Command errors are reported inline (`error: …` or `{"error": …}`) and
//! the server keeps running — the published model chain is never left in
//! a half-applied state.
//!
//! Exit codes: 0 ok; 1 no stable model (with `-s stable`) or query false;
//! 2 usage / parse / grounding error.

use afp::{Engine, Error, Model, Semantics, SessionStats, Truth};
use std::io::{BufRead, Read};
use std::process::ExitCode;

const USAGE_HINT: &str = "usage: afp [-s wfs|stable|fitting|perfect|ifp] [-q ATOM] [-t] [-a] \
     [-n N] [-j] [--assert TEXT] [--retract TEXT] [--stats] [--serve] [--ground] [FILE]";

struct Options {
    semantics: String,
    query: Option<String>,
    trace: bool,
    active_domain: bool,
    max_models: usize,
    json: bool,
    ground_only: bool,
    stats: bool,
    serve: bool,
    /// Session updates in command-line order: `(assert?, program text)`.
    updates: Vec<(bool, String)>,
    file: Option<String>,
}

fn usage() -> ! {
    eprintln!("afp — well-founded and stable model solver\n{USAGE_HINT}");
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        semantics: "wfs".into(),
        query: None,
        trace: false,
        active_domain: false,
        max_models: usize::MAX,
        json: false,
        ground_only: false,
        stats: false,
        serve: false,
        updates: Vec::new(),
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-s" | "--semantics" => {
                options.semantics = args.next().unwrap_or_else(|| usage());
            }
            "-q" | "--query" => {
                options.query = Some(args.next().unwrap_or_else(|| usage()));
            }
            "-t" | "--trace" => options.trace = true,
            "-a" | "--active-domain" => options.active_domain = true,
            "-n" | "--max-models" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.max_models = n.parse().unwrap_or_else(|_| usage());
            }
            "-j" | "--json" => options.json = true,
            "--assert" => {
                let text = args.next().unwrap_or_else(|| usage());
                options.updates.push((true, text));
            }
            "--retract" => {
                let text = args.next().unwrap_or_else(|| usage());
                options.updates.push((false, text));
            }
            "--ground" => options.ground_only = true,
            "--stats" => options.stats = true,
            "--serve" => options.serve = true,
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => {
                if options.file.is_some() {
                    usage();
                }
                options.file = Some(arg);
            }
        }
    }
    options
}

fn semantics_of(name: &str, max_models: usize) -> Option<Semantics> {
    Some(match name {
        "wfs" => Semantics::WellFounded {
            strategy: Default::default(),
        },
        "stable" => Semantics::Stable { max_models },
        "fitting" => Semantics::Fitting,
        "perfect" => Semantics::Perfect,
        "ifp" => Semantics::Inflationary,
        _ => None?,
    })
}

fn main() -> ExitCode {
    let options = parse_args();
    let src = match &options.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("afp: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("afp: cannot read stdin");
                return ExitCode::from(2);
            }
            s
        }
    };
    // Validated only after stdin is drained: exiting while the writer is
    // still feeding the pipe would hand well-behaved callers an EPIPE.
    let Some(semantics) = semantics_of(&options.semantics, options.max_models) else {
        eprintln!(
            "afp: unknown semantics {:?}\n{USAGE_HINT}",
            options.semantics
        );
        return ExitCode::from(2);
    };

    // Resolve the query to (pred, args-as-names) before solving so bad
    // queries exit 2 without wasted work.
    let query: Option<(String, Vec<String>)> = match &options.query {
        None => None,
        Some(text) => match parse_query(text) {
            Ok(q) => Some(q),
            Err(msg) => {
                eprintln!("afp: bad query: {msg}\n{USAGE_HINT}");
                return ExitCode::from(2);
            }
        },
    };

    let engine = Engine::builder()
        .semantics(semantics)
        .safety(if options.active_domain {
            afp::SafetyPolicy::ActiveDomain
        } else {
            afp::SafetyPolicy::Reject
        })
        .trace(options.trace)
        .build();

    if options.serve {
        return run_serve(&engine, &src, &options);
    }

    let mut session = match engine.load(&src) {
        Ok(s) => s,
        Err(e) => return report_error(&e),
    };
    for (assert, text) in &options.updates {
        let result = if *assert {
            session.assert_rules(text)
        } else {
            session.retract_rules(text)
        };
        if let Err(e) = result {
            return report_error(&e);
        }
    }
    if options.ground_only {
        print!("{}", session.ground());
        return ExitCode::SUCCESS;
    }
    let model = match session.solve() {
        Ok(m) => m,
        Err(e) => return report_error(&e),
    };

    if options.trace {
        if let Some(trace) = model.trace() {
            println!("% alternating sequence");
            for s in &trace.steps {
                println!(
                    "% k={} |negatives|={} |positives|={}",
                    s.k,
                    s.i_tilde.count(),
                    s.s_p.count()
                );
            }
        }
    }

    let code = if let Some((pred, args)) = &query {
        let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
        let truth = model.truth(pred, &arg_refs);
        if options.json {
            println!(
                "{{\"semantics\":{},\"query\":{},\"truth\":{}}}",
                json_str(model.semantics().name()),
                json_str(options.query.as_deref().unwrap_or_default()),
                json_str(truth_name(truth))
            );
        } else {
            println!("{truth:?}");
        }
        // Exit-code contract: wfs signals a non-true query; stable still
        // signals "no stable model" even when a query is printed.
        let failed = match semantics {
            Semantics::WellFounded { .. } => truth != Truth::True,
            Semantics::Stable { .. } => model.stable_models().is_empty(),
            _ => false,
        };
        if failed {
            ExitCode::from(1)
        } else {
            ExitCode::SUCCESS
        }
    } else {
        print_result(&model, semantics, &options)
    };
    if options.stats {
        print_stats(session.stats(), None, options.json);
    }
    code
}

fn print_result(model: &Model, semantics: Semantics, options: &Options) -> ExitCode {
    match semantics {
        Semantics::Stable { .. } => {
            if options.json {
                print_stable_json(model);
            } else {
                for (i, m) in model.stable_models().iter().enumerate() {
                    println!("% stable model {}", i + 1);
                    for name in model.ground().set_to_names(m) {
                        println!("{name}.");
                    }
                }
                if model.stable_models().is_empty() {
                    println!("% no stable model");
                }
            }
            if model.stable_models().is_empty() {
                ExitCode::from(1)
            } else {
                ExitCode::SUCCESS
            }
        }
        Semantics::Inflationary => {
            if options.json {
                print_assignment_json(model);
            } else {
                for name in sorted(model.true_atoms()) {
                    println!("{name}.");
                }
            }
            ExitCode::SUCCESS
        }
        other => {
            if options.json {
                print_assignment_json(model);
            } else {
                print_partial(model);
                if matches!(other, Semantics::WellFounded { .. }) {
                    println!("% total: {}", model.is_total());
                }
            }
            ExitCode::SUCCESS
        }
    }
}

/// Serve mode: publish the program behind [`afp::Service`] and process
/// one command per stdin line against the live service. Command failures
/// are reported inline and the loop continues — a serving process must
/// not die because one update was malformed.
fn run_serve(engine: &Engine, src: &str, options: &Options) -> ExitCode {
    let service = match engine.serve(src) {
        Ok(s) => s,
        Err(e) => return report_error(&e),
    };
    // --assert/--retract seed the service before commands are read.
    for (assert, text) in &options.updates {
        let result = if *assert {
            service.assert_rules(text)
        } else {
            service.retract_rules(text)
        };
        if let Err(e) = result {
            return report_error(&e);
        }
    }
    let report = |msg: &str| {
        if options.json {
            println!("{{\"error\":{}}}", json_str(msg));
        } else {
            println!("error: {msg}");
        }
    };
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let Ok(line) = line else { break };
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let (command, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
        match command {
            "quit" | "exit" => break,
            "version" => {
                if options.json {
                    println!("{{\"version\":{}}}", service.version());
                } else {
                    println!("{}", service.version());
                }
            }
            "stats" => print_stats(&service.session_stats(), Some(&service.stats()), true),
            "model" => {
                let snapshot = service.snapshot();
                if options.json {
                    print_assignment_json(snapshot.model());
                } else {
                    println!("% version {}", snapshot.version());
                    print_partial(snapshot.model());
                }
            }
            "query" => match parse_query(rest) {
                Ok((pred, args)) => {
                    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                    let snapshot = service.snapshot();
                    let truth = snapshot.truth(&pred, &refs);
                    if options.json {
                        println!(
                            "{{\"version\":{},\"query\":{},\"truth\":{}}}",
                            snapshot.version(),
                            json_str(rest),
                            json_str(truth_name(truth))
                        );
                    } else {
                        println!("{truth:?}");
                    }
                }
                Err(msg) => report(&format!("bad query: {msg}")),
            },
            "at" => {
                let (version, atom) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
                match (version.parse::<u64>(), parse_query(atom)) {
                    (Ok(version), Ok((pred, args))) => match service.at_version(version) {
                        Some(snapshot) => {
                            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                            let truth = snapshot.truth(&pred, &refs);
                            if options.json {
                                println!(
                                    "{{\"version\":{version},\"query\":{},\"truth\":{}}}",
                                    json_str(atom),
                                    json_str(truth_name(truth))
                                );
                            } else {
                                println!("{truth:?}");
                            }
                        }
                        None => report(&format!("version {version} not cached")),
                    },
                    (Err(_), _) => report("usage: at VERSION ATOM"),
                    (_, Err(msg)) => report(&format!("bad query: {msg}")),
                }
            }
            "assert" | "retract" => {
                let result = if command == "assert" {
                    service.assert_rules(rest)
                } else {
                    service.retract_rules(rest)
                };
                match result {
                    Ok(version) => {
                        if options.json {
                            println!("{{\"ok\":true,\"version\":{version}}}");
                        } else {
                            println!("ok {version}");
                        }
                    }
                    Err(e) => report(&e.to_string()),
                }
            }
            other => report(&format!(
                "unknown command {other:?} (query/at/assert/retract/model/version/stats/quit)"
            )),
        }
    }
    // `--stats` reports the final counters at exit, like one-shot mode
    // (the interactive `stats` command reports them mid-session).
    if options.stats {
        print_stats(
            &service.session_stats(),
            Some(&service.stats()),
            options.json,
        );
    }
    ExitCode::SUCCESS
}

/// Print session (and, in serve mode, service) counters as one JSON
/// object. Plain (non-`--json`) one-shot output prefixes it as a `%`
/// comment so downstream fact parsers stay happy.
fn print_stats(session: &SessionStats, service: Option<&afp::ServiceStats>, as_json: bool) {
    let mut body = format!(
        "\"stats\":{{\"solves\":{},\"warm_solves\":{},\"snapshot_clones\":{},\
         \"snapshot_reuses\":{},\"regrounds\":{},\"asserts\":{},\"retracts\":{},\
         \"rule_asserts\":{},\"rule_retracts\":{},\"delta_rounds\":{},\
         \"condensation_builds\":{},\"condensation_repairs\":{},\
         \"last_repair_atoms\":{},\"last_repair_edges\":{},\
         \"restricted_cond_hits\":{},\"scc_solves\":{},\"last_components\":{},\
         \"last_components_evaluated\":{},\"last_components_reused\":{},\
         \"last_seed_size\":{}}}",
        session.solves,
        session.warm_solves,
        session.snapshot_clones,
        session.snapshot_reuses,
        session.regrounds,
        session.asserts,
        session.retracts,
        session.rule_asserts,
        session.rule_retracts,
        session.delta_rounds,
        session.condensation_builds,
        session.condensation_repairs,
        session.last_repair_atoms,
        session.last_repair_edges,
        session.restricted_cond_hits,
        session.scc_solves,
        session.last_components,
        session.last_components_evaluated,
        session.last_components_reused,
        session.last_seed_size,
    );
    if let Some(s) = service {
        body.push_str(&format!(
            ",\"service\":{{\"version\":{},\"submissions\":{},\"write_cycles\":{},\
             \"coalesced\":{},\"rejected\":{},\"pins\":{},\"cache_hits\":{},\
             \"cache_misses\":{}}}",
            s.version,
            s.submissions,
            s.write_cycles,
            s.coalesced,
            s.rejected,
            s.pins,
            s.cache_hits,
            s.cache_misses,
        ));
    }
    if as_json {
        println!("{{{body}}}");
    } else {
        println!("% stats {{{body}}}");
    }
}

fn report_error(e: &Error) -> ExitCode {
    match e {
        Error::NotLocallyStratified => eprintln!("afp: program is not locally stratified"),
        other => eprintln!("afp: {other}"),
    }
    ExitCode::from(2)
}

/// Parse `pred(c1, …, ck)` into plain names; rejects variables.
fn parse_query(text: &str) -> Result<(String, Vec<String>), String> {
    let mut tmp = afp::Program::new();
    let atom = afp::datalog::parser::parse_atom_into(text, &mut tmp).map_err(|e| e.to_string())?;
    if !atom.is_ground() {
        return Err("query must be a ground atom".into());
    }
    let pred = tmp.symbols.name(atom.pred).to_string();
    let args = atom
        .args
        .iter()
        .map(|t| afp::datalog::ast::display_term(t, &tmp.symbols))
        .collect();
    Ok((pred, args))
}

fn sorted(iter: impl Iterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = iter.collect();
    v.sort();
    v
}

fn print_partial(model: &Model) {
    for name in sorted(model.true_atoms()) {
        println!("{name}.");
    }
    for name in sorted(model.undefined_atoms()) {
        println!("{name}?  % undefined");
    }
}

fn print_assignment_json(model: &Model) {
    println!(
        "{{\"semantics\":{},\"total\":{},\"true\":{},\"false\":{},\"undefined\":{}}}",
        json_str(model.semantics().name()),
        model.is_total(),
        json_list(sorted(model.true_atoms())),
        json_list(sorted(model.false_atoms())),
        json_list(sorted(model.undefined_atoms())),
    );
}

fn print_stable_json(model: &Model) {
    let models: Vec<String> = model
        .stable_models()
        .iter()
        .map(|m| json_list(model.ground().set_to_names(m)))
        .collect();
    println!(
        "{{\"semantics\":\"stable\",\"complete\":{},\"count\":{},\"models\":[{}]}}",
        model.is_complete(),
        model.stable_models().len(),
        models.join(",")
    );
}

fn truth_name(t: Truth) -> &'static str {
    match t {
        Truth::True => "true",
        Truth::False => "false",
        Truth::Undefined => "undefined",
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_list(items: Vec<String>) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", quoted.join(","))
}
