//! `afp` — command-line front end.
//!
//! ```text
//! afp [OPTIONS] [FILE]          read a program from FILE (default: stdin)
//!
//! OPTIONS:
//!   -s, --semantics <S>   wfs (default) | stable | fitting | perfect | ifp
//!   -q, --query <ATOM>    print the truth value of one atom (e.g. 'wins(a)')
//!   -t, --trace           print the alternating sequence (wfs only)
//!   -a, --active-domain   range-restrict unsafe rules to the active domain
//!   -n, --max-models <N>  cap stable-model enumeration
//!       --ground          print the ground program and exit
//!   -h, --help            this text
//! ```
//!
//! Exit codes: 0 ok; 1 no stable model (with `-s stable`) or query false;
//! 2 usage / parse / grounding error.

use afp::datalog::{parse_program, parser::parse_atom_into, GroundOptions, SafetyPolicy};
use afp::{AfpOptions, Truth};
use std::io::Read;
use std::process::ExitCode;

struct Options {
    semantics: String,
    query: Option<String>,
    trace: bool,
    active_domain: bool,
    max_models: usize,
    ground_only: bool,
    file: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "afp — well-founded and stable model solver\n\
         usage: afp [-s wfs|stable|fitting|perfect|ifp] [-q ATOM] [-t] [-a] [-n N] [--ground] [FILE]"
    );
    std::process::exit(2);
}

fn parse_args() -> Options {
    let mut options = Options {
        semantics: "wfs".into(),
        query: None,
        trace: false,
        active_domain: false,
        max_models: usize::MAX,
        ground_only: false,
        file: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "-s" | "--semantics" => {
                options.semantics = args.next().unwrap_or_else(|| usage());
            }
            "-q" | "--query" => {
                options.query = Some(args.next().unwrap_or_else(|| usage()));
            }
            "-t" | "--trace" => options.trace = true,
            "-a" | "--active-domain" => options.active_domain = true,
            "-n" | "--max-models" => {
                let n = args.next().unwrap_or_else(|| usage());
                options.max_models = n.parse().unwrap_or_else(|_| usage());
            }
            "--ground" => options.ground_only = true,
            "-h" | "--help" => usage(),
            _ if arg.starts_with('-') => usage(),
            _ => {
                if options.file.is_some() {
                    usage();
                }
                options.file = Some(arg);
            }
        }
    }
    options
}

fn main() -> ExitCode {
    let options = parse_args();
    let src = match &options.file {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("afp: cannot read {path}: {e}");
                return ExitCode::from(2);
            }
        },
        None => {
            let mut s = String::new();
            if std::io::stdin().read_to_string(&mut s).is_err() {
                eprintln!("afp: cannot read stdin");
                return ExitCode::from(2);
            }
            s
        }
    };

    let mut program = match parse_program(&src) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("afp: parse error: {e}");
            return ExitCode::from(2);
        }
    };
    let ground_options = GroundOptions {
        safety: if options.active_domain {
            SafetyPolicy::ActiveDomain
        } else {
            SafetyPolicy::Reject
        },
        ..Default::default()
    };
    // Resolve the query against the program's symbols before grounding so
    // names line up.
    let query_atom = match &options.query {
        None => None,
        Some(text) => match parse_atom_into(text, &mut program) {
            Ok(a) if a.is_ground() => Some(a),
            Ok(_) => {
                eprintln!("afp: query must be a ground atom");
                return ExitCode::from(2);
            }
            Err(e) => {
                eprintln!("afp: bad query: {e}");
                return ExitCode::from(2);
            }
        },
    };

    let ground = match afp::datalog::ground_with(&program, &ground_options) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("afp: grounding error: {e}");
            return ExitCode::from(2);
        }
    };
    if options.ground_only {
        print!("{ground}");
        return ExitCode::SUCCESS;
    }

    let lookup = |model: &afp::PartialModel, atom: &afp::datalog::Atom| -> Truth {
        let args: Vec<String> = atom
            .args
            .iter()
            .map(|t| afp::datalog::ast::display_term(t, &program.symbols))
            .collect();
        let arg_refs: Vec<&str> = args.iter().map(|s| s.as_str()).collect();
        let name = program.symbols.name(atom.pred);
        match ground.find_atom_by_name(name, &arg_refs) {
            Some(id) => model.truth(id.0),
            None => Truth::False,
        }
    };

    match options.semantics.as_str() {
        "wfs" => {
            let r = afp::core::alternating_fixpoint_with(
                &ground,
                &AfpOptions {
                    record_trace: options.trace,
                    ..Default::default()
                },
            );
            if options.trace {
                if let Some(trace) = &r.trace {
                    println!("% alternating sequence");
                    for s in &trace.steps {
                        println!(
                            "% k={} |negatives|={} |positives|={}",
                            s.k,
                            s.i_tilde.count(),
                            s.s_p.count()
                        );
                    }
                }
            }
            if let Some(q) = &query_atom {
                let t = lookup(&r.model, q);
                println!("{t:?}");
                return if t == Truth::True {
                    ExitCode::SUCCESS
                } else {
                    ExitCode::from(1)
                };
            }
            print_partial(&ground, &r.model);
            println!("% total: {}", r.is_total);
            ExitCode::SUCCESS
        }
        "fitting" => {
            let r = afp::semantics::fitting_model(&ground);
            if let Some(q) = &query_atom {
                println!("{:?}", lookup(&r.model, q));
                return ExitCode::SUCCESS;
            }
            print_partial(&ground, &r.model);
            ExitCode::SUCCESS
        }
        "perfect" => match afp::semantics::perfect_model(&ground) {
            Some(r) => {
                if let Some(q) = &query_atom {
                    println!("{:?}", lookup(&r.model, q));
                    return ExitCode::SUCCESS;
                }
                print_partial(&ground, &r.model);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("afp: program is not locally stratified");
                ExitCode::from(2)
            }
        },
        "ifp" => {
            let r = afp::semantics::inflationary_fixpoint(&ground);
            for name in ground.set_to_names(&r.model) {
                println!("{name}.");
            }
            ExitCode::SUCCESS
        }
        "stable" => {
            let r = afp::semantics::enumerate_stable(
                &ground,
                &afp::semantics::EnumerateOptions {
                    max_models: options.max_models,
                    max_nodes: usize::MAX,
                },
            );
            for (i, m) in r.models.iter().enumerate() {
                println!("% stable model {}", i + 1);
                for name in ground.set_to_names(m) {
                    println!("{name}.");
                }
            }
            if r.models.is_empty() {
                println!("% no stable model");
                return ExitCode::from(1);
            }
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("afp: unknown semantics {other:?}");
            ExitCode::from(2)
        }
    }
}

fn print_partial(ground: &afp::GroundProgram, model: &afp::PartialModel) {
    for name in ground.set_to_names(&model.pos) {
        println!("{name}.");
    }
    for name in ground.set_to_names(&model.undefined()) {
        println!("{name}?  % undefined");
    }
}
