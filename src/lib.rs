//! # afp — The Alternating Fixpoint of Logic Programs with Negation
//!
//! A from-scratch Rust reproduction of *Allen Van Gelder, "The Alternating
//! Fixpoint of Logic Programs with Negation"* (PODS 1989; JCSS 47(1),
//! 1993): the constructive characterization of the **well-founded
//! semantics** as the least fixpoint of the monotone alternating
//! transformation `A_P = S̃_P ∘ S̃_P`, together with the stable-model,
//! Fitting, stratified and inflationary semantics it is related to, and
//! the first-order extension of Section 8.
//!
//! ## Quickstart: one [`Engine`], five semantics, reusable sessions
//!
//! ```
//! use afp::{Engine, Semantics, Truth};
//!
//! // Figure 4(c): a ⇄ b cycle, but b can escape to the sink c.
//! let engine = Engine::default(); // well-founded semantics by default
//! let mut session = engine
//!     .load(
//!         "wins(X) :- move(X, Y), not wins(Y).
//!          move(a, b). move(b, a). move(b, c).",
//!     )
//!     .unwrap();
//!
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["b"]), Truth::True);  // b escapes to the sink
//! assert_eq!(model.truth("wins", &["a"]), Truth::False); // a can only feed b
//! assert!(model.is_total()); // ⇒ also the unique stable model (Section 5)
//!
//! // The same session answers under every other semantics of the paper.
//! let stable = session
//!     .solve_with(Semantics::Stable { max_models: usize::MAX })
//!     .unwrap();
//! assert_eq!(stable.stable_models().len(), 1);
//! let fitting = session.solve_with(Semantics::Fitting).unwrap();
//! assert!(fitting.partial_model().leq(model.partial_model())); // Fitting ⊑ WFS
//!
//! // Fact updates reuse the grounding: no re-parse, no cold re-ground.
//! session.assert_facts("move(c, d).").unwrap();
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["c"]), Truth::True);
//! assert_eq!(session.stats().regrounds, 0);
//! ```
//!
//! See [`engine`] for the full API: [`EngineBuilder`] (semantics,
//! [`SafetyPolicy`], tracing, relevance restriction), [`Session`]
//! (`assert_facts` / `retract_facts` / warm re-solve), and the unified
//! three-valued [`Model`].
//!
//! ## Crates
//!
//! * [`datalog`] (`afp-datalog`) — parser, Herbrand machinery, batch and
//!   incremental grounder, relational engine;
//! * [`core`] (`afp-core`) — the operators `S_P`, `S̃_P`, `A_P` and the
//!   (resumable) alternating fixpoint computation;
//! * [`semantics`] (`afp-semantics`) — unfounded sets, stable models,
//!   Fitting, perfect models, inflationary fixpoints, explanations;
//! * [`fol`] (`afp-fol`) — first-order rule bodies, Lloyd–Topor, fixpoint
//!   logic.

pub use afp_core as core;
pub use afp_datalog as datalog;
pub use afp_fol as fol;
pub use afp_semantics as semantics;

pub mod engine;
pub mod journal;
pub mod net;
pub mod service;
pub mod telemetry;

pub use afp_core::interp::Truth;
pub use afp_core::{AfpOptions, AfpResult, PartialModel, Strategy};
pub use afp_datalog::{GroundOptions, GroundProgram, Program, SafetyPolicy};
pub use engine::{Engine, EngineBuilder, Model, Semantics, Session, SessionStats, WfStrategy};
pub use journal::{CrashPoint, FsyncPolicy, Journal, JournalOptions, JournalStats};
pub use net::{
    AsyncOptions, AsyncService, NetOptions, NetServer, NetStats, Shutdown, SubmitHandle,
};
pub use service::{AppliedDelta, DeltaKind, ModelSnapshot, Service, ServiceOptions, ServiceStats};
pub use telemetry::{
    MetricsFormat, MetricsRegistry, PhaseBreakdown, SessionPhases, Telemetry, TraceSink,
};

use std::fmt;

/// Anything that can go wrong across the parse → ground → solve pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The source text did not parse.
    Parse(afp_datalog::ParseError),
    /// The program could not be grounded.
    Ground(afp_datalog::GroundError),
    /// [`Semantics::Perfect`] was requested for a program that is not
    /// locally stratified (no perfect model exists — Section 2.3).
    NotLocallyStratified,
    /// [`Session::assert_facts`] / [`Session::retract_facts`] was given a
    /// rule that is not a ground fact.
    NotAFact(String),
    /// [`Session::assert_rules`] / [`Session::retract_rules`] was given a
    /// non-ground rule on a session without grounder state
    /// ([`Engine::load_ground`] keeps no envelope to instantiate over).
    NotGroundRule(String),
    /// A [`Service`] write cycle's leader thread panicked before this
    /// queued delta could be applied. The delta was **not** applied and
    /// no version containing it was published; resubmitting is safe.
    WriterAborted,
    /// The bounded write queue of an [`AsyncService`] was full at
    /// submission time. The delta was **not** enqueued; this is the
    /// admission-control verdict, returned immediately (a full queue
    /// never blocks the submitter). Back off and resubmit.
    Overloaded,
    /// A queued submission's deadline expired before the writer thread
    /// picked it up. The delta was **not** applied; resubmitting is
    /// safe.
    SubmitTimeout,
    /// The [`AsyncService`] was shut down (or is shutting down) before
    /// this delta could be applied. Aborted submissions were **not**
    /// applied; resubmitting against a live service is safe.
    ServiceStopped,
    /// The requested version is outside the service's bounded retention
    /// window: [`Service::at_version`] past the version cache, or a
    /// changelog read reaching behind
    /// [`ServiceOptions::changelog_capacity`]. Retention is bounded so
    /// sustained writes cannot grow memory without limit; raise the
    /// capacities if you need deeper history.
    VersionEvicted {
        /// The version (or changelog horizon) that was asked for.
        requested: u64,
        /// The oldest version still fully retained.
        retained_from: u64,
        /// The newest published version at the time of the read.
        retained_to: u64,
    },
    /// A [`journal`] operation failed: opening/appending/syncing the
    /// write-ahead log, writing a checkpoint, or recovering from a
    /// journal directory. When a live write cycle hits this, its
    /// submissions fail with it and **no version is published** — the
    /// journal never lags the served history.
    Journal(String),
    /// The journal's history is damaged *before* the end of the log —
    /// an invalid record followed by further valid ones (bit rot, not a
    /// crash). Recovery refuses rather than silently dropping an
    /// interior delta; a torn **tail** is truncated instead, never
    /// reported as this. `record` is the 0-based index of the first
    /// invalid record in its WAL file.
    JournalCorrupt {
        /// 0-based index of the first invalid record in its WAL file.
        record: u64,
        /// What failed to validate, and where.
        detail: String,
    },
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Ground(e) => write!(f, "grounding error: {e}"),
            Error::NotLocallyStratified => {
                write!(f, "program is not locally stratified")
            }
            Error::NotAFact(rule) => {
                write!(f, "not a ground fact: {rule}")
            }
            Error::NotGroundRule(rule) => {
                write!(
                    f,
                    "not a ground rule: {rule} (sessions loaded from a ground \
                     program accept only ground rule deltas)"
                )
            }
            Error::WriterAborted => {
                write!(
                    f,
                    "service writer aborted before applying this delta (not applied; \
                     resubmitting is safe)"
                )
            }
            Error::Overloaded => {
                write!(
                    f,
                    "write queue full: submission rejected by admission control \
                     (not enqueued; back off and resubmit)"
                )
            }
            Error::SubmitTimeout => {
                write!(
                    f,
                    "submission deadline expired while queued (not applied; \
                     resubmitting is safe)"
                )
            }
            Error::ServiceStopped => {
                write!(f, "service stopped before this delta could be applied")
            }
            Error::VersionEvicted {
                requested,
                retained_from,
                retained_to,
            } => {
                write!(
                    f,
                    "version {requested} is outside the retained window \
                     [{retained_from}, {retained_to}] (bounded retention; \
                     raise cache/changelog capacity for deeper history)"
                )
            }
            Error::Journal(detail) => {
                write!(f, "journal error: {detail}")
            }
            Error::JournalCorrupt { record, detail } => {
                write!(
                    f,
                    "journal corrupt at record {record}: {detail} (mid-journal \
                     damage cannot be repaired automatically; a torn tail would \
                     have been truncated instead)"
                )
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<afp_datalog::ParseError> for Error {
    fn from(e: afp_datalog::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<afp_datalog::GroundError> for Error {
    fn from(e: afp_datalog::GroundError) -> Self {
        Error::Ground(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_end_to_end() {
        let model = Engine::default()
            .solve("p :- not q. q :- not p. r.")
            .unwrap();
        assert_eq!(model.truth("r", &[]), Truth::True);
        assert_eq!(model.truth("p", &[]), Truth::Undefined);
        assert_eq!(model.truth("missing", &[]), Truth::False);
        assert!(!model.is_total());
        assert_eq!(model.true_atoms().collect::<Vec<_>>(), vec!["r"]);
        let mut undefined: Vec<String> = model.undefined_atoms().collect();
        undefined.sort();
        assert_eq!(undefined, vec!["p", "q"]);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(
            Engine::default().solve("p :- "),
            Err(Error::Parse(_))
        ));
    }

    #[test]
    fn ground_errors_surface() {
        assert!(matches!(
            Engine::default().solve("p(X) :- not q(X). q(a)."),
            Err(Error::Ground(_))
        ));
        // …and the active-domain policy fixes it.
        let model = Engine::builder()
            .safety(SafetyPolicy::ActiveDomain)
            .build()
            .solve("p(X) :- not q(X). q(a). r(b).")
            .unwrap();
        assert_eq!(model.truth("p", &["b"]), Truth::True);
        assert_eq!(model.truth("p", &["a"]), Truth::False);
    }

    #[test]
    fn error_display() {
        let e = Engine::default().solve("p :- ").unwrap_err();
        assert!(e.to_string().contains("parse error"));
        assert!(Error::NotLocallyStratified
            .to_string()
            .contains("not locally stratified"));
        assert!(Error::NotAFact("p :- q.".into())
            .to_string()
            .contains("not a ground fact"));
    }
}
