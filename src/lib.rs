//! # afp — The Alternating Fixpoint of Logic Programs with Negation
//!
//! A from-scratch Rust reproduction of *Allen Van Gelder, "The Alternating
//! Fixpoint of Logic Programs with Negation"* (PODS 1989; JCSS 47(1),
//! 1993): the constructive characterization of the **well-founded
//! semantics** as the least fixpoint of the monotone alternating
//! transformation `A_P = S̃_P ∘ S̃_P`, together with the stable-model,
//! Fitting, stratified and inflationary semantics it is related to, and
//! the first-order extension of Section 8.
//!
//! ## Quickstart: one [`Engine`], five semantics, reusable sessions
//!
//! ```
//! use afp::{Engine, Semantics, Truth};
//!
//! // Figure 4(c): a ⇄ b cycle, but b can escape to the sink c.
//! let engine = Engine::default(); // well-founded semantics by default
//! let mut session = engine
//!     .load(
//!         "wins(X) :- move(X, Y), not wins(Y).
//!          move(a, b). move(b, a). move(b, c).",
//!     )
//!     .unwrap();
//!
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["b"]), Truth::True);  // b escapes to the sink
//! assert_eq!(model.truth("wins", &["a"]), Truth::False); // a can only feed b
//! assert!(model.is_total()); // ⇒ also the unique stable model (Section 5)
//!
//! // The same session answers under every other semantics of the paper.
//! let stable = session
//!     .solve_with(Semantics::Stable { max_models: usize::MAX })
//!     .unwrap();
//! assert_eq!(stable.stable_models().len(), 1);
//! let fitting = session.solve_with(Semantics::Fitting).unwrap();
//! assert!(fitting.partial_model().leq(model.partial_model())); // Fitting ⊑ WFS
//!
//! // Fact updates reuse the grounding: no re-parse, no cold re-ground.
//! session.assert_facts("move(c, d).").unwrap();
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["c"]), Truth::True);
//! assert_eq!(session.stats().regrounds, 0);
//! ```
//!
//! See [`engine`] for the full API: [`EngineBuilder`] (semantics,
//! [`SafetyPolicy`], tracing, relevance restriction), [`Session`]
//! (`assert_facts` / `retract_facts` / warm re-solve), and the unified
//! three-valued [`Model`].
//!
//! ## Crates
//!
//! * [`datalog`] (`afp-datalog`) — parser, Herbrand machinery, batch and
//!   incremental grounder, relational engine;
//! * [`core`] (`afp-core`) — the operators `S_P`, `S̃_P`, `A_P` and the
//!   (resumable) alternating fixpoint computation;
//! * [`semantics`] (`afp-semantics`) — unfounded sets, stable models,
//!   Fitting, perfect models, inflationary fixpoints, explanations;
//! * [`fol`] (`afp-fol`) — first-order rule bodies, Lloyd–Topor, fixpoint
//!   logic.

pub use afp_core as core;
pub use afp_datalog as datalog;
pub use afp_fol as fol;
pub use afp_semantics as semantics;

pub mod engine;

pub use afp_core::interp::Truth;
pub use afp_core::{AfpOptions, AfpResult, PartialModel, Strategy};
pub use afp_datalog::{GroundOptions, GroundProgram, Program, SafetyPolicy};
pub use engine::{Engine, EngineBuilder, Model, Semantics, Session, SessionStats};

use std::fmt;

/// Anything that can go wrong across the parse → ground → solve pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The source text did not parse.
    Parse(afp_datalog::ParseError),
    /// The program could not be grounded.
    Ground(afp_datalog::GroundError),
    /// [`Semantics::Perfect`] was requested for a program that is not
    /// locally stratified (no perfect model exists — Section 2.3).
    NotLocallyStratified,
    /// [`Session::assert_facts`] / [`Session::retract_facts`] was given a
    /// rule that is not a ground fact.
    NotAFact(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse(e) => write!(f, "parse error: {e}"),
            Error::Ground(e) => write!(f, "grounding error: {e}"),
            Error::NotLocallyStratified => {
                write!(f, "program is not locally stratified")
            }
            Error::NotAFact(rule) => {
                write!(f, "not a ground fact: {rule}")
            }
        }
    }
}

impl std::error::Error for Error {}

impl From<afp_datalog::ParseError> for Error {
    fn from(e: afp_datalog::ParseError) -> Self {
        Error::Parse(e)
    }
}

impl From<afp_datalog::GroundError> for Error {
    fn from(e: afp_datalog::GroundError) -> Self {
        Error::Ground(e)
    }
}

/// The well-founded solution of a program: the ground instantiation plus
/// the alternating fixpoint partial model over it.
///
/// Returned by the deprecated free functions; new code should use
/// [`Engine::load`] and the unified [`Model`] instead.
#[derive(Debug)]
pub struct Solution {
    /// The relevant ground instantiation.
    pub ground: GroundProgram,
    /// The alternating-fixpoint result (= the well-founded partial model,
    /// Theorem 7.8).
    pub result: AfpResult,
}

impl Solution {
    /// Three-valued truth of `pred(args…)`. Atoms that were never
    /// materialized during grounding are false (they have no derivation).
    pub fn truth(&self, pred: &str, args: &[&str]) -> Truth {
        match self.ground.find_atom_by_name(pred, args) {
            Some(id) => self.result.model.truth(id.0),
            None => Truth::False,
        }
    }

    /// All true atoms, rendered and sorted.
    pub fn true_atoms(&self) -> Vec<String> {
        self.ground.set_to_names(&self.result.model.pos)
    }

    /// All false atoms (within the materialized base), rendered and sorted.
    pub fn false_atoms(&self) -> Vec<String> {
        self.ground.set_to_names(&self.result.model.neg)
    }

    /// All undefined atoms, rendered and sorted.
    pub fn undefined_atoms(&self) -> Vec<String> {
        self.ground.set_to_names(&self.result.undefined())
    }

    /// Is the well-founded model total? (If so it is also the unique
    /// stable model — Section 5.)
    pub fn is_total(&self) -> bool {
        self.result.is_total
    }
}

/// Parse, ground, and compute the well-founded partial model via the
/// alternating fixpoint.
#[deprecated(
    since = "0.1.0",
    note = "use Engine::default().load(src)?.solve() — sessions reuse the \
            grounding across queries and fact updates"
)]
pub fn well_founded(src: &str) -> Result<Solution, Error> {
    #[allow(deprecated)]
    well_founded_with(src, &GroundOptions::default(), &AfpOptions::default())
}

/// [`well_founded`] with explicit grounding and fixpoint options.
#[deprecated(
    since = "0.1.0",
    note = "use Engine::builder().ground_options(…).build().load(src)?.solve()"
)]
pub fn well_founded_with(
    src: &str,
    ground_options: &GroundOptions,
    afp_options: &AfpOptions,
) -> Result<Solution, Error> {
    let program = afp_datalog::parse_program(src)?;
    let ground = afp_datalog::ground_with(&program, ground_options)?;
    let result = afp_core::alternating_fixpoint_with(&ground, afp_options);
    Ok(Solution { ground, result })
}

/// Parse, ground, and enumerate stable models (sets of true atoms,
/// rendered). Exponential in the worst case.
#[deprecated(
    since = "0.1.0",
    note = "use Engine::new(Semantics::Stable { .. }).load(src)?.solve() and \
            Model::stable_models()"
)]
pub fn stable_models(src: &str) -> Result<Vec<Vec<String>>, Error> {
    let program = afp_datalog::parse_program(src)?;
    let ground = afp_datalog::ground(&program)?;
    let models = afp_semantics::stable_models(&ground);
    Ok(models.iter().map(|m| ground.set_to_names(m)).collect())
}

#[cfg(test)]
#[allow(deprecated)]
mod tests {
    use super::*;

    #[test]
    fn pipeline_end_to_end() {
        let sol = well_founded("p :- not q. q :- not p. r.").unwrap();
        assert_eq!(sol.truth("r", &[]), Truth::True);
        assert_eq!(sol.truth("p", &[]), Truth::Undefined);
        assert_eq!(sol.truth("missing", &[]), Truth::False);
        assert!(!sol.is_total());
        assert_eq!(sol.true_atoms(), vec!["r"]);
        assert_eq!(sol.undefined_atoms(), vec!["p", "q"]);
    }

    #[test]
    fn parse_errors_surface() {
        assert!(matches!(well_founded("p :- "), Err(Error::Parse(_))));
    }

    #[test]
    fn ground_errors_surface() {
        assert!(matches!(
            well_founded("p(X) :- not q(X). q(a)."),
            Err(Error::Ground(_))
        ));
        // …and the active-domain policy fixes it.
        let sol = well_founded_with(
            "p(X) :- not q(X). q(a). r(b).",
            &GroundOptions {
                safety: SafetyPolicy::ActiveDomain,
                ..Default::default()
            },
            &AfpOptions::default(),
        )
        .unwrap();
        assert_eq!(sol.truth("p", &["b"]), Truth::True);
        assert_eq!(sol.truth("p", &["a"]), Truth::False);
    }

    #[test]
    fn stable_models_facade() {
        let models = stable_models("p :- not q. q :- not p.").unwrap();
        assert_eq!(models.len(), 2);
    }

    #[test]
    fn error_display() {
        let e = well_founded("p :- ").unwrap_err();
        assert!(e.to_string().contains("parse error"));
        assert!(Error::NotLocallyStratified
            .to_string()
            .contains("not locally stratified"));
        assert!(Error::NotAFact("p :- q.".into())
            .to_string()
            .contains("not a ground fact"));
    }

    #[test]
    fn deprecated_wrappers_agree_with_the_engine() {
        let src = "p :- not q. q :- not p. r.";
        let legacy = well_founded(src).unwrap();
        let model = Engine::default().solve(src).unwrap();
        assert_eq!(model.truth("r", &[]), legacy.truth("r", &[]));
        assert_eq!(model.truth("p", &[]), legacy.truth("p", &[]));
        let mut new_true: Vec<String> = model.true_atoms().collect();
        new_true.sort();
        assert_eq!(new_true, legacy.true_atoms());
    }
}
