//! Dependency-free telemetry: counters, gauges, log2-bucket latency
//! histograms, a bounded ring of per-cycle [`PhaseBreakdown`]s, a JSONL
//! trace stream, and the exposition formats behind the `metrics`
//! command.
//!
//! Design constraints, in order:
//!
//! * **~Zero cost when disabled.** [`Telemetry`] is a cloneable handle
//!   over `Option<Arc<…>>`; [`Telemetry::disabled`] is `None`, every
//!   record method starts with an `is_none` branch, and the hot paths
//!   pay that branch and nothing else — no allocation, no clock read.
//! * **Lock-free when enabled.** Counters, gauges, and histogram
//!   buckets are relaxed atomics; the only mutex guards the bounded
//!   ring of recent cycles, touched once per write cycle (never per
//!   request), and the trace buffer, drained by its own writer thread.
//! * **No dependencies.** The workspace is offline: histograms are
//!   fixed 64-bucket log2 arrays (bucket = position of the value's
//!   highest set bit), quantiles report the bucket's upper bound (at
//!   most 2× the true quantile), and both JSON and Prometheus text are
//!   rendered by hand like the rest of the wire tier.
//!
//! The module also hosts the [`StatSet`] trait and `stat_set!` macro
//! behind the registry-driven `stats` frame: each stats struct declares
//! its serialized fields exactly once, with an exhaustive destructuring
//! that turns "added a counter but forgot the wire frame" into a
//! compile error.

use std::collections::VecDeque;
use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread;
use std::time::Instant;

/// Recover a poisoned guard: telemetry must never take the service
/// down, and every protected structure is valid after a panic.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

// ---------------------------------------------------------------------------
// Primitive instruments
// ---------------------------------------------------------------------------

/// A monotonically increasing counter. Relaxed atomics: totals are
/// exact, cross-counter consistency is not promised (nor needed).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Relaxed)
    }
}

/// A last-write-wins gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    pub fn set(&self, v: i64) {
        self.0.store(v, Relaxed);
    }

    pub fn get(&self) -> i64 {
        self.0.load(Relaxed)
    }
}

const BUCKETS: usize = 64;

/// A fixed log2-bucket latency histogram. `record` is wait-free: one
/// bucket increment plus count/sum/max updates, all relaxed. Bucket
/// `i > 0` holds values whose highest set bit is `i - 1`, i.e. the
/// range `[2^(i-1), 2^i)`; quantiles report the bucket's inclusive
/// upper bound, so a reported p99 is at most 2× the true p99 — the
/// honest trade for never allocating and never locking.
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("count", &s.count)
            .field("p50", &s.p50)
            .field("p99", &s.p99)
            .field("max", &s.max)
            .finish()
    }
}

fn bucket_of(v: u64) -> usize {
    (64 - v.leading_zeros() as usize).min(BUCKETS - 1)
}

fn bucket_upper_bound(i: usize) -> u64 {
    match i {
        0 => 0,
        _ if i >= BUCKETS - 1 => u64::MAX,
        _ => (1u64 << i) - 1,
    }
}

impl Histogram {
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(value, Relaxed);
        self.max.fetch_max(value, Relaxed);
    }

    /// A point-in-time copy with quantiles computed from one coherent
    /// bucket scan (count is derived from the copied buckets so the
    /// quantile targets can never overrun them).
    pub fn snapshot(&self) -> HistogramSnapshot {
        let buckets: [u64; BUCKETS] = std::array::from_fn(|i| self.buckets[i].load(Relaxed));
        let count: u64 = buckets.iter().sum();
        HistogramSnapshot {
            count,
            sum: self.sum.load(Relaxed),
            max: self.max.load(Relaxed),
            p50: quantile(&buckets, count, 0.50),
            p90: quantile(&buckets, count, 0.90),
            p99: quantile(&buckets, count, 0.99),
        }
    }
}

fn quantile(buckets: &[u64; BUCKETS], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let target = ((count as f64) * q).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= target {
            return bucket_upper_bound(i);
        }
    }
    bucket_upper_bound(BUCKETS - 1)
}

/// The exported view of a [`Histogram`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub max: u64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    pub fn to_json(&self) -> String {
        let HistogramSnapshot {
            count,
            sum,
            max,
            p50,
            p90,
            p99,
        } = self;
        format!(
            "{{\"count\":{count},\"sum\":{sum},\"max\":{max},\
             \"p50\":{p50},\"p90\":{p90},\"p99\":{p99}}}"
        )
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// Every instrument the engine exports, as plain struct fields: hot
/// paths record through a direct field access (no name lookup), and
/// the exhaustive destructuring in [`MetricsRegistry::parts`] makes it
/// a compile error to add an instrument without exposing it.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    /// Whole write cycle: batch applied to snapshot published.
    pub cycle_total_ns: Histogram,
    /// Grounding the submitted deltas (rule bodies instantiated).
    pub ground_ns: Histogram,
    /// In-place condensation repair after the delta.
    pub repair_ns: Histogram,
    /// Condensation (re)build plus task-graph construction.
    pub condense_ns: Histogram,
    /// Scheduled component evaluation, wall clock.
    pub solve_ns: Histogram,
    /// Journal record appends for the cycle.
    pub journal_append_ns: Histogram,
    /// The pre-publish durability sync.
    pub fsync_ns: Histogram,
    /// Snapshot/version/changelog publication.
    pub publish_ns: Histogram,
    /// Submission enqueue to writer pickup (async tier).
    pub queue_wait_ns: Histogram,
    /// One framed request: read to response written (net tier).
    pub request_ns: Histogram,
    /// Write cycles recorded.
    pub cycles: Counter,
    /// Cycles at or over the `--slow-cycle-ms` threshold.
    pub slow_cycles: Counter,
    /// Scheduler worker time actually evaluating components.
    pub solve_busy_ns: Counter,
    /// Scheduler worker time scanning sibling deques.
    pub solve_steal_ns: Counter,
    /// Scheduler worker time parked waiting for ready tasks.
    pub solve_sleep_ns: Counter,
    /// Trace events discarded because the bounded buffer was full.
    pub trace_dropped: Counter,
    /// Phase breakdowns currently held in the recent-cycle ring.
    pub recent_cycles: Gauge,
    /// Trace events buffered and not yet written.
    pub trace_buffered: Gauge,
}

struct RegistryParts<'a> {
    histograms: Vec<(&'static str, &'a Histogram)>,
    counters: Vec<(&'static str, &'a Counter)>,
    gauges: Vec<(&'static str, &'a Gauge)>,
}

impl MetricsRegistry {
    fn parts(&self) -> RegistryParts<'_> {
        // Exhaustive: a new field fails this pattern until it is
        // routed into one of the three exposition lists.
        let MetricsRegistry {
            cycle_total_ns,
            ground_ns,
            repair_ns,
            condense_ns,
            solve_ns,
            journal_append_ns,
            fsync_ns,
            publish_ns,
            queue_wait_ns,
            request_ns,
            cycles,
            slow_cycles,
            solve_busy_ns,
            solve_steal_ns,
            solve_sleep_ns,
            trace_dropped,
            recent_cycles,
            trace_buffered,
        } = self;
        RegistryParts {
            histograms: vec![
                ("cycle_total_ns", cycle_total_ns),
                ("ground_ns", ground_ns),
                ("repair_ns", repair_ns),
                ("condense_ns", condense_ns),
                ("solve_ns", solve_ns),
                ("journal_append_ns", journal_append_ns),
                ("fsync_ns", fsync_ns),
                ("publish_ns", publish_ns),
                ("queue_wait_ns", queue_wait_ns),
                ("request_ns", request_ns),
            ],
            counters: vec![
                ("cycles", cycles),
                ("slow_cycles", slow_cycles),
                ("solve_busy_ns", solve_busy_ns),
                ("solve_steal_ns", solve_steal_ns),
                ("solve_sleep_ns", solve_sleep_ns),
                ("trace_dropped", trace_dropped),
            ],
            gauges: vec![
                ("recent_cycles", recent_cycles),
                ("trace_buffered", trace_buffered),
            ],
        }
    }
}

// ---------------------------------------------------------------------------
// Phase breakdowns
// ---------------------------------------------------------------------------

/// Per-cycle wall-clock split of one write cycle, nanoseconds. The
/// solve phase additionally carries the scheduler's per-worker time
/// accounting (busy + steal + sleep summed over workers, so they can
/// exceed `solve_ns` on multi-worker runs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PhaseBreakdown {
    /// Version the cycle published.
    pub version: u64,
    /// Deltas applied by the cycle (its coalesced batch width).
    pub width: u64,
    pub total_ns: u64,
    pub ground_ns: u64,
    pub repair_ns: u64,
    pub condense_ns: u64,
    pub solve_ns: u64,
    pub busy_ns: u64,
    pub steal_ns: u64,
    pub sleep_ns: u64,
    pub journal_append_ns: u64,
    pub fsync_ns: u64,
    pub publish_ns: u64,
}

impl PhaseBreakdown {
    pub fn to_json(&self) -> String {
        let PhaseBreakdown {
            version,
            width,
            total_ns,
            ground_ns,
            repair_ns,
            condense_ns,
            solve_ns,
            busy_ns,
            steal_ns,
            sleep_ns,
            journal_append_ns,
            fsync_ns,
            publish_ns,
        } = self;
        format!(
            "{{\"version\":{version},\"width\":{width},\"total_ns\":{total_ns},\
             \"ground_ns\":{ground_ns},\"repair_ns\":{repair_ns},\
             \"condense_ns\":{condense_ns},\"solve_ns\":{solve_ns},\
             \"busy_ns\":{busy_ns},\"steal_ns\":{steal_ns},\"sleep_ns\":{sleep_ns},\
             \"journal_append_ns\":{journal_append_ns},\"fsync_ns\":{fsync_ns},\
             \"publish_ns\":{publish_ns}}}"
        )
    }

    /// The human rendering behind the `--slow-cycle-ms` log line.
    pub fn describe(&self) -> String {
        let us = |ns: u64| ns / 1_000;
        format!(
            "version {} width {} total {}us: ground {}us repair {}us condense {}us \
             solve {}us [busy {}us steal {}us sleep {}us] journal {}us fsync {}us publish {}us",
            self.version,
            self.width,
            us(self.total_ns),
            us(self.ground_ns),
            us(self.repair_ns),
            us(self.condense_ns),
            us(self.solve_ns),
            us(self.busy_ns),
            us(self.steal_ns),
            us(self.sleep_ns),
            us(self.journal_append_ns),
            us(self.fsync_ns),
            us(self.publish_ns),
        )
    }
}

/// Phase time a [`crate::engine::Session`] accumulates between
/// [`crate::engine::Session::take_phases`] calls: grounding and repair
/// at mutation time, condense/solve (plus the scheduler's per-worker
/// split) at solve time. The service drains it once per write cycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionPhases {
    pub ground_ns: u64,
    pub repair_ns: u64,
    pub condense_ns: u64,
    pub solve_ns: u64,
    pub busy_ns: u64,
    pub steal_ns: u64,
    pub sleep_ns: u64,
}

// ---------------------------------------------------------------------------
// Trace stream
// ---------------------------------------------------------------------------

/// Events buffered before the writer thread has drained them; beyond
/// this the hot path drops (and counts) rather than blocks.
const TRACE_BUFFER: usize = 4096;

/// A bounded JSONL trace stream in Chrome trace-event format: the file
/// opens with `[` and every line after it is one complete (`"ph":"X"`)
/// event followed by a comma — a stream `chrome://tracing` and Perfetto
/// load as-is, even mid-write (the closing `]` is optional there).
/// Emission never blocks the recording thread: a full buffer drops the
/// event and the drop is counted.
pub struct TraceSink {
    shared: Arc<TraceShared>,
    handle: Option<thread::JoinHandle<()>>,
}

struct TraceShared {
    queue: Mutex<TraceQueue>,
    cv: Condvar,
}

struct TraceQueue {
    events: VecDeque<String>,
    stop: bool,
}

impl TraceSink {
    /// Create (truncate) `path` and start the writer thread.
    pub fn create(path: &Path) -> io::Result<TraceSink> {
        let mut file = BufWriter::new(File::create(path)?);
        file.write_all(b"[\n")?;
        let shared = Arc::new(TraceShared {
            queue: Mutex::new(TraceQueue {
                events: VecDeque::new(),
                stop: false,
            }),
            cv: Condvar::new(),
        });
        let writer_shared = Arc::clone(&shared);
        let handle = thread::Builder::new()
            .name("afp-trace".into())
            .spawn(move || trace_writer(&writer_shared, file))
            .map_err(|e| io::Error::other(format!("spawn trace writer: {e}")))?;
        Ok(TraceSink {
            shared,
            handle: Some(handle),
        })
    }

    /// Queue one event line; `false` means the buffer was full and the
    /// event was dropped (callers count it, never retry).
    fn try_emit(&self, event: String) -> bool {
        let mut q = lock(&self.shared.queue);
        if q.events.len() >= TRACE_BUFFER {
            return false;
        }
        q.events.push_back(event);
        drop(q);
        self.shared.cv.notify_one();
        true
    }

    fn buffered(&self) -> usize {
        lock(&self.shared.queue).events.len()
    }
}

impl Drop for TraceSink {
    fn drop(&mut self) {
        {
            let mut q = lock(&self.shared.queue);
            q.stop = true;
        }
        self.shared.cv.notify_all();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn trace_writer(shared: &TraceShared, mut file: BufWriter<File>) {
    loop {
        let (batch, stop) = {
            let mut q = lock(&shared.queue);
            while q.events.is_empty() && !q.stop {
                q = shared.cv.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            (q.events.drain(..).collect::<Vec<_>>(), q.stop)
        };
        for ev in &batch {
            let _ = file.write_all(ev.as_bytes());
            let _ = file.write_all(b",\n");
        }
        let _ = file.flush();
        if stop {
            return;
        }
    }
}

/// One Chrome trace-event line (`"ph":"X"` complete event, µs units).
fn trace_event(name: &str, cat: &str, ts_us: u64, dur_us: u64, args: &str) -> String {
    format!(
        "{{\"name\":{name:?},\"cat\":{cat:?},\"ph\":\"X\",\"ts\":{ts_us},\
         \"dur\":{dur_us},\"pid\":1,\"tid\":1,\"args\":{{{args}}}}}"
    )
}

fn cycle_trace_events(b: &PhaseBreakdown, end_us: u64) -> Vec<String> {
    let us = |ns: u64| ns / 1_000;
    let total = us(b.total_ns);
    let start = end_us.saturating_sub(total);
    let mut events = Vec::with_capacity(8);
    events.push(trace_event(
        "cycle",
        "cycle",
        start,
        total,
        &format!("\"version\":{},\"width\":{}", b.version, b.width),
    ));
    // Phases ran sequentially inside the cycle; lay them out in order.
    let args = format!("\"version\":{}", b.version);
    let mut cursor = start;
    for (name, ns) in [
        ("ground", b.ground_ns),
        ("repair", b.repair_ns),
        ("condense", b.condense_ns),
        ("solve", b.solve_ns),
        ("journal_append", b.journal_append_ns),
        ("fsync", b.fsync_ns),
        ("publish", b.publish_ns),
    ] {
        events.push(trace_event(name, "phase", cursor, us(ns), &args));
        cursor += us(ns);
    }
    events
}

// ---------------------------------------------------------------------------
// The telemetry handle
// ---------------------------------------------------------------------------

/// Exposition format for the `metrics` command.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MetricsFormat {
    /// The hand-rolled JSON object the rest of the wire tier speaks.
    #[default]
    Json,
    /// Prometheus text exposition (counters, gauges, and summary-style
    /// quantiles per histogram).
    Prom,
}

impl MetricsFormat {
    pub fn parse(s: &str) -> Option<MetricsFormat> {
        match s {
            "json" => Some(MetricsFormat::Json),
            "prom" | "prometheus" => Some(MetricsFormat::Prom),
            _ => None,
        }
    }

    pub fn as_str(&self) -> &'static str {
        match self {
            MetricsFormat::Json => "json",
            MetricsFormat::Prom => "prom",
        }
    }
}

/// Breakdowns retained in the recent-cycle ring.
const RING: usize = 64;

/// Breakdowns included in the JSON `metrics` rendering (newest last).
const RECENT_SHOWN: usize = 8;

struct TelemetryInner {
    registry: MetricsRegistry,
    ring: Mutex<VecDeque<PhaseBreakdown>>,
    trace: Option<TraceSink>,
    format: MetricsFormat,
    slow_cycle_ms: Option<u64>,
    /// Trace timestamps are µs since this instant.
    epoch: Instant,
}

/// The cloneable recording handle threaded through service, scheduler,
/// writer, and net tiers. [`Telemetry::disabled`] carries no state and
/// makes every record call a single branch.
#[derive(Clone)]
pub struct Telemetry {
    inner: Option<Arc<TelemetryInner>>,
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            None => f.write_str("Telemetry(disabled)"),
            Some(inner) => f
                .debug_struct("Telemetry")
                .field("format", &inner.format)
                .field("trace", &inner.trace.is_some())
                .field("slow_cycle_ms", &inner.slow_cycle_ms)
                .finish(),
        }
    }
}

impl Default for Telemetry {
    fn default() -> Telemetry {
        Telemetry::new()
    }
}

impl Telemetry {
    /// An enabled handle with default options (JSON, no trace stream,
    /// no slow-cycle threshold).
    pub fn new() -> Telemetry {
        Telemetry::configured(MetricsFormat::Json, None, None)
    }

    /// The no-op handle: recording costs one branch, `render` reports
    /// `enabled: false`.
    pub fn disabled() -> Telemetry {
        Telemetry { inner: None }
    }

    /// An enabled handle with explicit exposition format, optional
    /// trace stream, and optional slow-cycle threshold.
    pub fn configured(
        format: MetricsFormat,
        trace: Option<TraceSink>,
        slow_cycle_ms: Option<u64>,
    ) -> Telemetry {
        Telemetry {
            inner: Some(Arc::new(TelemetryInner {
                registry: MetricsRegistry::default(),
                ring: Mutex::new(VecDeque::with_capacity(RING)),
                trace,
                format,
                slow_cycle_ms,
                epoch: Instant::now(),
            })),
        }
    }

    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    pub fn format(&self) -> MetricsFormat {
        self.inner
            .as_ref()
            .map(|i| i.format)
            .unwrap_or(MetricsFormat::Json)
    }

    /// Direct instrument access (tests and benches); `None` when
    /// disabled.
    pub fn registry(&self) -> Option<&MetricsRegistry> {
        self.inner.as_ref().map(|i| &i.registry)
    }

    /// Record one completed write cycle: histograms, worker-time
    /// counters, the recent ring, the trace stream, and the slow-cycle
    /// log line.
    pub fn record_cycle(&self, b: &PhaseBreakdown) {
        let Some(inner) = &self.inner else { return };
        let r = &inner.registry;
        r.cycles.add(1);
        r.cycle_total_ns.record(b.total_ns);
        r.ground_ns.record(b.ground_ns);
        r.repair_ns.record(b.repair_ns);
        r.condense_ns.record(b.condense_ns);
        r.solve_ns.record(b.solve_ns);
        r.journal_append_ns.record(b.journal_append_ns);
        r.fsync_ns.record(b.fsync_ns);
        r.publish_ns.record(b.publish_ns);
        r.solve_busy_ns.add(b.busy_ns);
        r.solve_steal_ns.add(b.steal_ns);
        r.solve_sleep_ns.add(b.sleep_ns);
        {
            let mut ring = lock(&inner.ring);
            if ring.len() == RING {
                ring.pop_front();
            }
            ring.push_back(*b);
            r.recent_cycles.set(ring.len() as i64);
        }
        if let Some(trace) = &inner.trace {
            let end_us = inner.epoch.elapsed().as_micros() as u64;
            for ev in cycle_trace_events(b, end_us) {
                if !trace.try_emit(ev) {
                    r.trace_dropped.add(1);
                }
            }
            r.trace_buffered.set(trace.buffered() as i64);
        }
        if let Some(ms) = inner.slow_cycle_ms {
            if b.total_ns >= ms.saturating_mul(1_000_000) {
                r.slow_cycles.add(1);
                eprintln!("slow cycle: {}", b.describe());
            }
        }
    }

    /// Async-tier submission latency: enqueue to writer pickup.
    pub fn record_queue_wait(&self, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.queue_wait_ns.record(ns);
        }
    }

    /// Net-tier request latency: frame read to response written.
    pub fn record_request(&self, ns: u64) {
        if let Some(inner) = &self.inner {
            inner.registry.request_ns.record(ns);
        }
    }

    /// The retained recent breakdowns, oldest first.
    pub fn recent_cycles(&self) -> Vec<PhaseBreakdown> {
        match &self.inner {
            None => Vec::new(),
            Some(inner) => lock(&inner.ring).iter().copied().collect(),
        }
    }

    /// The `metrics` frame body in the handle's configured format —
    /// the same bytes over stdin, TCP, and unix transports.
    pub fn render(&self) -> String {
        let Some(inner) = &self.inner else {
            return match self.format() {
                MetricsFormat::Json => "{\"telemetry\":{\"enabled\":false}}".into(),
                MetricsFormat::Prom => "# telemetry disabled\n".into(),
            };
        };
        match inner.format {
            MetricsFormat::Json => render_json(inner),
            MetricsFormat::Prom => render_prom(inner),
        }
    }
}

fn render_json(inner: &TelemetryInner) -> String {
    let parts = inner.registry.parts();
    let counters: Vec<String> = parts
        .counters
        .iter()
        .map(|(k, c)| format!("{k:?}:{}", c.get()))
        .collect();
    let gauges: Vec<String> = parts
        .gauges
        .iter()
        .map(|(k, g)| format!("{k:?}:{}", g.get()))
        .collect();
    let hists: Vec<String> = parts
        .histograms
        .iter()
        .map(|(k, h)| format!("{k:?}:{}", h.snapshot().to_json()))
        .collect();
    let ring = lock(&inner.ring);
    let skip = ring.len().saturating_sub(RECENT_SHOWN);
    let recent: Vec<String> = ring.iter().skip(skip).map(|b| b.to_json()).collect();
    drop(ring);
    format!(
        "{{\"telemetry\":{{\"enabled\":true,\"format\":{:?},\
         \"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}},\
         \"recent_cycles\":[{}]}}}}",
        inner.format.as_str(),
        counters.join(","),
        gauges.join(","),
        hists.join(","),
        recent.join(","),
    )
}

fn render_prom(inner: &TelemetryInner) -> String {
    let parts = inner.registry.parts();
    let mut out = String::new();
    for (k, c) in &parts.counters {
        out.push_str(&format!("# TYPE afp_{k}_total counter\n"));
        out.push_str(&format!("afp_{k}_total {}\n", c.get()));
    }
    for (k, g) in &parts.gauges {
        out.push_str(&format!("# TYPE afp_{k} gauge\n"));
        out.push_str(&format!("afp_{k} {}\n", g.get()));
    }
    for (k, h) in &parts.histograms {
        let s = h.snapshot();
        out.push_str(&format!("# TYPE afp_{k} summary\n"));
        out.push_str(&format!("afp_{k}{{quantile=\"0.5\"}} {}\n", s.p50));
        out.push_str(&format!("afp_{k}{{quantile=\"0.9\"}} {}\n", s.p90));
        out.push_str(&format!("afp_{k}{{quantile=\"0.99\"}} {}\n", s.p99));
        out.push_str(&format!("afp_{k}_sum {}\n", s.sum));
        out.push_str(&format!("afp_{k}_count {}\n", s.count));
        out.push_str(&format!("# TYPE afp_{k}_max gauge\n"));
        out.push_str(&format!("afp_{k}_max {}\n", s.max));
    }
    out
}

// ---------------------------------------------------------------------------
// Registry-driven stats serialization
// ---------------------------------------------------------------------------

/// A stats struct whose counters are serialized generically: every
/// field in declaration order, as `(json_key, value)`. Implement via
/// `stat_set!`, whose exhaustive destructuring makes a field added to
/// the struct but missing from the wire frame a compile error.
pub trait StatSet {
    fn stat_fields(&self) -> Vec<(&'static str, u64)>;
}

/// Render a [`StatSet`] as a JSON object, keys in declaration order.
pub fn stat_object(stats: &dyn StatSet) -> String {
    let body: Vec<String> = stats
        .stat_fields()
        .iter()
        .map(|(k, v)| format!("{k:?}:{v}"))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Implement [`StatSet`] for a struct by listing every field once, in
/// the order the wire frame should carry them. The `let Self {{ … }}`
/// pattern has no `..`, so the impl stops compiling the moment a field
/// is added to the struct without being listed here.
macro_rules! stat_set {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::telemetry::StatSet for $ty {
            fn stat_fields(&self) -> Vec<(&'static str, u64)> {
                let Self { $($field),+ } = self;
                vec![$((stringify!($field), *$field as u64)),+]
            }
        }
    };
}
pub(crate) use stat_set;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = Histogram::default();
        for v in [0u64, 1, 2, 3, 1000, 1000, 1000, 1_000_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 1_003_006);
        assert_eq!(s.max, 1_000_000);
        // p50 target = ceil(8 × 0.5) = the 4th smallest value (3, the
        // lower median), whose bucket [2, 4) reports upper bound 3.
        assert_eq!(s.p50, 3);
        // p90 = the 8th smallest = the 1e6, so it matches p99 below.
        // p99 = the top value's bucket upper bound, within 2× of 1e6.
        assert!(s.p99 >= 1_000_000 && s.p99 < 2_097_152, "p99 = {}", s.p99);
        assert!(s.p50 <= s.p90 && s.p90 <= s.p99, "quantiles are monotone");
    }

    #[test]
    fn histogram_extremes() {
        let h = Histogram::default();
        h.record(0);
        assert_eq!(h.snapshot().p99, 0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p99, u64::MAX);
    }

    #[test]
    fn disabled_handle_is_inert() {
        let t = Telemetry::disabled();
        assert!(!t.enabled());
        t.record_cycle(&PhaseBreakdown::default());
        t.record_queue_wait(5);
        t.record_request(5);
        assert!(t.recent_cycles().is_empty());
        assert_eq!(t.render(), "{\"telemetry\":{\"enabled\":false}}");
    }

    #[test]
    fn ring_is_bounded_and_ordered() {
        let t = Telemetry::new();
        for v in 0..(RING as u64 + 10) {
            t.record_cycle(&PhaseBreakdown {
                version: v,
                total_ns: 1_000,
                ..PhaseBreakdown::default()
            });
        }
        let recent = t.recent_cycles();
        assert_eq!(recent.len(), RING);
        assert_eq!(recent.first().unwrap().version, 10);
        assert_eq!(recent.last().unwrap().version, RING as u64 + 9);
        let r = t.registry().unwrap();
        assert_eq!(r.cycles.get(), RING as u64 + 10);
        assert_eq!(r.recent_cycles.get(), RING as i64);
    }

    #[test]
    fn json_render_has_every_section() {
        let t = Telemetry::new();
        t.record_cycle(&PhaseBreakdown {
            version: 1,
            width: 2,
            total_ns: 10_000,
            solve_ns: 7_000,
            ..PhaseBreakdown::default()
        });
        let body = t.render();
        for key in [
            "\"enabled\":true",
            "\"counters\":{",
            "\"gauges\":{",
            "\"histograms\":{",
            "\"cycle_total_ns\":{",
            "\"solve_ns\":{",
            "\"p50\":",
            "\"p99\":",
            "\"recent_cycles\":[",
            "\"version\":1",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
    }

    #[test]
    fn prom_render_is_typed_text() {
        let t = Telemetry::configured(MetricsFormat::Prom, None, None);
        t.record_cycle(&PhaseBreakdown {
            total_ns: 2_000,
            ..PhaseBreakdown::default()
        });
        let body = t.render();
        assert!(body.contains("# TYPE afp_cycles_total counter"));
        assert!(body.contains("afp_cycles_total 1"));
        assert!(body.contains("# TYPE afp_cycle_total_ns summary"));
        assert!(body.contains("afp_cycle_total_ns{quantile=\"0.99\"}"));
        assert!(body.contains("afp_cycle_total_ns_count 1"));
    }

    #[test]
    fn trace_sink_streams_and_bounds() {
        let path = std::env::temp_dir().join(format!(
            "afp-telemetry-trace-{}-{:?}.json",
            std::process::id(),
            thread::current().id()
        ));
        let trace = TraceSink::create(&path).expect("create trace");
        let t = Telemetry::configured(MetricsFormat::Json, Some(trace), None);
        for v in 0..5u64 {
            t.record_cycle(&PhaseBreakdown {
                version: v,
                total_ns: 3_000,
                solve_ns: 2_000,
                ..PhaseBreakdown::default()
            });
        }
        drop(t); // joins the writer thread, flushing everything
        let body = std::fs::read_to_string(&path).expect("read trace");
        let _ = std::fs::remove_file(&path);
        assert!(body.starts_with("[\n"));
        assert!(body.contains("\"name\":\"cycle\""));
        assert!(body.contains("\"name\":\"solve\""));
        assert!(body.contains("\"ph\":\"X\""));
        // 5 cycles × (1 cycle event + 7 phase events), one per line.
        let events = body.lines().filter(|l| l.starts_with('{')).count();
        assert_eq!(events, 40);
    }

    #[test]
    fn slow_cycle_threshold_counts() {
        let t = Telemetry::configured(MetricsFormat::Json, None, Some(1));
        t.record_cycle(&PhaseBreakdown {
            total_ns: 500_000, // 0.5ms: under threshold
            ..PhaseBreakdown::default()
        });
        t.record_cycle(&PhaseBreakdown {
            total_ns: 2_000_000, // 2ms: over
            ..PhaseBreakdown::default()
        });
        assert_eq!(t.registry().unwrap().slow_cycles.get(), 1);
    }

    #[test]
    fn stat_set_serializes_in_declaration_order() {
        struct Demo {
            alpha: u64,
            beta: usize,
        }
        stat_set!(Demo { alpha, beta });
        let d = Demo { alpha: 7, beta: 9 };
        assert_eq!(super::stat_object(&d), "{\"alpha\":7,\"beta\":9}");
    }
}
