//! Concurrent model serving: one writer, any number of lock-free readers.
//!
//! The economics of the well-founded semantics invert the usual
//! read/write balance: computing the model is the expensive step
//! (quadratic in general — Lonc & Truszczyński), while *reading* it is a
//! bitset probe. A serving deployment therefore wants the
//! compile-once/query-many regime: pay the alternating fixpoint once per
//! **program version**, then answer arbitrarily many queries from
//! immutable, cheaply shared snapshots of that version.
//!
//! [`Service`] packages that regime around the engine's existing seams:
//!
//! * the single **writer** is the owned [`Session`] — all of PR 2/3's
//!   warm machinery (batched envelope deltas, per-SCC memoized re-solves)
//!   applies to every published version;
//! * each published version is a [`ModelSnapshot`]: an epoch-stamped
//!   `Arc<Model>` over the session's copy-on-write `GroundProgram`
//!   snapshot. **Reads take no lock**: pinning the current version is one
//!   `RwLock` read acquisition to bump an `Arc`, and every query against
//!   a pinned snapshot thereafter is plain shared-memory access to
//!   immutable data — truth probes, iteration, even whole
//!   relevance-restricted subqueries ([`ModelSnapshot::subquery`]) run on
//!   reader threads without touching the writer;
//! * concurrent delta submissions **coalesce**: while one write cycle is
//!   in flight, every delta submitted behind it queues up and is applied
//!   as a single batched warm update in the next cycle (adjacent
//!   same-kind deltas merge into one batch call, i.e. one envelope-delta
//!   round, riding `assert_batch`/`assert_rules`). Under write
//!   contention the solve cost is paid per *cycle*, not per submission —
//!   [`ServiceStats::write_cycles`] vs [`ServiceStats::submissions`]
//!   shows the ratio;
//! * a small version-keyed cache ([`Service::at_version`]) serves repeat
//!   requests for recent versions as pointer copies, and a bounded
//!   changelog ([`Service::changelog`]) records which deltas produced
//!   which version — the audit trail the differential tests replay.
//!
//! ## Consistency model
//!
//! Writes are serialized (single writer session) and versions are
//! published atomically in submission order: a snapshot of version `v`
//! is exactly the cold model of the base program plus every successful
//! delta with version `≤ v` — bit-identical, which is what
//! `tests/service.rs` checks under thread interleavings. Readers are
//! wait-free with respect to the writer once pinned; they never observe
//! a half-applied batch, because a version is published only after its
//! whole cycle solved. A delta that fails to **apply** (parse error,
//! unsafe rule, grounding budget) is reported to its own submitter and
//! leaves the published chain untouched — a failed merged run is retried
//! delta by delta, so one bad submission never takes down its
//! cycle-mates, and the session's own fallback/recovery machinery keeps
//! the writer state consistent. A delta that applies but whose cycle's
//! **solve** fails (e.g. [`crate::Semantics::Perfect`] on a program the
//! delta made non-stratified) is reported as failed too, but it *is* in
//! the writer: the next version that does solve includes it, and the
//! changelog attributes it to that version, keeping reconstruction
//! exact.
//!
//! ```
//! use afp::{Engine, Truth};
//!
//! let service = Engine::default()
//!     .serve("wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).")
//!     .unwrap();
//! let pinned = service.snapshot(); // version 0, immutable
//! assert_eq!(pinned.truth("wins", &["b"]), Truth::True);
//!
//! // Writer publishes version 1; the pinned snapshot is unaffected.
//! let v = service.assert_facts("move(c, d).").unwrap();
//! assert_eq!(v, 1);
//! assert_eq!(service.snapshot().truth("wins", &["c"]), Truth::True);
//! assert_eq!(pinned.truth("wins", &["c"]), Truth::False); // still version 0
//! ```

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError, RwLock};
use std::time::Instant;

use crate::engine::restricted_wfs_model;
use crate::journal::{self, CrashPoint, Journal, JournalOptions, JournalStats};
use crate::telemetry::{stat_set, PhaseBreakdown, Telemetry};
use crate::{Engine, Error, Model, Session, SessionStats, Truth};

/// Lock a mutex, recovering the data on poison: the service's shared
/// state is kept consistent by construction (publishing happens after a
/// cycle completes), so a reader or writer that panicked mid-cycle must
/// not wedge every other thread.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What kind of program delta a submission carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeltaKind {
    /// Ground facts to add ([`Session::assert_facts`]).
    AssertFacts,
    /// Ground facts to remove ([`Session::retract_facts`]).
    RetractFacts,
    /// Rules (facts allowed) to add ([`Session::assert_rules`]).
    AssertRules,
    /// Rules to remove ([`Session::retract_rules`]).
    RetractRules,
}

impl DeltaKind {
    /// Kebab-case name, as the CLI serve protocol spells it.
    pub fn name(&self) -> &'static str {
        match self {
            DeltaKind::AssertFacts => "assert-facts",
            DeltaKind::RetractFacts => "retract-facts",
            DeltaKind::AssertRules => "assert-rules",
            DeltaKind::RetractRules => "retract-rules",
        }
    }
}

/// A delta that made it into a published version — one entry of
/// [`Service::changelog`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppliedDelta {
    /// The version whose snapshot first includes this delta.
    pub version: u64,
    /// What was applied.
    pub kind: DeltaKind,
    /// The submitted program text.
    pub text: String,
}

/// Tuning knobs for a [`Service`].
#[derive(Debug, Clone, Copy)]
/// There is deliberately no solver-thread knob here: the scheduler
/// belongs to the engine ([`crate::EngineBuilder::threads`]) and reaches
/// serve mode through the [`Session`] the service wraps, so every write
/// cycle's warm re-solve runs the engine's configured wavefront pool.
pub struct ServiceOptions {
    /// How many recent versions [`Service::at_version`] retains. Older
    /// versions fall out of the cache (their pinned snapshots stay valid
    /// — eviction only drops the service's own reference).
    pub cache_capacity: usize,
    /// How many [`AppliedDelta`]s the changelog retains.
    pub changelog_capacity: usize,
}

impl Default for ServiceOptions {
    fn default() -> Self {
        ServiceOptions {
            cache_capacity: 8,
            changelog_capacity: 1024,
        }
    }
}

/// Cumulative counters for a [`Service`]; snapshot them with
/// [`Service::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceStats {
    /// Latest published version.
    pub version: u64,
    /// Deltas submitted (successful or not).
    pub submissions: u64,
    /// Write cycles run — batched warm update + solve + publish. Under
    /// write contention this stays below `submissions`: queued deltas
    /// share a cycle.
    pub write_cycles: u64,
    /// Submissions that shared their write cycle with at least one other
    /// submission (the coalescing win; `0` under purely sequential
    /// writers).
    pub coalesced: u64,
    /// Submissions whose delta failed (parse/safety/grounding error); the
    /// published chain skips them.
    pub rejected: u64,
    /// Snapshots pinned through [`Service::snapshot`].
    pub pins: u64,
    /// [`Service::at_version`] hits served from the version cache.
    pub cache_hits: u64,
    /// [`Service::at_version`] requests for versions outside the cache.
    pub cache_misses: u64,
    /// Changelog entries dropped by bounded retention
    /// ([`ServiceOptions::changelog_capacity`]). Non-zero means full
    /// history reconstruction is no longer possible and
    /// [`Service::changelog`] returns [`Error::VersionEvicted`].
    pub changelog_evicted: u64,
    /// Submissions in the most recent write cycle (the coalesce width:
    /// `1` for a lone writer, larger under contention).
    pub last_cycle_width: u64,
    /// Largest write-cycle batch so far.
    pub max_cycle_width: u64,
}

stat_set!(ServiceStats {
    version,
    submissions,
    write_cycles,
    coalesced,
    rejected,
    pins,
    cache_hits,
    cache_misses,
    changelog_evicted,
    last_cycle_width,
    max_cycle_width,
});

/// A pinned, immutable view of one published program version. Cloning is
/// two pointer copies; all queries are lock-free reads of shared
/// immutable data, safe from any number of threads.
#[derive(Clone)]
pub struct ModelSnapshot {
    version: u64,
    model: Arc<Model>,
}

impl ModelSnapshot {
    /// The version this snapshot pins (0 = the initially loaded program;
    /// each published write cycle increments it).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The full three-valued model of this version.
    pub fn model(&self) -> &Model {
        &self.model
    }

    /// Three-valued truth of `pred(args…)` in this version — the hot
    /// read path; a hash probe plus a bitset test.
    pub fn truth(&self, pred: &str, args: &[&str]) -> Truth {
        self.model.truth(pred, args)
    }

    /// Solve a **relevance-restricted subquery** against this pinned
    /// version: the well-founded model of the dependency cone of
    /// `queries` (ground atoms as text, e.g. `"wins(a)"`), computed
    /// entirely on the calling thread over the snapshot's immutable
    /// ground program — no writer involvement, no lock. Atoms outside
    /// the cone report `False`; only query truth values within the cone
    /// are meaningful. Useful when a reader wants fresh bounded-effort
    /// reasoning (e.g. explanation extraction over a cone) without
    /// waiting for, or disturbing, the writer.
    pub fn subquery<I, S>(&self, queries: I) -> Result<Model, Error>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let queries: Vec<String> = queries.into_iter().map(Into::into).collect();
        restricted_wfs_model(self.model.ground(), &queries)
    }
}

impl std::fmt::Debug for ModelSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelSnapshot")
            .field("version", &self.version)
            .field("model", &self.model)
            .finish()
    }
}

/// One queued submission: the delta plus the slot its submitter blocks
/// on until the cycle that applies it publishes (or fails). The net
/// tier's dedicated writer thread ([`crate::net::AsyncService`]) builds
/// these too and feeds them through [`Service::run_cycle`].
pub(crate) struct Pending {
    pub(crate) kind: DeltaKind,
    pub(crate) text: String,
    pub(crate) slot: Arc<Slot>,
}

impl Pending {
    pub(crate) fn new(kind: DeltaKind, text: String, slot: Arc<Slot>) -> Pending {
        Pending { kind, text, slot }
    }
}

impl Drop for Pending {
    /// Panic safety: a `Pending` dropped before its slot was filled means
    /// the leader unwound mid-cycle (a bug in a delta path, surfaced as a
    /// panic). Fail the submission instead of leaving its submitter
    /// blocked on the condvar forever.
    fn drop(&mut self) {
        let mut guard = lock(&self.slot.result);
        if guard.is_none() {
            *guard = Some(Err(Error::WriterAborted));
            self.slot.ready.notify_all();
        }
    }
}

/// Completion slot for one submission.
#[derive(Default)]
pub(crate) struct Slot {
    result: Mutex<Option<Result<u64, Error>>>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn fill(&self, outcome: Result<u64, Error>) {
        *lock(&self.result) = Some(outcome);
        self.ready.notify_all();
    }

    pub(crate) fn wait(&self) -> Result<u64, Error> {
        let mut guard = lock(&self.result);
        loop {
            if let Some(outcome) = guard.as_ref() {
                return outcome.clone();
            }
            guard = self
                .ready
                .wait(guard)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Non-blocking poll: `None` while the cycle is still pending.
    pub(crate) fn try_get(&self) -> Option<Result<u64, Error>> {
        lock(&self.result).clone()
    }

    /// Wait at most `timeout` for the terminal result. `None` on
    /// timeout — the submission stays queued and may still complete.
    pub(crate) fn wait_timeout(&self, timeout: std::time::Duration) -> Option<Result<u64, Error>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut guard = lock(&self.result);
        loop {
            if let Some(outcome) = guard.as_ref() {
                return Some(outcome.clone());
            }
            let now = std::time::Instant::now();
            if now >= deadline {
                return None;
            }
            let (g, _) = self
                .ready
                .wait_timeout(guard, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            guard = g;
        }
    }
}

/// The submission queue and the leader flag: the first submitter to find
/// `writer_active == false` becomes the cycle leader and drains the
/// queue (its own delta included) until empty; everyone else just
/// enqueues and waits on their slot.
#[derive(Default)]
struct WriteQueue {
    pending: Vec<Pending>,
    writer_active: bool,
}

/// The writer session plus the deltas applied to it that no published
/// version carries yet. Normally `unpublished` drains into the changelog
/// at the very next publish; it stays non-empty only across cycles whose
/// *solve* failed (e.g. `Semantics::Perfect` on a program a delta made
/// non-stratified) — those deltas are in the session, so the next version
/// that does solve must attribute them.
struct Writer {
    session: Session,
    unpublished: Vec<(DeltaKind, String)>,
    /// Durability, when enabled ([`Service::with_journal`] /
    /// [`Service::recover`]): the write-ahead log every cycle appends to
    /// before publishing. Living under the writer lock serializes
    /// appends with the cycles they record for free.
    journal: Option<Journal>,
}

struct Shared {
    queue: Mutex<WriteQueue>,
    /// The single writer. Held only by the cycle leader, and never while
    /// `queue` is locked (submitters must be able to enqueue during a
    /// running cycle — that is what coalescing is).
    writer: Mutex<Writer>,
    /// The published head. Readers take the read side for one `Arc`
    /// bump; only a publishing cycle takes the write side, briefly.
    head: RwLock<ModelSnapshot>,
    /// Mirror of `head.version` readable without any lock.
    version: AtomicU64,
    cache: Mutex<VecDeque<ModelSnapshot>>,
    changelog: Mutex<VecDeque<AppliedDelta>>,
    /// The highest version any *evicted* changelog entry carried (0 =
    /// nothing evicted yet). Deltas with version ≤ this horizon are no
    /// longer fully recorded, so reconstruction from the base program is
    /// only exact for reads anchored at a version ≥ the horizon.
    log_horizon: AtomicU64,
    /// Fault-injection seam: the next matching crash point panics the
    /// write cycle that reaches it (see
    /// [`Service::inject_crash_for_testing`]). Always `None` outside the
    /// crash-recovery test suite.
    crash_seam: Mutex<Option<CrashPoint>>,
    options: ServiceOptions,
    submissions: AtomicU64,
    write_cycles: AtomicU64,
    coalesced: AtomicU64,
    rejected: AtomicU64,
    pins: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    changelog_evicted: AtomicU64,
    last_cycle_width: AtomicU64,
    max_cycle_width: AtomicU64,
    /// Phase-timing sink for write cycles. Enabled (but unconfigured —
    /// no trace file, no slow-cycle threshold) by default so `metrics`
    /// works out of the box; [`Service::set_telemetry`] swaps in a
    /// configured or disabled handle. The mutex guards only the handle
    /// swap — cycles clone the handle out and record through atomics.
    telemetry: Mutex<Telemetry>,
    /// Construction instant, for `ping`'s `uptime_ms`.
    started: Instant,
}

/// A concurrent serving layer over one writer [`Session`]. Cheap to
/// clone (shared handle); clones refer to the same service. See the
/// module docs for the full model.
#[derive(Clone)]
pub struct Service {
    shared: Arc<Shared>,
}

impl Service {
    /// Wrap a loaded session, solve it once, and publish version 0.
    pub fn new(session: Session) -> Result<Service, Error> {
        Service::with_options(session, ServiceOptions::default())
    }

    /// [`Service::new`] with explicit cache/changelog bounds.
    pub fn with_options(session: Session, options: ServiceOptions) -> Result<Service, Error> {
        Service::build(session, options, None, 0, Vec::new(), 0)
    }

    /// [`Service::with_options`] plus durability: create a fresh journal
    /// in `dir` (checkpoint-0 from the session's retained source, an
    /// empty write-ahead log) and append every subsequent write cycle's
    /// deltas to it **before** they publish. Refuses a directory that
    /// already holds journal state — [`Service::recover`] from it
    /// instead — and a session without retained source text
    /// ([`Engine::load_ground`]), whose checkpoints could not be
    /// serialized. See [`crate::journal`] for the format and crash
    /// semantics, [`JournalOptions`] for the fsync/checkpoint knobs.
    pub fn with_journal(
        session: Session,
        options: ServiceOptions,
        dir: impl AsRef<std::path::Path>,
        journal_options: JournalOptions,
    ) -> Result<Service, Error> {
        let base = session.source_text().ok_or_else(|| {
            Error::Journal(
                "session keeps no source text (loaded from a pre-ground program), \
                 so checkpoints cannot be serialized; journaling needs a text- or \
                 AST-loaded session"
                    .into(),
            )
        })?;
        let journal = Journal::create(dir, journal_options, &base)?;
        Service::build(session, options, Some(journal), 0, Vec::new(), 0)
    }

    /// Bring a journaled service back after a crash: load the newest
    /// valid checkpoint, replay the journal tail **through the normal
    /// warm-update path** (the same [`Session`] delta entry points live
    /// writes use), and publish the recovered head — whose version
    /// continues exactly where the durable history ends. A torn tail
    /// (crash mid-append) is truncated; mid-journal corruption is a loud
    /// [`Error::JournalCorrupt`]. The changelog is seeded from the
    /// replayed records and its horizon from the checkpoint version, so
    /// reads anchored below the checkpoint get [`Error::VersionEvicted`]
    /// rather than a silently gapped replay; intermediate versions'
    /// snapshots are not recomputed ([`Service::at_version`] serves only
    /// the recovered head until new writes refill the cache).
    pub fn recover(
        engine: &Engine,
        dir: impl AsRef<std::path::Path>,
        options: ServiceOptions,
        journal_options: JournalOptions,
    ) -> Result<Service, Error> {
        let recovered = journal::recover(dir, journal_options)?;
        let mut session = engine.load(&recovered.checkpoint_text)?;
        let mut entries = Vec::with_capacity(recovered.records.len());
        for record in &recovered.records {
            apply_delta(&mut session, record.kind, &record.text).map_err(|e| {
                Error::Journal(format!(
                    "replaying journal record for version {}: {e}",
                    record.version
                ))
            })?;
            entries.push(AppliedDelta {
                version: record.version,
                kind: record.kind,
                text: record.text.clone(),
            });
        }
        let head_version = recovered
            .records
            .last()
            .map_or(recovered.checkpoint_version, |r| r.version);
        Service::build(
            session,
            options,
            Some(recovered.journal),
            head_version,
            entries,
            recovered.checkpoint_version,
        )
    }

    /// Shared tail of every constructor: solve the (possibly replayed)
    /// session once, publish `head_version`, and seed the changelog with
    /// the already-durable `entries` (recovery) under the usual bounded
    /// retention.
    fn build(
        mut session: Session,
        options: ServiceOptions,
        journal: Option<Journal>,
        head_version: u64,
        entries: Vec<AppliedDelta>,
        horizon: u64,
    ) -> Result<Service, Error> {
        let model = session.solve()?;
        let head = ModelSnapshot {
            version: head_version,
            model: Arc::new(model),
        };
        let mut cache = VecDeque::with_capacity(options.cache_capacity.min(64));
        if options.cache_capacity > 0 {
            cache.push_back(head.clone());
        }
        let mut changelog: VecDeque<AppliedDelta> = entries.into();
        let mut horizon = horizon;
        let mut evicted = 0u64;
        while changelog.len() > options.changelog_capacity {
            if let Some(entry) = changelog.pop_front() {
                horizon = horizon.max(entry.version);
                evicted += 1;
            }
        }
        Ok(Service {
            shared: Arc::new(Shared {
                queue: Mutex::new(WriteQueue::default()),
                writer: Mutex::new(Writer {
                    session,
                    unpublished: Vec::new(),
                    journal,
                }),
                head: RwLock::new(head),
                version: AtomicU64::new(head_version),
                cache: Mutex::new(cache),
                changelog: Mutex::new(changelog),
                log_horizon: AtomicU64::new(horizon),
                crash_seam: Mutex::new(None),
                options,
                submissions: AtomicU64::new(0),
                write_cycles: AtomicU64::new(0),
                coalesced: AtomicU64::new(0),
                rejected: AtomicU64::new(0),
                pins: AtomicU64::new(0),
                cache_hits: AtomicU64::new(0),
                cache_misses: AtomicU64::new(0),
                changelog_evicted: AtomicU64::new(evicted),
                last_cycle_width: AtomicU64::new(0),
                max_cycle_width: AtomicU64::new(0),
                telemetry: Mutex::new(Telemetry::new()),
                started: Instant::now(),
            }),
        })
    }

    // ------------------------------------------------------------------
    // Read path
    // ------------------------------------------------------------------

    /// Pin the current version. One `RwLock` read acquisition; every
    /// query against the returned snapshot is lock-free.
    pub fn snapshot(&self) -> ModelSnapshot {
        self.shared.pins.fetch_add(1, Ordering::Relaxed);
        self.shared
            .head
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// The latest published version, without pinning anything.
    pub fn version(&self) -> u64 {
        self.shared.version.load(Ordering::Acquire)
    }

    /// Pin a specific recent version from the version cache — pointer
    /// copies for anything still cached ("repeat versions for free"),
    /// [`Error::VersionEvicted`] once bounded retention has dropped it
    /// (or for a version that was never published). Retention is
    /// bounded by [`ServiceOptions::cache_capacity`] so sustained
    /// writes cannot grow memory without limit.
    pub fn at_version(&self, version: u64) -> Result<ModelSnapshot, Error> {
        let cache = lock(&self.shared.cache);
        match cache.iter().find(|s| s.version == version) {
            Some(snapshot) => {
                self.shared.cache_hits.fetch_add(1, Ordering::Relaxed);
                Ok(snapshot.clone())
            }
            None => {
                self.shared.cache_misses.fetch_add(1, Ordering::Relaxed);
                Err(Error::VersionEvicted {
                    requested: version,
                    retained_from: cache.front().map_or(0, |s| s.version),
                    retained_to: cache.back().map_or(0, |s| s.version),
                })
            }
        }
    }

    /// The deltas behind each published version, oldest first. Version
    /// `v`'s snapshot is the base program plus every entry with
    /// `version <= v`. Returns [`Error::VersionEvicted`] once bounded
    /// retention ([`ServiceOptions::changelog_capacity`]) has dropped
    /// any entry — full-history reconstruction would silently be wrong;
    /// use [`Service::changelog_since`] with a recent anchor instead.
    pub fn changelog(&self) -> Result<Vec<AppliedDelta>, Error> {
        self.changelog_since(0)
    }

    /// The deltas that take snapshot `since` to the current head: every
    /// applied delta with `version > since`, oldest first. Returns
    /// [`Error::VersionEvicted`] if any such entry has been dropped by
    /// bounded retention (i.e. `since` predates the horizon), so a
    /// caller can never silently reconstruct from a gapped log.
    pub fn changelog_since(&self, since: u64) -> Result<Vec<AppliedDelta>, Error> {
        let log = lock(&self.shared.changelog);
        let horizon = self.shared.log_horizon.load(Ordering::Acquire);
        if since < horizon {
            return Err(Error::VersionEvicted {
                requested: since,
                retained_from: horizon,
                retained_to: self.shared.version.load(Ordering::Acquire),
            });
        }
        Ok(log.iter().filter(|e| e.version > since).cloned().collect())
    }

    /// Cumulative service counters.
    pub fn stats(&self) -> ServiceStats {
        let s = &self.shared;
        ServiceStats {
            version: s.version.load(Ordering::Acquire),
            submissions: s.submissions.load(Ordering::Relaxed),
            write_cycles: s.write_cycles.load(Ordering::Relaxed),
            coalesced: s.coalesced.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            pins: s.pins.load(Ordering::Relaxed),
            cache_hits: s.cache_hits.load(Ordering::Relaxed),
            cache_misses: s.cache_misses.load(Ordering::Relaxed),
            changelog_evicted: s.changelog_evicted.load(Ordering::Relaxed),
            last_cycle_width: s.last_cycle_width.load(Ordering::Relaxed),
            max_cycle_width: s.max_cycle_width.load(Ordering::Relaxed),
        }
    }

    /// The writer session's own reuse counters (briefly locks the
    /// writer; don't call on a hot read path).
    pub fn session_stats(&self) -> SessionStats {
        *lock(&self.shared.writer).session.stats()
    }

    /// Install a telemetry handle — a configured one (trace stream,
    /// Prometheus format, slow-cycle threshold) or
    /// [`Telemetry::disabled`] to make every recording call a no-op.
    /// Cycles already in flight finish recording into the handle they
    /// cloned at cycle start.
    pub fn set_telemetry(&self, telemetry: Telemetry) {
        *lock(&self.shared.telemetry) = telemetry;
    }

    /// A clone of the current telemetry handle (shares the same
    /// registry, ring and trace sink).
    pub fn telemetry(&self) -> Telemetry {
        lock(&self.shared.telemetry).clone()
    }

    /// Milliseconds since this service was constructed.
    pub fn uptime_ms(&self) -> u64 {
        self.shared.started.elapsed().as_millis() as u64
    }

    // ------------------------------------------------------------------
    // Write path
    // ------------------------------------------------------------------

    /// Assert ground facts; blocks until the write cycle that includes
    /// them publishes, and returns that version.
    pub fn assert_facts(&self, facts: &str) -> Result<u64, Error> {
        self.submit(DeltaKind::AssertFacts, facts)
    }

    /// Retract ground facts; see [`Service::assert_facts`].
    pub fn retract_facts(&self, facts: &str) -> Result<u64, Error> {
        self.submit(DeltaKind::RetractFacts, facts)
    }

    /// Assert rules (facts allowed); see [`Service::assert_facts`].
    pub fn assert_rules(&self, rules: &str) -> Result<u64, Error> {
        self.submit(DeltaKind::AssertRules, rules)
    }

    /// Retract rules; see [`Service::assert_facts`].
    pub fn retract_rules(&self, rules: &str) -> Result<u64, Error> {
        self.submit(DeltaKind::RetractRules, rules)
    }

    /// Queue one delta and drive (or wait for) the write cycle that
    /// applies it. The first submitter to find no cycle in flight
    /// becomes the leader and drains the queue until empty — including
    /// deltas that arrive *while* it is applying earlier ones, which is
    /// exactly the coalescing: those share one batched warm update and
    /// one solve.
    fn submit(&self, kind: DeltaKind, text: &str) -> Result<u64, Error> {
        self.shared.submissions.fetch_add(1, Ordering::Relaxed);
        // Reject malformed text before it can poison a shared batch:
        // parse errors (and non-fact rules on the fact paths) are the
        // submitter's own, never its cycle-mates'.
        if let Err(e) = validate(kind, text) {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
            return Err(e);
        }
        let slot = Arc::new(Slot::default());
        let leader = {
            let mut queue = lock(&self.shared.queue);
            queue.pending.push(Pending {
                kind,
                text: text.to_string(),
                slot: Arc::clone(&slot),
            });
            if queue.writer_active {
                false
            } else {
                queue.writer_active = true;
                true
            }
        };
        if leader {
            self.drain_cycles();
        }
        let outcome = slot.wait();
        if outcome.is_err() {
            self.shared.rejected.fetch_add(1, Ordering::Relaxed);
        }
        outcome
    }

    /// Leader loop: take everything queued, run one write cycle, repeat
    /// until the queue drains, then hand the leader role back.
    ///
    /// Panic safety: if a cycle unwinds, the guard hands the leader role
    /// back and fails everything still queued (each dropped [`Pending`]
    /// completes its slot with [`Error::WriterAborted`]), so no submitter
    /// is left blocked behind a dead leader. Published versions are
    /// unaffected — publishing is the last step of a successful cycle.
    fn drain_cycles(&self) {
        struct LeaderGuard<'a> {
            shared: &'a Shared,
            clean_exit: bool,
        }
        impl Drop for LeaderGuard<'_> {
            fn drop(&mut self) {
                if !self.clean_exit {
                    let abandoned = {
                        let mut queue = lock(&self.shared.queue);
                        queue.writer_active = false;
                        std::mem::take(&mut queue.pending)
                    };
                    drop(abandoned); // fails each slot via Pending::drop
                }
            }
        }
        let mut guard = LeaderGuard {
            shared: &self.shared,
            clean_exit: false,
        };
        loop {
            let batch = {
                let mut queue = lock(&self.shared.queue);
                if queue.pending.is_empty() {
                    // Atomic with the emptiness check: a submitter that
                    // enqueues after this sees `writer_active == false`
                    // and becomes the next leader itself.
                    queue.writer_active = false;
                    break;
                }
                std::mem::take(&mut queue.pending)
            };
            self.run_cycle(batch);
        }
        guard.clean_exit = true;
    }

    /// One write cycle: apply the whole batch to the writer session
    /// (adjacent same-kind deltas merged into one batched call), solve
    /// once, publish the new version, and complete every submitter's
    /// slot. `pub(crate)` so the net tier's dedicated writer thread
    /// ([`crate::net::AsyncService`]) can drive cycles off its own
    /// bounded queue; concurrent cycles serialize on the writer lock.
    pub(crate) fn run_cycle(&self, batch: Vec<Pending>) {
        let telemetry = self.telemetry();
        let cycle_started = Instant::now();
        self.shared.write_cycles.fetch_add(1, Ordering::Relaxed);
        self.shared
            .last_cycle_width
            .store(batch.len() as u64, Ordering::Relaxed);
        self.shared
            .max_cycle_width
            .fetch_max(batch.len() as u64, Ordering::Relaxed);
        if batch.len() > 1 {
            self.shared
                .coalesced
                .fetch_add(batch.len() as u64, Ordering::Relaxed);
        }
        let mut writer = lock(&self.shared.writer);
        // Phase accounting starts fresh each cycle: anything the session
        // accumulated outside a cycle (direct use, recovery replay) must
        // not be attributed to this one.
        let _ = writer.session.take_phases();

        // Apply, in submission order, merging adjacent same-kind runs
        // into a single batched call (one envelope-delta round per run).
        // A failed *merged* call is retried delta by delta, so each
        // submitter gets its own verdict — one semantically invalid
        // delta (unsafe rule, budget trip) must not take down its
        // cycle-mates. Session updates are commit-on-success, so the
        // failed merged call left no partial state behind.
        // `outcomes[i]` is `Ok(())` iff delta `i` is in the session now.
        let mut outcomes: Vec<Result<(), Error>> = Vec::with_capacity(batch.len());
        let mut start = 0;
        while start < batch.len() {
            let kind = batch[start].kind;
            let mut end = start + 1;
            while end < batch.len() && batch[end].kind == kind {
                end += 1;
            }
            let run = &batch[start..end];
            let merged: String = run
                .iter()
                .map(|p| p.text.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            match apply_delta(&mut writer.session, kind, &merged) {
                Ok(()) => outcomes.extend(run.iter().map(|_| Ok(()))),
                Err(e) if run.len() == 1 => outcomes.push(Err(e)),
                Err(_) => {
                    for pending in run {
                        outcomes.push(apply_delta(&mut writer.session, kind, &pending.text));
                    }
                }
            }
            start = end;
        }

        // Every delta in the session but not yet in a published version
        // is owed a changelog entry by the next version that solves.
        for (pending, outcome) in batch.iter().zip(&outcomes) {
            if outcome.is_ok() {
                writer
                    .unpublished
                    .push((pending.kind, pending.text.clone()));
            }
        }

        if writer.unpublished.is_empty() {
            // Nothing changed; no new version. Report each failure.
            drop(writer);
            for (pending, outcome) in batch.iter().zip(outcomes) {
                let err = outcome.expect_err("cycle with no applied delta");
                pending.slot.fill(Err(err));
            }
            return;
        }

        match writer.session.solve() {
            Ok(model) => {
                let phases = writer.session.take_phases();
                let version = self.shared.version.load(Ordering::Acquire) + 1;
                let snapshot = ModelSnapshot {
                    version,
                    model: Arc::new(model),
                };
                // Write-ahead: every delta of this cycle becomes a
                // journal record stamped `version`, appended and (policy
                // permitting) synced BEFORE the version is published or
                // any submitter acked — so an acked write is never ahead
                // of the log. A journal I/O failure fails the cycle like
                // a solve failure: no publish, the cycle's records are
                // rolled back off the WAL, the applied deltas stay in
                // `unpublished` (they are in the session), and the next
                // cycle that succeeds re-appends and attributes them.
                let (journal_append_ns, fsync_ns) = if writer.journal.is_some() {
                    match self.journal_cycle(&mut writer, version) {
                        Ok(timing) => timing,
                        Err(e) => {
                            drop(writer);
                            for (pending, outcome) in batch.iter().zip(outcomes) {
                                pending.slot.fill(match outcome {
                                    Ok(()) => Err(e.clone()),
                                    Err(apply_err) => Err(apply_err),
                                });
                            }
                            return;
                        }
                    }
                } else {
                    (0, 0)
                };
                let applied = std::mem::take(&mut writer.unpublished);
                let width = applied.len() as u64;
                let publish_started = Instant::now();
                self.publish(&snapshot, applied);
                let publish_ns = publish_started.elapsed().as_nanos() as u64;
                self.maybe_checkpoint(&mut writer, version);
                drop(writer);
                telemetry.record_cycle(&PhaseBreakdown {
                    version,
                    width,
                    total_ns: cycle_started.elapsed().as_nanos() as u64,
                    ground_ns: phases.ground_ns,
                    repair_ns: phases.repair_ns,
                    condense_ns: phases.condense_ns,
                    solve_ns: phases.solve_ns,
                    busy_ns: phases.busy_ns,
                    steal_ns: phases.steal_ns,
                    sleep_ns: phases.sleep_ns,
                    journal_append_ns,
                    fsync_ns,
                    publish_ns,
                });
                // Slots fill only after the sync above: with
                // `JournalOptions::ack_durable` this is ack-after-
                // durable — a submitter (or net-tier `SubmitHandle`)
                // resolves only once its record is on disk.
                for (pending, outcome) in batch.iter().zip(outcomes) {
                    pending.slot.fill(outcome.map(|_| version));
                }
            }
            Err(e) => {
                // The solve failed (no perfect model, a grounding error
                // surfacing through recovery): no publish. The applied
                // deltas stay recorded in `unpublished` and will be
                // attributed to the next version that does solve; their
                // submitters get the solve error so they know their
                // version never became visible.
                drop(writer);
                for (pending, outcome) in batch.iter().zip(outcomes) {
                    pending.slot.fill(match outcome {
                        Ok(()) => Err(e.clone()),
                        Err(apply_err) => Err(apply_err),
                    });
                }
            }
        }
    }

    /// Swing the head to `snapshot` and record it in the cache and
    /// changelog. Called with the writer lock held — publishing is the
    /// last step of a cycle, so readers can never pin a version whose
    /// solve has not finished.
    fn publish(&self, snapshot: &ModelSnapshot, applied: Vec<(DeltaKind, String)>) {
        {
            let mut head = self
                .shared
                .head
                .write()
                .unwrap_or_else(PoisonError::into_inner);
            *head = snapshot.clone();
        }
        self.shared
            .version
            .store(snapshot.version, Ordering::Release);
        if self.shared.options.cache_capacity > 0 {
            let mut cache = lock(&self.shared.cache);
            cache.push_back(snapshot.clone());
            while cache.len() > self.shared.options.cache_capacity {
                cache.pop_front();
            }
        }
        let mut log = lock(&self.shared.changelog);
        for (kind, text) in applied {
            log.push_back(AppliedDelta {
                version: snapshot.version,
                kind,
                text,
            });
        }
        while log.len() > self.shared.options.changelog_capacity {
            if let Some(evicted) = log.pop_front() {
                // Monotone: entries leave oldest-first, so the horizon
                // only advances. Reads anchored below it get
                // `Error::VersionEvicted` instead of a gapped replay.
                self.shared
                    .log_horizon
                    .fetch_max(evicted.version, Ordering::AcqRel);
                self.shared
                    .changelog_evicted
                    .fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    // ------------------------------------------------------------------
    // Durability
    // ------------------------------------------------------------------

    /// Append this cycle's applied deltas to the write-ahead log and
    /// sync per policy, with the pre/post-append crash seams around it.
    /// Called with the writer lock held, before publish. Returns this
    /// cycle's `(append_ns, fsync_ns)` wall time for the telemetry
    /// phase breakdown.
    fn journal_cycle(&self, writer: &mut Writer, version: u64) -> Result<(u64, u64), Error> {
        self.maybe_crash(CrashPoint::PreAppend);
        let Writer {
            journal,
            unpublished,
            ..
        } = writer;
        let journal = journal
            .as_mut()
            .expect("journal_cycle on an unjournaled service");
        // On any failure, roll the WAL back to the pre-cycle boundary:
        // the retry cycle re-appends everything fresh, so the log never
        // carries duplicate records or a torn frame mid-file.
        let mark = journal.mark();
        let append_started = Instant::now();
        for (kind, text) in unpublished.iter() {
            if let Err(e) = journal.append(version, *kind, text) {
                journal.rollback(mark);
                return Err(e);
            }
        }
        let append_ns = append_started.elapsed().as_nanos() as u64;
        let sync_started = Instant::now();
        if let Err(e) = journal.sync_for_publish() {
            journal.rollback(mark);
            return Err(e);
        }
        let fsync_ns = sync_started.elapsed().as_nanos() as u64;
        self.maybe_crash(CrashPoint::PostAppend);
        Ok((append_ns, fsync_ns))
    }

    /// Run the automatic checkpoint interval
    /// ([`JournalOptions::checkpoint_every`]) after a publish. Failure
    /// here is not a write failure — the version already published and
    /// the WAL still covers it — so it only surfaces through
    /// [`JournalStats::failed_ops`].
    fn maybe_checkpoint(&self, writer: &mut Writer, version: u64) {
        if writer
            .journal
            .as_ref()
            .is_some_and(|j| j.checkpoint_due(version))
        {
            let _ = self.checkpoint_writer(writer, version);
        }
    }

    fn checkpoint_writer(&self, writer: &mut Writer, version: u64) -> Result<(), Error> {
        let crash = self.take_crash(CrashPoint::MidCheckpoint);
        let Writer {
            session, journal, ..
        } = writer;
        let journal = journal.as_mut().ok_or_else(|| {
            Error::Journal(
                "service has no journal (start it with with_journal/recover, or the \
                 CLI --journal flag)"
                    .into(),
            )
        })?;
        let text = session.source_text().ok_or_else(|| {
            Error::Journal("session keeps no source text; cannot checkpoint".into())
        })?;
        journal.checkpoint(version, &text, crash)
    }

    /// Write a checkpoint of the current version now (the protocol's
    /// `checkpoint` command) and compact the journal prefix it subsumes.
    /// Returns the checkpointed version. A no-op (still `Ok`) when the
    /// current version is already checkpointed;
    /// [`Error::Journal`] on an unjournaled service.
    pub fn checkpoint(&self) -> Result<u64, Error> {
        let mut writer = lock(&self.shared.writer);
        let version = self.shared.version.load(Ordering::Acquire);
        self.checkpoint_writer(&mut writer, version)?;
        Ok(version)
    }

    /// Journal counters, `None` on an unjournaled service. Briefly locks
    /// the writer.
    pub fn journal_stats(&self) -> Option<JournalStats> {
        lock(&self.shared.writer)
            .journal
            .as_ref()
            .map(|j| j.stats())
    }

    /// Arm (or with `None`, disarm) the fault-injection seam: the next
    /// write cycle to reach `point` panics there, exactly as an OOM kill
    /// or power cut at that instruction would end the process. One-shot:
    /// the seam disarms as it fires. Like the grounder's poison seam and
    /// the net tier's `hold_writer`, this is test-only plumbing kept out
    /// of the docs rather than behind `cfg(test)` so the crash-recovery
    /// suite in `tests/` can reach it.
    #[doc(hidden)]
    pub fn inject_crash_for_testing(&self, point: Option<CrashPoint>) {
        *lock(&self.shared.crash_seam) = point;
    }

    /// Consume the seam if it is armed at `point`.
    fn take_crash(&self, point: CrashPoint) -> bool {
        let mut seam = lock(&self.shared.crash_seam);
        if *seam == Some(point) {
            *seam = None;
            true
        } else {
            false
        }
    }

    fn maybe_crash(&self, point: CrashPoint) {
        if self.take_crash(point) {
            panic!("afp crash seam: {point:?}");
        }
    }

    /// Count a submission that entered through an upstream queue (the
    /// net tier's admission control) so `ServiceStats::submissions`
    /// covers every tier.
    pub(crate) fn note_submission(&self) {
        self.shared.submissions.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a submission that terminally failed upstream or inside a
    /// net-tier cycle (`Overloaded`, deadline expiry, apply error), so
    /// `ServiceStats::rejected` counts every failed submission
    /// regardless of which layer refused it.
    pub(crate) fn note_rejection(&self) {
        self.shared.rejected.fetch_add(1, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Service {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Service")
            .field("version", &self.version())
            .field("stats", &self.stats())
            .finish()
    }
}

/// Route one delta to the matching [`Session`] update entry point.
fn apply_delta(session: &mut Session, kind: DeltaKind, text: &str) -> Result<(), Error> {
    match kind {
        DeltaKind::AssertFacts => session.assert_facts(text),
        DeltaKind::RetractFacts => session.retract_facts(text),
        DeltaKind::AssertRules => session.assert_rules(text),
        DeltaKind::RetractRules => session.retract_rules(text),
    }
}

/// Pre-validate a submission so that a *textually* malformed delta fails
/// fast on the submitting thread, before it can reach a merged batch:
/// the fact paths run the same batch validation the session applies
/// ([`crate::engine::parse_fact_batch`]), the rule paths the same parse.
/// Semantic failures that need the live session (safety, budgets) are
/// caught in the cycle, where a failed merged run is retried delta by
/// delta for exact attribution.
pub(crate) fn validate(kind: DeltaKind, text: &str) -> Result<(), Error> {
    if matches!(kind, DeltaKind::AssertFacts | DeltaKind::RetractFacts) {
        crate::engine::parse_fact_batch(text)?;
    } else {
        afp_datalog::parse_program(text)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    const WIN_MOVE: &str =
        "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";

    #[test]
    fn abandoned_pending_fails_its_slot_instead_of_blocking() {
        // The panic-safety protocol: a `Pending` dropped unfilled (leader
        // unwound mid-cycle) completes its submitter with `WriterAborted`
        // rather than leaving it on the condvar forever.
        let slot = Arc::new(Slot::default());
        let pending = Pending {
            kind: DeltaKind::AssertFacts,
            text: "a.".into(),
            slot: Arc::clone(&slot),
        };
        drop(pending);
        assert!(matches!(slot.wait(), Err(Error::WriterAborted)));
    }

    #[test]
    fn versions_advance_and_pins_stay_immutable() {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        let v0 = service.snapshot();
        assert_eq!(v0.version(), 0);
        assert_eq!(v0.truth("wins", &["b"]), Truth::True);

        let v = service.assert_facts("move(c, d).").unwrap();
        assert_eq!(v, 1);
        assert_eq!(service.version(), 1);
        let v1 = service.snapshot();
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.truth("wins", &["c"]), Truth::True);
        assert_eq!(v0.truth("wins", &["c"]), Truth::False, "pin unaffected");

        let v = service.retract_facts("move(c, d).").unwrap();
        assert_eq!(v, 2);
        assert_eq!(service.snapshot().truth("wins", &["c"]), Truth::False);
    }

    #[test]
    fn version_cache_serves_recent_versions() {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        service.assert_facts("move(c, d).").unwrap();
        service.assert_facts("move(d, e).").unwrap();
        let v1 = service.at_version(1).expect("cached");
        assert_eq!(v1.version(), 1);
        assert_eq!(v1.truth("wins", &["c"]), Truth::True);
        assert_eq!(v1.truth("wins", &["d"]), Truth::False, "v1 predates d→e");
        assert!(matches!(
            service.at_version(99),
            Err(Error::VersionEvicted {
                requested: 99,
                retained_from: 0,
                retained_to: 2,
            })
        ));
        let stats = service.stats();
        assert_eq!(stats.cache_hits, 1);
        assert_eq!(stats.cache_misses, 1);
    }

    #[test]
    fn bounded_retention_reports_eviction_not_gapped_history() {
        let options = ServiceOptions {
            cache_capacity: 2,
            changelog_capacity: 3,
        };
        let service =
            Service::with_options(Engine::default().load(WIN_MOVE).unwrap(), options).unwrap();
        for i in 0..5 {
            service.assert_facts(&format!("extra(e{i}).")).unwrap();
        }
        // Version cache keeps the newest two versions only.
        assert!(service.at_version(5).is_ok());
        assert!(service.at_version(4).is_ok());
        let err = service.at_version(1).unwrap_err();
        assert!(
            matches!(
                err,
                Error::VersionEvicted {
                    requested: 1,
                    retained_from: 4,
                    retained_to: 5,
                }
            ),
            "{err:?}"
        );
        // Changelog kept 3 of 5 entries: versions 1 and 2 fell off, so
        // the horizon is 2 and full-history reads refuse.
        let err = service.changelog().unwrap_err();
        assert!(
            matches!(
                err,
                Error::VersionEvicted {
                    requested: 0,
                    retained_from: 2,
                    retained_to: 5,
                }
            ),
            "{err:?}"
        );
        assert!(service.changelog_since(1).is_err(), "1 < horizon");
        let tail = service.changelog_since(2).unwrap();
        assert_eq!(
            tail.iter().map(|e| e.version).collect::<Vec<_>>(),
            vec![3, 4, 5],
            "anchored at the horizon, the retained tail replays exactly"
        );
        assert_eq!(service.stats().changelog_evicted, 2);
        // Memory stays bounded: a long write burst cannot grow the log.
        for i in 0..20 {
            service.assert_facts(&format!("more(m{i}).")).unwrap();
        }
        assert_eq!(service.changelog_since(service.version()).unwrap().len(), 0);
        assert_eq!(service.stats().changelog_evicted, 22);
    }

    #[test]
    fn failed_deltas_do_not_publish() {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        let err = service.assert_facts("p :- ").unwrap_err();
        assert!(matches!(err, Error::Parse(_)));
        let err = service.assert_facts("p :- q.").unwrap_err();
        assert!(matches!(err, Error::NotAFact(_)), "rules on the fact path");
        let err = service.assert_rules("r(X) :- not s(X).").unwrap_err();
        assert!(matches!(err, Error::Ground(_)), "unsafe rule");
        assert_eq!(service.version(), 0, "nothing published");
        assert_eq!(service.stats().rejected, 3);
        assert_eq!(service.snapshot().truth("wins", &["b"]), Truth::True);
    }

    #[test]
    fn rule_deltas_publish_like_fact_deltas() {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        let v = service.assert_rules("wins(X) :- bonus(X).").unwrap();
        assert_eq!(v, 1);
        let v = service.assert_facts("bonus(c).").unwrap();
        assert_eq!(v, 2);
        assert_eq!(service.snapshot().truth("wins", &["c"]), Truth::True);
        assert_eq!(
            service.snapshot().truth("wins", &["b"]),
            Truth::Undefined,
            "with the escape to c blocked, the a⇄b cycle is undecided"
        );
        let v = service.retract_rules("wins(X) :- bonus(X).").unwrap();
        assert_eq!(v, 3);
        assert_eq!(service.snapshot().truth("wins", &["b"]), Truth::True);
        let log = service.changelog().unwrap();
        assert_eq!(log.len(), 3);
        assert_eq!(log[0].kind, DeltaKind::AssertRules);
        assert_eq!(log[2].version, 3);
    }

    #[test]
    fn subquery_runs_read_side() {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        let pinned = service.snapshot();
        let sub = pinned.subquery(["wins(a)"]).unwrap();
        assert_eq!(sub.truth("wins", &["a"]), Truth::False);
        assert_eq!(sub.truth("wins", &["b"]), Truth::True, "b is in a's cone");
        // The writer may move on; the pinned subquery substrate does not.
        service.assert_facts("move(c, d).").unwrap();
        let sub = pinned.subquery(["wins(c)"]).unwrap();
        assert_eq!(sub.truth("wins", &["c"]), Truth::False, "version 0 cone");
    }

    #[test]
    fn changelog_reconstructs_each_version() {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        service.assert_facts("move(c, d).").unwrap();
        service.assert_rules("wins(X) :- bonus(X).").unwrap();
        service.assert_facts("bonus(e).").unwrap();
        for version in 0..=3u64 {
            let mut src = String::from(WIN_MOVE);
            for entry in service.changelog().unwrap() {
                if entry.version <= version {
                    assert!(matches!(
                        entry.kind,
                        DeltaKind::AssertFacts | DeltaKind::AssertRules
                    ));
                    src.push('\n');
                    src.push_str(&entry.text);
                }
            }
            let cold = Engine::default().solve(&src).unwrap();
            let snap = service.at_version(version).expect("cached");
            for (pred, args) in [("wins", ["c"]), ("wins", ["d"]), ("wins", ["e"])] {
                let refs: Vec<&str> = args.to_vec();
                assert_eq!(
                    snap.truth(pred, &refs),
                    cold.truth(pred, &refs),
                    "{pred}({args:?}) at version {version}"
                );
            }
        }
    }
}
