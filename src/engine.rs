//! The unified entry point: one [`Engine`] for all five semantics of the
//! paper, producing reusable [`Session`]s whose grounding survives across
//! queries and fact updates, and a single three-valued [`Model`] type for
//! every result.
//!
//! Theorem 7.8 puts the alternating fixpoint, the well-founded semantics,
//! stable models, Fitting's semantics and perfect models on one lattice of
//! partial models; this module puts them behind one API:
//!
//! ```
//! use afp::{Engine, Semantics, Truth};
//!
//! let engine = Engine::default();
//! let mut session = engine
//!     .load("wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).")
//!     .unwrap();
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["b"]), Truth::True);
//! assert!(model.is_total());
//!
//! // The same session answers under any other semantics …
//! let stable = session.solve_with(Semantics::Stable { max_models: usize::MAX }).unwrap();
//! assert_eq!(stable.stable_models().len(), 1);
//!
//! // … and absorbs new facts without re-parsing or re-grounding.
//! session.assert_facts("move(c, d).").unwrap();
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["c"]), Truth::True);
//! ```
//!
//! ## Warm re-solves
//!
//! A [`Session`] keeps the incremental grounder
//! ([`afp_datalog::IncrementalGrounder`]) alive: `assert_facts` /
//! `retract_facts` extend the existing ground program (envelope delta,
//! focused re-joins, pruned-literal resurrection) instead of starting from
//! text. For the well-founded semantics the session additionally seeds the
//! next alternating fixpoint with the part of the previous negative
//! fixpoint that provably survives the delta — atoms that cannot reach any
//! changed atom in the dependency graph keep their truth values (the
//! relevance/splitting argument), so the old conclusions restricted to
//! them are a valid under-chain start for
//! [`afp_core::alternating_fixpoint_from`]. [`Session::stats`] reports
//! both reuse channels.

use afp_core::afp::{alternating_fixpoint_from, AfpOptions, AfpTrace};
use afp_core::interp::{PartialModel, Truth};
use afp_core::Strategy;
use afp_datalog::ast::Program;
use afp_datalog::atoms::AtomId;
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::GroundProgram;
use afp_datalog::{GroundOptions, IncrementalGrounder, SafetyPolicy};
use std::sync::Arc;

use crate::Error;

/// Which of the paper's semantics a solve computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// The well-founded partial model via the alternating fixpoint
    /// (Sections 5–7; the paper's main object).
    WellFounded {
        /// How the `S_P` closures of the under-chain are evaluated.
        strategy: Strategy,
    },
    /// Gelfond–Lifschitz stable models (Sections 2.4, 4). The model
    /// reports the cautious collapse (true in all / false in all /
    /// undefined otherwise) and carries the enumerated models.
    Stable {
        /// Stop enumeration after this many models.
        max_models: usize,
    },
    /// Fitting's Kripke–Kleene three-valued semantics (Section 2.1).
    Fitting,
    /// The perfect model of a locally stratified program (Section 2.3);
    /// solving errs with [`Error::NotLocallyStratified`] otherwise.
    Perfect,
    /// The inflationary fixpoint (Section 2.2): always total, and
    /// deliberately wrong on Example 2.2 — kept for comparison.
    Inflationary,
}

impl Default for Semantics {
    fn default() -> Self {
        Semantics::WellFounded {
            strategy: Strategy::default(),
        }
    }
}

impl Semantics {
    /// Kebab-case name, as the CLI spells it.
    pub fn name(&self) -> &'static str {
        match self {
            Semantics::WellFounded { .. } => "wfs",
            Semantics::Stable { .. } => "stable",
            Semantics::Fitting => "fitting",
            Semantics::Perfect => "perfect",
            Semantics::Inflationary => "ifp",
        }
    }
}

/// Configures and builds an [`Engine`].
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    semantics: Semantics,
    ground: GroundOptions,
    record_trace: bool,
    relevance: Vec<String>,
}

impl EngineBuilder {
    /// Default semantics for sessions of this engine
    /// ([`Session::solve_with`] can override per solve).
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Safety policy for rules with unguarded variables.
    pub fn safety(mut self, policy: SafetyPolicy) -> Self {
        self.ground.safety = policy;
        self
    }

    /// Full grounding options (safety, envelope and rule budgets).
    pub fn ground_options(mut self, options: GroundOptions) -> Self {
        self.ground = options;
        self
    }

    /// Record the alternating sequence (Table I) on well-founded solves.
    pub fn trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Restrict solving to the dependency cone of these ground query
    /// atoms (written as text, e.g. `"wins(a)"`). Atoms outside the cone
    /// have no rules in the restricted program and report `False`; only
    /// query truth values within the cone are meaningful. Disables warm
    /// seeding.
    pub fn relevance<I, S>(mut self, queries: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.relevance = queries.into_iter().map(Into::into).collect();
        self
    }

    /// Build the engine.
    pub fn build(self) -> Engine {
        Engine { config: self }
    }
}

/// The unified solver front end. An `Engine` is a reusable configuration;
/// [`Engine::load`] produces a [`Session`] per program.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineBuilder,
}

impl Engine {
    /// An engine with the given semantics and default options.
    pub fn new(semantics: Semantics) -> Engine {
        Engine::builder().semantics(semantics).build()
    }

    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Parse and ground `src` into a reusable session.
    pub fn load(&self, src: &str) -> Result<Session, Error> {
        let program = afp_datalog::parse_program(src)?;
        self.load_program(program)
    }

    /// Ground an already-parsed program into a reusable session.
    pub fn load_program(&self, program: Program) -> Result<Session, Error> {
        let grounder = IncrementalGrounder::new(&program, &self.config.ground)?;
        Ok(Session {
            config: self.config.clone(),
            grounder: Some(grounder),
            ast: Some(program),
            fixed: None,
            snapshot: None,
            dirty: Vec::new(),
            warm: None,
            stats: SessionStats::default(),
        })
    }

    /// Wrap an existing ground program in a session (no grounder state;
    /// `assert_facts` appends fact rules directly, which is exact for
    /// ground programs).
    pub fn load_ground(&self, ground: GroundProgram) -> Session {
        Session {
            config: self.config.clone(),
            grounder: None,
            ast: None,
            fixed: Some(ground),
            snapshot: None,
            dirty: Vec::new(),
            warm: None,
            stats: SessionStats::default(),
        }
    }

    /// One-shot convenience: load and solve in one call.
    pub fn solve(&self, src: &str) -> Result<Model, Error> {
        self.load(src)?.solve()
    }
}

/// Reuse counters for a [`Session`] — how much work warm re-solves skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total solves.
    pub solves: u64,
    /// Well-founded solves that started from a non-empty warm seed.
    pub warm_solves: u64,
    /// Atoms in the last warm seed.
    pub last_seed_size: usize,
    /// Full re-groundings since load. Stays `0` on the pure incremental
    /// path; counts the cold fallbacks the session takes where a warm
    /// delta would be unsound — retraction under the active-domain
    /// policy, and asserts after a negative literal over a
    /// never-materialized term was pruned unrecoverably.
    pub regrounds: u64,
    /// Facts asserted.
    pub asserts: u64,
    /// Facts retracted.
    pub retracts: u64,
}

/// A loaded program: interned symbols, ground rules, and (for programs
/// loaded from text or AST) the live grounder state for incremental fact
/// updates. Produced by [`Engine::load`].
pub struct Session {
    config: EngineBuilder,
    grounder: Option<IncrementalGrounder>,
    /// Source program retained for the cold re-ground fallback.
    ast: Option<Program>,
    fixed: Option<GroundProgram>,
    /// Copy-on-write snapshot handed to models; invalidated on mutation.
    snapshot: Option<Arc<GroundProgram>>,
    /// Atoms whose rules changed since the last well-founded solve.
    dirty: Vec<AtomId>,
    /// Negative fixpoint of the last well-founded solve, for warm seeding.
    warm: Option<AtomSet>,
    stats: SessionStats,
}

impl Session {
    /// The current ground program.
    pub fn ground(&self) -> &GroundProgram {
        match &self.grounder {
            Some(g) => g.program(),
            None => self.fixed.as_ref().expect("fixed or grounder"),
        }
    }

    /// Reuse counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Assert ground facts, written as source text (e.g.
    /// `"move(c, d). move(d, e)."`). The existing grounding is extended in
    /// place — no re-parse of the program, no envelope recomputation from
    /// scratch, no instance re-join outside the delta.
    pub fn assert_facts(&mut self, facts: &str) -> Result<(), Error> {
        let parsed = afp_datalog::parse_program(facts)?;
        for rule in &parsed.rules {
            if !rule.is_fact() || !rule.head.is_ground() {
                return Err(Error::NotAFact(afp_datalog::ast::display_rule(
                    rule,
                    &parsed.symbols,
                )));
            }
        }
        for rule in &parsed.rules {
            self.stats.asserts += 1;
            match &mut self.grounder {
                Some(g) => {
                    if !g.supports_incremental() {
                        // A pruned negative literal could not be keyed for
                        // resurrection; a warm delta could silently change
                        // old instances' semantics. Fall back to cold.
                        self.cold_update(&rule.head, &parsed.symbols, true)?;
                        continue;
                    }
                    let effect = g.assert_fact(&rule.head, &parsed.symbols)?;
                    if effect.fresh {
                        self.dirty.extend(effect.changed);
                        self.snapshot = None;
                    }
                    // Mirror into the retained AST: a later cold fallback
                    // re-grounds from it and must see this fact.
                    let ast = self.ast.as_mut().expect("grounder sessions retain the AST");
                    apply_fact_to_ast(ast, &rule.head, &parsed.symbols, true);
                }
                None => {
                    let ground = self.fixed.as_mut().expect("fixed or grounder");
                    let atom = intern_ast_atom(ground, &rule.head, &parsed.symbols);
                    let already = ground
                        .rules_with_head(atom)
                        .iter()
                        .any(|&r| ground.rule(r).is_fact());
                    if !already {
                        ground.push_rule(atom, vec![], vec![]);
                        self.dirty.push(atom);
                        self.snapshot = None;
                    }
                }
            }
        }
        Ok(())
    }

    /// Retract ground facts previously stated in the program or asserted.
    /// Unknown facts are ignored. The grounding is patched in place.
    pub fn retract_facts(&mut self, facts: &str) -> Result<(), Error> {
        let parsed = afp_datalog::parse_program(facts)?;
        for rule in &parsed.rules {
            if !rule.is_fact() || !rule.head.is_ground() {
                return Err(Error::NotAFact(afp_datalog::ast::display_rule(
                    rule,
                    &parsed.symbols,
                )));
            }
        }
        for rule in &parsed.rules {
            self.stats.retracts += 1;
            match &mut self.grounder {
                Some(g) => {
                    if g.uses_active_domain() {
                        // Retraction can shrink the active domain, and
                        // instances whose only positive subgoal was a
                        // stripped `$dom` guard would wrongly survive a
                        // warm retract. Fall back to cold.
                        self.cold_update(&rule.head, &parsed.symbols, false)?;
                        continue;
                    }
                    let effect = g.retract_fact(&rule.head, &parsed.symbols)?;
                    if effect.fresh {
                        self.dirty.extend(effect.changed);
                        self.snapshot = None;
                    }
                    // Mirror into the retained AST: a later cold fallback
                    // re-grounds from it and must not resurrect this fact.
                    let ast = self.ast.as_mut().expect("grounder sessions retain the AST");
                    apply_fact_to_ast(ast, &rule.head, &parsed.symbols, false);
                }
                None => {
                    let ground = self.fixed.as_mut().expect("fixed or grounder");
                    let Some(atom) = find_ast_atom(ground, &rule.head, &parsed.symbols) else {
                        continue;
                    };
                    let Some(&rid) = ground
                        .rules_with_head(atom)
                        .iter()
                        .find(|&&r| ground.rule(r).is_fact())
                    else {
                        continue;
                    };
                    ground.remove_rule(rid);
                    self.dirty.push(atom);
                    self.snapshot = None;
                }
            }
        }
        Ok(())
    }

    /// Solve under the session's default semantics.
    pub fn solve(&mut self) -> Result<Model, Error> {
        self.solve_with(self.config.semantics)
    }

    /// Solve under an explicit semantics, sharing the session's grounding.
    pub fn solve_with(&mut self, semantics: Semantics) -> Result<Model, Error> {
        self.stats.solves += 1;
        let record_trace = self.config.record_trace;
        let warm_seed = self.take_warm_seed(&semantics);
        let ground = self.snapshot();
        let restricted = self.restrict_for_relevance(&ground)?;
        let solve_on: &GroundProgram = restricted.as_ref().unwrap_or(&ground);

        let mut trace: Option<AfpTrace> = None;
        let mut stable: Vec<AtomSet> = Vec::new();
        let mut complete = true;
        let assignment = match semantics {
            Semantics::WellFounded { strategy } => {
                let seed = warm_seed.unwrap_or_else(|| solve_on.empty_set());
                if !seed.is_empty() {
                    self.stats.warm_solves += 1;
                }
                self.stats.last_seed_size = seed.count();
                let result = alternating_fixpoint_from(
                    solve_on,
                    &AfpOptions {
                        strategy,
                        record_trace,
                    },
                    &seed,
                );
                trace = result.trace;
                if restricted.is_none() {
                    self.warm = Some(result.negative_fixpoint);
                    self.dirty.clear();
                }
                result.model
            }
            Semantics::Stable { max_models } => {
                let result = afp_semantics::enumerate_stable(
                    solve_on,
                    &afp_semantics::EnumerateOptions {
                        max_models,
                        max_nodes: usize::MAX,
                    },
                );
                complete = result.complete;
                stable = result.models;
                afp_semantics::cautious_consequences(&stable, solve_on.atom_count())
            }
            Semantics::Fitting => afp_semantics::fitting_model(solve_on).model,
            Semantics::Perfect => match afp_semantics::perfect_model(solve_on) {
                Some(r) => r.model,
                None => return Err(Error::NotLocallyStratified),
            },
            Semantics::Inflationary => {
                let r = afp_semantics::inflationary_fixpoint(solve_on);
                let neg = r.model.complement();
                PartialModel::new(r.model, neg)
            }
        };
        Ok(Model {
            ground: restricted.map(Arc::new).unwrap_or(ground),
            semantics,
            assignment,
            stable,
            complete,
            trace,
        })
    }

    /// Apply one fact update by editing the retained source program and
    /// re-grounding cold — the sound fallback where a warm delta is not
    /// (see `assert_facts` / `retract_facts`). Atom ids change, so every
    /// piece of warm state is dropped. The edit and the re-ground commit
    /// together: on a re-ground error (e.g. a budget) the session keeps
    /// its previous AST and grounder, so the failed update leaves no
    /// trace a later fallback could resurrect.
    fn cold_update(
        &mut self,
        atom: &afp_datalog::ast::Atom,
        from: &afp_datalog::SymbolStore,
        assert: bool,
    ) -> Result<(), Error> {
        let mut ast = self.ast.clone().expect("grounder sessions retain the AST");
        apply_fact_to_ast(&mut ast, atom, from, assert);
        self.grounder = Some(IncrementalGrounder::new(&ast, &self.config.ground)?);
        self.ast = Some(ast);
        self.stats.regrounds += 1;
        self.warm = None;
        self.dirty.clear();
        self.snapshot = None;
        Ok(())
    }

    /// Compute (and consume) the warm seed for a well-founded solve: the
    /// previous negative fixpoint minus everything that can reach a dirty
    /// atom in the dependency graph.
    fn take_warm_seed(&mut self, semantics: &Semantics) -> Option<AtomSet> {
        if !matches!(semantics, Semantics::WellFounded { .. }) || !self.config.relevance.is_empty()
        {
            return None;
        }
        let old = self.warm.as_ref()?;
        let prog = self.ground();
        let n = prog.atom_count();
        // Ancestors of the dirty atoms: anything whose truth could change.
        let mut affected = AtomSet::empty(n);
        let mut queue: Vec<AtomId> = Vec::new();
        for &a in &self.dirty {
            if affected.insert(a.0) {
                queue.push(a);
            }
        }
        while let Some(atom) = queue.pop() {
            for &rid in prog
                .rules_with_pos(atom)
                .iter()
                .chain(prog.rules_with_neg(atom).iter())
            {
                let head = prog.rule(rid).head;
                if affected.insert(head.0) {
                    queue.push(head);
                }
            }
        }
        // Old conclusions over unaffected atoms survive (old ids are
        // stable; the universe may have grown).
        Some(AtomSet::from_iter(
            n,
            old.iter().filter(|&a| !affected.contains(a)),
        ))
    }

    fn snapshot(&mut self) -> Arc<GroundProgram> {
        if self.snapshot.is_none() {
            self.snapshot = Some(Arc::new(self.ground().clone()));
        }
        Arc::clone(self.snapshot.as_ref().expect("just set"))
    }

    /// Apply the engine's relevance restriction, if configured. Queries
    /// that fail to parse are an error; queries naming atoms the grounder
    /// never materialized resolve to nothing (such atoms are false in
    /// every semantics, and the empty cone answers exactly that).
    fn restrict_for_relevance(
        &self,
        ground: &GroundProgram,
    ) -> Result<Option<GroundProgram>, Error> {
        if self.config.relevance.is_empty() {
            return Ok(None);
        }
        let mut seeds: Vec<AtomId> = Vec::new();
        for query in &self.config.relevance {
            let mut tmp = Program::new();
            let atom = afp_datalog::parser::parse_atom_into(query, &mut tmp)?;
            if let Some(id) = find_ast_atom(ground, &atom, &tmp.symbols) {
                seeds.push(id);
            }
        }
        Ok(Some(afp_core::relevance::restrict_to_query(ground, &seeds)))
    }
}

/// Add or remove a ground fact in a retained source program. Idempotent
/// in both directions; used by the warm update paths (to keep the AST in
/// lockstep with the grounder) and by the cold fallback itself.
fn apply_fact_to_ast(
    ast: &mut Program,
    atom: &afp_datalog::ast::Atom,
    from: &afp_datalog::SymbolStore,
    assert: bool,
) {
    let imported = afp_datalog::ast::import_atom(&mut ast.symbols, atom, from);
    if assert {
        let present = ast.rules.iter().any(|r| r.is_fact() && r.head == imported);
        if !present {
            ast.push(afp_datalog::ast::Rule::fact(imported));
        }
    } else {
        ast.rules.retain(|r| !(r.is_fact() && r.head == imported));
    }
}

/// Intern an AST atom (expressed against `from`) into a ground program.
fn intern_ast_atom(
    ground: &mut GroundProgram,
    atom: &afp_datalog::ast::Atom,
    from: &afp_datalog::SymbolStore,
) -> AtomId {
    fn intern_term(
        t: &afp_datalog::ast::Term,
        ground: &mut GroundProgram,
        from: &afp_datalog::SymbolStore,
    ) -> afp_datalog::atoms::ConstId {
        match t {
            afp_datalog::ast::Term::Const(c) => {
                let sym = ground.symbols_mut().intern(from.name(*c));
                ground.base_mut().intern_const(sym)
            }
            afp_datalog::ast::Term::App(f, args) => {
                let ids: Vec<_> = args.iter().map(|a| intern_term(a, ground, from)).collect();
                let sym = ground.symbols_mut().intern(from.name(*f));
                ground
                    .base_mut()
                    .intern_term(afp_datalog::atoms::GroundTerm::App(
                        sym,
                        ids.into_boxed_slice(),
                    ))
            }
            afp_datalog::ast::Term::Var(_) => unreachable!("caller checked groundness"),
        }
    }
    let args: Vec<_> = atom
        .args
        .iter()
        .map(|t| intern_term(t, ground, from))
        .collect();
    let pred = ground.symbols_mut().intern(from.name(atom.pred));
    ground.intern_atom_ids(pred, &args)
}

/// Resolve an AST atom against a ground program without interning.
fn find_ast_atom(
    ground: &GroundProgram,
    atom: &afp_datalog::ast::Atom,
    from: &afp_datalog::SymbolStore,
) -> Option<AtomId> {
    fn find_term(
        t: &afp_datalog::ast::Term,
        ground: &GroundProgram,
        from: &afp_datalog::SymbolStore,
    ) -> Option<afp_datalog::atoms::ConstId> {
        match t {
            afp_datalog::ast::Term::Const(c) => {
                let sym = ground.symbols().get(from.name(*c))?;
                ground
                    .base()
                    .find_term(&afp_datalog::atoms::GroundTerm::Const(sym))
            }
            afp_datalog::ast::Term::App(f, args) => {
                let ids: Option<Vec<_>> = args.iter().map(|a| find_term(a, ground, from)).collect();
                let sym = ground.symbols().get(from.name(*f))?;
                ground
                    .base()
                    .find_term(&afp_datalog::atoms::GroundTerm::App(
                        sym,
                        ids?.into_boxed_slice(),
                    ))
            }
            afp_datalog::ast::Term::Var(_) => None,
        }
    }
    let args: Option<Vec<_>> = atom
        .args
        .iter()
        .map(|t| find_term(t, ground, from))
        .collect();
    let pred = ground.symbols().get(from.name(atom.pred))?;
    ground.base().find_atom(pred, &args?)
}

/// A solved program under one semantics: a three-valued assignment over
/// the ground atoms, plus semantics-specific extras (stable model list,
/// alternating-sequence trace). All five [`Semantics`] produce this type.
pub struct Model {
    ground: Arc<GroundProgram>,
    semantics: Semantics,
    assignment: PartialModel,
    stable: Vec<AtomSet>,
    complete: bool,
    trace: Option<AfpTrace>,
}

impl Model {
    /// Three-valued truth of `pred(args…)`. Atoms never materialized
    /// during grounding are false (they have no derivation under any of
    /// the five semantics).
    pub fn truth(&self, pred: &str, args: &[&str]) -> Truth {
        match self.ground.find_atom_by_name(pred, args) {
            Some(id) => self.truth_of(id),
            None => Truth::False,
        }
    }

    /// Three-valued truth of an interned atom.
    pub fn truth_of(&self, atom: AtomId) -> Truth {
        self.assignment.truth(atom.0)
    }

    /// The semantics this model was computed under.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Is every atom decided? (For the well-founded semantics a total
    /// model is also the unique stable model — Section 5.)
    pub fn is_total(&self) -> bool {
        self.assignment.is_total()
    }

    /// True atoms, rendered lazily in atom-id order (grounding order, not
    /// alphabetical — collect and sort for display stability).
    pub fn true_atoms(&self) -> impl Iterator<Item = String> + '_ {
        self.assignment
            .pos
            .iter()
            .map(|id| self.ground.atom_name(AtomId(id)))
    }

    /// False atoms within the materialized base, rendered lazily.
    pub fn false_atoms(&self) -> impl Iterator<Item = String> + '_ {
        self.assignment
            .neg
            .iter()
            .map(|id| self.ground.atom_name(AtomId(id)))
    }

    /// Undefined atoms, rendered lazily.
    pub fn undefined_atoms(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.ground.atom_count() as u32)
            .filter(|&id| self.assignment.truth(id) == Truth::Undefined)
            .map(|id| self.ground.atom_name(AtomId(id)))
    }

    /// The underlying three-valued assignment.
    pub fn partial_model(&self) -> &PartialModel {
        &self.assignment
    }

    /// The ground program this model assigns over.
    pub fn ground(&self) -> &GroundProgram {
        &self.ground
    }

    /// The enumerated stable models (empty unless solved with
    /// [`Semantics::Stable`]; an empty list there means **no** stable
    /// model exists, in which case the three-valued assignment is
    /// everywhere undefined).
    pub fn stable_models(&self) -> &[AtomSet] {
        &self.stable
    }

    /// False when stable enumeration was cut off by `max_models`.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The alternating sequence (Table I), when tracing was enabled and
    /// the semantics records one.
    pub fn trace(&self) -> Option<&AfpTrace> {
        self.trace.as_ref()
    }

    /// Render a justification tree for `pred(args…)` in the paper's
    /// vocabulary (derivations, witnesses of unusability, undefined
    /// dependencies), to `depth` levels.
    ///
    /// Returns `None` when the model is not explainable this way: atoms
    /// the grounder never materialized, and semantics whose conclusions
    /// are not `S_P`-replayable (the inflationary fixpoint, stable-model
    /// collapses with more than one model).
    pub fn explain(&self, pred: &str, args: &[&str], depth: usize) -> Option<String> {
        let atom = self.ground.find_atom_by_name(pred, args)?;
        let explainer = afp_semantics::Explainer::try_new(&self.ground, &self.assignment)?;
        Some(explainer.render(atom, depth))
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("semantics", &self.semantics.name())
            .field("atoms", &self.ground.atom_count())
            .field("true", &self.assignment.pos.count())
            .field("false", &self.assignment.neg.count())
            .field("total", &self.is_total())
            .finish()
    }
}
