//! The unified entry point: one [`Engine`] for all five semantics of the
//! paper, producing reusable [`Session`]s whose grounding survives across
//! queries and fact updates, and a single three-valued [`Model`] type for
//! every result.
//!
//! Theorem 7.8 puts the alternating fixpoint, the well-founded semantics,
//! stable models, Fitting's semantics and perfect models on one lattice of
//! partial models; this module puts them behind one API:
//!
//! ```
//! use afp::{Engine, Semantics, Truth};
//!
//! let engine = Engine::default();
//! let mut session = engine
//!     .load("wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).")
//!     .unwrap();
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["b"]), Truth::True);
//! assert!(model.is_total());
//!
//! // The same session answers under any other semantics …
//! let stable = session.solve_with(Semantics::Stable { max_models: usize::MAX }).unwrap();
//! assert_eq!(stable.stable_models().len(), 1);
//!
//! // … and absorbs new facts without re-parsing or re-grounding.
//! session.assert_facts("move(c, d).").unwrap();
//! let model = session.solve().unwrap();
//! assert_eq!(model.truth("wins", &["c"]), Truth::True);
//! ```
//!
//! ## SCC-stratified solving and warm re-solves
//!
//! Well-founded solves run **per strongly connected component** of the
//! atom dependency graph by default ([`WfStrategy::SccStratified`]): the
//! session condenses the graph once into a reusable
//! [`afp_datalog::Condensation`] and evaluates each component in place
//! against the global partial model
//! ([`afp_semantics::modular_wfs_update`]), so the `O(|H|·|P_H|)`
//! worst case is paid per component, not per program. The global
//! alternating fixpoint ([`WfStrategy::Global`]) remains available for
//! differential testing and is what trace recording (Table I) uses.
//!
//! A [`Session`] keeps the incremental grounder
//! ([`afp_datalog::IncrementalGrounder`]) alive: `assert_facts` /
//! `retract_facts` extend the existing ground program — with **one**
//! envelope delta and one focused re-join pass per batch of facts, not
//! one per fact — instead of starting from text, and `assert_rules` /
//! `retract_rules` do the same for **rules**: a new rule is compiled and
//! joined once over the retained envelope, a retracted rule drops
//! exactly its ground instances, and only a delta the warm machinery
//! cannot express soundly (a real active-domain shrink, the bootstrap of
//! the domain machinery itself) falls back to a single cold re-ground of
//! the mirrored source program. Re-solves are warm in both strategies,
//! via the relevance/splitting argument (atoms that cannot reach any
//! changed atom in the dependency graph keep their truth values):
//!
//! * per-SCC (the default): components disjoint from the changed cone
//!   **copy their stored truth values verbatim** from the previous
//!   solve; only the forward dependency cone of the delta is
//!   re-evaluated;
//! * global: the previous negative fixpoint restricted to unaffected
//!   atoms seeds the under-chain of
//!   [`afp_core::alternating_fixpoint_from`].
//!
//! [`Session::stats`] reports every reuse channel.

use afp_core::afp::{alternating_fixpoint_from, AfpOptions, AfpTrace};
use afp_core::interp::{PartialModel, Truth};
use afp_core::Strategy;
use afp_datalog::ast::{Atom, Program, Rule};
use afp_datalog::atoms::AtomId;
use afp_datalog::bitset::AtomSet;
use afp_datalog::depgraph::{Condensation, CondensationDelta, RuleRename};
use afp_datalog::program::{GroundProgram, GroundRule};
use afp_datalog::{
    GroundOptions, IncrementalGrounder, RetractOutcome, RuleAssertOutcome, SafetyPolicy,
    SymbolStore,
};
use afp_semantics::{Scheduler, Sequential, Wavefront};
use std::sync::Arc;
use std::time::Instant;

use crate::telemetry::{stat_set, SessionPhases};
use crate::Error;

/// How a well-founded solve is evaluated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WfStrategy {
    /// Condense the atom dependency graph and run the alternating
    /// fixpoint per strongly connected component, in place over the
    /// global ground program (`afp_semantics::modular`). The default:
    /// asymptotically faster on programs with many small components, and
    /// the substrate for per-component warm re-solves. Trace recording
    /// ([`EngineBuilder::trace`]) falls back to [`WfStrategy::Global`] —
    /// the alternating sequence of Table I is a global object.
    #[default]
    SccStratified,
    /// The paper's global alternating fixpoint, with the given
    /// under-chain closure strategy. Retained for differential testing
    /// and for trace/Table-I output.
    Global(Strategy),
}

/// Which of the paper's semantics a solve computes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Semantics {
    /// The well-founded partial model via the alternating fixpoint
    /// (Sections 5–7; the paper's main object).
    WellFounded {
        /// How the solve is evaluated (per-SCC by default).
        strategy: WfStrategy,
    },
    /// Gelfond–Lifschitz stable models (Sections 2.4, 4). The model
    /// reports the cautious collapse (true in all / false in all /
    /// undefined otherwise) and carries the enumerated models.
    Stable {
        /// Stop enumeration after this many models.
        max_models: usize,
    },
    /// Fitting's Kripke–Kleene three-valued semantics (Section 2.1).
    Fitting,
    /// The perfect model of a locally stratified program (Section 2.3);
    /// solving errs with [`Error::NotLocallyStratified`] otherwise.
    Perfect,
    /// The inflationary fixpoint (Section 2.2): always total, and
    /// deliberately wrong on Example 2.2 — kept for comparison.
    Inflationary,
}

impl Default for Semantics {
    fn default() -> Self {
        Semantics::WellFounded {
            strategy: WfStrategy::default(),
        }
    }
}

impl Semantics {
    /// Kebab-case name, as the CLI spells it.
    pub fn name(&self) -> &'static str {
        match self {
            Semantics::WellFounded { .. } => "wfs",
            Semantics::Stable { .. } => "stable",
            Semantics::Fitting => "fitting",
            Semantics::Perfect => "perfect",
            Semantics::Inflationary => "ifp",
        }
    }
}

/// Configures and builds an [`Engine`].
#[derive(Debug, Clone)]
pub struct EngineBuilder {
    semantics: Semantics,
    ground: GroundOptions,
    record_trace: bool,
    relevance: Vec<String>,
    /// Search-node cap for stable-model enumeration (`None` = unlimited).
    stable_search_nodes: Option<usize>,
    /// Requested solver threads; `0` = auto-detect at [`build`](Self::build).
    threads: usize,
    /// Shared wavefront pool, created by `build` when `threads > 1` and
    /// cloned (an `Arc` bump) into every session of the engine.
    scheduler: Option<Arc<Wavefront>>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            semantics: Semantics::default(),
            ground: GroundOptions::default(),
            record_trace: false,
            relevance: Vec::new(),
            stable_search_nodes: None,
            // Sequential is the explicit default: `0` means auto-detect,
            // and a derived zero would silently parallelize
            // `Engine::default()`.
            threads: 1,
            scheduler: None,
        }
    }
}

impl EngineBuilder {
    /// Default semantics for sessions of this engine
    /// ([`Session::solve_with`] can override per solve).
    pub fn semantics(mut self, semantics: Semantics) -> Self {
        self.semantics = semantics;
        self
    }

    /// Well-founded evaluation strategy for this engine's sessions: sets
    /// the default semantics to [`Semantics::WellFounded`] with the given
    /// strategy. Per-SCC evaluation ([`WfStrategy::SccStratified`]) is
    /// already the default; use this to opt back into the global
    /// alternating fixpoint ([`WfStrategy::Global`]).
    pub fn strategy(mut self, strategy: WfStrategy) -> Self {
        self.semantics = Semantics::WellFounded { strategy };
        self
    }

    /// Safety policy for rules with unguarded variables.
    pub fn safety(mut self, policy: SafetyPolicy) -> Self {
        self.ground.safety = policy;
        self
    }

    /// Full grounding options (safety, envelope and rule budgets).
    pub fn ground_options(mut self, options: GroundOptions) -> Self {
        self.ground = options;
        self
    }

    /// Record the alternating sequence (Table I) on well-founded solves.
    pub fn trace(mut self, record: bool) -> Self {
        self.record_trace = record;
        self
    }

    /// Cap the number of search nodes a stable-model enumeration may
    /// expand, mirroring the grounding budgets: when the cap trips, the
    /// solve **succeeds** with the (sound) models found so far and
    /// [`Model::is_complete`] reports `false` — enumeration truncation is
    /// an answer-quality signal, not an error. Unlimited by default.
    pub fn stable_search_budget(mut self, nodes: usize) -> Self {
        self.stable_search_nodes = Some(nodes);
        self
    }

    /// Restrict solving to the dependency cone of these ground query
    /// atoms (written as text, e.g. `"wins(a)"`). Atoms outside the cone
    /// have no rules in the restricted program and report `False`; only
    /// query truth values within the cone are meaningful. Disables warm
    /// seeding.
    pub fn relevance<I, S>(mut self, queries: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.relevance = queries.into_iter().map(Into::into).collect();
        self
    }

    /// Solver threads for SCC-stratified well-founded solves: `1`
    /// (default) keeps the sequential evaluator; `N > 1` builds a
    /// persistent [`Wavefront`] worker pool and schedules independent
    /// components of the condensation concurrently; `0` auto-detects via
    /// [`std::thread::available_parallelism`]. The solved model is
    /// **bit-identical for every thread count** — scheduling affects only
    /// wall-clock (see `afp_semantics::schedule`).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Build the engine. Resolves `threads == 0` to the machine's
    /// available parallelism and spawns the shared wavefront pool when
    /// more than one thread is requested.
    pub fn build(mut self) -> Engine {
        let threads = match self.threads {
            0 => std::thread::available_parallelism().map_or(1, |n| n.get()),
            n => n,
        };
        self.threads = threads;
        self.scheduler = (threads > 1).then(|| Arc::new(Wavefront::new(threads)));
        Engine { config: self }
    }
}

/// The unified solver front end. An `Engine` is a reusable configuration;
/// [`Engine::load`] produces a [`Session`] per program.
#[derive(Debug, Clone, Default)]
pub struct Engine {
    config: EngineBuilder,
}

impl Engine {
    /// An engine with the given semantics and default options.
    pub fn new(semantics: Semantics) -> Engine {
        Engine::builder().semantics(semantics).build()
    }

    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }

    /// Parse and ground `src` into a reusable session.
    pub fn load(&self, src: &str) -> Result<Session, Error> {
        let program = afp_datalog::parse_program(src)?;
        self.load_program(program)
    }

    /// Ground an already-parsed program into a reusable session.
    pub fn load_program(&self, program: Program) -> Result<Session, Error> {
        let grounder = IncrementalGrounder::new(&program, &self.config.ground)?;
        Ok(Session {
            config: self.config.clone(),
            grounder: Some(grounder),
            ast: Some(program),
            fixed: None,
            snapshot: None,
            dirty: Vec::new(),
            last_model: None,
            scc_cond: None,
            restricted_conds: Vec::new(),
            stats: SessionStats::default(),
            phases: SessionPhases::default(),
        })
    }

    /// Wrap an existing ground program in a session (no grounder state;
    /// `assert_facts` appends fact rules directly, which is exact for
    /// ground programs).
    pub fn load_ground(&self, ground: GroundProgram) -> Session {
        Session {
            config: self.config.clone(),
            grounder: None,
            ast: None,
            fixed: Some(ground),
            snapshot: None,
            dirty: Vec::new(),
            last_model: None,
            scc_cond: None,
            restricted_conds: Vec::new(),
            stats: SessionStats::default(),
            phases: SessionPhases::default(),
        }
    }

    /// One-shot convenience: load and solve in one call.
    pub fn solve(&self, src: &str) -> Result<Model, Error> {
        self.load(src)?.solve()
    }

    /// Load `src` and wrap the session in a concurrent serving layer:
    /// version 0 is solved and published immediately, then any number of
    /// reader threads pin immutable snapshots while writers submit
    /// coalesced deltas. See [`crate::service::Service`].
    pub fn serve(&self, src: &str) -> Result<crate::service::Service, Error> {
        crate::service::Service::new(self.load(src)?)
    }
}

/// Reuse counters for a [`Session`] — how much work warm re-solves and
/// batched updates skipped.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionStats {
    /// Total solves.
    pub solves: u64,
    /// Well-founded solves that reused previous conclusions: a non-empty
    /// under-chain seed (global strategy) or at least one copied
    /// component (per-SCC strategy).
    pub warm_solves: u64,
    /// Atoms whose truth values were carried over into the last
    /// well-founded solve (seed atoms or atoms of copied components).
    pub last_seed_size: usize,
    /// Full re-groundings since load. Stays `0` on the pure incremental
    /// path; counts the cold fallbacks the session takes where a warm
    /// delta would be unsound — retractions that shrink the active
    /// domain, asserts after a negative literal over a
    /// never-materialized term was pruned unrecoverably, and recovery
    /// from a mid-delta grounding error.
    pub regrounds: u64,
    /// Facts asserted.
    pub asserts: u64,
    /// Facts retracted.
    pub retracts: u64,
    /// Rules asserted through [`Session::assert_rules`] (facts passed to
    /// that API count here, not under `asserts`).
    pub rule_asserts: u64,
    /// Rules retracted through [`Session::retract_rules`].
    pub rule_retracts: u64,
    /// Condensations built **from scratch** since load. The memoized
    /// condensation is *repaired* in place across warm mutations
    /// (`condensation_repairs`), so this stays at `1` across any warm
    /// delta script — it counts only the first build, restricted-cone
    /// cache misses, and rebuilds after a cold re-ground.
    pub condensation_builds: u64,
    /// In-place condensation repairs ([`Condensation::apply_delta`]):
    /// one per warm mutation batch that found a memoized condensation to
    /// patch instead of evicting it.
    pub condensation_repairs: u64,
    /// Atoms the last condensation repair actually visited (its
    /// localized-Tarjan window) — compare against the program's atom
    /// count to see the repair staying delta-bounded.
    pub last_repair_atoms: usize,
    /// Dependency edges the last condensation repair inspected.
    pub last_repair_edges: usize,
    /// Relevance-restricted solves that found their restricted
    /// condensation in the session's per-restriction cache (keyed by the
    /// resolved query atom set; invalidated by any mutation).
    pub restricted_cond_hits: u64,
    /// Well-founded solves taken by the SCC-stratified path.
    pub scc_solves: u64,
    /// Components in the condensation at the last SCC-stratified solve.
    pub last_components: usize,
    /// Components evaluated by the last SCC-stratified solve.
    pub last_components_evaluated: usize,
    /// Components whose values were copied verbatim by the last
    /// SCC-stratified solve.
    pub last_components_reused: usize,
    /// Dependency levels (critical-path length) of the last solve's task
    /// DAG — the number of wavefronts an idealized parallel schedule
    /// needs. Identical for every scheduler and thread count.
    pub last_wavefronts: usize,
    /// Maximum number of simultaneously ready components the last
    /// solve's task DAG offered — its available parallelism.
    pub last_ready_width: usize,
    /// Components executed by a wavefront worker other than the one that
    /// released them (work stealing), summed over all solves. Always `0`
    /// with `threads(1)`.
    pub stolen_tasks: u64,
    /// Components evaluated on the multi-worker wavefront path, summed
    /// over all solves.
    pub par_components: u64,
    /// Components evaluated sequentially (the `threads(1)` default, or
    /// the pool's small-graph inline fallback), summed over all solves.
    pub seq_components: u64,
    /// Envelope delta rounds run by the grounder — one per *batch* of
    /// asserted facts, however many facts the batch carries.
    pub delta_rounds: u64,
    /// Times the session materialized a fresh program snapshot + model —
    /// i.e. the program had actually mutated since the last solve. With
    /// the copy-on-write [`GroundProgram`] storage each of these is a
    /// pointer-copy of the program plus one solve, not a deep clone.
    pub snapshot_clones: u64,
    /// Solves served **entirely** from the memoized snapshot + model of
    /// the previous solve (pure pointer copies — zero deep clones, zero
    /// fixpoint work). The read-path counterpart of `snapshot_clones`.
    pub snapshot_reuses: u64,
}

// Wire serialization of the `stats` section: every field, in the frame's
// historical key order (which predates this impl and differs from the
// struct's declaration order). The exhaustive pattern inside the macro
// means a field added above without a line here is a compile error — a
// counter can no longer silently miss the wire frame.
stat_set!(SessionStats {
    solves,
    warm_solves,
    snapshot_clones,
    snapshot_reuses,
    regrounds,
    asserts,
    retracts,
    rule_asserts,
    rule_retracts,
    delta_rounds,
    condensation_builds,
    condensation_repairs,
    last_repair_atoms,
    last_repair_edges,
    restricted_cond_hits,
    scc_solves,
    last_components,
    last_components_evaluated,
    last_components_reused,
    last_seed_size,
    last_wavefronts,
    last_ready_width,
    stolen_tasks,
    par_components,
    seq_components,
});

/// A loaded program: interned symbols, ground rules, and (for programs
/// loaded from text or AST) the live grounder state for incremental fact
/// updates. Produced by [`Engine::load`].
pub struct Session {
    config: EngineBuilder,
    grounder: Option<IncrementalGrounder>,
    /// Source program retained for the cold re-ground fallback.
    ast: Option<Program>,
    fixed: Option<GroundProgram>,
    /// Copy-on-write snapshot handed to models; invalidated on mutation.
    snapshot: Option<Arc<GroundProgram>>,
    /// Atoms whose rules changed since the last well-founded solve.
    dirty: Vec<AtomId>,
    /// Full model of the last well-founded solve, shared (`Arc`) with the
    /// [`Model`]s handed out for that program version — retention is a
    /// pointer copy, not a bitset clone. The SCC-stratified strategy
    /// copies unaffected components from it; the global strategy seeds
    /// its under-chain from its negative half (`AfpResult` sets
    /// `negative_fixpoint == model.neg`, so nothing else needs storing);
    /// and a re-solve with **no** pending deltas returns it outright
    /// (`SessionStats::snapshot_reuses`).
    last_model: Option<Arc<PartialModel>>,
    /// Condensation of the current ground program. Built (linear time)
    /// on the first SCC solve, then **repaired in place** across warm
    /// mutations ([`Condensation::apply_delta`] over the delta's window)
    /// — only a cold re-ground, which renumbers atom ids, drops it.
    scc_cond: Option<Condensation>,
    /// Condensations of relevance-restricted programs
    /// ([`Session::solve_restricted`]), keyed by the resolved seed atom
    /// set (sorted, deduplicated — compared by value, so equal keys
    /// really mean an identical restricted program); cleared on any
    /// mutation (the restricted cone's rules may change) and bounded to
    /// a handful of entries.
    restricted_conds: Vec<(Vec<AtomId>, Condensation)>,
    stats: SessionStats,
    /// Phase wall-clock accumulated since the last
    /// [`Session::take_phases`] — the raw material of the service's
    /// per-cycle [`crate::telemetry::PhaseBreakdown`].
    phases: SessionPhases,
}

/// Entries kept in the per-restriction condensation cache.
const RESTRICTED_COND_CACHE_CAP: usize = 16;

impl Session {
    /// The current ground program.
    pub fn ground(&self) -> &GroundProgram {
        match &self.grounder {
            Some(g) => g.program(),
            None => self.fixed.as_ref().expect("fixed or grounder"),
        }
    }

    /// Reuse counters.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// Drain the phase wall-clock accumulated since the previous call:
    /// grounding and condensation repair charged at mutation time,
    /// condense/solve (plus the scheduler's busy/steal/sleep split) at
    /// solve time. The service calls this once per write cycle; callers
    /// that never drain simply leave the counters growing.
    pub fn take_phases(&mut self) -> SessionPhases {
        std::mem::take(&mut self.phases)
    }

    /// The scheduler SCC-stratified solves run on: the engine's shared
    /// wavefront pool when built with [`EngineBuilder::threads`] `> 1`,
    /// the zero-synchronization sequential evaluator otherwise. Warm
    /// re-solves go through the same scheduler, so a cone re-evaluation
    /// becomes a parallel sub-wavefront over the affected components.
    fn scheduler(&self) -> &dyn Scheduler {
        match &self.config.scheduler {
            Some(pool) => pool.as_ref(),
            None => &Sequential,
        }
    }

    /// The retained source program, rendered as re-parseable text — the
    /// exact statement set the warm deltas have maintained (asserted
    /// facts and rules present, retracted ones absent), one statement
    /// per line. `None` for sessions loaded from a pre-ground program
    /// ([`Engine::load_ground`]), which keep no AST. The [`crate::journal`]
    /// layer serializes checkpoints from this text, so
    /// `Engine::load(source_text())` reconstructs an equivalent session.
    pub fn source_text(&self) -> Option<String> {
        self.ast.as_ref().map(|p| p.to_text())
    }

    /// Assert ground facts, written as source text (e.g.
    /// `"move(c, d). move(d, e)."`). The existing grounding is extended in
    /// place — no re-parse of the program, no envelope recomputation from
    /// scratch, no instance re-join outside the delta — and the whole
    /// batch runs **one** envelope/delta round (or, when a warm delta
    /// would be unsound, at most one cold re-ground), however many facts
    /// it carries.
    pub fn assert_facts(&mut self, facts: &str) -> Result<(), Error> {
        let (atoms, symbols) = parse_fact_batch(facts)?;
        self.stats.asserts += atoms.len() as u64;
        match &mut self.grounder {
            Some(g) => {
                if !g.supports_incremental() {
                    // A pruned negative literal could not be keyed for
                    // resurrection (or the grounder is poisoned by an
                    // earlier mid-delta error); a warm delta could
                    // silently change old instances' semantics. Apply
                    // every edit to the retained AST and re-ground once.
                    return self.cold_update(&atoms, &symbols, true);
                }
                let ground_started = Instant::now();
                let outcome = g.assert_batch(&atoms, &symbols);
                self.phases.ground_ns += ground_started.elapsed().as_nanos() as u64;
                let effect = match outcome {
                    Ok(effect) => effect,
                    Err(e) => {
                        // The grounder is poisoned: some consequence of a
                        // partially applied batch may be missing. Restore
                        // a consistent session by re-grounding cold from
                        // the retained AST, which does not contain the
                        // failed batch; the original error still
                        // surfaces.
                        self.recover_if_poisoned();
                        return Err(e.into());
                    }
                };
                if effect.fresh {
                    self.dirty.extend_from_slice(&effect.changed);
                    self.note_mutation(&effect.changed, &effect.new_edge_targets, &effect.renames);
                    self.stats.delta_rounds += 1;
                }
                // Mirror into the retained AST: a later cold fallback
                // re-grounds from it and must see these facts.
                let ast = self.ast.as_mut().expect("grounder sessions retain the AST");
                for atom in &atoms {
                    apply_fact_to_ast(ast, atom, &symbols, true);
                }
            }
            None => {
                let mut touched: Vec<AtomId> = Vec::new();
                for atom in &atoms {
                    let ground = self.fixed.as_mut().expect("fixed or grounder");
                    let id = intern_ast_atom(ground, atom, &symbols);
                    let already = ground
                        .rules_with_head(id)
                        .iter()
                        .any(|&r| ground.rule(r).is_fact());
                    if !already {
                        ground.push_rule(id, vec![], vec![]);
                        self.dirty.push(id);
                        touched.push(id);
                    }
                }
                if !touched.is_empty() {
                    self.note_mutation(&touched, &[], &[]);
                }
            }
        }
        Ok(())
    }

    /// Retract ground facts previously stated in the program or asserted.
    /// Unknown facts are ignored. The grounding is patched in place; only
    /// a batch that actually shrinks the active domain falls back to a
    /// (single) cold re-ground.
    pub fn retract_facts(&mut self, facts: &str) -> Result<(), Error> {
        let (atoms, symbols) = parse_fact_batch(facts)?;
        self.stats.retracts += atoms.len() as u64;
        match &mut self.grounder {
            Some(g) => {
                if g.is_poisoned() {
                    return self.cold_update(&atoms, &symbols, false);
                }
                let ground_started = Instant::now();
                let outcome = g.retract_batch(&atoms, &symbols);
                self.phases.ground_ns += ground_started.elapsed().as_nanos() as u64;
                match outcome {
                    RetractOutcome::Applied(effect) => {
                        if effect.fresh {
                            self.dirty.extend_from_slice(&effect.changed);
                            self.note_mutation(
                                &effect.changed,
                                &effect.new_edge_targets,
                                &effect.renames,
                            );
                        }
                        // Mirror into the retained AST: a later cold
                        // fallback re-grounds from it and must not
                        // resurrect these facts.
                        let ast = self.ast.as_mut().expect("grounder sessions retain the AST");
                        for atom in &atoms {
                            apply_fact_to_ast(ast, atom, &symbols, false);
                        }
                    }
                    RetractOutcome::DomainShrunk => {
                        // Instances whose only positive subgoal was a
                        // stripped `$dom` guard would wrongly survive a
                        // warm retract. Apply every edit to the retained
                        // AST and re-ground once.
                        return self.cold_update(&atoms, &symbols, false);
                    }
                }
            }
            None => {
                let mut touched: Vec<AtomId> = Vec::new();
                let mut renames: Vec<RuleRename> = Vec::new();
                for atom in &atoms {
                    let ground = self.fixed.as_mut().expect("fixed or grounder");
                    let Some(id) = find_ast_atom(ground, atom, &symbols) else {
                        continue;
                    };
                    let Some(&rid) = ground
                        .rules_with_head(id)
                        .iter()
                        .find(|&&r| ground.rule(r).is_fact())
                    else {
                        continue;
                    };
                    ground.remove_rule_logged(rid, &mut renames);
                    self.dirty.push(id);
                    touched.push(id);
                }
                if !touched.is_empty() {
                    self.note_mutation(&touched, &[], &renames);
                }
            }
        }
        Ok(())
    }

    /// Assert a batch of **rules**, written as source text (facts are
    /// allowed and take the fact path). The existing grounding is
    /// extended in place: each new rule is compiled and joined once over
    /// the retained envelope, the whole batch runs **one** envelope-delta
    /// round, pruned negative literals whose atoms the new rules derive
    /// are resurrected, and only the new/changed heads' forward
    /// dependency cone is re-solved on the next warm solve. Falls back to
    /// at most one cold re-ground where a warm delta would be unsound
    /// (first unsafe rule of a previously-safe active-domain program, or
    /// a grounder that already lost precision).
    pub fn assert_rules(&mut self, rules: &str) -> Result<(), Error> {
        let parsed = afp_datalog::parse_program(rules)?;
        if parsed.rules.is_empty() {
            return Ok(());
        }
        self.stats.rule_asserts += parsed.rules.len() as u64;
        match &mut self.grounder {
            Some(g) => {
                if !g.supports_incremental() {
                    return self.cold_rule_update(&parsed.rules, &parsed.symbols, true);
                }
                let ground_started = Instant::now();
                let outcome = g.assert_rules(&parsed.rules, &parsed.symbols);
                self.phases.ground_ns += ground_started.elapsed().as_nanos() as u64;
                match outcome {
                    Ok(RuleAssertOutcome::Applied(effect)) => {
                        if effect.fresh {
                            self.dirty.extend_from_slice(&effect.changed);
                            self.note_mutation(
                                &effect.changed,
                                &effect.new_edge_targets,
                                &effect.renames,
                            );
                            self.stats.delta_rounds += 1;
                        }
                        // Mirror into the retained AST: a later cold
                        // fallback re-grounds from it and must see these
                        // rules.
                        let ast = self.ast.as_mut().expect("grounder sessions retain the AST");
                        for rule in &parsed.rules {
                            apply_rule_to_ast(ast, rule, &parsed.symbols, true);
                        }
                    }
                    Ok(RuleAssertOutcome::NeedsCold) => {
                        return self.cold_rule_update(&parsed.rules, &parsed.symbols, true);
                    }
                    Err(e) => {
                        self.recover_if_poisoned();
                        return Err(e.into());
                    }
                }
            }
            None => return self.apply_ground_rules(&parsed, true),
        }
        Ok(())
    }

    /// Retract a batch of rules previously stated in the program or
    /// asserted (facts allowed). Rules are matched **structurally**
    /// against their source form — same literal order, same variable
    /// names; unknown rules are ignored. Exactly the rules' ground
    /// instances are dropped in place; only a batch that actually shrinks
    /// the active domain (its facts and rule constants jointly hold some
    /// term's last references) falls back to a single cold re-ground.
    pub fn retract_rules(&mut self, rules: &str) -> Result<(), Error> {
        let parsed = afp_datalog::parse_program(rules)?;
        if parsed.rules.is_empty() {
            return Ok(());
        }
        self.stats.rule_retracts += parsed.rules.len() as u64;
        match &mut self.grounder {
            Some(g) => {
                if g.is_poisoned() {
                    return self.cold_rule_update(&parsed.rules, &parsed.symbols, false);
                }
                let ground_started = Instant::now();
                let outcome = g.retract_rules(&parsed.rules, &parsed.symbols);
                self.phases.ground_ns += ground_started.elapsed().as_nanos() as u64;
                match outcome {
                    RetractOutcome::Applied(effect) => {
                        if effect.fresh {
                            self.dirty.extend_from_slice(&effect.changed);
                            self.note_mutation(
                                &effect.changed,
                                &effect.new_edge_targets,
                                &effect.renames,
                            );
                        }
                        let ast = self.ast.as_mut().expect("grounder sessions retain the AST");
                        for rule in &parsed.rules {
                            apply_rule_to_ast(ast, rule, &parsed.symbols, false);
                        }
                    }
                    RetractOutcome::DomainShrunk => {
                        return self.cold_rule_update(&parsed.rules, &parsed.symbols, false);
                    }
                }
            }
            None => return self.apply_ground_rules(&parsed, false),
        }
        Ok(())
    }

    /// Rule deltas on a grounder-less session ([`Engine::load_ground`]):
    /// exact for ground rules, rejected otherwise.
    fn apply_ground_rules(&mut self, parsed: &Program, assert: bool) -> Result<(), Error> {
        for rule in &parsed.rules {
            if !rule.head.is_ground() || rule.body.iter().any(|l| !l.atom.is_ground()) {
                return Err(Error::NotGroundRule(afp_datalog::ast::display_rule(
                    rule,
                    &parsed.symbols,
                )));
            }
        }
        let mut touched: Vec<AtomId> = Vec::new();
        let mut edge_targets: Vec<AtomId> = Vec::new();
        let mut renames: Vec<RuleRename> = Vec::new();
        for rule in &parsed.rules {
            let ground = self.fixed.as_mut().expect("fixed or grounder");
            let head = intern_ast_atom(ground, &rule.head, &parsed.symbols);
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for lit in &rule.body {
                let id = intern_ast_atom(ground, &lit.atom, &parsed.symbols);
                if lit.positive {
                    pos.push(id);
                } else {
                    neg.push(id);
                }
            }
            let candidate = GroundRule::new(head, pos.clone(), neg.clone());
            let existing = ground
                .rules_with_head(head)
                .iter()
                .find(|&&r| *ground.rule(r) == candidate)
                .copied();
            match (assert, existing) {
                (true, None) => {
                    edge_targets.extend_from_slice(&pos);
                    edge_targets.extend_from_slice(&neg);
                    ground.push_rule(head, pos, neg);
                    self.dirty.push(head);
                    touched.push(head);
                }
                (false, Some(rid)) => {
                    ground.remove_rule_logged(rid, &mut renames);
                    self.dirty.push(head);
                    touched.push(head);
                }
                _ => {} // idempotent no-op
            }
        }
        if !touched.is_empty() {
            self.note_mutation(&touched, &edge_targets, &renames);
        }
        Ok(())
    }

    /// Apply a batch of rule updates by editing the retained source
    /// program and re-grounding cold **once** — the sound fallback where
    /// a warm rule delta is not. Commit-on-success, like
    /// [`Session::cold_update`].
    fn cold_rule_update(
        &mut self,
        rules: &[Rule],
        from: &SymbolStore,
        assert: bool,
    ) -> Result<(), Error> {
        self.cold_reground(|ast| {
            for rule in rules {
                apply_rule_to_ast(ast, rule, from, assert);
            }
        })
    }

    /// The shared cold-fallback protocol: clone the retained AST, let
    /// `apply_edits` rewrite it, re-ground once, and commit AST +
    /// grounder together. On a re-ground error (e.g. a budget) the
    /// session keeps its previous AST and grounder, so the failed update
    /// leaves no trace a later fallback could resurrect. Atom ids change
    /// on success, so every piece of warm state is dropped.
    fn cold_reground(&mut self, apply_edits: impl FnOnce(&mut Program)) -> Result<(), Error> {
        let mut ast = self.ast.clone().expect("grounder sessions retain the AST");
        apply_edits(&mut ast);
        let ground_started = Instant::now();
        self.grounder = Some(IncrementalGrounder::new(&ast, &self.config.ground)?);
        self.phases.ground_ns += ground_started.elapsed().as_nanos() as u64;
        self.ast = Some(ast);
        self.stats.regrounds += 1;
        self.clear_warm_state();
        Ok(())
    }

    /// Solve under the session's default semantics.
    pub fn solve(&mut self) -> Result<Model, Error> {
        self.solve_with(self.config.semantics)
    }

    /// Solve under an explicit semantics, sharing the session's grounding.
    pub fn solve_with(&mut self, semantics: Semantics) -> Result<Model, Error> {
        let relevance = self.config.relevance.clone();
        self.solve_inner(semantics, &relevance)
    }

    /// Solve under the session's default semantics, restricted to the
    /// dependency cone of these ground query atoms (written as text, e.g.
    /// `"wins(a)"`) — a per-solve version of [`EngineBuilder::relevance`].
    /// Atoms outside the cone have no rules in the restricted program and
    /// report `False`; only query truth values within the cone are
    /// meaningful. The solve is never warm-seeded, and it neither uses
    /// nor evicts the session's cached condensation and memoized model —
    /// a later unrestricted solve picks them up where it left them.
    /// Repeated restricted solves of the **same** query set reuse a
    /// per-restriction condensation cache
    /// ([`SessionStats::restricted_cond_hits`]), invalidated by any
    /// mutation.
    pub fn solve_restricted<I, S>(&mut self, queries: I) -> Result<Model, Error>
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let queries: Vec<String> = queries.into_iter().map(Into::into).collect();
        self.solve_inner(self.config.semantics, &queries)
    }

    fn solve_inner(&mut self, semantics: Semantics, relevance: &[String]) -> Result<Model, Error> {
        if self.grounder.as_ref().is_some_and(|g| g.is_poisoned()) {
            // A previous batch errored mid-delta; the current grounding
            // may be missing consequences. Re-ground cold before solving.
            self.recover_from_poison()?;
        }
        self.stats.solves += 1;
        let record_trace = self.config.record_trace;
        let warm_wfs = matches!(semantics, Semantics::WellFounded { .. }) && relevance.is_empty();
        // Memoized read path: a well-founded re-solve with no pending
        // deltas returns the previous snapshot and model as pure pointer
        // copies — zero deep clones, zero fixpoint work. (`snapshot` is
        // cleared by every mutation, so its presence certifies that
        // `last_model` still describes the current program; trace
        // recording recomputes, because the memo keeps no trace.)
        if warm_wfs && !record_trace && self.dirty.is_empty() {
            if let (Some(snap), Some(model)) = (&self.snapshot, &self.last_model) {
                self.stats.snapshot_reuses += 1;
                self.stats.warm_solves += 1;
                return Ok(Model {
                    ground: Arc::clone(snap),
                    semantics,
                    assignment: Arc::clone(model),
                    stable: Vec::new(),
                    complete: true,
                    trace: None,
                });
            }
        }
        // The affected cone of the pending deltas — what both warm paths
        // need — computed before the program is borrowed for solving.
        let affected = warm_wfs.then(|| self.affected_cone());
        let ground = self.snapshot();
        let restricted = self.restrict_for_relevance(relevance, &ground)?;
        let solve_on: &GroundProgram = restricted.as_ref().map(|(p, _)| p).unwrap_or(&ground);

        let mut trace: Option<AfpTrace> = None;
        let mut stable: Vec<AtomSet> = Vec::new();
        let mut complete = true;
        let assignment = match semantics {
            // Trace recording needs the global alternating sequence, so
            // `SccStratified` falls back to the global path there.
            Semantics::WellFounded {
                strategy: WfStrategy::SccStratified,
            } if !record_trace => {
                let condense_started = Instant::now();
                let cond = match &restricted {
                    None => {
                        // Reuse the memoized condensation of the full
                        // program — kept current across mutations by
                        // in-place repair, so its presence means it
                        // condenses exactly the program being solved.
                        match self.scc_cond.take() {
                            Some(cond) => cond,
                            None => {
                                self.stats.condensation_builds += 1;
                                Condensation::of(solve_on)
                            }
                        }
                    }
                    Some((_, key)) => {
                        // A restricted solve condenses the *restricted*
                        // program; the session's full-program memo must
                        // survive untouched, but repeated solves of the
                        // same restriction hit their own cache (cleared
                        // on any mutation).
                        match self.restricted_conds.iter().position(|(k, _)| k == key) {
                            Some(i) => {
                                self.stats.restricted_cond_hits += 1;
                                self.restricted_conds.swap_remove(i).1
                            }
                            None => {
                                self.stats.condensation_builds += 1;
                                Condensation::of(solve_on)
                            }
                        }
                    }
                };
                self.phases.condense_ns += condense_started.elapsed().as_nanos() as u64;
                let previous = match (&restricted, &self.last_model, &affected) {
                    (None, Some(model), Some(aff)) => Some((model.as_ref(), aff)),
                    _ => None,
                };
                let solve_started = Instant::now();
                let result = afp_semantics::modular_wfs_scheduled(
                    solve_on,
                    &cond,
                    previous,
                    self.scheduler(),
                );
                self.phases.solve_ns += solve_started.elapsed().as_nanos() as u64;
                self.phases.busy_ns += result.sched.busy_ns;
                self.phases.steal_ns += result.sched.steal_ns;
                self.phases.sleep_ns += result.sched.sleep_ns;
                self.stats.scc_solves += 1;
                self.stats.last_components = result.components;
                self.stats.last_components_evaluated = result.evaluated;
                self.stats.last_components_reused = result.reused;
                self.stats.last_seed_size = result.reused_atoms;
                self.stats.last_wavefronts = result.sched.wavefronts;
                self.stats.last_ready_width = result.sched.max_ready_width;
                self.stats.stolen_tasks += result.sched.stolen_tasks;
                if result.sched.parallel {
                    self.stats.par_components += result.sched.tasks as u64;
                } else {
                    self.stats.seq_components += result.sched.tasks as u64;
                }
                if result.reused > 0 {
                    self.stats.warm_solves += 1;
                }
                let model = Arc::new(result.model);
                match &restricted {
                    None => {
                        self.scc_cond = Some(cond);
                        // Retention is a pointer copy: the session and the
                        // returned `Model` share one allocation.
                        self.last_model = Some(Arc::clone(&model));
                        self.dirty.clear();
                    }
                    Some((_, key)) => {
                        if self.restricted_conds.len() >= RESTRICTED_COND_CACHE_CAP {
                            self.restricted_conds.remove(0); // oldest entry
                        }
                        self.restricted_conds.push((key.clone(), cond));
                    }
                }
                model
            }
            Semantics::WellFounded { strategy } => {
                let chain = match strategy {
                    WfStrategy::Global(chain) => chain,
                    WfStrategy::SccStratified => Strategy::default(),
                };
                let seed = match (&self.last_model, &affected, &restricted) {
                    (Some(old), Some(aff), None) => AtomSet::from_iter(
                        solve_on.atom_count(),
                        old.neg.iter().filter(|&a| !aff.contains(a)),
                    ),
                    _ => solve_on.empty_set(),
                };
                if !seed.is_empty() {
                    self.stats.warm_solves += 1;
                }
                self.stats.last_seed_size = seed.count();
                let solve_started = Instant::now();
                let result = alternating_fixpoint_from(
                    solve_on,
                    &AfpOptions {
                        strategy: chain,
                        record_trace,
                    },
                    &seed,
                );
                let solve_ns = solve_started.elapsed().as_nanos() as u64;
                self.phases.solve_ns += solve_ns;
                self.phases.busy_ns += solve_ns; // single-threaded: all busy
                trace = result.trace;
                let model = Arc::new(result.model);
                if restricted.is_none() {
                    self.last_model = Some(Arc::clone(&model));
                    self.dirty.clear();
                }
                model
            }
            Semantics::Stable { max_models } => {
                let result = afp_semantics::enumerate_stable(
                    solve_on,
                    &afp_semantics::EnumerateOptions {
                        max_models,
                        max_nodes: self.config.stable_search_nodes.unwrap_or(usize::MAX),
                    },
                );
                complete = result.complete;
                stable = result.models;
                Arc::new(afp_semantics::cautious_consequences(
                    &stable,
                    solve_on.atom_count(),
                ))
            }
            Semantics::Fitting => Arc::new(afp_semantics::fitting_model(solve_on).model),
            Semantics::Perfect => match afp_semantics::perfect_model(solve_on) {
                Some(r) => Arc::new(r.model),
                None => return Err(Error::NotLocallyStratified),
            },
            Semantics::Inflationary => {
                let r = afp_semantics::inflationary_fixpoint(solve_on);
                let neg = r.model.complement();
                Arc::new(PartialModel::new(r.model, neg))
            }
        };
        Ok(Model {
            ground: restricted.map(|(p, _)| Arc::new(p)).unwrap_or(ground),
            semantics,
            assignment,
            stable,
            complete,
            trace,
        })
    }

    /// Apply a batch of fact updates by editing the retained source
    /// program and re-grounding cold **once** — the sound fallback where
    /// a warm delta is not (see `assert_facts` / `retract_facts`).
    /// Commit-on-success; see [`Session::cold_reground`].
    fn cold_update(
        &mut self,
        atoms: &[Atom],
        from: &SymbolStore,
        assert: bool,
    ) -> Result<(), Error> {
        self.cold_reground(|ast| {
            for atom in atoms {
                apply_fact_to_ast(ast, atom, from, assert);
            }
        })
    }

    /// Re-ground cold from the retained AST after a mid-delta grounding
    /// error poisoned the grounder. The AST never contains a failed
    /// batch (mirroring happens only after the grounder succeeds), so a
    /// successful recovery restores exactly the last consistent program
    /// state. On failure the poisoned grounder is kept **as is** — its
    /// `is_poisoned` flag stays set, so every later solve re-attempts
    /// recovery (and surfaces the error) before trusting the grounding;
    /// no path hands a half-extended program to a fixpoint computation.
    fn recover_from_poison(&mut self) -> Result<(), Error> {
        let ast = self.ast.clone().expect("grounder sessions retain the AST");
        self.grounder = Some(IncrementalGrounder::new(&ast, &self.config.ground)?);
        self.stats.regrounds += 1;
        self.clear_warm_state();
        Ok(())
    }

    /// Recovery entry point for the update error paths, where the
    /// *original* batch error is about to surface and a recovery failure
    /// must not mask it. Explicitly drops the recovery error: the
    /// grounder then stays poisoned and [`Session::solve_with`] (which
    /// checks the flag first) re-attempts recovery — surfacing the
    /// grounding error instead of solving over a half-extended program.
    fn recover_if_poisoned(&mut self) {
        if self.grounder.as_ref().is_some_and(|g| g.is_poisoned())
            && self.recover_from_poison().is_err()
        {
            debug_assert!(
                self.grounder.as_ref().is_some_and(|g| g.is_poisoned()),
                "a failed recovery must leave the poison flag set"
            );
        }
    }

    /// Test-only fault injection: poison the live grounder and replace
    /// the session's grounding budgets, so the recovery re-ground can be
    /// driven into errors that are unreachable through the public API
    /// (the retained AST always re-grounds within the budgets that
    /// admitted it — see the double-fault regression test).
    #[doc(hidden)]
    pub fn inject_grounder_fault_for_testing(&mut self, options: GroundOptions) {
        self.config.ground = options;
        if let Some(g) = self.grounder.as_mut() {
            g.poison_for_testing();
        }
    }

    /// The program mutated in place: models must re-snapshot, the
    /// per-restriction condensation cache is stale, and the memoized
    /// condensation is **repaired** from the delta instead of dropped —
    /// `touched`, `edge_targets`, and `renames` are the
    /// [`CondensationDelta`] contract (heads whose rule set changed,
    /// targets of possibly-new dependency edges, swap-remove rule-id
    /// renames in order). Warm models stay — the `dirty` set records
    /// what they may no longer be right about.
    fn note_mutation(
        &mut self,
        touched: &[AtomId],
        edge_targets: &[AtomId],
        renames: &[RuleRename],
    ) {
        self.snapshot = None;
        self.restricted_conds.clear();
        if let Some(mut cond) = self.scc_cond.take() {
            let repair_started = Instant::now();
            let prog = match &self.grounder {
                Some(g) => g.program(),
                None => self.fixed.as_ref().expect("fixed or grounder"),
            };
            let repair = cond.apply_delta(
                prog,
                &CondensationDelta {
                    touched,
                    new_edge_targets: edge_targets,
                    renames,
                },
            );
            self.phases.repair_ns += repair_started.elapsed().as_nanos() as u64;
            self.stats.condensation_repairs += 1;
            self.stats.last_repair_atoms = repair.atoms_visited;
            self.stats.last_repair_edges = repair.edges_visited;
            // Differential safety net: in debug builds every repair is
            // checked against a from-scratch build (same partition, same
            // rule sets, both orders topologically valid).
            #[cfg(debug_assertions)]
            {
                let fresh = Condensation::of(prog);
                debug_assert!(
                    cond.same_decomposition(&fresh) && cond.is_consistent_with(prog),
                    "condensation repair must reproduce the from-scratch decomposition"
                );
            }
            self.scc_cond = Some(cond);
        }
    }

    /// Atom ids changed (cold re-ground): drop every piece of warm state.
    fn clear_warm_state(&mut self) {
        self.last_model = None;
        self.scc_cond = None;
        self.restricted_conds.clear();
        self.dirty.clear();
        self.snapshot = None;
    }

    /// The forward dependency cone of the pending deltas: the dirty atoms
    /// closed under "some rule's body mentions it → the rule's head".
    /// Everything outside provably keeps its truth value (the
    /// relevance/splitting argument), which is what both warm re-solve
    /// paths rely on.
    fn affected_cone(&self) -> AtomSet {
        let prog = self.ground();
        let n = prog.atom_count();
        let mut affected = AtomSet::empty(n);
        let mut queue: Vec<AtomId> = Vec::new();
        for &a in &self.dirty {
            if affected.insert(a.0) {
                queue.push(a);
            }
        }
        while let Some(atom) = queue.pop() {
            for &rid in prog
                .rules_with_pos(atom)
                .iter()
                .chain(prog.rules_with_neg(atom).iter())
            {
                let head = prog.rule(rid).head;
                if affected.insert(head.0) {
                    queue.push(head);
                }
            }
        }
        affected
    }

    fn snapshot(&mut self) -> Arc<GroundProgram> {
        if self.snapshot.is_none() {
            // `GroundProgram` storage is copy-on-write: this clone is a
            // handful of reference-count bumps however large the program,
            // and later session mutations copy only the segments they
            // touch — models keep an immutable view for free.
            self.snapshot = Some(Arc::new(self.ground().clone()));
            self.stats.snapshot_clones += 1;
        }
        Arc::clone(self.snapshot.as_ref().expect("just set"))
    }

    /// Apply a relevance restriction (the engine's configured one or a
    /// [`Session::solve_restricted`] query set). Queries that fail to
    /// parse are an error; queries naming atoms the grounder never
    /// materialized resolve to nothing (such atoms are false in every
    /// semantics, and the empty cone answers exactly that). Alongside the
    /// restricted program, returns the resolved seed atom set (sorted,
    /// deduplicated) — the key of the per-restriction condensation cache
    /// (atom ids are stable between mutations, and any mutation clears
    /// the cache, so an equal seed set means an identical restricted
    /// program).
    fn restrict_for_relevance(
        &self,
        queries: &[String],
        ground: &GroundProgram,
    ) -> Result<Option<(GroundProgram, Vec<AtomId>)>, Error> {
        if queries.is_empty() {
            return Ok(None);
        }
        let mut seeds = relevance_seeds(queries, ground)?;
        seeds.sort_unstable();
        seeds.dedup();
        let restricted = afp_core::relevance::restrict_to_query(ground, &seeds);
        Ok(Some((restricted, seeds)))
    }
}

/// Parse query atoms (text) and resolve them against a ground program.
/// Queries naming atoms the grounder never materialized resolve to
/// nothing — such atoms are false in every semantics, and the empty cone
/// answers exactly that.
fn relevance_seeds(queries: &[String], ground: &GroundProgram) -> Result<Vec<AtomId>, Error> {
    let mut seeds: Vec<AtomId> = Vec::new();
    for query in queries {
        let mut tmp = Program::new();
        let atom = afp_datalog::parser::parse_atom_into(query, &mut tmp)?;
        if let Some(id) = find_ast_atom(ground, &atom, &tmp.symbols) {
            seeds.push(id);
        }
    }
    Ok(seeds)
}

/// Solve the well-founded model of `ground` restricted to the dependency
/// cone of `queries` — the session-free, read-side counterpart of
/// [`Session::solve_restricted`], used by [`crate::service::ModelSnapshot`]
/// to answer relevance-restricted subqueries against a pinned immutable
/// snapshot from any reader thread. Atoms outside the cone have no rules
/// in the restricted program and report `False`; only query truth values
/// within the cone are meaningful.
pub(crate) fn restricted_wfs_model(
    ground: &GroundProgram,
    queries: &[String],
) -> Result<Model, Error> {
    let seeds = relevance_seeds(queries, ground)?;
    let restricted = afp_core::relevance::restrict_to_query(ground, &seeds);
    let cond = Condensation::of(&restricted);
    let result = afp_semantics::modular_wfs_with(&restricted, &cond);
    Ok(Model {
        ground: Arc::new(restricted),
        semantics: Semantics::WellFounded {
            strategy: WfStrategy::SccStratified,
        },
        assignment: Arc::new(result.model),
        stable: Vec::new(),
        complete: true,
        trace: None,
    })
}

/// Parse update text into a batch of ground fact atoms, rejecting
/// anything that is not a ground fact. All facts are validated before any
/// is applied, so a rejected batch leaves the session untouched.
pub(crate) fn parse_fact_batch(facts: &str) -> Result<(Vec<Atom>, SymbolStore), Error> {
    let parsed = afp_datalog::parse_program(facts)?;
    for rule in &parsed.rules {
        if !rule.is_fact() || !rule.head.is_ground() {
            return Err(Error::NotAFact(afp_datalog::ast::display_rule(
                rule,
                &parsed.symbols,
            )));
        }
    }
    let atoms = parsed.rules.into_iter().map(|r| r.head).collect();
    Ok((atoms, parsed.symbols))
}

/// Add or remove a ground fact in a retained source program. Idempotent
/// in both directions; used by the warm update paths (to keep the AST in
/// lockstep with the grounder) and by the cold fallback itself.
fn apply_fact_to_ast(
    ast: &mut Program,
    atom: &afp_datalog::ast::Atom,
    from: &afp_datalog::SymbolStore,
    assert: bool,
) {
    let imported = afp_datalog::ast::import_atom(&mut ast.symbols, atom, from);
    if assert {
        let present = ast.rules.iter().any(|r| r.is_fact() && r.head == imported);
        if !present {
            ast.push(afp_datalog::ast::Rule::fact(imported));
        }
    } else {
        ast.rules.retain(|r| !(r.is_fact() && r.head == imported));
    }
}

/// Add or remove a rule in a retained source program. Idempotent in both
/// directions (rules are matched structurally); used by the warm rule
/// delta paths to keep the AST in lockstep with the grounder and by the
/// cold fallback itself.
fn apply_rule_to_ast(
    ast: &mut Program,
    rule: &Rule,
    from: &afp_datalog::SymbolStore,
    assert: bool,
) {
    let imported = afp_datalog::ast::import_rule(&mut ast.symbols, rule, from);
    if assert {
        if !ast.rules.contains(&imported) {
            ast.push(imported);
        }
    } else {
        ast.rules.retain(|r| *r != imported);
    }
}

/// Intern an AST atom (expressed against `from`) into a ground program.
fn intern_ast_atom(
    ground: &mut GroundProgram,
    atom: &afp_datalog::ast::Atom,
    from: &afp_datalog::SymbolStore,
) -> AtomId {
    fn intern_term(
        t: &afp_datalog::ast::Term,
        ground: &mut GroundProgram,
        from: &afp_datalog::SymbolStore,
    ) -> afp_datalog::atoms::ConstId {
        match t {
            afp_datalog::ast::Term::Const(c) => {
                let sym = ground.symbols_mut().intern(from.name(*c));
                ground.base_mut().intern_const(sym)
            }
            afp_datalog::ast::Term::App(f, args) => {
                let ids: Vec<_> = args.iter().map(|a| intern_term(a, ground, from)).collect();
                let sym = ground.symbols_mut().intern(from.name(*f));
                ground
                    .base_mut()
                    .intern_term(afp_datalog::atoms::GroundTerm::App(
                        sym,
                        ids.into_boxed_slice(),
                    ))
            }
            afp_datalog::ast::Term::Var(_) => unreachable!("caller checked groundness"),
        }
    }
    let args: Vec<_> = atom
        .args
        .iter()
        .map(|t| intern_term(t, ground, from))
        .collect();
    let pred = ground.symbols_mut().intern(from.name(atom.pred));
    ground.intern_atom_ids(pred, &args)
}

/// Resolve an AST atom against a ground program without interning.
fn find_ast_atom(
    ground: &GroundProgram,
    atom: &afp_datalog::ast::Atom,
    from: &afp_datalog::SymbolStore,
) -> Option<AtomId> {
    fn find_term(
        t: &afp_datalog::ast::Term,
        ground: &GroundProgram,
        from: &afp_datalog::SymbolStore,
    ) -> Option<afp_datalog::atoms::ConstId> {
        match t {
            afp_datalog::ast::Term::Const(c) => {
                let sym = ground.symbols().get(from.name(*c))?;
                ground
                    .base()
                    .find_term(&afp_datalog::atoms::GroundTerm::Const(sym))
            }
            afp_datalog::ast::Term::App(f, args) => {
                let ids: Option<Vec<_>> = args.iter().map(|a| find_term(a, ground, from)).collect();
                let sym = ground.symbols().get(from.name(*f))?;
                ground
                    .base()
                    .find_term(&afp_datalog::atoms::GroundTerm::App(
                        sym,
                        ids?.into_boxed_slice(),
                    ))
            }
            afp_datalog::ast::Term::Var(_) => None,
        }
    }
    let args: Option<Vec<_>> = atom
        .args
        .iter()
        .map(|t| find_term(t, ground, from))
        .collect();
    let pred = ground.symbols().get(from.name(atom.pred))?;
    ground.base().find_atom(pred, &args?)
}

/// A solved program under one semantics: a three-valued assignment over
/// the ground atoms, plus semantics-specific extras (stable model list,
/// alternating-sequence trace). All five [`Semantics`] produce this type.
pub struct Model {
    pub(crate) ground: Arc<GroundProgram>,
    pub(crate) semantics: Semantics,
    /// Shared with the session's memo (and, through `afp::service`, with
    /// every pinned snapshot of this program version).
    pub(crate) assignment: Arc<PartialModel>,
    pub(crate) stable: Vec<AtomSet>,
    pub(crate) complete: bool,
    pub(crate) trace: Option<AfpTrace>,
}

impl Model {
    /// Three-valued truth of `pred(args…)`. Atoms never materialized
    /// during grounding are false (they have no derivation under any of
    /// the five semantics).
    pub fn truth(&self, pred: &str, args: &[&str]) -> Truth {
        match self.ground.find_atom_by_name(pred, args) {
            Some(id) => self.truth_of(id),
            None => Truth::False,
        }
    }

    /// Three-valued truth of an interned atom.
    pub fn truth_of(&self, atom: AtomId) -> Truth {
        self.assignment.truth(atom.0)
    }

    /// The semantics this model was computed under.
    pub fn semantics(&self) -> Semantics {
        self.semantics
    }

    /// Is every atom decided? (For the well-founded semantics a total
    /// model is also the unique stable model — Section 5.)
    pub fn is_total(&self) -> bool {
        self.assignment.is_total()
    }

    /// True atoms, rendered lazily in atom-id order (grounding order, not
    /// alphabetical — collect and sort for display stability).
    pub fn true_atoms(&self) -> impl Iterator<Item = String> + '_ {
        self.assignment
            .pos
            .iter()
            .map(|id| self.ground.atom_name(AtomId(id)))
    }

    /// False atoms within the materialized base, rendered lazily.
    pub fn false_atoms(&self) -> impl Iterator<Item = String> + '_ {
        self.assignment
            .neg
            .iter()
            .map(|id| self.ground.atom_name(AtomId(id)))
    }

    /// Undefined atoms, rendered lazily.
    pub fn undefined_atoms(&self) -> impl Iterator<Item = String> + '_ {
        (0..self.ground.atom_count() as u32)
            .filter(|&id| self.assignment.truth(id) == Truth::Undefined)
            .map(|id| self.ground.atom_name(AtomId(id)))
    }

    /// The underlying three-valued assignment.
    pub fn partial_model(&self) -> &PartialModel {
        &self.assignment
    }

    /// The ground program this model assigns over.
    pub fn ground(&self) -> &GroundProgram {
        &self.ground
    }

    /// The enumerated stable models (empty unless solved with
    /// [`Semantics::Stable`]; an empty list there means **no** stable
    /// model exists, in which case the three-valued assignment is
    /// everywhere undefined).
    pub fn stable_models(&self) -> &[AtomSet] {
        &self.stable
    }

    /// False when stable enumeration was cut off by `max_models`.
    pub fn is_complete(&self) -> bool {
        self.complete
    }

    /// The alternating sequence (Table I), when tracing was enabled and
    /// the semantics records one.
    pub fn trace(&self) -> Option<&AfpTrace> {
        self.trace.as_ref()
    }

    /// Render a justification tree for `pred(args…)` in the paper's
    /// vocabulary (derivations, witnesses of unusability, undefined
    /// dependencies), to `depth` levels.
    ///
    /// Returns `None` when the model is not explainable this way: atoms
    /// the grounder never materialized, and semantics whose conclusions
    /// are not `S_P`-replayable (the inflationary fixpoint, stable-model
    /// collapses with more than one model).
    pub fn explain(&self, pred: &str, args: &[&str], depth: usize) -> Option<String> {
        let atom = self.ground.find_atom_by_name(pred, args)?;
        let explainer = afp_semantics::Explainer::try_new(&self.ground, &self.assignment)?;
        Some(explainer.render(atom, depth))
    }
}

impl std::fmt::Debug for Model {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Model")
            .field("semantics", &self.semantics.name())
            .field("atoms", &self.ground.atom_count())
            .field("true", &self.assignment.pos.count())
            .field("false", &self.assignment.neg.count())
            .field("total", &self.is_total())
            .finish()
    }
}
