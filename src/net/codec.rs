//! One protocol, three front ends: the shared command/response codec.
//!
//! The stdin `--serve` mode, the TCP transport and the unix-socket
//! transport all speak the same line-oriented command grammar —
//!
//! ```text
//! query ATOM            truth of ATOM in the current version
//! at VERSION ATOM       truth of ATOM in a cached earlier version
//! assert TEXT           submit rules/facts (rule path); prints the version
//! retract TEXT          remove rules/facts (rule path)
//! assert-facts TEXT     submit ground facts (fact fast path)
//! retract-facts TEXT    remove ground facts (fact fast path)
//! model                 the current version's full model
//! version               the current version number
//! log SINCE             applied deltas with version > SINCE
//! stats                 session + service + net counters as JSON
//! metrics               telemetry exposition: phase histograms + counters
//! ping                  readiness probe: version + writer liveness + uptime
//! checkpoint            write a durability checkpoint now (journaled services)
//! quit                  end the session (EOF works too)
//! ```
//!
//! — and render responses through the same functions, so a malformed
//! command produces the *same structured error shape* everywhere:
//! `{"error":{"kind":…,"message":…}}` in JSON (the only wire form) or
//! `error: message` in plain stdin mode. Command failures are data, not
//! process failures: front ends keep serving after reporting them, and
//! only transport failures terminate a session abnormally.
//!
//! The wire transport frames each payload (request line out, JSON
//! object back) with a **4-byte big-endian length prefix**
//! ([`write_frame`] / [`read_frame`]); the stdin front end frames by
//! newline. Nothing else differs.
//!
//! [`stats_json`] is the single serializer behind every `--stats` and
//! `stats` output, JSON and `%`-comment plain mode alike — the two
//! cannot drift because there is only one.

use std::io::{self, Read, Write};

use crate::service::ModelSnapshot;
use crate::telemetry::stat_object;
use crate::{
    AppliedDelta, AsyncService, DeltaKind, Error, JournalStats, Model, NetStats, Service,
    ServiceStats, SessionStats, Truth,
};

// ---------------------------------------------------------------------
// Requests
// ---------------------------------------------------------------------

/// One parsed protocol command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// `query ATOM` — truth of a ground atom in the current version.
    Query {
        /// The ground atom text, e.g. `wins(a)`.
        atom: String,
    },
    /// `at VERSION ATOM` — truth in a cached earlier version.
    At {
        /// The pinned version.
        version: u64,
        /// The ground atom text.
        atom: String,
    },
    /// `assert`/`retract`/`assert-facts`/`retract-facts TEXT`.
    Submit {
        /// Which delta path the text takes.
        kind: DeltaKind,
        /// The program text.
        text: String,
    },
    /// `model` — the current version's full three-valued model.
    Model,
    /// `version` — the current version number.
    Version,
    /// `log SINCE` — applied deltas with version > `SINCE`.
    Changelog {
        /// The anchor version (deltas strictly after it).
        since: u64,
    },
    /// `stats` — counters as JSON.
    Stats,
    /// `metrics` — the telemetry tier's exposition: per-phase write-cycle
    /// latency histograms (p50/p90/p99), counters, gauges and the recent
    /// cycle ring, rendered as JSON or Prometheus text per the backend's
    /// configured [`crate::MetricsFormat`].
    Metrics,
    /// `ping` — readiness probe: current version + writer liveness +
    /// uptime, answered from shared memory without touching the write
    /// path (a load balancer health check must not queue behind a slow
    /// cycle).
    Ping,
    /// `checkpoint` — write a durability checkpoint now and compact the
    /// journal prefix it subsumes ([`crate::Service::checkpoint`]).
    Checkpoint,
    /// `quit` / `exit` — end the session.
    Quit,
}

/// Parse one command line. Errors are protocol errors (unknown command,
/// malformed operands) reported back to the client — never transport
/// failures.
pub fn parse_command(line: &str) -> Result<Request, String> {
    let line = line.trim();
    let (command, rest) = line.split_once(char::is_whitespace).unwrap_or((line, ""));
    let rest = rest.trim();
    match command {
        "query" => match parse_query(rest) {
            Ok(_) => Ok(Request::Query { atom: rest.into() }),
            Err(msg) => Err(format!("bad query: {msg}")),
        },
        "at" => {
            let (version, atom) = rest.split_once(char::is_whitespace).unwrap_or((rest, ""));
            let version = version
                .parse::<u64>()
                .map_err(|_| "usage: at VERSION ATOM".to_string())?;
            match parse_query(atom.trim()) {
                Ok(_) => Ok(Request::At {
                    version,
                    atom: atom.trim().into(),
                }),
                Err(msg) => Err(format!("bad query: {msg}")),
            }
        }
        "assert" => Ok(Request::Submit {
            kind: DeltaKind::AssertRules,
            text: rest.into(),
        }),
        "retract" => Ok(Request::Submit {
            kind: DeltaKind::RetractRules,
            text: rest.into(),
        }),
        "assert-facts" => Ok(Request::Submit {
            kind: DeltaKind::AssertFacts,
            text: rest.into(),
        }),
        "retract-facts" => Ok(Request::Submit {
            kind: DeltaKind::RetractFacts,
            text: rest.into(),
        }),
        "model" => Ok(Request::Model),
        "version" => Ok(Request::Version),
        "log" => {
            let since = if rest.is_empty() {
                0
            } else {
                rest.parse::<u64>()
                    .map_err(|_| "usage: log [SINCE]".to_string())?
            };
            Ok(Request::Changelog { since })
        }
        "stats" => Ok(Request::Stats),
        "metrics" => Ok(Request::Metrics),
        "ping" => Ok(Request::Ping),
        "checkpoint" => Ok(Request::Checkpoint),
        "quit" | "exit" => Ok(Request::Quit),
        other => Err(format!(
            "unknown command {other:?} (query/at/assert/retract/assert-facts/\
             retract-facts/model/version/log/stats/metrics/ping/checkpoint/quit)"
        )),
    }
}

/// Render a request back to its command-line spelling — an inverse of
/// [`parse_command`] (`parse_command(render_command(r)) == r`, which
/// `tests/codec_props.rs` property-tests). `Quit` renders as `quit`
/// even though `exit` also parses to it.
pub fn render_command(request: &Request) -> String {
    match request {
        Request::Query { atom } => format!("query {atom}"),
        Request::At { version, atom } => format!("at {version} {atom}"),
        Request::Submit { kind, text } => {
            let word = match kind {
                DeltaKind::AssertRules => "assert",
                DeltaKind::RetractRules => "retract",
                DeltaKind::AssertFacts => "assert-facts",
                DeltaKind::RetractFacts => "retract-facts",
            };
            format!("{word} {text}")
        }
        Request::Model => "model".into(),
        Request::Version => "version".into(),
        Request::Changelog { since } => format!("log {since}"),
        Request::Stats => "stats".into(),
        Request::Metrics => "metrics".into(),
        Request::Ping => "ping".into(),
        Request::Checkpoint => "checkpoint".into(),
        Request::Quit => "quit".into(),
    }
}

/// Parse `pred(c1, …, ck)` into plain names; rejects variables. Shared
/// by the protocol front ends and the CLI's `-q`.
pub fn parse_query(text: &str) -> Result<(String, Vec<String>), String> {
    let mut tmp = crate::Program::new();
    let atom = afp_datalog::parser::parse_atom_into(text, &mut tmp).map_err(|e| e.to_string())?;
    if !atom.is_ground() {
        return Err("query must be a ground atom".into());
    }
    let pred = tmp.symbols.name(atom.pred).to_string();
    let args = atom
        .args
        .iter()
        .map(|t| afp_datalog::ast::display_term(t, &tmp.symbols))
        .collect();
    Ok((pred, args))
}

// ---------------------------------------------------------------------
// Responses
// ---------------------------------------------------------------------

/// One protocol response, renderable as a JSON line ([`render_json`],
/// the wire form) or plain text ([`render_plain`], the stdin default).
#[derive(Debug, Clone)]
pub enum Response {
    /// Truth of one atom in one version.
    Truth {
        /// The version the truth was read from.
        version: u64,
        /// The query text as submitted.
        query: String,
        /// The three-valued verdict.
        truth: Truth,
    },
    /// A submission was applied; `version` first includes it.
    Applied {
        /// The published version.
        version: u64,
    },
    /// The current version number.
    Version {
        /// The version.
        version: u64,
    },
    /// A full model of one pinned version.
    Model {
        /// The pinned snapshot.
        snapshot: ModelSnapshot,
    },
    /// Counters, already serialized by [`stats_json`].
    Stats {
        /// The JSON object.
        json: String,
    },
    /// Telemetry exposition, already rendered by
    /// [`crate::Telemetry::render`] (JSON object or Prometheus text,
    /// per the backend's configured format).
    Metrics {
        /// The rendered exposition, shipped verbatim.
        body: String,
    },
    /// Changelog entries.
    Changelog {
        /// Applied deltas, oldest first.
        entries: Vec<AppliedDelta>,
    },
    /// Readiness probe answer.
    Pong {
        /// The current version.
        version: u64,
        /// Whether the write path is accepting work (`false` once an
        /// async tier's writer thread has stopped).
        writer_live: bool,
        /// Milliseconds since the backend's service was constructed.
        uptime_ms: u64,
    },
    /// A durability checkpoint was written.
    Checkpointed {
        /// The checkpointed version.
        version: u64,
    },
    /// A command failed. The session continues.
    Error {
        /// Stable machine-readable failure class (see [`error_kind`];
        /// `"protocol"` for unparseable commands).
        kind: &'static str,
        /// Human-readable detail.
        message: String,
    },
}

impl Response {
    /// Wrap a command-level failure.
    pub fn protocol_error(message: impl Into<String>) -> Response {
        Response::Error {
            kind: "protocol",
            message: message.into(),
        }
    }

    /// Wrap an engine/service error with its stable kind.
    pub fn from_error(e: &Error) -> Response {
        Response::Error {
            kind: error_kind(e),
            message: e.to_string(),
        }
    }
}

/// Stable machine-readable class for every [`Error`] variant — part of
/// the wire protocol, so clients can branch without string-matching
/// messages.
pub fn error_kind(e: &Error) -> &'static str {
    match e {
        Error::Parse(_) => "parse",
        Error::Ground(_) => "ground",
        Error::NotLocallyStratified => "not-locally-stratified",
        Error::NotAFact(_) => "not-a-fact",
        Error::NotGroundRule(_) => "not-ground-rule",
        Error::WriterAborted => "writer-aborted",
        Error::Overloaded => "overloaded",
        Error::SubmitTimeout => "submit-timeout",
        Error::ServiceStopped => "service-stopped",
        Error::VersionEvicted { .. } => "version-evicted",
        Error::Journal(_) => "journal",
        Error::JournalCorrupt { .. } => "journal-corrupt",
    }
}

/// Spell a [`Truth`] the way the protocol does.
pub fn truth_name(t: Truth) -> &'static str {
    match t {
        Truth::True => "true",
        Truth::False => "false",
        Truth::Undefined => "undefined",
    }
}

/// Render a response as the one-line JSON the wire always speaks (and
/// stdin speaks under `--json`).
pub fn render_json(response: &Response) -> String {
    match response {
        Response::Truth {
            version,
            query,
            truth,
        } => format!(
            "{{\"version\":{version},\"query\":{},\"truth\":{}}}",
            json_str(query),
            json_str(truth_name(*truth))
        ),
        Response::Applied { version } => format!("{{\"ok\":true,\"version\":{version}}}"),
        Response::Version { version } => format!("{{\"version\":{version}}}"),
        Response::Model { snapshot } => model_json(snapshot.version(), snapshot.model()),
        Response::Stats { json } => json.clone(),
        Response::Metrics { body } => body.clone(),
        Response::Changelog { entries } => {
            let body: Vec<String> = entries
                .iter()
                .map(|e| {
                    format!(
                        "{{\"version\":{},\"kind\":{},\"text\":{}}}",
                        e.version,
                        json_str(e.kind.name()),
                        json_str(&e.text)
                    )
                })
                .collect();
            format!("{{\"changelog\":[{}]}}", body.join(","))
        }
        Response::Pong {
            version,
            writer_live,
            uptime_ms,
        } => format!(
            "{{\"pong\":true,\"version\":{version},\"writer_live\":{writer_live},\
             \"uptime_ms\":{uptime_ms}}}"
        ),
        Response::Checkpointed { version } => {
            format!("{{\"ok\":true,\"checkpoint\":{version}}}")
        }
        Response::Error { kind, message } => format!(
            "{{\"error\":{{\"kind\":{},\"message\":{}}}}}",
            json_str(kind),
            json_str(message)
        ),
    }
}

/// Render a response for the plain (non-`--json`) stdin mode. May be
/// multi-line (`model`, `log`).
pub fn render_plain(response: &Response) -> String {
    match response {
        Response::Truth { truth, .. } => format!("{truth:?}"),
        Response::Applied { version } => format!("ok {version}"),
        Response::Version { version } => format!("{version}"),
        Response::Model { snapshot } => {
            let model = snapshot.model();
            let mut out = format!("% version {}", snapshot.version());
            for name in sorted(model.true_atoms()) {
                out.push('\n');
                out.push_str(&name);
                out.push('.');
            }
            for name in sorted(model.undefined_atoms()) {
                out.push('\n');
                out.push_str(&name);
                out.push_str("?  % undefined");
            }
            out
        }
        // Counters stay JSON even in plain interactive mode — they are
        // one opaque machine-readable object either way; the metrics
        // body is likewise already in its final form (JSON or
        // Prometheus text).
        Response::Stats { json } => json.clone(),
        Response::Metrics { body } => body.clone(),
        Response::Changelog { entries } => {
            let mut out = format!("% {} deltas", entries.len());
            for e in entries {
                out.push_str(&format!("\n{} {} {}", e.version, e.kind.name(), e.text));
            }
            out
        }
        Response::Pong {
            version,
            writer_live,
            uptime_ms,
        } => format!(
            "pong version {version} writer {} uptime {uptime_ms}ms",
            if *writer_live { "live" } else { "stopped" }
        ),
        Response::Checkpointed { version } => format!("checkpoint {version}"),
        Response::Error { message, .. } => format!("error: {message}"),
    }
}

/// The canonical JSON for one pinned model version: sorted atom lists,
/// so two bit-identical models render byte-identically — the wire
/// differential test compares these strings directly against cold
/// solves.
pub fn model_json(version: u64, model: &Model) -> String {
    format!(
        "{{\"version\":{version},\"semantics\":{},\"total\":{},\"true\":{},\"false\":{},\
         \"undefined\":{}}}",
        json_str(model.semantics().name()),
        model.is_total(),
        json_list(&sorted(model.true_atoms())),
        json_list(&sorted(model.false_atoms())),
        json_list(&sorted(model.undefined_atoms())),
    )
}

// ---------------------------------------------------------------------
// Execution
// ---------------------------------------------------------------------

/// What a protocol front end needs from the serving stack. Implemented
/// by [`Service`] (direct, caller-thread write cycles) and
/// [`AsyncService`] (dedicated writer thread with admission control);
/// the transport layer wraps the latter to add connection counters.
pub trait ServeBackend: Sync {
    /// Pin the current version.
    fn snapshot(&self) -> ModelSnapshot;
    /// The current version number.
    fn version(&self) -> u64;
    /// Pin a cached earlier version.
    fn at_version(&self, version: u64) -> Result<ModelSnapshot, Error>;
    /// Submit one delta and block until its cycle resolves.
    fn submit(&self, kind: DeltaKind, text: &str) -> Result<u64, Error>;
    /// Applied deltas with version > `since`.
    fn changelog_since(&self, since: u64) -> Result<Vec<AppliedDelta>, Error>;
    /// Readiness probe: the current version, whether the write path is
    /// accepting work, and uptime in milliseconds. Must not queue
    /// behind the writer.
    fn ping(&self) -> (u64, bool, u64);
    /// Write a durability checkpoint now; [`Error::Journal`] on an
    /// unjournaled backend.
    fn checkpoint(&self) -> Result<u64, Error>;
    /// The full `--stats` JSON object for this backend.
    fn stats_json(&self) -> String;
    /// The `metrics` exposition body ([`crate::Telemetry::render`]):
    /// JSON or Prometheus text per the backend's configured format.
    fn metrics_text(&self) -> String;
}

impl ServeBackend for Service {
    fn snapshot(&self) -> ModelSnapshot {
        Service::snapshot(self)
    }
    fn version(&self) -> u64 {
        Service::version(self)
    }
    fn at_version(&self, version: u64) -> Result<ModelSnapshot, Error> {
        Service::at_version(self, version)
    }
    fn submit(&self, kind: DeltaKind, text: &str) -> Result<u64, Error> {
        match kind {
            DeltaKind::AssertFacts => self.assert_facts(text),
            DeltaKind::RetractFacts => self.retract_facts(text),
            DeltaKind::AssertRules => self.assert_rules(text),
            DeltaKind::RetractRules => self.retract_rules(text),
        }
    }
    fn changelog_since(&self, since: u64) -> Result<Vec<AppliedDelta>, Error> {
        Service::changelog_since(self, since)
    }
    fn ping(&self) -> (u64, bool, u64) {
        // Direct services run write cycles on the submitting thread;
        // there is no writer to have died independently.
        (Service::version(self), true, self.uptime_ms())
    }
    fn checkpoint(&self) -> Result<u64, Error> {
        Service::checkpoint(self)
    }
    fn stats_json(&self) -> String {
        stats_json(
            &self.session_stats(),
            Some(&self.stats()),
            None,
            self.journal_stats().as_ref(),
        )
    }
    fn metrics_text(&self) -> String {
        self.telemetry().render()
    }
}

impl ServeBackend for AsyncService {
    fn snapshot(&self) -> ModelSnapshot {
        self.service().snapshot()
    }
    fn version(&self) -> u64 {
        self.service().version()
    }
    fn at_version(&self, version: u64) -> Result<ModelSnapshot, Error> {
        self.service().at_version(version)
    }
    fn submit(&self, kind: DeltaKind, text: &str) -> Result<u64, Error> {
        AsyncService::submit(self, kind, text)?.wait()
    }
    fn changelog_since(&self, since: u64) -> Result<Vec<AppliedDelta>, Error> {
        self.service().changelog_since(since)
    }
    fn ping(&self) -> (u64, bool, u64) {
        (
            self.service().version(),
            self.writer_live(),
            self.service().uptime_ms(),
        )
    }
    fn checkpoint(&self) -> Result<u64, Error> {
        self.service().checkpoint()
    }
    fn stats_json(&self) -> String {
        stats_json(
            &self.service().session_stats(),
            Some(&self.service().stats()),
            Some(&self.stats()),
            self.service().journal_stats().as_ref(),
        )
    }
    fn metrics_text(&self) -> String {
        self.service().telemetry().render()
    }
}

/// Run one parsed command against a backend. [`Request::Quit`] is the
/// caller's to handle (it ends the *session*, not a computation); this
/// function answers it like `version` so misrouted quits stay harmless.
pub fn execute(backend: &dyn ServeBackend, request: &Request) -> Response {
    match request {
        Request::Query { atom } => match parse_query(atom) {
            Ok((pred, args)) => {
                let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                let snapshot = backend.snapshot();
                Response::Truth {
                    version: snapshot.version(),
                    query: atom.clone(),
                    truth: snapshot.truth(&pred, &refs),
                }
            }
            Err(msg) => Response::protocol_error(format!("bad query: {msg}")),
        },
        Request::At { version, atom } => match parse_query(atom) {
            Ok((pred, args)) => match backend.at_version(*version) {
                Ok(snapshot) => {
                    let refs: Vec<&str> = args.iter().map(String::as_str).collect();
                    Response::Truth {
                        version: *version,
                        query: atom.clone(),
                        truth: snapshot.truth(&pred, &refs),
                    }
                }
                Err(e) => Response::from_error(&e),
            },
            Err(msg) => Response::protocol_error(format!("bad query: {msg}")),
        },
        Request::Submit { kind, text } => match backend.submit(*kind, text) {
            Ok(version) => Response::Applied { version },
            Err(e) => Response::from_error(&e),
        },
        Request::Model => Response::Model {
            snapshot: backend.snapshot(),
        },
        Request::Version => Response::Version {
            version: backend.version(),
        },
        Request::Changelog { since } => match backend.changelog_since(*since) {
            Ok(entries) => Response::Changelog { entries },
            Err(e) => Response::from_error(&e),
        },
        Request::Stats => Response::Stats {
            json: backend.stats_json(),
        },
        Request::Metrics => Response::Metrics {
            body: backend.metrics_text(),
        },
        Request::Ping => {
            let (version, writer_live, uptime_ms) = backend.ping();
            Response::Pong {
                version,
                writer_live,
                uptime_ms,
            }
        }
        Request::Checkpoint => match backend.checkpoint() {
            Ok(version) => Response::Checkpointed { version },
            Err(e) => Response::from_error(&e),
        },
        Request::Quit => Response::Version {
            version: backend.version(),
        },
    }
}

// ---------------------------------------------------------------------
// Stats serialization — the one helper behind every --stats output
// ---------------------------------------------------------------------

/// Serialize session (+ optional service + optional net + optional
/// journal) counters as one JSON object:
/// `{"stats":{…}[,"service":{…}][,"net":{…}][,"journal":{…}]}`.
///
/// This is the **only** serializer for these counters — CLI `--json`
/// mode prints the string as-is, plain mode prefixes it with `% stats `
/// (a comment, so downstream fact parsers stay happy), and the wire
/// `stats` command ships it verbatim — so the outputs cannot drift.
///
/// Each section is driven by its stat set's
/// [`crate::telemetry::StatSet`] registration (the `stat_set!` macro
/// next to each struct), whose exhaustive destructuring makes adding a
/// counter without exporting it a compile error — no hand-maintained
/// key list to fall behind.
pub fn stats_json(
    session: &SessionStats,
    service: Option<&ServiceStats>,
    net: Option<&NetStats>,
    journal: Option<&JournalStats>,
) -> String {
    let mut body = format!("\"stats\":{}", stat_object(session));
    if let Some(s) = service {
        body.push_str(&format!(",\"service\":{}", stat_object(s)));
    }
    if let Some(n) = net {
        body.push_str(&format!(",\"net\":{}", stat_object(n)));
    }
    if let Some(j) = journal {
        body.push_str(&format!(",\"journal\":{}", stat_object(j)));
    }
    format!("{{{body}}}")
}

// ---------------------------------------------------------------------
// Length-prefixed framing
// ---------------------------------------------------------------------

/// Default cap on one frame's payload (1 MiB) — a defensive bound, not
/// a protocol constant; see [`super::NetOptions::max_frame_len`].
pub const DEFAULT_MAX_FRAME_LEN: u32 = 1 << 20;

/// Write one frame: 4-byte big-endian payload length, then the payload.
/// Header and payload go out as ONE write — two writes would let
/// Nagle's algorithm hold the payload segment for the header's delayed
/// ACK (~40 ms per frame on loopback TCP).
pub fn write_frame(w: &mut dyn Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "frame too large"))?;
    let mut frame = Vec::with_capacity(4 + payload.len());
    frame.extend_from_slice(&len.to_be_bytes());
    frame.extend_from_slice(payload);
    w.write_all(&frame)?;
    w.flush()
}

/// Read one frame. `Ok(None)` on clean EOF **at a frame boundary**; a
/// mid-frame EOF, an oversized length, or any transport error is an
/// `Err`.
pub fn read_frame(r: &mut dyn Read, max_len: u32) -> io::Result<Option<Vec<u8>>> {
    let mut header = [0u8; 4];
    let mut filled = 0;
    while filled < 4 {
        match r.read(&mut header[filled..]) {
            Ok(0) if filled == 0 => return Ok(None),
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "eof inside frame header",
                ))
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    let len = u32::from_be_bytes(header);
    if len > max_len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {max_len}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

// ---------------------------------------------------------------------
// Small JSON helpers (shared with the CLI's one-shot output paths)
// ---------------------------------------------------------------------

/// JSON-escape a string, with quotes.
pub fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON list of strings.
pub fn json_list(items: &[String]) -> String {
    let quoted: Vec<String> = items.iter().map(|s| json_str(s)).collect();
    format!("[{}]", quoted.join(","))
}

fn sorted(iter: impl Iterator<Item = String>) -> Vec<String> {
    let mut v: Vec<String> = iter.collect();
    v.sort();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    #[test]
    fn command_grammar_round_trips() {
        assert_eq!(
            parse_command("query wins(a)").unwrap(),
            Request::Query {
                atom: "wins(a)".into()
            }
        );
        assert_eq!(
            parse_command("at 3 wins(a)").unwrap(),
            Request::At {
                version: 3,
                atom: "wins(a)".into()
            }
        );
        assert_eq!(
            parse_command("assert-facts move(a, b).").unwrap(),
            Request::Submit {
                kind: DeltaKind::AssertFacts,
                text: "move(a, b).".into()
            }
        );
        assert_eq!(
            parse_command("log 5").unwrap(),
            Request::Changelog { since: 5 }
        );
        assert_eq!(
            parse_command("log").unwrap(),
            Request::Changelog { since: 0 }
        );
        assert_eq!(parse_command("  quit  ").unwrap(), Request::Quit);
        assert_eq!(parse_command("ping").unwrap(), Request::Ping);
        assert_eq!(parse_command("metrics").unwrap(), Request::Metrics);
        assert_eq!(parse_command("checkpoint").unwrap(), Request::Checkpoint);
        assert!(parse_command("query wins(X)")
            .unwrap_err()
            .contains("bad query"));
        assert!(parse_command("at x wins(a)").unwrap_err().contains("usage"));
        assert!(parse_command("bogus")
            .unwrap_err()
            .contains("unknown command"));
    }

    #[test]
    fn error_shape_is_shared_and_structured() {
        let resp = Response::from_error(&Error::Overloaded);
        let json = render_json(&resp);
        assert!(
            json.starts_with("{\"error\":{\"kind\":\"overloaded\","),
            "{json}"
        );
        assert!(render_plain(&resp).starts_with("error: "));
        let resp = Response::protocol_error("unknown command \"x\"");
        assert!(render_json(&resp).contains("\"kind\":\"protocol\""));
    }

    #[test]
    fn frames_round_trip_and_enforce_caps() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"query wins(a)").unwrap();
        write_frame(&mut buf, b"").unwrap();
        let mut r = &buf[..];
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap(),
            b"query wins(a)"
        );
        assert_eq!(
            read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap(),
            b""
        );
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).unwrap().is_none());

        // Oversized frame refused without reading the payload.
        let mut oversized = Vec::new();
        write_frame(&mut oversized, &[b'x'; 64]).unwrap();
        let mut r = &oversized[..];
        assert!(read_frame(&mut r, 16).is_err());

        // Mid-frame EOF is a transport error, not a clean end.
        let mut truncated = Vec::new();
        write_frame(&mut truncated, b"query wins(a)").unwrap();
        truncated.truncate(truncated.len() - 3);
        let mut r = &truncated[..];
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).is_err());
        let mut r = &buf[..2];
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_LEN).is_err());
    }

    #[test]
    fn execute_against_a_live_service() {
        let service = Engine::default()
            .serve("wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).")
            .unwrap();
        let resp = execute(&service, &parse_command("query wins(b)").unwrap());
        assert_eq!(
            render_json(&resp),
            "{\"version\":0,\"query\":\"wins(b)\",\"truth\":\"true\"}"
        );
        let resp = execute(&service, &parse_command("assert move(c, d).").unwrap());
        assert_eq!(render_json(&resp), "{\"ok\":true,\"version\":1}");
        let resp = execute(&service, &parse_command("at 99 wins(a)").unwrap());
        assert!(render_json(&resp).contains("\"kind\":\"version-evicted\""));
        let resp = execute(&service, &parse_command("log").unwrap());
        assert!(render_json(&resp).contains("\"kind\":\"assert-rules\""));
        let resp = execute(&service, &parse_command("model").unwrap());
        let json = render_json(&resp);
        assert!(
            json.starts_with("{\"version\":1,\"semantics\":\"wfs\""),
            "{json}"
        );
        assert!(json.contains("\"true\":["));
        let resp = execute(&service, &parse_command("metrics").unwrap());
        let json = render_json(&resp);
        assert!(
            json.starts_with("{\"telemetry\":{\"enabled\":true"),
            "{json}"
        );
        assert!(json.contains("\"cycle_total_ns\""), "{json}");
        let resp = execute(&service, &parse_command("ping").unwrap());
        let json = render_json(&resp);
        assert!(
            json.starts_with("{\"pong\":true,\"version\":1,\"writer_live\":true,\"uptime_ms\":"),
            "{json}"
        );
    }

    #[test]
    fn model_json_matches_between_snapshot_and_cold_solve() {
        const SRC: &str = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a).";
        let service = Engine::default().serve(SRC).unwrap();
        let snapshot = service.snapshot();
        let wire = render_json(&Response::Model { snapshot });
        let cold = Engine::default().solve(SRC).unwrap();
        assert_eq!(
            wire,
            model_json(0, &cold),
            "bit-identical models render identically"
        );
    }
}
