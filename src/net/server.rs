//! The length-prefixed transport: TCP and unix-socket front ends over
//! one shared [`AsyncService`].
//!
//! Wire format: every frame is a 4-byte big-endian payload length
//! followed by that many bytes of UTF-8. Client→server payloads are
//! single command lines in the exact grammar the stdin `--serve` mode
//! reads (see [`super::codec`]); server→client payloads are single JSON
//! objects — the same ones `--serve --json` prints. One request frame
//! yields exactly one response frame, in order, except `quit`, which
//! closes the connection without a reply.
//!
//! Threading model: one OS thread per connection. Read commands run
//! against pinned [`crate::ModelSnapshot`]s on the connection's own
//! thread — lock-free, so N readers scale exactly like the in-process
//! tier. Write commands funnel into the shared [`AsyncService`] queue
//! and block their own connection only; admission-control verdicts
//! ([`crate::Error::Overloaded`], [`crate::Error::SubmitTimeout`]) come
//! back as structured error frames. Connections beyond
//! [`NetOptions::max_conns`] are refused with one error frame; idle
//! connections are dropped after [`NetOptions::read_timeout`].

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use super::codec::{
    self, execute, parse_command, render_json, write_frame, Request, Response, ServeBackend,
};
use super::writer::AsyncService;
use super::NetStats;
use crate::service::ModelSnapshot;
use crate::{AppliedDelta, DeltaKind, Error};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for a [`NetServer`].
#[derive(Debug, Clone, Copy)]
pub struct NetOptions {
    /// Maximum concurrently open connections. Arrivals beyond the limit
    /// receive one `{"error":{"kind":"overloaded",…}}` frame and are
    /// closed — refused loudly, not queued silently.
    pub max_conns: usize,
    /// Drop a connection that sends no complete request for this long.
    /// `None` = wait forever (shutdown can still force-close it).
    pub read_timeout: Option<Duration>,
    /// Give up on a client that won't accept its response for this long.
    pub write_timeout: Option<Duration>,
    /// Refuse request frames larger than this many bytes.
    pub max_frame_len: u32,
}

impl Default for NetOptions {
    fn default() -> Self {
        NetOptions {
            max_conns: 32,
            read_timeout: Some(Duration::from_secs(30)),
            write_timeout: Some(Duration::from_secs(10)),
            max_frame_len: codec::DEFAULT_MAX_FRAME_LEN,
        }
    }
}

/// One duplex byte stream, TCP or unix — just enough of a facade that
/// the accept loop and connection loop are written once.
trait Conn: Read + Write + Send {
    fn configure(&self, options: &NetOptions) -> io::Result<()>;
    fn shutdown_both(&self);
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>>;
}

impl Conn for TcpStream {
    fn configure(&self, options: &NetOptions) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(options.read_timeout)?;
        self.set_write_timeout(options.write_timeout)?;
        self.set_nodelay(true)
    }
    fn shutdown_both(&self) {
        let _ = TcpStream::shutdown(self, std::net::Shutdown::Both);
    }
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
}

impl Conn for UnixStream {
    fn configure(&self, options: &NetOptions) -> io::Result<()> {
        self.set_nonblocking(false)?;
        self.set_read_timeout(options.read_timeout)?;
        self.set_write_timeout(options.write_timeout)
    }
    fn shutdown_both(&self) {
        let _ = UnixStream::shutdown(self, std::net::Shutdown::Both);
    }
    fn try_clone_conn(&self) -> io::Result<Box<dyn Conn>> {
        Ok(Box::new(self.try_clone()?))
    }
}

trait Listener: Send {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>>;
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
}

impl Listener for TcpListener {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        self.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>)
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpListener::set_nonblocking(self, nonblocking)
    }
}

impl Listener for UnixListener {
    fn accept_conn(&self) -> io::Result<Box<dyn Conn>> {
        self.accept().map(|(s, _)| Box::new(s) as Box<dyn Conn>)
    }
    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixListener::set_nonblocking(self, nonblocking)
    }
}

struct Inner {
    tier: Arc<AsyncService>,
    options: NetOptions,
    stop: AtomicBool,
    conns_accepted: AtomicU64,
    conns_rejected: AtomicU64,
    conns_open: AtomicU64,
    frames_in: AtomicU64,
    frames_out: AtomicU64,
    /// Clones of every accepted stream, so shutdown can force blocked
    /// reads to return.
    conns: Mutex<Vec<Box<dyn Conn>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Inner {
    fn net_stats(&self) -> NetStats {
        let mut stats = self.tier.stats();
        stats.conns_accepted = self.conns_accepted.load(Ordering::Relaxed);
        stats.conns_rejected = self.conns_rejected.load(Ordering::Relaxed);
        stats.conns_open = self.conns_open.load(Ordering::Relaxed);
        stats.frames_in = self.frames_in.load(Ordering::Relaxed);
        stats.frames_out = self.frames_out.load(Ordering::Relaxed);
        stats
    }
}

impl ServeBackend for Inner {
    fn snapshot(&self) -> ModelSnapshot {
        self.tier.service().snapshot()
    }
    fn version(&self) -> u64 {
        self.tier.service().version()
    }
    fn at_version(&self, version: u64) -> Result<ModelSnapshot, Error> {
        self.tier.service().at_version(version)
    }
    fn submit(&self, kind: DeltaKind, text: &str) -> Result<u64, Error> {
        self.tier.submit(kind, text)?.wait()
    }
    fn changelog_since(&self, since: u64) -> Result<Vec<AppliedDelta>, Error> {
        self.tier.service().changelog_since(since)
    }
    fn ping(&self) -> (u64, bool, u64) {
        (
            self.tier.service().version(),
            self.tier.writer_live(),
            self.tier.service().uptime_ms(),
        )
    }
    fn checkpoint(&self) -> Result<u64, Error> {
        self.tier.service().checkpoint()
    }
    fn stats_json(&self) -> String {
        codec::stats_json(
            &self.tier.service().session_stats(),
            Some(&self.tier.service().stats()),
            Some(&self.net_stats()),
            self.tier.service().journal_stats().as_ref(),
        )
    }
    fn metrics_text(&self) -> String {
        self.tier.service().telemetry().render()
    }
}

/// One listening socket (TCP or unix) serving the framed protocol over
/// a shared [`AsyncService`]. Several servers may share one tier — the
/// CLI binds `--listen` and `--socket` to the same queue — and shutting
/// a server down never shuts the tier down.
pub struct NetServer {
    inner: Arc<Inner>,
    accept: Mutex<Option<JoinHandle<()>>>,
    addr: String,
    unix_path: Option<PathBuf>,
}

impl NetServer {
    /// Bind a TCP listener (e.g. `"127.0.0.1:0"` for an ephemeral port;
    /// [`NetServer::addr`] reports what was actually bound) and start
    /// accepting.
    pub fn bind_tcp(
        tier: Arc<AsyncService>,
        addr: impl ToSocketAddrs,
        options: NetOptions,
    ) -> io::Result<NetServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?.to_string();
        Ok(NetServer::start(
            tier,
            Box::new(listener),
            options,
            addr,
            None,
        ))
    }

    /// Bind a unix-domain socket at `path` and start accepting. The
    /// socket file is removed on shutdown — which a crashed process
    /// never reached, so a **stale** socket file (nothing listening
    /// behind it) is probed with a connect attempt and removed, letting
    /// the restarted server bind where its predecessor died. A file
    /// something *does* answer on is another live server: that bind
    /// fails with a clear `AddrInUse` error instead.
    ///
    /// The probe-then-remove pair is not atomic: a second server that
    /// binds the path between the failed probe and the `remove_file`
    /// has its socket deleted out from under it, and both servers then
    /// believe they own the address. This is fine under the intended
    /// deployment — one supervisor restarting one server per path —
    /// but concurrent *competing* starts on the same path need an
    /// external lock (e.g. `flock` on a sidecar file) to serialize.
    pub fn bind_unix(
        tier: Arc<AsyncService>,
        path: impl AsRef<Path>,
        options: NetOptions,
    ) -> io::Result<NetServer> {
        let path = path.as_ref().to_path_buf();
        if path.exists() {
            match UnixStream::connect(&path) {
                Ok(_) => {
                    return Err(io::Error::new(
                        io::ErrorKind::AddrInUse,
                        format!("another server is live on {}", path.display()),
                    ));
                }
                Err(_) => {
                    // Dead socket left by a crashed predecessor.
                    std::fs::remove_file(&path)?;
                }
            }
        }
        let listener = UnixListener::bind(&path)?;
        let addr = path.display().to_string();
        Ok(NetServer::start(
            tier,
            Box::new(listener),
            options,
            addr,
            Some(path),
        ))
    }

    fn start(
        tier: Arc<AsyncService>,
        listener: Box<dyn Listener>,
        options: NetOptions,
        addr: String,
        unix_path: Option<PathBuf>,
    ) -> NetServer {
        let inner = Arc::new(Inner {
            tier,
            options,
            stop: AtomicBool::new(false),
            conns_accepted: AtomicU64::new(0),
            conns_rejected: AtomicU64::new(0),
            conns_open: AtomicU64::new(0),
            frames_in: AtomicU64::new(0),
            frames_out: AtomicU64::new(0),
            conns: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
        });
        let accept = {
            let inner = Arc::clone(&inner);
            std::thread::Builder::new()
                .name("afp-net-accept".into())
                .spawn(move || accept_loop(listener, &inner))
                .expect("spawn accept thread")
        };
        NetServer {
            inner,
            accept: Mutex::new(Some(accept)),
            addr,
            unix_path,
        }
    }

    /// The bound address: `host:port` for TCP (with the real port even
    /// when bound to port 0), the socket path for unix.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Transport + writer-tier counters, merged.
    pub fn stats(&self) -> NetStats {
        self.inner.net_stats()
    }

    /// Stop accepting, force-close every open connection, and join all
    /// transport threads. Idempotent. The shared [`AsyncService`] is
    /// left running — shut it down separately once every server
    /// fronting it is down.
    pub fn shutdown(&self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = lock(&self.accept).take() {
            let _ = handle.join();
        }
        for conn in lock(&self.inner.conns).drain(..) {
            conn.shutdown_both();
        }
        for handle in lock(&self.inner.workers).drain(..) {
            let _ = handle.join();
        }
        if let Some(path) = &self.unix_path {
            let _ = std::fs::remove_file(path);
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("addr", &self.addr)
            .field("stats", &self.stats())
            .finish()
    }
}

/// Accept until told to stop. The listener runs nonblocking with a
/// short sleep so a stop flag is noticed promptly without a wake-up
/// channel; accepted streams are switched back to blocking mode.
fn accept_loop(listener: Box<dyn Listener>, inner: &Arc<Inner>) {
    let _ = listener.set_nonblocking(true);
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept_conn() {
            Ok(conn) => admit(conn, inner),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => {
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }
}

fn admit(mut conn: Box<dyn Conn>, inner: &Arc<Inner>) {
    if inner.conns_open.load(Ordering::Relaxed) >= inner.options.max_conns as u64 {
        inner.conns_rejected.fetch_add(1, Ordering::Relaxed);
        let refusal = Response::Error {
            kind: "overloaded",
            message: format!(
                "connection limit {} reached; retry later",
                inner.options.max_conns
            ),
        };
        let _ = conn.configure(&inner.options);
        let _ = write_frame(&mut *conn, render_json(&refusal).as_bytes());
        conn.shutdown_both();
        return;
    }
    if conn.configure(&inner.options).is_err() {
        conn.shutdown_both();
        return;
    }
    inner.conns_accepted.fetch_add(1, Ordering::Relaxed);
    inner.conns_open.fetch_add(1, Ordering::Relaxed);
    if let Ok(clone) = conn.try_clone_conn() {
        lock(&inner.conns).push(clone);
    }
    let worker = {
        let inner = Arc::clone(inner);
        std::thread::Builder::new()
            .name("afp-net-conn".into())
            .spawn(move || {
                serve_conn(conn, &inner);
                inner.conns_open.fetch_sub(1, Ordering::Relaxed);
            })
            .expect("spawn connection thread")
    };
    lock(&inner.workers).push(worker);
}

/// One connection's request/response loop. Command failures are
/// reported as error frames and the loop continues; transport failures
/// (mid-frame EOF, timeouts, oversized frames, broken pipes) end the
/// connection.
fn serve_conn(mut conn: Box<dyn Conn>, inner: &Arc<Inner>) {
    let telemetry = inner.tier.service().telemetry();
    loop {
        if inner.stop.load(Ordering::SeqCst) {
            break;
        }
        let payload = match codec::read_frame(&mut *conn, inner.options.max_frame_len) {
            Ok(Some(payload)) => payload,
            Ok(None) | Err(_) => break,
        };
        inner.frames_in.fetch_add(1, Ordering::Relaxed);
        // Request latency: frame parsed → response frame written. Read
        // idle time (the client thinking) is deliberately excluded.
        let started = std::time::Instant::now();
        let line = String::from_utf8_lossy(&payload);
        let response = match parse_command(&line) {
            Ok(Request::Quit) => break,
            Ok(request) => execute(inner.as_ref(), &request),
            Err(message) => Response::protocol_error(message),
        };
        if write_frame(&mut *conn, render_json(&response).as_bytes()).is_err() {
            break;
        }
        inner.frames_out.fetch_add(1, Ordering::Relaxed);
        telemetry.record_request(started.elapsed().as_nanos() as u64);
    }
    conn.shutdown_both();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::writer::AsyncOptions;
    use crate::Engine;

    const WIN_MOVE: &str =
        "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";

    fn tier() -> Arc<AsyncService> {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        Arc::new(AsyncService::new(service, AsyncOptions::default()))
    }

    fn send(conn: &mut TcpStream, line: &str) -> String {
        write_frame(conn, line.as_bytes()).unwrap();
        let payload = codec::read_frame(conn, codec::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("response frame");
        String::from_utf8(payload).unwrap()
    }

    #[test]
    fn tcp_round_trip_speaks_the_serve_protocol() {
        let tier = tier();
        let server =
            NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", NetOptions::default()).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();

        assert_eq!(
            send(&mut conn, "query wins(b)"),
            "{\"version\":0,\"query\":\"wins(b)\",\"truth\":\"true\"}"
        );
        assert_eq!(
            send(&mut conn, "assert-facts move(c, d)."),
            "{\"ok\":true,\"version\":1}"
        );
        assert_eq!(
            send(&mut conn, "query wins(c)"),
            "{\"version\":1,\"query\":\"wins(c)\",\"truth\":\"true\"}"
        );
        assert_eq!(send(&mut conn, "version"), "{\"version\":1}");

        // Malformed commands are error frames, not connection errors.
        let err = send(&mut conn, "bogus nonsense");
        assert!(
            err.starts_with("{\"error\":{\"kind\":\"protocol\""),
            "{err}"
        );
        let err = send(&mut conn, "at 99 wins(a)");
        assert!(err.contains("\"kind\":\"version-evicted\""), "{err}");
        // …and the connection still works afterwards.
        assert_eq!(send(&mut conn, "version"), "{\"version\":1}");

        // quit closes without a reply frame.
        write_frame(&mut conn, b"quit").unwrap();
        assert!(codec::read_frame(&mut conn, codec::DEFAULT_MAX_FRAME_LEN)
            .map(|f| f.is_none())
            .unwrap_or(true));

        let stats = server.stats();
        assert_eq!(stats.conns_accepted, 1);
        assert_eq!(stats.frames_in, 8);
        assert_eq!(stats.frames_out, 7, "quit is unanswered");
        server.shutdown();
        tier.shutdown(crate::Shutdown::Drain);
    }

    #[test]
    fn connection_limit_refuses_loudly() {
        let tier = tier();
        let options = NetOptions {
            max_conns: 1,
            ..NetOptions::default()
        };
        let server = NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", options).unwrap();
        let mut first = TcpStream::connect(server.addr()).unwrap();
        assert_eq!(send(&mut first, "version"), "{\"version\":0}");

        // Second connection: one overloaded frame, then EOF.
        let mut second = TcpStream::connect(server.addr()).unwrap();
        let refusal = codec::read_frame(&mut second, codec::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("refusal frame");
        let refusal = String::from_utf8(refusal).unwrap();
        assert!(
            refusal.starts_with("{\"error\":{\"kind\":\"overloaded\""),
            "{refusal}"
        );

        let stats = server.stats();
        assert_eq!(stats.conns_accepted, 1);
        assert_eq!(stats.conns_rejected, 1);
        server.shutdown();
        tier.shutdown(crate::Shutdown::Drain);
    }

    #[test]
    fn unix_socket_round_trip() {
        let tier = tier();
        let path = std::env::temp_dir().join(format!("afp-net-test-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let server = NetServer::bind_unix(Arc::clone(&tier), &path, NetOptions::default()).unwrap();
        let mut conn = UnixStream::connect(&path).unwrap();
        write_frame(&mut conn, b"query wins(b)").unwrap();
        let payload = codec::read_frame(&mut conn, codec::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        assert_eq!(
            String::from_utf8(payload).unwrap(),
            "{\"version\":0,\"query\":\"wins(b)\",\"truth\":\"true\"}"
        );
        drop(conn);
        server.shutdown();
        assert!(!path.exists(), "socket file removed on shutdown");
        tier.shutdown(crate::Shutdown::Drain);
    }

    #[test]
    fn stale_unix_socket_is_reclaimed_but_live_one_is_not() {
        let path = std::env::temp_dir().join(format!("afp-net-stale-{}.sock", std::process::id()));
        let _ = std::fs::remove_file(&path);
        // A crashed predecessor: its listener is gone but the socket
        // file is still on disk (shutdown never ran).
        drop(UnixListener::bind(&path).unwrap());
        assert!(path.exists(), "stale socket file left behind");

        let tier = tier();
        let server = NetServer::bind_unix(Arc::clone(&tier), &path, NetOptions::default())
            .expect("stale socket reclaimed");
        let mut conn = UnixStream::connect(&path).unwrap();
        write_frame(&mut conn, b"ping").unwrap();
        let payload = codec::read_frame(&mut conn, codec::DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap();
        let pong = String::from_utf8(payload).unwrap();
        assert!(
            pong.starts_with("{\"pong\":true,\"version\":0,\"writer_live\":true,\"uptime_ms\":"),
            "{pong}"
        );
        drop(conn);

        // While that server is alive, a second bind must refuse loudly
        // rather than steal the live socket.
        let err = NetServer::bind_unix(Arc::clone(&tier), &path, NetOptions::default())
            .expect_err("live socket must not be reclaimed");
        assert_eq!(err.kind(), io::ErrorKind::AddrInUse);
        assert!(err.to_string().contains("another server is live"), "{err}");
        assert!(path.exists(), "live socket file untouched");

        server.shutdown();
        tier.shutdown(crate::Shutdown::Drain);
    }

    #[test]
    fn server_shutdown_force_closes_idle_connections() {
        let tier = tier();
        let options = NetOptions {
            read_timeout: None, // idle forever — only shutdown can end it
            ..NetOptions::default()
        };
        let server = NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", options).unwrap();
        let mut conn = TcpStream::connect(server.addr()).unwrap();
        assert_eq!(send(&mut conn, "version"), "{\"version\":0}");
        // Shutdown must not hang on the idle connection…
        server.shutdown();
        // …and the client sees EOF or an error, never a hang.
        let after = codec::read_frame(&mut conn, codec::DEFAULT_MAX_FRAME_LEN);
        assert!(matches!(after, Ok(None) | Err(_)));
        tier.shutdown(crate::Shutdown::Drain);
    }
}
