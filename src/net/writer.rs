//! The dedicated writer thread: async submission, bounded admission,
//! deadlines, and deterministic shutdown for a [`Service`].
//!
//! The in-process [`Service`] write path is caller-driven: the first
//! submitter to find no cycle in flight is elected leader and solves on
//! its own thread on behalf of everyone queued behind it. That is the
//! right shape for an embedded library (no extra threads unless
//! contended) and the wrong shape for a server: a network connection
//! thread must not be conscripted into running arbitrary-length solve
//! cycles, and nothing bounds how much work can pile up behind a slow
//! cycle. [`AsyncService`] inverts the ownership — **one dedicated
//! writer thread** drains a **bounded** submission queue in batches —
//! without introducing an async runtime: the submission future is a
//! [`SubmitHandle`] over the same mutex/condvar slot the sync path
//! blocks on, so it can be waited, polled, or waited-with-timeout from
//! any thread.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use super::NetStats;
use crate::service::{validate, Pending, Slot};
use crate::{DeltaKind, Error, Service};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs for an [`AsyncService`].
#[derive(Debug, Clone, Copy)]
pub struct AsyncOptions {
    /// Bounded write-queue depth. A submission arriving at a full queue
    /// is rejected with [`Error::Overloaded`] immediately — admission
    /// control never blocks the submitter.
    pub queue_depth: usize,
    /// Default per-submission deadline, measured from enqueue. A queued
    /// submission whose deadline passes before the writer picks it up
    /// fails with [`Error::SubmitTimeout`] without being applied.
    /// `None` = no deadline. Override per call with
    /// [`AsyncService::submit_with_deadline`].
    pub submit_deadline: Option<Duration>,
}

impl Default for AsyncOptions {
    fn default() -> Self {
        AsyncOptions {
            queue_depth: 64,
            submit_deadline: None,
        }
    }
}

/// How [`AsyncService::shutdown`] disposes of queued submissions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Shutdown {
    /// Run every queued cycle to completion before stopping; queued
    /// submitters get their real results.
    Drain,
    /// Stop after the in-flight cycle (if any); everything still queued
    /// fails with [`Error::ServiceStopped`].
    Abort,
}

/// A pending submission's completion future. Futures-free blocking
/// bridge: [`wait`](SubmitHandle::wait) blocks,
/// [`try_result`](SubmitHandle::try_result) polls, and
/// [`wait_timeout`](SubmitHandle::wait_timeout) bounds the block. All
/// of them return the version that first includes the delta, or the
/// terminal error. Dropping the handle abandons the *wait*, never the
/// submission: the delta stays queued and is applied (or expired)
/// normally.
pub struct SubmitHandle {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for SubmitHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SubmitHandle")
            .field("result", &self.slot.try_get())
            .finish()
    }
}

impl SubmitHandle {
    /// Block until the write cycle that includes this delta publishes
    /// (or terminally fails). Every queued submission is guaranteed a
    /// terminal result — by its cycle, its deadline, shutdown, or the
    /// panic-safe abort path — so this cannot hang.
    pub fn wait(&self) -> Result<u64, Error> {
        self.slot.wait()
    }

    /// Non-blocking poll: `None` while the submission is still queued
    /// or its cycle is still running.
    pub fn try_result(&self) -> Option<Result<u64, Error>> {
        self.slot.try_get()
    }

    /// [`wait`](SubmitHandle::wait), but give up after `timeout`.
    /// `None` means the submission is *still pending* (not failed):
    /// the caller may keep polling or abandon the handle.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<u64, Error>> {
        self.slot.wait_timeout(timeout)
    }
}

enum QueueState {
    Running,
    Draining,
    Aborting,
    Stopped,
}

struct Queued {
    pending: Pending,
    deadline: Option<Instant>,
    enqueued: Instant,
}

struct SubmitQueue {
    items: VecDeque<Queued>,
    state: QueueState,
    /// Test seam: while `true` the writer thread leaves the queue
    /// untouched, so admission control can be exercised
    /// deterministically (fill the queue → observe `Overloaded`).
    held: bool,
}

/// Sliding window of recent submit→completion latencies (microseconds).
struct LatencyRing {
    samples: Vec<u64>,
    next: usize,
}

const LATENCY_WINDOW: usize = 4096;

impl LatencyRing {
    fn new() -> Self {
        LatencyRing {
            samples: Vec::with_capacity(LATENCY_WINDOW),
            next: 0,
        }
    }

    fn record(&mut self, us: u64) {
        if self.samples.len() < LATENCY_WINDOW {
            self.samples.push(us);
        } else {
            self.samples[self.next] = us;
        }
        self.next = (self.next + 1) % LATENCY_WINDOW;
    }

    /// (p50, p99) over the window; (0, 0) before the first completion.
    fn percentiles(&self) -> (u64, u64) {
        if self.samples.is_empty() {
            return (0, 0);
        }
        let mut sorted = self.samples.clone();
        sorted.sort_unstable();
        let at = |p: f64| sorted[((sorted.len() - 1) as f64 * p) as usize];
        (at(0.50), at(0.99))
    }
}

struct AsyncShared {
    queue: Mutex<SubmitQueue>,
    /// Signaled when the queue becomes non-empty or the state/hold
    /// changes; the writer thread waits on it.
    work: Condvar,
    options: AsyncOptions,
    latencies: Mutex<LatencyRing>,
    submitted: AtomicU64,
    completed: AtomicU64,
    overloaded: AtomicU64,
    timed_out: AtomicU64,
    aborted: AtomicU64,
    queue_depth_hwm: AtomicU64,
    last_cycle_width: AtomicU64,
    max_cycle_width: AtomicU64,
}

/// A [`Service`] write path driven by one dedicated writer thread, with
/// bounded admission, per-submission deadlines, and deterministic
/// shutdown. Reads go straight to the wrapped [`Service`] (snapshots
/// are lock-free; this tier adds nothing to the read path). See the
/// [module docs](crate::net) for the full model.
pub struct AsyncService {
    service: Service,
    shared: Arc<AsyncShared>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl AsyncService {
    /// Spawn the writer thread over `service`'s write path. The
    /// `Service` handle is shared: in-process writers may keep calling
    /// the blocking API concurrently — cycles serialize on the writer
    /// session lock whichever tier drives them.
    pub fn new(service: Service, options: AsyncOptions) -> AsyncService {
        let shared = Arc::new(AsyncShared {
            queue: Mutex::new(SubmitQueue {
                items: VecDeque::new(),
                state: QueueState::Running,
                held: false,
            }),
            work: Condvar::new(),
            options,
            latencies: Mutex::new(LatencyRing::new()),
            submitted: AtomicU64::new(0),
            completed: AtomicU64::new(0),
            overloaded: AtomicU64::new(0),
            timed_out: AtomicU64::new(0),
            aborted: AtomicU64::new(0),
            queue_depth_hwm: AtomicU64::new(0),
            last_cycle_width: AtomicU64::new(0),
            max_cycle_width: AtomicU64::new(0),
        });
        let writer = {
            let service = service.clone();
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("afp-net-writer".into())
                .spawn(move || writer_loop(&service, &shared))
                .expect("spawn writer thread")
        };
        AsyncService {
            service,
            shared,
            writer: Mutex::new(Some(writer)),
        }
    }

    /// The wrapped service — the read path (snapshots, versions,
    /// changelog, stats) is unchanged by this tier.
    pub fn service(&self) -> &Service {
        &self.service
    }

    /// Enqueue one delta for the writer thread, with the default
    /// deadline from [`AsyncOptions`]. Returns immediately:
    /// `Ok(handle)` once admitted, or the admission verdict —
    /// [`Error::Overloaded`] on a full queue (never blocks),
    /// [`Error::ServiceStopped`] after shutdown, or a validation error
    /// for textually malformed deltas (failing fast on the submitting
    /// thread, exactly like the sync path).
    pub fn submit(&self, kind: DeltaKind, text: &str) -> Result<SubmitHandle, Error> {
        self.submit_with_deadline(kind, text, self.shared.options.submit_deadline)
    }

    /// [`submit`](AsyncService::submit) with an explicit per-submission
    /// deadline (measured from enqueue; `None` = wait indefinitely).
    pub fn submit_with_deadline(
        &self,
        kind: DeltaKind,
        text: &str,
        deadline: Option<Duration>,
    ) -> Result<SubmitHandle, Error> {
        self.service.note_submission();
        if let Err(e) = validate(kind, text) {
            self.service.note_rejection();
            return Err(e);
        }
        let slot = Arc::new(Slot::default());
        {
            let mut q = lock(&self.shared.queue);
            if !matches!(q.state, QueueState::Running) {
                self.service.note_rejection();
                return Err(Error::ServiceStopped);
            }
            if q.items.len() >= self.shared.options.queue_depth {
                self.shared.overloaded.fetch_add(1, Ordering::Relaxed);
                self.service.note_rejection();
                return Err(Error::Overloaded);
            }
            let now = Instant::now();
            q.items.push_back(Queued {
                pending: Pending::new(kind, text.to_string(), Arc::clone(&slot)),
                deadline: deadline.map(|d| now + d),
                enqueued: now,
            });
            self.shared.submitted.fetch_add(1, Ordering::Relaxed);
            self.shared
                .queue_depth_hwm
                .fetch_max(q.items.len() as u64, Ordering::Relaxed);
        }
        self.shared.work.notify_all();
        Ok(SubmitHandle { slot })
    }

    /// Stop the writer thread deterministically and join it. Idempotent.
    /// [`Shutdown::Drain`] completes every queued cycle first;
    /// [`Shutdown::Abort`] fails everything still queued with
    /// [`Error::ServiceStopped`]. Either way every outstanding
    /// [`SubmitHandle`] resolves. Subsequent submissions return
    /// [`Error::ServiceStopped`].
    pub fn shutdown(&self, mode: Shutdown) {
        {
            let mut q = lock(&self.shared.queue);
            match q.state {
                QueueState::Stopped => {}
                _ => {
                    q.state = match mode {
                        Shutdown::Drain => QueueState::Draining,
                        Shutdown::Abort => QueueState::Aborting,
                    };
                }
            }
            q.held = false;
        }
        self.shared.work.notify_all();
        if let Some(handle) = lock(&self.writer).take() {
            let _ = handle.join();
        }
    }

    /// Queue-and-latency counters for this tier (connection fields stay
    /// zero; [`super::NetServer::stats`] fills them).
    pub fn stats(&self) -> NetStats {
        let s = &self.shared;
        let (write_p50_us, write_p99_us) = lock(&s.latencies).percentiles();
        NetStats {
            submitted: s.submitted.load(Ordering::Relaxed),
            completed: s.completed.load(Ordering::Relaxed),
            overloaded: s.overloaded.load(Ordering::Relaxed),
            timed_out: s.timed_out.load(Ordering::Relaxed),
            aborted: s.aborted.load(Ordering::Relaxed),
            queue_depth: lock(&s.queue).items.len() as u64,
            queue_depth_hwm: s.queue_depth_hwm.load(Ordering::Relaxed),
            last_cycle_width: s.last_cycle_width.load(Ordering::Relaxed),
            max_cycle_width: s.max_cycle_width.load(Ordering::Relaxed),
            write_p50_us,
            write_p99_us,
            ..NetStats::default()
        }
    }

    /// Whether the dedicated writer thread is alive and accepting work —
    /// the liveness half of the protocol's `ping` readiness probe.
    /// `false` once the tier is draining, aborting, or stopped (shutdown
    /// or a writer panic): queries still answer from published
    /// snapshots, but new submissions will be refused. When the backing
    /// [`Service`] journals with
    /// [`crate::JournalOptions::ack_durable`], a live writer also means
    /// every handle it has resolved was acked **after** its journal
    /// record synced (the service fills submission slots only after the
    /// cycle's sync step).
    pub fn writer_live(&self) -> bool {
        matches!(lock(&self.shared.queue).state, QueueState::Running)
    }

    /// Test seam: freeze (`true`) / thaw (`false`) the writer thread so
    /// admission control, deadlines and shutdown can be exercised with
    /// a deterministically full queue. Hidden, not `cfg(test)`, so
    /// integration tests and benches can reach it.
    #[doc(hidden)]
    pub fn hold_writer(&self, held: bool) {
        lock(&self.shared.queue).held = held;
        self.shared.work.notify_all();
    }
}

impl Drop for AsyncService {
    /// Graceful by default: drain what was accepted, then stop. (Abort
    /// explicitly first if teardown latency matters more than queued
    /// work.)
    fn drop(&mut self) {
        self.shutdown(Shutdown::Drain);
    }
}

impl std::fmt::Debug for AsyncService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncService")
            .field("service", &self.service)
            .field("stats", &self.stats())
            .finish()
    }
}

/// The writer thread: wait for work, drain the whole queue as one
/// batch (maximal coalescing), expire dead submissions, run the cycle,
/// record latencies. A panicking cycle stops the tier — queued waiters
/// are failed, never stranded.
fn writer_loop(service: &Service, shared: &Arc<AsyncShared>) {
    loop {
        let batch: Vec<Queued> = {
            let mut q = lock(&shared.queue);
            loop {
                match q.state {
                    QueueState::Running => {
                        if !q.held && !q.items.is_empty() {
                            break;
                        }
                        q = shared.work.wait(q).unwrap_or_else(PoisonError::into_inner);
                    }
                    QueueState::Draining => {
                        if q.items.is_empty() {
                            q.state = QueueState::Stopped;
                            return;
                        }
                        break;
                    }
                    QueueState::Aborting => {
                        for item in q.items.drain(..) {
                            item.pending.slot.fill(Err(Error::ServiceStopped));
                            shared.aborted.fetch_add(1, Ordering::Relaxed);
                            service.note_rejection();
                        }
                        q.state = QueueState::Stopped;
                        return;
                    }
                    QueueState::Stopped => return,
                }
            }
            q.items.drain(..).collect()
        };

        // Expire submissions whose deadline passed while queued: they
        // cost nothing beyond the queue slot they held.
        let now = Instant::now();
        let mut live: Vec<Queued> = Vec::with_capacity(batch.len());
        for item in batch {
            match item.deadline {
                Some(d) if d <= now => {
                    item.pending.slot.fill(Err(Error::SubmitTimeout));
                    shared.timed_out.fetch_add(1, Ordering::Relaxed);
                    service.note_rejection();
                }
                _ => live.push(item),
            }
        }
        if live.is_empty() {
            continue;
        }

        shared
            .last_cycle_width
            .store(live.len() as u64, Ordering::Relaxed);
        shared
            .max_cycle_width
            .fetch_max(live.len() as u64, Ordering::Relaxed);

        // Queue-wait latency: enqueue → writer pickup, per submission,
        // into the telemetry histogram (distinct from the net tier's
        // submit→completion window, which includes the cycle itself).
        let telemetry = service.telemetry();
        let picked_up = Instant::now();
        for item in &live {
            telemetry.record_queue_wait(picked_up.duration_since(item.enqueued).as_nanos() as u64);
        }

        let enqueued: Vec<Instant> = live.iter().map(|i| i.enqueued).collect();
        let slots: Vec<Arc<Slot>> = live.iter().map(|i| Arc::clone(&i.pending.slot)).collect();
        let pendings: Vec<Pending> = live.into_iter().map(|i| i.pending).collect();
        let outcome = catch_unwind(AssertUnwindSafe(|| service.run_cycle(pendings)));

        let finished = Instant::now();
        {
            let mut ring = lock(&shared.latencies);
            for t in enqueued {
                ring.record(finished.duration_since(t).as_micros() as u64);
            }
        }
        shared
            .completed
            .fetch_add(slots.len() as u64, Ordering::Relaxed);
        for slot in &slots {
            // Every slot is filled by now (run_cycle fills them; an
            // unwinding cycle fills the rest via Pending::drop).
            if matches!(slot.try_get(), Some(Err(_))) {
                service.note_rejection();
            }
        }

        if outcome.is_err() {
            // The cycle panicked. Its own batch already resolved via the
            // panic-safe Pending::drop path (`WriterAborted`); fail
            // whatever queued behind it and stop the tier — a writer
            // that has unwound mid-delta must not keep applying.
            let mut q = lock(&shared.queue);
            for item in q.items.drain(..) {
                item.pending.slot.fill(Err(Error::WriterAborted));
                shared.aborted.fetch_add(1, Ordering::Relaxed);
                service.note_rejection();
            }
            q.state = QueueState::Stopped;
            return;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Engine;

    const WIN_MOVE: &str =
        "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";

    fn tier(queue_depth: usize) -> (Service, AsyncService) {
        let service = Engine::default().serve(WIN_MOVE).unwrap();
        let tier = AsyncService::new(
            service.clone(),
            AsyncOptions {
                queue_depth,
                submit_deadline: None,
            },
        );
        (service, tier)
    }

    #[test]
    fn submit_wait_and_poll() {
        let (service, tier) = tier(8);
        let handle = tier.submit(DeltaKind::AssertFacts, "move(c, d).").unwrap();
        assert_eq!(handle.wait().unwrap(), 1);
        // A resolved handle polls instantly, repeatedly.
        assert_eq!(handle.try_result(), Some(Ok(1)));
        assert_eq!(handle.wait_timeout(Duration::from_millis(1)), Some(Ok(1)));
        assert_eq!(service.snapshot().truth("wins", &["c"]), crate::Truth::True);
        tier.shutdown(Shutdown::Drain);
    }

    #[test]
    fn full_queue_rejects_immediately_never_hangs() {
        let (_service, tier) = tier(2);
        tier.hold_writer(true);
        let h1 = tier.submit(DeltaKind::AssertFacts, "p(a).").unwrap();
        let h2 = tier.submit(DeltaKind::AssertFacts, "p(b).").unwrap();
        let before = Instant::now();
        let err = tier.submit(DeltaKind::AssertFacts, "p(c).").unwrap_err();
        assert!(matches!(err, Error::Overloaded), "{err:?}");
        assert!(
            before.elapsed() < Duration::from_secs(1),
            "admission control must answer immediately"
        );
        assert_eq!(tier.stats().overloaded, 1);
        assert_eq!(tier.stats().queue_depth_hwm, 2);
        // Still pending while held...
        assert!(h1.try_result().is_none());
        tier.hold_writer(false);
        // ...then both complete (one coalesced cycle).
        assert!(h1.wait().is_ok());
        assert!(h2.wait().is_ok());
        assert_eq!(tier.stats().last_cycle_width, 2);
        tier.shutdown(Shutdown::Drain);
    }

    #[test]
    fn queued_deadline_expires_without_applying() {
        let (service, tier) = tier(8);
        tier.hold_writer(true);
        let h = tier
            .submit_with_deadline(
                DeltaKind::AssertFacts,
                "p(a).",
                Some(Duration::from_millis(20)),
            )
            .unwrap();
        std::thread::sleep(Duration::from_millis(60));
        tier.hold_writer(false);
        assert!(matches!(h.wait(), Err(Error::SubmitTimeout)));
        assert_eq!(tier.stats().timed_out, 1);
        assert_eq!(service.version(), 0, "expired delta never applied");
        tier.shutdown(Shutdown::Drain);
    }

    #[test]
    fn drain_shutdown_completes_queued_work() {
        let (service, tier) = tier(8);
        tier.hold_writer(true);
        let handles: Vec<SubmitHandle> = (0..3)
            .map(|i| {
                tier.submit(DeltaKind::AssertFacts, &format!("p(x{i})."))
                    .unwrap()
            })
            .collect();
        // Drain releases the hold, runs everything, then stops.
        tier.shutdown(Shutdown::Drain);
        for h in &handles {
            assert!(h.wait().is_ok(), "drained submissions publish");
        }
        assert!(service.version() >= 1);
        let err = tier.submit(DeltaKind::AssertFacts, "p(y).").unwrap_err();
        assert!(matches!(err, Error::ServiceStopped));
    }

    #[test]
    fn abort_shutdown_fails_queued_work_terminally() {
        let (service, tier) = tier(8);
        tier.hold_writer(true);
        let h1 = tier.submit(DeltaKind::AssertFacts, "p(a).").unwrap();
        let h2 = tier.submit(DeltaKind::AssertFacts, "p(b).").unwrap();
        tier.shutdown(Shutdown::Abort);
        assert!(matches!(h1.wait(), Err(Error::ServiceStopped)));
        assert!(matches!(h2.wait(), Err(Error::ServiceStopped)));
        assert_eq!(service.version(), 0, "aborted deltas never applied");
        assert_eq!(tier.stats().aborted, 2);
        // Shutdown is idempotent.
        tier.shutdown(Shutdown::Abort);
        tier.shutdown(Shutdown::Drain);
    }
}
