//! `afp::net` — the async, networked service tier.
//!
//! [`crate::Service`] (PR 4) gives one process concurrent serving:
//! lock-free readers over pinned snapshots, and write cycles that
//! coalesce concurrent submissions. But its write API is *blocking and
//! caller-driven* — the submitting thread itself is elected cycle
//! leader and solves on behalf of everyone queued behind it — and the
//! only front end is a single-client stdin protocol. This module adds
//! the three layers that turn it into a production service:
//!
//! 1. **A dedicated writer thread** ([`AsyncService`], `writer.rs`):
//!    submissions enqueue onto a bounded queue and return a
//!    [`SubmitHandle`] immediately — a small futures-free promise that
//!    can be [`SubmitHandle::wait`]ed, polled
//!    ([`SubmitHandle::try_result`]) or waited with a timeout. One
//!    writer thread drains the queue in batches (the whole queue per
//!    cycle, so coalescing is at least as wide as under caller-driven
//!    leader election) and runs the existing `Service` write cycle.
//!    No async runtime is involved; the blocking bridge is a
//!    mutex/condvar pair per submission.
//!
//! 2. **Admission control and backpressure**: the queue depth is
//!    bounded ([`AsyncOptions::queue_depth`]) and a full queue rejects
//!    with [`crate::Error::Overloaded`] *immediately* — submission
//!    never blocks on a saturated writer. Per-submission deadlines
//!    ([`AsyncOptions::submit_deadline`],
//!    [`AsyncService::submit_with_deadline`]) expire stale queue
//!    entries with [`crate::Error::SubmitTimeout`] before any work is
//!    spent on them. [`AsyncService::shutdown`] is deterministic:
//!    [`Shutdown::Drain`] runs every queued cycle to completion,
//!    [`Shutdown::Abort`] fails everything still queued with
//!    [`crate::Error::ServiceStopped`] — either way **every waiter
//!    receives a terminal result**, extending PR 4's panic-safe
//!    `WriterAborted` path to planned teardown.
//!
//! 3. **A length-prefixed transport** ([`NetServer`], `server.rs`) over
//!    TCP and unix sockets, fronting the same command protocol the
//!    stdin `--serve` mode speaks: each frame is a 4-byte big-endian
//!    length followed by one UTF-8 command line (requests) or one JSON
//!    object (responses). One thread per connection reads over pinned
//!    [`crate::ModelSnapshot`]s lock-free; writes funnel through the
//!    shared [`AsyncService`] queue, so N connections get exactly the
//!    single-writer/coalescing semantics of the in-process tier.
//!    Connection limits and read/write timeouts bound resource use.
//!
//! The command parsing/serialization both front ends share lives in
//! [`codec`] — one grammar, one response shape, one error shape, and
//! one stats serializer ([`codec::stats_json`]) so the `--stats` JSON
//! and plain outputs cannot drift.
//!
//! ```
//! use afp::{AsyncOptions, AsyncService, DeltaKind, Engine, Shutdown, Truth};
//!
//! let service = Engine::default()
//!     .serve("wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).")
//!     .unwrap();
//! let tier = AsyncService::new(service.clone(), AsyncOptions::default());
//!
//! // Async submission: enqueue, then wait (or poll) the handle.
//! let handle = tier.submit(DeltaKind::AssertFacts, "move(c, d).").unwrap();
//! let version = handle.wait().unwrap();
//! assert_eq!(version, 1);
//! assert_eq!(service.snapshot().truth("wins", &["c"]), Truth::True);
//!
//! tier.shutdown(Shutdown::Drain);
//! ```

pub mod codec;
pub mod server;
pub mod writer;

pub use server::{NetOptions, NetServer};
pub use writer::{AsyncOptions, AsyncService, Shutdown, SubmitHandle};

/// Counters for the networked tier, merged across the writer queue
/// ([`AsyncService`]) and the transport ([`NetServer`]); surfaced
/// through the `stats` protocol command and CLI `--stats` via
/// [`codec::stats_json`]. Connection fields stay zero for an
/// [`AsyncService`] used without a transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Submissions accepted into the write queue.
    pub submitted: u64,
    /// Submissions whose cycle completed (successfully or not).
    pub completed: u64,
    /// Submissions refused at admission because the queue was full
    /// ([`crate::Error::Overloaded`]).
    pub overloaded: u64,
    /// Queued submissions expired by their deadline before their cycle
    /// ran ([`crate::Error::SubmitTimeout`]).
    pub timed_out: u64,
    /// Submissions failed by shutdown ([`crate::Error::ServiceStopped`])
    /// or a writer panic ([`crate::Error::WriterAborted`]).
    pub aborted: u64,
    /// Current queue depth (instantaneous).
    pub queue_depth: u64,
    /// High-water mark of the queue depth since start.
    pub queue_depth_hwm: u64,
    /// Submissions in the writer thread's most recent cycle batch (the
    /// per-cycle coalesce width through the net tier).
    pub last_cycle_width: u64,
    /// Largest cycle batch the writer thread has run.
    pub max_cycle_width: u64,
    /// p50 of submit→completion latency over the recent-write window,
    /// in microseconds (0 until the first completion).
    pub write_p50_us: u64,
    /// p99 of submit→completion latency over the recent-write window,
    /// in microseconds.
    pub write_p99_us: u64,
    /// Connections accepted by the transport.
    pub conns_accepted: u64,
    /// Connections refused at the connection limit.
    pub conns_rejected: u64,
    /// Connections currently open.
    pub conns_open: u64,
    /// Request frames read off all connections.
    pub frames_in: u64,
    /// Response frames written to all connections.
    pub frames_out: u64,
}

crate::telemetry::stat_set!(NetStats {
    submitted,
    completed,
    overloaded,
    timed_out,
    aborted,
    queue_depth,
    queue_depth_hwm,
    last_cycle_width,
    max_cycle_width,
    write_p50_us,
    write_p99_us,
    conns_accepted,
    conns_rejected,
    conns_open,
    frames_in,
    frames_out,
});
