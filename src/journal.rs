//! Durability: the checksummed write-ahead delta journal and
//! checkpointed snapshots behind [`crate::Service`] crash recovery.
//!
//! Every version the service publishes lives only in process memory;
//! the whole point of the warm path (incremental grounding, per-SCC
//! memoization) is that *deltas* are cheap while cold solves are not.
//! This module makes that asymmetry survive a crash: before a write
//! cycle's results are published, each applied submission is appended
//! to an on-disk **write-ahead log** as one length-prefixed,
//! CRC32-checksummed record — the already-validated delta text and
//! kind, stamped with the version it produced. Recovery loads the
//! newest valid **checkpoint** (the retained source program, rendered
//! re-parseably) and replays the journal tail through the normal warm
//! update path, so coming back from a crash costs O(checkpoint
//! interval) deltas, never a from-scratch re-solve of history.
//!
//! ## On-disk layout
//!
//! A journal directory holds exactly two kinds of file:
//!
//! * `checkpoint-<version>.ckpt` — magic `AFPCKP1\n`, then one framed
//!   record whose payload is the big-endian version followed by the
//!   program text. The CRC doubles as the atomicity guard: a torn
//!   checkpoint (crash mid-write) fails validation and recovery falls
//!   back to the previous one, whose journal tail is still intact.
//! * `wal-<anchor>.log` — magic `AFPWAL1\n`, then zero or more framed
//!   records; `anchor` is the checkpoint version the file follows, so
//!   every record in it carries a version `> anchor`.
//!
//! Each framed record is `[u32 len][u32 crc32(payload)][payload]`, both
//! integers big-endian — the same framing discipline as the network
//! codec — and is appended with a **single `write`**, so a crash leaves
//! at most one torn record, at the tail. A WAL record's payload is
//! `[u64 version][u8 kind][delta text]`.
//!
//! ## The torn-tail rule
//!
//! On recovery, an invalid record (short frame, bad CRC, malformed
//! payload) is classified by what follows it: if the log ends there —
//! no later byte offset parses as a valid frame — it is a **torn
//! tail** from a crash mid-append, and the file is truncated back to
//! the last valid boundary (the lost record was never acked durable).
//! If a *valid* record follows anywhere past the damage, the damage is
//! mid-history — bit rot, not a crash — and recovery refuses loudly
//! with [`Error::JournalCorrupt`], because silently dropping an
//! interior delta would change every later version. The continuation
//! search is a sliding-window scan over every byte offset (a corrupted
//! length field, or several adjacent damaged records, must not hide a
//! valid suffix), so only genuine tails are ever truncated.
//!
//! Checkpoints **compact**: writing `checkpoint-<v>` is followed by
//! starting `wal-<v>` and deleting the files it subsumes, in that
//! order, so every intermediate crash state recovers. See
//! [`crate::Service::with_journal`] / [`crate::Service::recover`] for
//! the service-level wiring and [`FsyncPolicy`] for the durability/
//! latency trade-off.

use std::fs::{self, File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::{DeltaKind, Error};

/// Magic prefix of every WAL file.
const WAL_MAGIC: &[u8; 8] = b"AFPWAL1\n";
/// Magic prefix of every checkpoint file.
const CKPT_MAGIC: &[u8; 8] = b"AFPCKP1\n";
/// Defensive cap on one record's payload (64 MiB). A length field above
/// this is treated as unparseable, not as an instruction to allocate.
const MAX_RECORD_LEN: u32 = 1 << 26;
/// Minimum WAL record payload: version (8) + kind (1).
const MIN_WAL_PAYLOAD: u32 = 9;

/// When the journal calls `fsync` on the write-ahead log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync before every publish: no acknowledged write is ever lost,
    /// at the cost of one `fsync` per write cycle (coalescing still
    /// amortizes it across the cycle's whole batch).
    Always,
    /// Sync once every `n` appended records (and at checkpoints). A
    /// crash can lose up to `n-1` acknowledged-but-unsynced records —
    /// recovery truncates them as a torn tail, keeping a consistent
    /// prefix.
    EveryN(u32),
    /// Never sync explicitly; the OS flushes when it pleases. A process
    /// crash loses nothing (the records are in the page cache); a host
    /// crash can lose any unsynced suffix.
    Never,
}

/// Tuning knobs for a journal-backed service.
#[derive(Debug, Clone, Copy)]
pub struct JournalOptions {
    /// When to `fsync` the WAL; see [`FsyncPolicy`].
    pub fsync: FsyncPolicy,
    /// Write a checkpoint (and compact the subsumed journal prefix)
    /// every this many published versions; `0` disables automatic
    /// checkpoints (the `checkpoint` command still works). Bounds
    /// recovery replay to at most this many deltas.
    pub checkpoint_every: u64,
    /// Ack-after-durable: force a sync before any submitter of the
    /// cycle is acknowledged, regardless of [`FsyncPolicy`] — a
    /// [`crate::SubmitHandle`] then resolves only once its record is
    /// on disk.
    pub ack_durable: bool,
}

impl Default for JournalOptions {
    fn default() -> Self {
        JournalOptions {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 0,
            ack_durable: false,
        }
    }
}

/// Where the fault-injection seam kills the writer; see
/// [`crate::Service::inject_crash_for_testing`]. Modeled on the
/// grounder poison seam (PR 3) and the net tier's `hold_writer` (PR 6):
/// hidden, not `cfg(test)`, so the crash-recovery differential suite
/// can reach it from integration tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashPoint {
    /// Panic after the cycle's solve, before any record is appended:
    /// the crash loses the whole in-flight batch (never acked, never
    /// published, never journaled).
    PreAppend,
    /// Panic after the records are appended and synced, before the
    /// version is published: the deltas are durable but no submitter
    /// was acked — recovery replays them into a version the pre-crash
    /// service never served.
    PostAppend,
    /// Panic halfway through writing a checkpoint file: recovery must
    /// reject the torn checkpoint and fall back to the previous one.
    MidCheckpoint,
}

/// Cumulative journal counters; snapshot them with
/// [`crate::Service::journal_stats`] (also surfaced in the `stats`
/// protocol output).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalStats {
    /// WAL records appended.
    pub records_appended: u64,
    /// WAL bytes appended (frames included).
    pub bytes_appended: u64,
    /// Explicit `fsync` calls on the WAL.
    pub syncs: u64,
    /// Checkpoint files written (the initial one included).
    pub checkpoints: u64,
    /// WAL records dropped by checkpoint compaction (subsumed by a
    /// checkpoint and deleted with their file).
    pub compacted_records: u64,
    /// Records replayed through the warm path by recovery.
    pub records_replayed: u64,
    /// Torn tails truncated by recovery (each one crash's unsynced
    /// suffix).
    pub torn_truncations: u64,
    /// Journal operations that failed with an I/O error (the service
    /// keeps serving; the failed cycle's submitters were told).
    pub failed_ops: u64,
    /// Cumulative wall clock spent appending WAL records, nanoseconds.
    pub append_ns: u64,
    /// Cumulative wall clock spent in pre-publish syncs, nanoseconds —
    /// the cost the [`FsyncPolicy`] trades against durability.
    pub sync_ns: u64,
}

// Wire serialization of the `journal` stats section, in frame key
// order; see `crate::telemetry::StatSet`.
crate::telemetry::stat_set!(JournalStats {
    records_appended,
    bytes_appended,
    syncs,
    checkpoints,
    compacted_records,
    records_replayed,
    torn_truncations,
    failed_ops,
    append_ns,
    sync_ns,
});

/// One replayed WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JournalRecord {
    /// The version whose snapshot first included this delta.
    pub version: u64,
    /// Which delta path it took.
    pub kind: DeltaKind,
    /// The submitted program text.
    pub text: String,
}

/// An open journal: the active WAL plus checkpoint bookkeeping. Owned
/// by the service's writer (under the writer lock), so appends are
/// naturally serialized with the cycles they record.
pub struct Journal {
    dir: PathBuf,
    wal: File,
    /// Checkpoint version the active WAL follows.
    wal_anchor: u64,
    /// Records in the active WAL (compaction counts them as subsumed).
    wal_records: u64,
    /// Logical WAL length in bytes: the boundary after the last fully
    /// written frame. A failed append rolls the file back here so a
    /// torn frame never sits mid-file under later acked records.
    wal_len: u64,
    /// Records appended since the last sync.
    unsynced: u32,
    /// Set when a rollback itself failed: the WAL may hold a torn frame
    /// mid-file, so further appends would land acked records behind
    /// garbage recovery cannot read past. Every mutating operation
    /// refuses until the process restarts and recovers.
    poisoned: Option<String>,
    options: JournalOptions,
    stats: JournalStats,
}

/// A WAL boundary taken with [`Journal::mark`] before a write cycle's
/// appends, so a cycle whose append or sync fails can be rolled back
/// wholesale with [`Journal::rollback`] — the retry cycle then appends
/// fresh records instead of duplicates behind a possibly-torn suffix.
#[derive(Debug, Clone, Copy)]
pub struct WalMark {
    len: u64,
    records: u64,
}

/// Everything recovery found in a journal directory: the reopened
/// journal (compacted back to one checkpoint + one WAL, torn tail
/// truncated), the checkpoint to load, and the tail to replay.
pub struct Recovered {
    /// The journal, reopened for appending.
    pub journal: Journal,
    /// Version of the newest valid checkpoint.
    pub checkpoint_version: u64,
    /// The checkpointed program text (re-parseable source).
    pub checkpoint_text: String,
    /// WAL records with version > the checkpoint version, oldest first.
    /// Failed cycles roll their records back before retrying, so two
    /// identical adjacent records are two genuine submissions, kept.
    pub records: Vec<JournalRecord>,
    /// Human-readable description of the torn tail recovery truncated,
    /// if any.
    pub truncated: Option<String>,
}

fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Journal(format!("{context}: {e}"))
}

fn kind_byte(kind: DeltaKind) -> u8 {
    match kind {
        DeltaKind::AssertFacts => 0,
        DeltaKind::RetractFacts => 1,
        DeltaKind::AssertRules => 2,
        DeltaKind::RetractRules => 3,
    }
}

fn byte_kind(b: u8) -> Option<DeltaKind> {
    Some(match b {
        0 => DeltaKind::AssertFacts,
        1 => DeltaKind::RetractFacts,
        2 => DeltaKind::AssertRules,
        3 => DeltaKind::RetractRules,
        _ => return None,
    })
}

// ---------------------------------------------------------------------
// CRC32 (IEEE reflected, the zlib polynomial)
// ---------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC32 of `bytes` (IEEE polynomial, as zlib computes it).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------
// Framing
// ---------------------------------------------------------------------

/// One framed record: `[u32 len][u32 crc][payload]`, big-endian.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(8 + payload.len());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&crc32(payload).to_be_bytes());
    buf.extend_from_slice(payload);
    buf
}

fn wal_payload(version: u64, kind: DeltaKind, text: &str) -> Vec<u8> {
    let mut payload = Vec::with_capacity(9 + text.len());
    payload.extend_from_slice(&version.to_be_bytes());
    payload.push(kind_byte(kind));
    payload.extend_from_slice(text.as_bytes());
    payload
}

fn checkpoint_name(version: u64) -> String {
    format!("checkpoint-{version:020}.ckpt")
}

fn wal_name(anchor: u64) -> String {
    format!("wal-{anchor:020}.log")
}

/// Parse `prefix-<u64>.<ext>` back to its number.
fn parse_numbered(name: &str, prefix: &str, ext: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_suffix(ext)?
        .parse::<u64>()
        .ok()
}

/// `(checkpoint versions, wal anchors)` present in `dir`, unsorted.
fn list_dir(dir: &Path) -> Result<(Vec<u64>, Vec<u64>), Error> {
    let mut checkpoints = Vec::new();
    let mut wals = Vec::new();
    let entries = fs::read_dir(dir)
        .map_err(|e| io_err(&format!("reading journal dir {}", dir.display()), e))?;
    for entry in entries {
        let entry = entry.map_err(|e| io_err("reading journal dir entry", e))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(v) = parse_numbered(name, "checkpoint-", ".ckpt") {
            checkpoints.push(v);
        } else if let Some(a) = parse_numbered(name, "wal-", ".log") {
            wals.push(a);
        }
    }
    Ok((checkpoints, wals))
}

fn sync_dir(dir: &Path) {
    // Directory fsync makes the creates/deletes themselves durable on
    // Linux; failure is not fatal (the files were synced individually).
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

impl Journal {
    /// Whether `dir` already holds journal state (any checkpoint or WAL
    /// file) — the CLI's create-vs-recover branch.
    pub fn exists(dir: impl AsRef<Path>) -> bool {
        matches!(list_dir(dir.as_ref()), Ok((c, w)) if !c.is_empty() || !w.is_empty())
    }

    /// Create a fresh journal in `dir` (created if missing), writing
    /// `checkpoint-0` from `base_text` and starting `wal-0`. Refuses a
    /// directory that already holds journal state — recover from it
    /// instead ([`recover`], [`crate::Service::recover`]).
    pub fn create(
        dir: impl AsRef<Path>,
        options: JournalOptions,
        base_text: &str,
    ) -> Result<Journal, Error> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)
            .map_err(|e| io_err(&format!("creating journal dir {}", dir.display()), e))?;
        if Journal::exists(&dir) {
            return Err(Error::Journal(format!(
                "journal dir {} already holds a journal; recover from it instead of \
                 overwriting history",
                dir.display()
            )));
        }
        write_checkpoint_file(&dir, 0, base_text, false)?;
        let wal = create_wal_file(&dir, 0)?;
        sync_dir(&dir);
        Ok(Journal {
            dir,
            wal,
            wal_anchor: 0,
            wal_records: 0,
            wal_len: WAL_MAGIC.len() as u64,
            unsynced: 0,
            poisoned: None,
            options,
            stats: JournalStats {
                checkpoints: 1,
                ..JournalStats::default()
            },
        })
    }

    /// The journal directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured knobs.
    pub fn options(&self) -> &JournalOptions {
        &self.options
    }

    /// Cumulative counters.
    pub fn stats(&self) -> JournalStats {
        self.stats
    }

    /// Append one record — a single `write`, so a crash can tear at
    /// most the final record (the torn-tail rule relies on this). A
    /// write *error* (ENOSPC mid-`write_all`) can also leave a torn
    /// frame; it is rolled back here, before the error returns, so the
    /// file never carries garbage under records appended later.
    pub fn append(&mut self, version: u64, kind: DeltaKind, text: &str) -> Result<(), Error> {
        self.check_poisoned()?;
        let started = Instant::now();
        let buf = frame(&wal_payload(version, kind, text));
        if let Err(e) = self.wal.write_all(&buf) {
            self.stats.failed_ops += 1;
            let (len, records) = (self.wal_len, self.wal_records);
            self.truncate_to(len, records);
            return Err(io_err("appending journal record", e));
        }
        self.wal_len += buf.len() as u64;
        self.wal_records += 1;
        self.unsynced += 1;
        self.stats.records_appended += 1;
        self.stats.bytes_appended += buf.len() as u64;
        self.stats.append_ns += started.elapsed().as_nanos() as u64;
        Ok(())
    }

    /// The current WAL boundary; take one before a cycle's appends so
    /// the whole cycle can be undone with [`Journal::rollback`].
    pub fn mark(&self) -> WalMark {
        WalMark {
            len: self.wal_len,
            records: self.wal_records,
        }
    }

    /// Roll the WAL back to `mark`: the undo of a cycle whose append or
    /// sync failed mid-way. Without it the cycle's records (complete or
    /// torn) would stay in the file while the service keeps serving,
    /// and the retry cycle would append acked duplicates behind them —
    /// which recovery would then truncate or refuse. Never fails
    /// upward: if the truncation itself fails the journal is poisoned
    /// and every later operation refuses with a typed error.
    pub fn rollback(&mut self, mark: WalMark) {
        if self.poisoned.is_none() && self.wal_len > mark.len {
            self.truncate_to(mark.len, mark.records);
        }
    }

    /// Truncate the WAL to `len` bytes and sync, restoring the record
    /// count; on failure, poison the journal (see [`Journal::rollback`]).
    fn truncate_to(&mut self, len: u64, records: u64) {
        let result = self
            .wal
            .set_len(len)
            .and_then(|()| self.wal.seek(SeekFrom::Start(len)).map(|_| ()))
            .and_then(|()| self.wal.sync_data());
        match result {
            Ok(()) => {
                self.wal_len = len;
                self.wal_records = records;
                self.unsynced = 0;
                self.stats.syncs += 1;
            }
            Err(e) => {
                self.stats.failed_ops += 1;
                self.poisoned = Some(format!("rolling wal back to byte {len} failed: {e}"));
            }
        }
    }

    fn check_poisoned(&self) -> Result<(), Error> {
        match &self.poisoned {
            Some(why) => Err(Error::Journal(format!(
                "journal disabled after a failed rollback ({why}); the wal may hold a \
                 torn frame mid-file — restart and recover"
            ))),
            None => Ok(()),
        }
    }

    /// Sync the WAL if the policy (or ack-after-durable) demands it
    /// before this cycle publishes and acks.
    pub fn sync_for_publish(&mut self) -> Result<(), Error> {
        self.check_poisoned()?;
        let due = match self.options.fsync {
            FsyncPolicy::Always => true,
            FsyncPolicy::EveryN(n) => self.unsynced >= n,
            FsyncPolicy::Never => false,
        } || (self.options.ack_durable && self.unsynced > 0);
        if due {
            let started = Instant::now();
            if let Err(e) = self.wal.sync_data() {
                self.stats.failed_ops += 1;
                return Err(io_err("syncing journal", e));
            }
            self.stats.syncs += 1;
            self.unsynced = 0;
            self.stats.sync_ns += started.elapsed().as_nanos() as u64;
        }
        Ok(())
    }

    /// Whether the automatic checkpoint interval fires at `version`.
    pub fn checkpoint_due(&self, version: u64) -> bool {
        self.options.checkpoint_every > 0
            && version > self.wal_anchor
            && version.is_multiple_of(self.options.checkpoint_every)
    }

    /// Write `checkpoint-<version>` from `text`, start `wal-<version>`,
    /// and delete the files they subsume (compaction) — in that order,
    /// so every intermediate crash state recovers: a torn checkpoint is
    /// rejected by its CRC and the previous checkpoint + WAL still
    /// replay; a missing new WAL is recreated on recovery. A checkpoint
    /// at the current anchor version is a no-op (nothing to compact).
    ///
    /// `crash_mid` is the [`CrashPoint::MidCheckpoint`] fault-injection
    /// seam: write half the checkpoint, sync, and panic.
    pub fn checkpoint(&mut self, version: u64, text: &str, crash_mid: bool) -> Result<(), Error> {
        self.check_poisoned()?;
        if version == self.wal_anchor && !crash_mid {
            return Ok(());
        }
        // Unsynced records must be durable before the checkpoint that
        // might outlive their WAL file.
        if self.unsynced > 0 {
            if let Err(e) = self.wal.sync_data() {
                self.stats.failed_ops += 1;
                return Err(io_err("syncing journal before checkpoint", e));
            }
            self.stats.syncs += 1;
            self.unsynced = 0;
        }
        if let Err(e) = write_checkpoint_file(&self.dir, version, text, crash_mid) {
            self.stats.failed_ops += 1;
            return Err(e);
        }
        let wal = match create_wal_file(&self.dir, version) {
            Ok(wal) => wal,
            Err(e) => {
                self.stats.failed_ops += 1;
                return Err(e);
            }
        };
        sync_dir(&self.dir);
        let (checkpoints, wals) = list_dir(&self.dir)?;
        for v in checkpoints.into_iter().filter(|&v| v < version) {
            let _ = fs::remove_file(self.dir.join(checkpoint_name(v)));
        }
        for a in wals.into_iter().filter(|&a| a < version) {
            let _ = fs::remove_file(self.dir.join(wal_name(a)));
        }
        sync_dir(&self.dir);
        self.wal = wal;
        self.wal_anchor = version;
        self.wal_len = WAL_MAGIC.len() as u64;
        self.stats.checkpoints += 1;
        self.stats.compacted_records += self.wal_records;
        self.wal_records = 0;
        Ok(())
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Journal")
            .field("dir", &self.dir)
            .field("wal_anchor", &self.wal_anchor)
            .field("stats", &self.stats)
            .finish()
    }
}

/// Write one checkpoint file. `crash_mid` injects the mid-checkpoint
/// fault: half the frame is written and synced, then the writer dies.
fn write_checkpoint_file(
    dir: &Path,
    version: u64,
    text: &str,
    crash_mid: bool,
) -> Result<(), Error> {
    let path = dir.join(checkpoint_name(version));
    let mut payload = Vec::with_capacity(8 + text.len());
    payload.extend_from_slice(&version.to_be_bytes());
    payload.extend_from_slice(text.as_bytes());
    let mut buf = Vec::with_capacity(8 + 8 + payload.len());
    buf.extend_from_slice(CKPT_MAGIC);
    buf.extend_from_slice(&frame(&payload));
    let mut file = File::create(&path)
        .map_err(|e| io_err(&format!("creating checkpoint {}", path.display()), e))?;
    if crash_mid {
        let half = buf.len() / 2;
        let _ = file.write_all(&buf[..half]);
        let _ = file.sync_data();
        panic!("afp crash seam: mid-checkpoint (version {version})");
    }
    file.write_all(&buf)
        .map_err(|e| io_err("writing checkpoint", e))?;
    file.sync_data()
        .map_err(|e| io_err("syncing checkpoint", e))?;
    Ok(())
}

fn create_wal_file(dir: &Path, anchor: u64) -> Result<File, Error> {
    let path = dir.join(wal_name(anchor));
    let mut file = OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(true)
        .open(&path)
        .map_err(|e| io_err(&format!("creating wal {}", path.display()), e))?;
    file.write_all(WAL_MAGIC)
        .map_err(|e| io_err("writing wal magic", e))?;
    file.sync_data().map_err(|e| io_err("syncing wal", e))?;
    Ok(file)
}

/// Read and validate `checkpoint-<version>`; `None` if torn/corrupt.
fn read_checkpoint(dir: &Path, version: u64) -> Option<String> {
    let bytes = fs::read(dir.join(checkpoint_name(version))).ok()?;
    if bytes.len() < 16 || &bytes[..8] != CKPT_MAGIC {
        return None;
    }
    let len = u32::from_be_bytes(bytes[8..12].try_into().unwrap());
    let crc = u32::from_be_bytes(bytes[12..16].try_into().unwrap());
    if len > MAX_RECORD_LEN || bytes.len() != 16 + len as usize || len < 8 {
        return None;
    }
    let payload = &bytes[16..];
    if crc32(payload) != crc {
        return None;
    }
    let stamped = u64::from_be_bytes(payload[..8].try_into().unwrap());
    if stamped != version {
        return None;
    }
    String::from_utf8(payload[8..].to_vec()).ok()
}

/// One validated record parse at `off`; see [`scan_wal`] for how
/// failures are classified.
fn parse_record_at(
    bytes: &[u8],
    off: usize,
    min_version: u64,
) -> Result<(JournalRecord, usize), String> {
    if off + 8 > bytes.len() {
        return Err("eof inside record header".into());
    }
    let len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap());
    let crc = u32::from_be_bytes(bytes[off + 4..off + 8].try_into().unwrap());
    if len > MAX_RECORD_LEN {
        return Err(format!("implausible record length {len}"));
    }
    let end = off + 8 + len as usize;
    if end > bytes.len() {
        return Err("eof inside record payload".into());
    }
    let payload = &bytes[off + 8..end];
    if crc32(payload) != crc {
        return Err("crc mismatch".into());
    }
    if len < MIN_WAL_PAYLOAD {
        return Err(format!("short record payload ({len} bytes)"));
    }
    let version = u64::from_be_bytes(payload[..8].try_into().unwrap());
    let Some(kind) = byte_kind(payload[8]) else {
        return Err(format!("unknown delta kind byte {}", payload[8]));
    };
    if version < min_version {
        return Err(format!(
            "non-monotonic version {version} (expected >= {min_version})"
        ));
    }
    let text = String::from_utf8(payload[9..].to_vec()).map_err(|_| "non-utf8 delta text")?;
    Ok((
        JournalRecord {
            version,
            kind,
            text,
        },
        end,
    ))
}

/// What scanning one WAL file produced.
struct WalScan {
    records: Vec<JournalRecord>,
    /// Byte length of the valid prefix (file should be truncated here
    /// if shorter than the file).
    valid_len: u64,
    /// Torn-tail description if the file ends in an invalid record.
    torn: Option<String>,
}

/// Scan one WAL file. `strict` (non-newest files) turns every invalid
/// record into [`Error::JournalCorrupt`]; otherwise the torn-tail rule
/// applies: an invalid record with a valid continuation is corruption,
/// an invalid record at the end of the log is a torn tail.
fn scan_wal(path: &Path, anchor: u64, strict: bool) -> Result<WalScan, Error> {
    let bytes =
        fs::read(path).map_err(|e| io_err(&format!("reading wal {}", path.display()), e))?;
    if bytes.len() < 8 {
        // A crash inside the 8-byte magic write; nothing was logged.
        if WAL_MAGIC.starts_with(&bytes[..]) {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
                torn: Some("torn wal magic".into()),
            });
        }
        return Err(Error::JournalCorrupt {
            record: 0,
            detail: format!("{}: bad wal magic", path.display()),
        });
    }
    if &bytes[..8] != WAL_MAGIC {
        return Err(Error::JournalCorrupt {
            record: 0,
            detail: format!("{}: bad wal magic", path.display()),
        });
    }
    let mut records = Vec::new();
    let mut off = 8usize;
    let mut min_version = anchor + 1;
    while off < bytes.len() {
        match parse_record_at(&bytes, off, min_version) {
            Ok((record, end)) => {
                min_version = record.version;
                records.push(record);
                off = end;
            }
            Err(detail) => {
                let corrupt = |detail: String| Error::JournalCorrupt {
                    record: records.len() as u64,
                    detail: format!("{}: {detail}", path.display()),
                };
                if strict {
                    return Err(corrupt(detail));
                }
                // Torn tail or mid-journal corruption? A torn tail can
                // only be the very end of the log, so any later offset
                // that parses as a valid frame (CRC validates, payload
                // well-formed, version monotone) proves the log
                // continues past the damage: refuse rather than drop an
                // interior delta. The scan slides over every byte —
                // a corrupted length field, or several adjacent damaged
                // records, must not hide a valid suffix.
                for probe in off + 1..bytes.len() {
                    if parse_record_at(&bytes, probe, min_version).is_ok() {
                        return Err(corrupt(detail));
                    }
                }
                return Ok(WalScan {
                    records,
                    valid_len: off as u64,
                    torn: Some(format!("{}: {detail} at byte {off}", path.display())),
                });
            }
        }
    }
    Ok(WalScan {
        records,
        valid_len: bytes.len() as u64,
        torn: None,
    })
}

/// Recover a journal directory: pick the newest valid checkpoint,
/// gather the WAL tail past it (applying the torn-tail rule to the
/// newest WAL and strict validation to older ones), truncate any torn
/// suffix, clean up files subsumed or invalidated by crashes, and
/// reopen the journal for appending. The caller replays
/// [`Recovered::records`] through the warm update path.
pub fn recover(dir: impl AsRef<Path>, options: JournalOptions) -> Result<Recovered, Error> {
    let dir = dir.as_ref().to_path_buf();
    let (mut checkpoints, mut wals) = list_dir(&dir)?;
    checkpoints.sort_unstable();
    wals.sort_unstable();
    if checkpoints.is_empty() && wals.is_empty() {
        return Err(Error::Journal(format!(
            "{} holds no journal (no checkpoint or wal files)",
            dir.display()
        )));
    }

    // Newest checkpoint that validates wins; torn ones (a crash mid-
    // checkpoint) are deleted so they cannot shadow a rewrite later.
    let mut chosen: Option<(u64, String)> = None;
    for &v in checkpoints.iter().rev() {
        match read_checkpoint(&dir, v) {
            Some(text) if chosen.is_none() => chosen = Some((v, text)),
            Some(_) => {}
            None => {
                let _ = fs::remove_file(dir.join(checkpoint_name(v)));
            }
        }
    }
    let Some((checkpoint_version, checkpoint_text)) = chosen else {
        return Err(Error::Journal(format!(
            "{} holds no valid checkpoint (every candidate is torn or corrupt)",
            dir.display()
        )));
    };

    // A WAL anchored past the chosen checkpoint means a newer
    // checkpoint compacted history and was then lost: the deltas
    // between the two are unrecoverable.
    if let Some(&a) = wals.iter().find(|&&a| a > checkpoint_version) {
        return Err(Error::JournalCorrupt {
            record: 0,
            detail: format!(
                "wal-{a} is anchored past the newest valid checkpoint \
                 ({checkpoint_version}); the compacted prefix is lost"
            ),
        });
    }

    // Gather the tail. Only the newest WAL may legitimately end torn;
    // older files were complete before a newer one was started.
    let mut records: Vec<JournalRecord> = Vec::new();
    let mut truncated = None;
    let mut torn_truncations = 0u64;
    for (i, &anchor) in wals.iter().enumerate() {
        let newest = i + 1 == wals.len();
        let path = dir.join(wal_name(anchor));
        let scan = scan_wal(&path, anchor, !newest)?;
        if let Some(detail) = scan.torn {
            let mut file = OpenOptions::new()
                .write(true)
                .open(&path)
                .map_err(|e| io_err("truncating torn wal tail", e))?;
            if scan.valid_len < WAL_MAGIC.len() as u64 {
                // A crash inside the header write itself: rewrite the
                // full magic rather than zero-pad to 8 bytes with
                // `set_len`, which would leave an invalid header that
                // the *next* recovery rejects as corrupt — poisoning a
                // journal that then acked writes behind it.
                file.set_len(0)
                    .map_err(|e| io_err("truncating torn wal magic", e))?;
                file.write_all(WAL_MAGIC)
                    .map_err(|e| io_err("rewriting torn wal magic", e))?;
            } else {
                file.set_len(scan.valid_len)
                    .map_err(|e| io_err("truncating torn wal tail", e))?;
            }
            file.sync_data()
                .map_err(|e| io_err("syncing truncated wal", e))?;
            truncated = Some(detail);
            torn_truncations += 1;
        }
        records.extend(
            scan.records
                .into_iter()
                .filter(|r| r.version > checkpoint_version),
        );
    }
    // No dedup: a cycle whose append or sync failed rolls its records
    // back ([`Journal::rollback`]) before the retry re-appends, so a
    // duplicate record in the WAL is two genuinely distinct identical
    // submissions — the recovered changelog must keep both to stay a
    // prefix-consistent image of the pre-crash one.

    // Reopen, restoring the exactly-one-checkpoint + one-WAL steady
    // state a crash may have interrupted: ensure wal-<checkpoint>
    // exists, then drop everything it subsumes.
    let active = dir.join(wal_name(checkpoint_version));
    let wal_records = if wals.contains(&checkpoint_version) {
        records.len() as u64
    } else {
        create_wal_file(&dir, checkpoint_version)?;
        0
    };
    for &a in wals.iter().filter(|&&a| a < checkpoint_version) {
        let _ = fs::remove_file(dir.join(wal_name(a)));
    }
    sync_dir(&dir);
    let wal = OpenOptions::new()
        .append(true)
        .open(&active)
        .map_err(|e| io_err(&format!("reopening wal {}", active.display()), e))?;
    let wal_len = wal
        .metadata()
        .map_err(|e| io_err("reading reopened wal length", e))?
        .len();
    let journal = Journal {
        dir,
        wal,
        wal_anchor: checkpoint_version,
        wal_records,
        wal_len,
        unsynced: 0,
        poisoned: None,
        options,
        stats: JournalStats {
            records_replayed: records.len() as u64,
            torn_truncations,
            ..JournalStats::default()
        },
    };
    Ok(Recovered {
        journal,
        checkpoint_version,
        checkpoint_text,
        records,
        truncated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("afp-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn crc32_matches_the_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn create_append_recover_round_trips() {
        let dir = temp_dir("roundtrip");
        let opts = JournalOptions::default();
        let mut journal = Journal::create(&dir, opts, "base(x).\n").unwrap();
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.append(2, DeltaKind::RetractFacts, "p(a).").unwrap();
        journal
            .append(3, DeltaKind::AssertRules, "q(X) :- p(X).")
            .unwrap();
        journal.sync_for_publish().unwrap();
        drop(journal);

        let recovered = recover(&dir, opts).unwrap();
        assert_eq!(recovered.checkpoint_version, 0);
        assert_eq!(recovered.checkpoint_text, "base(x).\n");
        assert!(recovered.truncated.is_none());
        assert_eq!(
            recovered.records,
            vec![
                JournalRecord {
                    version: 1,
                    kind: DeltaKind::AssertFacts,
                    text: "p(a).".into()
                },
                JournalRecord {
                    version: 2,
                    kind: DeltaKind::RetractFacts,
                    text: "p(a).".into()
                },
                JournalRecord {
                    version: 3,
                    kind: DeltaKind::AssertRules,
                    text: "q(X) :- p(X).".into()
                },
            ]
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_an_existing_journal() {
        let dir = temp_dir("norewrite");
        let opts = JournalOptions::default();
        let _ = Journal::create(&dir, opts, "base.\n").unwrap();
        assert!(Journal::exists(&dir));
        let err = Journal::create(&dir, opts, "other.\n").unwrap_err();
        assert!(matches!(err, Error::Journal(_)), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn checkpoint_compacts_to_one_checkpoint_and_one_wal() {
        let dir = temp_dir("compact");
        let opts = JournalOptions::default();
        let mut journal = Journal::create(&dir, opts, "base.\n").unwrap();
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.append(2, DeltaKind::AssertFacts, "p(b).").unwrap();
        journal
            .checkpoint(2, "base.\np(a).\np(b).\n", false)
            .unwrap();
        journal.append(3, DeltaKind::AssertFacts, "p(c).").unwrap();
        journal.sync_for_publish().unwrap();
        assert_eq!(journal.stats().compacted_records, 2);
        drop(journal);

        let (checkpoints, wals) = list_dir(&dir).unwrap();
        assert_eq!(checkpoints, vec![2]);
        assert_eq!(wals, vec![2]);

        let recovered = recover(&dir, opts).unwrap();
        assert_eq!(recovered.checkpoint_version, 2);
        assert_eq!(recovered.records.len(), 1, "replay bounded by checkpoint");
        assert_eq!(recovered.records[0].version, 3);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_but_mid_journal_corruption_refuses() {
        let dir = temp_dir("torn");
        let opts = JournalOptions::default();
        let mut journal = Journal::create(&dir, opts, "base.\n").unwrap();
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.append(2, DeltaKind::AssertFacts, "p(b).").unwrap();
        journal.sync_for_publish().unwrap();
        drop(journal);
        let wal_path = dir.join(wal_name(0));
        let pristine = fs::read(&wal_path).unwrap();

        // Chop bytes off the tail: the last record is dropped, the
        // prefix survives, and recovery truncates the file.
        fs::write(&wal_path, &pristine[..pristine.len() - 3]).unwrap();
        let recovered = recover(&dir, opts).unwrap();
        assert!(recovered.truncated.is_some());
        assert_eq!(recovered.records.len(), 1);
        assert_eq!(recovered.records[0].text, "p(a).");
        drop(recovered);

        // Flip a byte inside the FIRST record's payload: a valid record
        // follows, so this is mid-journal corruption, a loud error.
        let mut flipped = pristine.clone();
        flipped[8 + 8 + 4] ^= 0x40; // inside record 0's payload
        fs::write(&wal_path, &flipped).unwrap();
        let err = match recover(&dir, opts) {
            Err(e) => e,
            Ok(_) => panic!("mid-journal corruption must be a loud error"),
        };
        assert!(
            matches!(err, Error::JournalCorrupt { record: 0, .. }),
            "{err:?}"
        );

        // Flip a byte inside the LAST record instead: no valid
        // continuation, so the torn-tail rule truncates it.
        let mut tail_flipped = pristine.clone();
        let last = tail_flipped.len() - 2;
        tail_flipped[last] ^= 0x40;
        fs::write(&wal_path, &tail_flipped).unwrap();
        let recovered = recover(&dir, opts).unwrap();
        assert!(recovered.truncated.is_some());
        assert_eq!(recovered.records.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_wal_magic_is_repaired_not_zero_padded() {
        let dir = temp_dir("tornmagic");
        let opts = JournalOptions::default();
        drop(Journal::create(&dir, opts, "base.\n").unwrap());
        // A crash between WAL creation and the magic write leaves a
        // file shorter than the 8-byte header.
        let wal_path = dir.join(wal_name(0));
        fs::write(&wal_path, &WAL_MAGIC[..3]).unwrap();

        let mut recovered = recover(&dir, opts).unwrap();
        assert!(recovered.truncated.is_some());
        assert!(recovered.records.is_empty());
        assert_eq!(fs::read(&wal_path).unwrap(), WAL_MAGIC, "header rewritten");

        // The repaired journal must accept appends that the NEXT
        // recovery can read — zero-padding the header used to make
        // this second recovery fail with JournalCorrupt.
        recovered
            .journal
            .append(1, DeltaKind::AssertFacts, "p(a).")
            .unwrap();
        recovered.journal.sync_for_publish().unwrap();
        drop(recovered);
        let again = recover(&dir, opts).unwrap();
        assert!(again.truncated.is_none());
        assert_eq!(again.records.len(), 1);
        assert_eq!(again.records[0].text, "p(a).");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn rollback_unwinds_a_failed_cycle_cleanly() {
        let dir = temp_dir("rollback");
        let opts = JournalOptions::default();
        let mut journal = Journal::create(&dir, opts, "base.\n").unwrap();
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.sync_for_publish().unwrap();

        // A cycle appends two records, then fails before publish: the
        // service rolls the whole cycle back off the WAL.
        let mark = journal.mark();
        journal.append(2, DeltaKind::AssertFacts, "p(b).").unwrap();
        journal
            .append(2, DeltaKind::AssertRules, "q(X) :- p(X).")
            .unwrap();
        journal.rollback(mark);

        // The retry cycle appends fresh records at the same boundary.
        journal.append(2, DeltaKind::AssertFacts, "p(c).").unwrap();
        journal.sync_for_publish().unwrap();
        drop(journal);

        let recovered = recover(&dir, opts).unwrap();
        assert!(recovered.truncated.is_none(), "{:?}", recovered.truncated);
        assert_eq!(
            recovered
                .records
                .iter()
                .map(|r| r.text.as_str())
                .collect::<Vec<_>>(),
            vec!["p(a).", "p(c)."],
            "rolled-back records must not replay"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn identical_adjacent_submissions_both_survive_recovery() {
        let dir = temp_dir("twins");
        let opts = JournalOptions::default();
        let mut journal = Journal::create(&dir, opts, "base.\n").unwrap();
        // Two genuinely distinct identical submissions batched into one
        // cycle: same version, kind, and text. Recovery used to dedup
        // them, shrinking the recovered changelog.
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.sync_for_publish().unwrap();
        drop(journal);

        let recovered = recover(&dir, opts).unwrap();
        assert_eq!(recovered.records.len(), 2, "both submissions kept");
        assert_eq!(recovered.records[0], recovered.records[1]);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn adjacent_damaged_records_with_valid_history_after_refuse() {
        let dir = temp_dir("adjacent");
        let opts = JournalOptions::default();
        let mut journal = Journal::create(&dir, opts, "base.\n").unwrap();
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.append(2, DeltaKind::AssertFacts, "p(b).").unwrap();
        journal.append(3, DeltaKind::AssertFacts, "p(c).").unwrap();
        journal.sync_for_publish().unwrap();
        drop(journal);

        // Bit rot in records 0 AND 1 (payload bytes, length fields
        // intact), valid record 2 after them: a one-record-ahead probe
        // sees the damaged record 1 and would misclassify this as a
        // torn tail, silently truncating the acked record 2. The
        // sliding-window scan finds record 2 and refuses.
        let wal_path = dir.join(wal_name(0));
        let mut bytes = fs::read(&wal_path).unwrap();
        let rec_len = 8 + 8 + 1 + "p(a).".len(); // frame + payload
        bytes[8 + 8 + 8] ^= 0x40; // record 0 payload
        bytes[8 + rec_len + 8 + 8] ^= 0x40; // record 1 payload
        fs::write(&wal_path, &bytes).unwrap();

        let err = match recover(&dir, opts) {
            Err(e) => e,
            Ok(_) => panic!("mid-journal damage spanning two records must refuse"),
        };
        assert!(matches!(err, Error::JournalCorrupt { .. }), "{err:?}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_checkpoint_falls_back_to_the_previous_one() {
        let dir = temp_dir("tornckpt");
        let opts = JournalOptions::default();
        let mut journal = Journal::create(&dir, opts, "base.\n").unwrap();
        journal.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal.sync_for_publish().unwrap();
        drop(journal);
        // A half-written checkpoint-1, as a mid-checkpoint crash leaves.
        fs::write(dir.join(checkpoint_name(1)), &CKPT_MAGIC[..6]).unwrap();

        let recovered = recover(&dir, opts).unwrap();
        assert_eq!(recovered.checkpoint_version, 0);
        assert_eq!(recovered.records.len(), 1);
        assert!(
            !dir.join(checkpoint_name(1)).exists(),
            "torn checkpoint cleaned up"
        );
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn every_n_and_never_policies_defer_syncs() {
        let dir = temp_dir("fsync");
        let opts = JournalOptions {
            fsync: FsyncPolicy::EveryN(3),
            ..JournalOptions::default()
        };
        let mut journal = Journal::create(&dir, opts, "base.\n").unwrap();
        for v in 1..=2 {
            journal
                .append(v, DeltaKind::AssertFacts, &format!("p(a{v})."))
                .unwrap();
            journal.sync_for_publish().unwrap();
        }
        assert_eq!(journal.stats().syncs, 0, "below the EveryN threshold");
        journal.append(3, DeltaKind::AssertFacts, "p(a3).").unwrap();
        journal.sync_for_publish().unwrap();
        assert_eq!(journal.stats().syncs, 1);

        // ack_durable overrides a lazy policy.
        let dir2 = temp_dir("fsync-ack");
        let opts2 = JournalOptions {
            fsync: FsyncPolicy::Never,
            ack_durable: true,
            ..JournalOptions::default()
        };
        let mut journal2 = Journal::create(&dir2, opts2, "base.\n").unwrap();
        journal2.append(1, DeltaKind::AssertFacts, "p(a).").unwrap();
        journal2.sync_for_publish().unwrap();
        assert_eq!(journal2.stats().syncs, 1, "ack-durable forces the sync");
        let _ = fs::remove_dir_all(&dir);
        let _ = fs::remove_dir_all(&dir2);
    }
}
