//! How the semantics relate on the classes where they are supposed to
//! coincide (Sections 2.3–2.4):
//!
//! * locally stratified programs: the perfect model is total and equals
//!   the well-founded model and the unique stable model;
//! * Fitting ⊑ WFS everywhere, with the gap witnessed by positive loops;
//! * the inflationary fixpoint always contains the WFS-positive part of
//!   Horn programs (and equals the least model there).

use afp::core::alternating_fixpoint;
use afp::semantics::{
    brute_force_stable, fitting_model, inflationary_fixpoint, is_locally_stratified, perfect_model,
};
use afp_datalog::program::{GroundProgram, GroundProgramBuilder};
use proptest::prelude::*;

/// Random **stratified** propositional programs: atoms are split into
/// three layers; positive subgoals come from the same or lower layers,
/// negative subgoals strictly lower.
fn stratified_program_strategy() -> impl Strategy<Value = GroundProgram> {
    let layer_size = 4usize;
    let rule = (
        0usize..3,                                                             // head layer
        0u32..layer_size as u32,                                               // head atom in layer
        proptest::collection::vec((0usize..3, 0u32..layer_size as u32), 0..3), // pos
        proptest::collection::vec((0usize..3, 0u32..layer_size as u32), 0..2), // neg
    );
    proptest::collection::vec(rule, 0..15).prop_map(move |rules| {
        let mut b = GroundProgramBuilder::new();
        let atoms: Vec<Vec<_>> = (0..3)
            .map(|layer| {
                (0..layer_size)
                    .map(|i| b.prop(&format!("l{layer}_{i}")))
                    .collect()
            })
            .collect();
        for (hl, ha, pos, neg) in rules {
            let head = atoms[hl][ha as usize];
            let pos_atoms: Vec<_> = pos
                .iter()
                .map(|&(l, a)| atoms[l.min(hl)][a as usize])
                .collect();
            let neg_atoms: Vec<_> = neg
                .iter()
                .filter(|_| hl > 0)
                .map(|&(l, a)| atoms[l % hl][a as usize])
                .collect();
            b.rule(head, pos_atoms, neg_atoms);
        }
        b.finish()
    })
}

fn horn_program_strategy() -> impl Strategy<Value = GroundProgram> {
    let rule = (0u32..8, proptest::collection::vec(0u32..8, 0..3));
    proptest::collection::vec(rule, 0..14).prop_map(|rules| {
        let mut b = GroundProgramBuilder::new();
        let atoms: Vec<_> = (0..8).map(|i| b.prop(&format!("h{i}"))).collect();
        for (head, pos) in rules {
            b.rule(
                atoms[head as usize],
                pos.iter().map(|&i| atoms[i as usize]).collect(),
                vec![],
            );
        }
        b.finish()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn stratified_programs_collapse_the_lattice(prog in stratified_program_strategy()) {
        prop_assert!(is_locally_stratified(&prog));
        let perfect = perfect_model(&prog).expect("stratified");
        prop_assert!(perfect.model.is_total());
        let wfs = alternating_fixpoint(&prog);
        prop_assert_eq!(&perfect.model, &wfs.model, "perfect = WFS");
        prop_assert!(wfs.is_total);
        // Unique stable model (atoms ≤ 12 so brute force is fine).
        let stables = brute_force_stable(&prog);
        prop_assert_eq!(stables.len(), 1);
        prop_assert_eq!(&stables[0], &wfs.model.pos);
        // And Fitting is below (possibly strictly: positive loops).
        let fit = fitting_model(&prog);
        prop_assert!(fit.model.leq(&wfs.model));
    }

    #[test]
    fn horn_programs_all_semantics_agree(prog in horn_program_strategy()) {
        let wfs = alternating_fixpoint(&prog);
        prop_assert!(wfs.is_total);
        let lm = afp_datalog::horn::eventual_consequences(&prog, &prog.empty_set());
        prop_assert_eq!(&wfs.model.pos, &lm, "WFS⁺ = least Horn model");
        let ifp = inflationary_fixpoint(&prog);
        prop_assert_eq!(&ifp.model, &lm, "IFP = least model on Horn");
        let stables = brute_force_stable(&prog);
        prop_assert_eq!(stables.len(), 1);
        prop_assert_eq!(&stables[0], &lm);
        let perfect = perfect_model(&prog).expect("Horn is trivially stratified");
        prop_assert_eq!(&perfect.model.pos, &lm);
    }

    #[test]
    fn inflationary_stays_inside_the_positive_envelope(prog in stratified_program_strategy()) {
        // IFP conclusions need their positive subgoals derived, and their
        // negative subgoals are at best granted — so everything IFP
        // concludes lies inside S_P(H̃), the positive envelope. (This is
        // the invariant that makes the grounder's pruning sound for IFP;
        // note IFP may *miss* WFS-true atoms — the timing-sensitivity of
        // Section 2.2 — so no containment holds in the other direction.)
        let ifp = inflationary_fixpoint(&prog);
        let envelope = afp::core::ops::s_p(&prog, &prog.full_set());
        prop_assert!(ifp.model.is_subset(&envelope));
    }
}

#[test]
fn fitting_strictly_below_on_positive_loops() {
    let g = afp_datalog::parse_ground("x :- y. y :- x. z :- not x.");
    let fit = fitting_model(&g);
    let wfs = alternating_fixpoint(&g);
    assert!(fit.model.leq(&wfs.model));
    assert!(fit.model.defined_count() < wfs.model.defined_count());
}

#[test]
fn locally_stratified_but_not_stratified() {
    // Predicate-level negation cycle, atom-level acyclic: local
    // stratification still applies (Przymusiński's class).
    let g = afp_datalog::parse_ground("e(a) :- not e(b). e(b) :- not e(c). e(c).");
    assert!(is_locally_stratified(&g));
    let perfect = perfect_model(&g).unwrap();
    let wfs = alternating_fixpoint(&g);
    assert_eq!(perfect.model, wfs.model);
    // e(c) is a fact, so e(b) fails, so e(a) succeeds.
    assert_eq!(g.set_to_names(&perfect.model.pos), vec!["e(a)", "e(c)"]);
}
