//! Integration tests for the telemetry tier: the `metrics` command over
//! every transport, the golden key-set pins for the `stats` and
//! `metrics` frame schemas, the Chrome trace stream, and the
//! phase-breakdown recording in the write cycle itself.
//!
//! The schema tests pin **key sets**, not values: adding a counter is a
//! deliberate schema change (update the lists here), renaming or
//! dropping one is a wire break this file catches.

use std::io::Write;
use std::process::{Command, Stdio};

use afp::{Engine, MetricsFormat, Service, Telemetry};

// ---------------------------------------------------------------------------
// Minimal JSON scanners (the repo speaks hand-rolled JSON; the tests
// read it the same way). Good enough for the engine's own output: keys
// are identifiers and values are numbers, strings without escapes,
// objects, or arrays.
// ---------------------------------------------------------------------------

/// Top-level keys of the JSON object starting at `obj[0] == '{'`.
fn object_keys(obj: &str) -> Vec<String> {
    let bytes = obj.as_bytes();
    assert_eq!(bytes.first(), Some(&b'{'), "not an object: {obj}");
    let mut keys = Vec::new();
    let mut depth = 0usize;
    let mut in_str = false;
    let mut str_start = 0usize;
    let mut last_str: Option<String> = None;
    for (i, &c) in bytes.iter().enumerate() {
        if in_str {
            if c == b'"' {
                in_str = false;
                last_str = Some(obj[str_start..i].to_string());
            }
            continue;
        }
        match c {
            b'"' => {
                in_str = true;
                str_start = i + 1;
            }
            b'{' | b'[' => depth += 1,
            b'}' | b']' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            b':' if depth == 1 => {
                if let Some(k) = last_str.take() {
                    keys.push(k);
                }
            }
            _ => {}
        }
    }
    keys
}

/// The balanced object/array value of `"key":` inside `json`.
fn section<'a>(json: &'a str, key: &str) -> &'a str {
    let pat = format!("{key:?}:");
    let start = json
        .find(&pat)
        .unwrap_or_else(|| panic!("no {key} in {json}"))
        + pat.len();
    let bytes = json.as_bytes();
    let (open, close) = match bytes[start] {
        b'{' => (b'{', b'}'),
        b'[' => (b'[', b']'),
        other => panic!("{key} is not an object/array (starts {:?})", other as char),
    };
    let mut depth = 0usize;
    let mut in_str = false;
    for (i, &c) in bytes[start..].iter().enumerate() {
        if in_str {
            in_str = c != b'"';
            continue;
        }
        match c {
            b'"' => in_str = true,
            c if c == open => depth += 1,
            c if c == close => {
                depth -= 1;
                if depth == 0 {
                    return &json[start..=start + i];
                }
            }
            _ => {}
        }
    }
    panic!("unbalanced {key} in {json}")
}

fn sorted(mut v: Vec<String>) -> Vec<String> {
    v.sort();
    v
}

fn keys_of(json: &str, key: &str) -> Vec<String> {
    sorted(object_keys(section(json, key)))
}

// ---------------------------------------------------------------------------
// Golden key sets — the wire schema, pinned. Order-independent (sets),
// values unchecked.
// ---------------------------------------------------------------------------

const SESSION_KEYS: &[&str] = &[
    "asserts",
    "condensation_builds",
    "condensation_repairs",
    "delta_rounds",
    "last_components",
    "last_components_evaluated",
    "last_components_reused",
    "last_ready_width",
    "last_repair_atoms",
    "last_repair_edges",
    "last_seed_size",
    "last_wavefronts",
    "par_components",
    "regrounds",
    "restricted_cond_hits",
    "retracts",
    "rule_asserts",
    "rule_retracts",
    "scc_solves",
    "seq_components",
    "snapshot_clones",
    "snapshot_reuses",
    "solves",
    "stolen_tasks",
    "warm_solves",
];

const SERVICE_KEYS: &[&str] = &[
    "cache_hits",
    "cache_misses",
    "changelog_evicted",
    "coalesced",
    "last_cycle_width",
    "max_cycle_width",
    "pins",
    "rejected",
    "submissions",
    "version",
    "write_cycles",
];

const NET_KEYS: &[&str] = &[
    "aborted",
    "completed",
    "conns_accepted",
    "conns_open",
    "conns_rejected",
    "frames_in",
    "frames_out",
    "last_cycle_width",
    "max_cycle_width",
    "overloaded",
    "queue_depth",
    "queue_depth_hwm",
    "submitted",
    "timed_out",
    "write_p50_us",
    "write_p99_us",
];

const HISTOGRAM_KEYS: &[&str] = &[
    "condense_ns",
    "cycle_total_ns",
    "fsync_ns",
    "ground_ns",
    "journal_append_ns",
    "publish_ns",
    "queue_wait_ns",
    "repair_ns",
    "request_ns",
    "solve_ns",
];

const COUNTER_KEYS: &[&str] = &[
    "cycles",
    "slow_cycles",
    "solve_busy_ns",
    "solve_sleep_ns",
    "solve_steal_ns",
    "trace_dropped",
];

const GAUGE_KEYS: &[&str] = &["recent_cycles", "trace_buffered"];

fn assert_stats_schema(frame: &str) {
    assert_eq!(sorted(object_keys(frame)), vec!["net", "service", "stats"]);
    assert_eq!(keys_of(frame, "stats"), SESSION_KEYS, "{frame}");
    assert_eq!(keys_of(frame, "service"), SERVICE_KEYS, "{frame}");
    assert_eq!(keys_of(frame, "net"), NET_KEYS, "{frame}");
}

fn assert_metrics_schema(frame: &str) {
    assert_eq!(object_keys(frame), vec!["telemetry"], "{frame}");
    assert_eq!(
        keys_of(frame, "telemetry"),
        vec![
            "counters",
            "enabled",
            "format",
            "gauges",
            "histograms",
            "recent_cycles"
        ],
        "{frame}"
    );
    assert_eq!(keys_of(frame, "histograms"), HISTOGRAM_KEYS, "{frame}");
    assert_eq!(keys_of(frame, "counters"), COUNTER_KEYS, "{frame}");
    assert_eq!(keys_of(frame, "gauges"), GAUGE_KEYS, "{frame}");
    // Every histogram snapshot carries the full quantile set.
    assert_eq!(
        keys_of(section(frame, "histograms"), "cycle_total_ns"),
        vec!["count", "max", "p50", "p90", "p99", "sum"],
        "{frame}"
    );
}

// ---------------------------------------------------------------------------
// CLI harness (mirrors tests/cli.rs)
// ---------------------------------------------------------------------------

const SERVE_SRC: &str = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("afp-telemetry-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_serve(tag: &str, args: &[&str], commands: &str) -> (String, String, Option<i32>) {
    let dir = temp_dir(tag);
    let file = dir.join("program.afp");
    std::fs::write(&file, SERVE_SRC).unwrap();
    let mut full: Vec<&str> = vec!["--serve"];
    full.extend_from_slice(args);
    let path = file.to_str().unwrap().to_string();
    full.push(&path);
    let mut child = Command::new(env!("CARGO_BIN_EXE_afp"))
        .args(&full)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(commands.as_bytes());
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

/// 4-byte big-endian length framing, by hand — the client-side spec of
/// the wire format (same as tests/cli.rs).
fn send(conn: &mut (impl std::io::Read + std::io::Write), line: &str) -> String {
    conn.write_all(&(line.len() as u32).to_be_bytes()).unwrap();
    conn.write_all(line.as_bytes()).unwrap();
    conn.flush().unwrap();
    let mut header = [0u8; 4];
    conn.read_exact(&mut header).unwrap();
    let mut payload = vec![0u8; u32::from_be_bytes(header) as usize];
    conn.read_exact(&mut payload).unwrap();
    String::from_utf8(payload).unwrap()
}

// ---------------------------------------------------------------------------
// Golden schema over TCP and unix — one process fronting both.
// ---------------------------------------------------------------------------

#[test]
fn stats_and_metrics_schemas_match_over_tcp_and_unix() {
    use std::io::{BufRead, BufReader};

    let dir = temp_dir("wire-schema");
    let file = dir.join("program.afp");
    std::fs::write(&file, SERVE_SRC).unwrap();
    let socket = dir.join("afp.sock");
    let _ = std::fs::remove_file(&socket);

    let mut child = Command::new(env!("CARGO_BIN_EXE_afp"))
        .args([
            "--serve",
            "--json",
            "--listen",
            "127.0.0.1:0",
            "--socket",
            socket.to_str().unwrap(),
            file.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));

    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("{\"listening\":{\"transport\":\"tcp\",\"addr\":\"")
        .unwrap_or_else(|| panic!("bad announce line: {line}"))
        .strip_suffix("\"}}")
        .unwrap()
        .to_string();
    line.clear();
    stdout.read_line(&mut line).unwrap();
    assert!(line.starts_with("{\"listening\":{\"transport\":\"unix\","));

    let mut tcp = std::net::TcpStream::connect(&addr).unwrap();
    let mut unix = std::os::unix::net::UnixStream::connect(&socket).unwrap();

    // A write so the histograms have a recorded cycle behind them.
    assert_eq!(
        send(&mut tcp, "assert-facts move(c, d)."),
        "{\"ok\":true,\"version\":1}"
    );

    let tcp_stats = send(&mut tcp, "stats");
    let unix_stats = send(&mut unix, "stats");
    assert_stats_schema(&tcp_stats);
    assert_stats_schema(&unix_stats);

    let tcp_metrics = send(&mut tcp, "metrics");
    let unix_metrics = send(&mut unix, "metrics");
    assert_metrics_schema(&tcp_metrics);
    assert_metrics_schema(&unix_metrics);
    // Both transports expose the same registry: same schema, and the
    // recorded write cycle is visible from both sides.
    for frame in [&tcp_metrics, &unix_metrics] {
        assert!(frame.contains("\"enabled\":true"), "{frame}");
        let cycle = section(section(frame, "histograms"), "cycle_total_ns");
        assert!(cycle.contains("\"count\":1"), "{frame}");
        assert!(!cycle.contains("\"p50\":0,"), "cycle p50 empty: {frame}");
        assert!(!cycle.contains("\"p99\":0,"), "cycle p99 empty: {frame}");
    }
    // The per-request histogram is live on the wire path: the assert
    // and both stats requests were already recorded when this frame
    // rendered.
    assert!(
        !section(section(&tcp_metrics, "histograms"), "request_ns").contains("\"count\":0,"),
        "{tcp_metrics}"
    );

    drop(tcp);
    drop(unix);
    drop(child.stdin.take());
    assert_eq!(child.wait().expect("wait").code(), Some(0));
}

// ---------------------------------------------------------------------------
// metrics over stdin: JSON and Prometheus renderings
// ---------------------------------------------------------------------------

#[test]
fn metrics_over_stdin_reports_phase_histograms() {
    let (stdout, _, code) = run_serve(
        "stdin-json",
        &["--json"],
        "assert move(c, d).\nassert move(d, e).\nmetrics\nquit\n",
    );
    assert_eq!(code, Some(0));
    let frame = stdout
        .lines()
        .find(|l| l.starts_with("{\"telemetry\":"))
        .unwrap_or_else(|| panic!("no metrics frame: {stdout}"));
    assert_metrics_schema(frame);
    assert!(frame.contains("\"enabled\":true"), "{frame}");
    assert!(frame.contains("\"format\":\"json\""), "{frame}");
    // Two write cycles recorded, with live quantiles.
    assert!(frame.contains("\"cycles\":2"), "{frame}");
    let cycle = section(section(frame, "histograms"), "cycle_total_ns");
    assert!(cycle.contains("\"count\":2"), "{frame}");
    assert!(!cycle.contains("\"p50\":0,"), "{frame}");
    assert!(!cycle.contains("\"p99\":0,"), "{frame}");
    // The recent-cycle ring carries both breakdowns, newest last.
    // (Index past the identically-named gauge to the array itself.)
    let recent = &frame[frame.find("\"recent_cycles\":[").unwrap()..];
    assert!(recent.contains("\"version\":1,"), "{frame}");
    assert!(recent.contains("\"version\":2,"), "{frame}");
}

#[test]
fn metrics_format_prom_renders_prometheus_text() {
    let (stdout, _, code) = run_serve(
        "stdin-prom",
        &["--metrics-format", "prom"],
        "assert move(c, d).\nmetrics\nquit\n",
    );
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("# TYPE afp_cycles_total counter"),
        "{stdout}"
    );
    assert!(stdout.contains("afp_cycles_total 1"), "{stdout}");
    assert!(
        stdout.contains("# TYPE afp_cycle_total_ns summary"),
        "{stdout}"
    );
    assert!(
        stdout.contains("afp_cycle_total_ns{quantile=\"0.5\"}"),
        "{stdout}"
    );
    assert!(
        stdout.contains("afp_cycle_total_ns{quantile=\"0.99\"}"),
        "{stdout}"
    );
    assert!(stdout.contains("afp_cycle_total_ns_count 1"), "{stdout}");
    assert!(stdout.contains("afp_recent_cycles 1"), "{stdout}");
    // Every histogram is exported under its prefixed name.
    for name in HISTOGRAM_KEYS {
        assert!(
            stdout.contains(&format!("afp_{name}_sum")),
            "{name}: {stdout}"
        );
    }
}

/// The JSON metrics frame over stdin and over the wire expose the same
/// schema — one registry, one renderer, three transports.
#[test]
fn stdin_metrics_matches_wire_schema() {
    let (stdout, _, code) = run_serve("stdin-schema", &["--json"], "metrics\nquit\n");
    assert_eq!(code, Some(0));
    let frame = stdout
        .lines()
        .find(|l| l.starts_with("{\"telemetry\":"))
        .unwrap_or_else(|| panic!("no metrics frame: {stdout}"));
    assert_metrics_schema(frame);
}

// ---------------------------------------------------------------------------
// Trace stream and slow-cycle log
// ---------------------------------------------------------------------------

#[test]
fn trace_file_streams_chrome_trace_events() {
    let dir = temp_dir("trace");
    let trace = dir.join("trace.json");
    let _ = std::fs::remove_file(&trace);
    let (_, _, code) = run_serve(
        "trace-run",
        &["--trace", trace.to_str().unwrap()],
        "assert move(c, d).\nassert move(d, e).\nassert move(e, f).\nquit\n",
    );
    assert_eq!(code, Some(0));

    let body = std::fs::read_to_string(&trace).unwrap();
    // Chrome trace-event streaming format: `[` then comma-terminated
    // complete events, one per line; the closing `]` is optional.
    let mut lines = body.lines();
    assert_eq!(lines.next(), Some("["), "{body}");
    let events: Vec<&str> = lines.collect();
    // 8 events per write cycle (the cycle span + 7 phases), 3 cycles.
    assert_eq!(events.len(), 24, "{body}");
    for ev in &events {
        assert!(ev.starts_with('{'), "{ev}");
        assert!(ev.ends_with("},"), "{ev}");
        assert!(ev.contains("\"ph\":\"X\""), "{ev}");
        for field in [
            "\"name\":",
            "\"cat\":",
            "\"ts\":",
            "\"dur\":",
            "\"pid\":",
            "\"tid\":",
        ] {
            assert!(ev.contains(field), "{ev}");
        }
    }
    // Each cycle opens with its span, versions in publish order.
    for (version, chunk) in events.chunks(8).enumerate() {
        assert!(
            chunk[0].contains("\"name\":\"cycle\"")
                && chunk[0].contains(&format!("\"version\":{}", version + 1)),
            "{body}"
        );
        for (ev, name) in chunk[1..].iter().zip([
            "ground",
            "repair",
            "condense",
            "solve",
            "journal_append",
            "fsync",
            "publish",
        ]) {
            assert!(ev.contains(&format!("\"name\":{name:?}")), "{ev}");
        }
    }
}

#[test]
fn slow_cycle_threshold_logs_and_counts() {
    let (stdout, stderr, code) = run_serve(
        "slow",
        &["--json", "--slow-cycle-ms", "0"],
        "assert move(c, d).\nmetrics\nquit\n",
    );
    assert_eq!(code, Some(0));
    // Threshold 0: every cycle is slow. The log line carries the
    // phase breakdown rendering.
    assert!(stderr.contains("slow cycle: version 1 width 1"), "{stderr}");
    assert!(stderr.contains("solve"), "{stderr}");
    assert!(stdout.contains("\"slow_cycles\":1"), "{stdout}");
}

// ---------------------------------------------------------------------------
// Library-level: the service records breakdowns; disabled telemetry
// records nothing.
// ---------------------------------------------------------------------------

#[test]
fn service_records_phase_breakdowns_per_cycle() {
    let engine = Engine::default();
    let service = Service::new(engine.load(SERVE_SRC).unwrap()).unwrap();
    service.assert_facts("move(c, d).").unwrap();
    service.assert_facts("move(d, e).").unwrap();

    let telemetry = service.telemetry();
    assert!(telemetry.enabled());
    assert_eq!(telemetry.format(), MetricsFormat::Json);
    let cycles = telemetry.recent_cycles();
    assert_eq!(cycles.len(), 2);
    assert_eq!(cycles[0].version, 1);
    assert_eq!(cycles[1].version, 2);
    for b in &cycles {
        assert_eq!(b.width, 1);
        assert!(b.total_ns > 0);
        assert!(b.solve_ns > 0);
        // Phases are disjoint slices of the cycle.
        assert!(
            b.ground_ns + b.repair_ns + b.condense_ns + b.solve_ns + b.publish_ns <= b.total_ns,
            "{b:?}"
        );
        // No journal: those phases are zero, not garbage.
        assert_eq!(b.journal_append_ns, 0);
        assert_eq!(b.fsync_ns, 0);
    }
    let registry = telemetry.registry().unwrap();
    assert_eq!(registry.cycles.get(), 2);
    assert_eq!(registry.cycle_total_ns.snapshot().count, 2);
    assert!(registry.cycle_total_ns.snapshot().p50 > 0);
}

#[test]
fn journaled_cycles_record_append_and_fsync_time() {
    use afp::{FsyncPolicy, JournalOptions};
    let dir = temp_dir("journaled");
    let jdir = dir.join("journal");
    let _ = std::fs::remove_dir_all(&jdir);
    let engine = Engine::default();
    let service = Service::with_journal(
        engine.load(SERVE_SRC).unwrap(),
        Default::default(),
        &jdir,
        JournalOptions {
            fsync: FsyncPolicy::Always,
            ..Default::default()
        },
    )
    .unwrap();
    service.assert_facts("move(c, d).").unwrap();

    let cycles = service.telemetry().recent_cycles();
    assert_eq!(cycles.len(), 1);
    assert!(cycles[0].journal_append_ns > 0, "{:?}", cycles[0]);
    assert!(cycles[0].fsync_ns > 0, "{:?}", cycles[0]);
}

#[test]
fn disabled_telemetry_records_nothing_and_says_so() {
    let engine = Engine::default();
    let service = Service::new(engine.load(SERVE_SRC).unwrap()).unwrap();
    service.set_telemetry(Telemetry::disabled());
    service.assert_facts("move(c, d).").unwrap();

    let telemetry = service.telemetry();
    assert!(!telemetry.enabled());
    assert!(telemetry.registry().is_none());
    assert!(telemetry.recent_cycles().is_empty());
    assert_eq!(telemetry.render(), "{\"telemetry\":{\"enabled\":false}}");
    // The write itself still worked.
    assert_eq!(service.version(), 1);
}

#[test]
fn uptime_is_monotonic() {
    let engine = Engine::default();
    let service = Service::new(engine.load("a.").unwrap()).unwrap();
    let first = service.uptime_ms();
    std::thread::sleep(std::time::Duration::from_millis(5));
    assert!(service.uptime_ms() > first || service.uptime_ms() >= 5);
}
