//! Failure injection: every malformed input and resource exhaustion path
//! surfaces as a typed error, never a panic or a wrong answer.

use afp::datalog::{GroundError, GroundOptions, ParseError, SafetyPolicy};
use afp::{Engine, Error};

fn solve(src: &str) -> Result<afp::Model, Error> {
    Engine::default().solve(src)
}

fn solve_with(src: &str, options: GroundOptions) -> Result<afp::Model, Error> {
    Engine::builder().ground_options(options).build().solve(src)
}

#[test]
fn parse_failures_are_typed() {
    for (src, expect) in [
        ("p :- ", "UnexpectedEof"),
        ("p :- q", "UnexpectedEof"),
        ("not p :- q.", "InvalidHead"),
        ("X :- p.", "InvalidHead"),
        ("p('unterminated.", "UnterminatedQuote"),
        ("p :- ,.", "UnexpectedToken"),
        ("p ? q.", "UnexpectedChar"),
        ("/* no close", "UnexpectedEof"),
    ] {
        match solve(src) {
            Err(Error::Parse(e)) => {
                let tag = format!("{e:?}");
                assert!(
                    tag.contains(expect),
                    "{src:?}: expected {expect}, got {tag}"
                );
            }
            other => panic!("{src:?}: expected parse error, got {other:?}"),
        }
    }
}

#[test]
fn unsafe_rules_name_the_variable() {
    match solve("p(X, Y) :- q(X). q(a).") {
        Err(Error::Ground(GroundError::UnsafeRule { variable, .. })) => {
            assert_eq!(variable, "Y");
        }
        other => panic!("expected UnsafeRule, got {other:?}"),
    }
}

#[test]
fn atom_budget_stops_function_symbol_divergence() {
    let result = solve_with(
        "n(z). n(s(X)) :- n(X).",
        GroundOptions {
            max_envelope_tuples: 500,
            ..Default::default()
        },
    );
    assert!(matches!(
        result,
        Err(Error::Ground(GroundError::AtomBudgetExceeded {
            limit: 500
        }))
    ));
}

#[test]
fn empty_domain_for_active_domain_policy() {
    let result = solve_with(
        "p(X) :- not q(X).",
        GroundOptions {
            safety: SafetyPolicy::ActiveDomain,
            ..Default::default()
        },
    );
    assert!(matches!(
        result,
        Err(Error::Ground(GroundError::EmptyDomain))
    ));
}

#[test]
fn rule_budget_enforced() {
    // A cross-product rule: 20 × 20 instantiations > budget 100.
    let mut src = String::from("pair(X, Y) :- d(X), d(Y).\n");
    for i in 0..20 {
        src.push_str(&format!("d(c{i}).\n"));
    }
    let result = solve_with(
        &src,
        GroundOptions {
            max_ground_rules: 100,
            ..Default::default()
        },
    );
    assert!(matches!(
        result,
        Err(Error::Ground(GroundError::RuleBudgetExceeded {
            limit: 100
        }))
    ));
}

#[test]
fn empty_program_is_fine() {
    let model = solve("").unwrap();
    assert!(model.is_total());
    assert_eq!(model.true_atoms().count(), 0);
}

#[test]
fn comments_only_program_is_fine() {
    let model = solve("% nothing here\n// or here\n/* or here */").unwrap();
    assert!(model.is_total());
}

#[test]
fn queries_for_unknown_atoms_are_false_not_errors() {
    let model = solve("p(a).").unwrap();
    assert_eq!(model.truth("p", &["b"]), afp::Truth::False);
    assert_eq!(model.truth("zzz", &[]), afp::Truth::False);
    assert_eq!(model.truth("p", &["a", "b"]), afp::Truth::False); // wrong arity
}

#[test]
fn parse_error_locations_are_accurate() {
    let err = afp::datalog::parse_program("p.\nq :- r s.\n").unwrap_err();
    match err {
        ParseError::UnexpectedToken { at, .. } => {
            assert_eq!(at.line, 2);
            assert!(at.column >= 8);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn deep_function_nesting_is_bounded_not_crashing() {
    // f(f(f(...))) to depth 40 in a *fact* is fine — no divergence.
    let mut term = String::from("a");
    for _ in 0..40 {
        term = format!("f({term})");
    }
    let model = solve(&format!("deep({term}).")).unwrap();
    assert!(model.is_total());
    assert_eq!(model.true_atoms().count(), 1);
}
