//! End-to-end tests of the `afp` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_afp(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_afp"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    // Ignore EPIPE: usage errors may exit before stdin is drained.
    let _ = child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes());
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn wfs_is_the_default() {
    let (stdout, _, code) = run_afp(&[], "a. b :- a. c :- not b.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("a."));
    assert!(stdout.contains("b."));
    assert!(!stdout.contains("c."));
    assert!(stdout.contains("% total: true"));
}

#[test]
fn undefined_atoms_marked() {
    let (stdout, _, code) = run_afp(&[], "p :- not q. q :- not p.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("p?"));
    assert!(stdout.contains("q?"));
    assert!(stdout.contains("% total: false"));
}

#[test]
fn query_exit_codes() {
    let (stdout, _, code) = run_afp(&["-q", "b"], "a. b :- a.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("True"));
    let (stdout, _, code) = run_afp(&["-q", "zzz"], "a.");
    assert_eq!(code, Some(1));
    assert!(stdout.contains("False"));
}

#[test]
fn stable_enumeration_and_counts() {
    let (stdout, _, code) = run_afp(&["-s", "stable"], "p :- not q. q :- not p.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("% stable model 1"));
    assert!(stdout.contains("% stable model 2"));
    let (stdout, _, code) = run_afp(&["-s", "stable"], "p :- not q. q :- not r. r :- not p.");
    assert_eq!(code, Some(1));
    assert!(stdout.contains("% no stable model"));
}

#[test]
fn max_models_flag() {
    let (stdout, _, _) = run_afp(&["-s", "stable", "-n", "1"], "p :- not q. q :- not p.");
    assert!(stdout.contains("% stable model 1"));
    assert!(!stdout.contains("% stable model 2"));
}

#[test]
fn ground_dump() {
    let (stdout, _, code) = run_afp(
        &["--ground"],
        "wins(X) :- move(X, Y), not wins(Y). move(a, b).",
    );
    assert_eq!(code, Some(0));
    assert!(stdout.contains("move(a, b)."));
    assert!(stdout.contains("wins(a)"));
}

#[test]
fn parse_errors_go_to_stderr_with_code_2() {
    let (_, stderr, code) = run_afp(&[], "p :- ");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("parse error"));
}

#[test]
fn unsafe_rules_suggest_active_domain() {
    let (_, stderr, code) = run_afp(&[], "p(X) :- not q(X). q(a).");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unsafe rule"));
    // With -a the same program works.
    let (stdout, _, code) = run_afp(&["-a"], "p(X) :- not q(X). q(a). r(b).");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("p(b)."));
}

#[test]
fn fitting_and_perfect_semantics() {
    // (The positive-loop Fitting gap is not visible through the CLI: the
    // grounder's envelope already prunes derivation-free loops. A negative
    // cycle survives grounding and stays undefined under Fitting.)
    let (stdout, _, _) = run_afp(&["-s", "fitting"], "x :- not y. y :- not x. z.");
    assert!(stdout.contains("x?"));
    assert!(stdout.contains("z."));
    let (stdout, _, code) = run_afp(&["-s", "perfect"], "a. b :- not a.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("a."));
    assert!(!stdout.contains("b."));
    // Perfect on a non-locally-stratified program fails cleanly.
    let (_, stderr, code) = run_afp(&["-s", "perfect"], "p :- not q. q :- not p.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("not locally stratified"));
}

#[test]
fn ifp_semantics_runs() {
    let (stdout, _, code) = run_afp(&["-s", "ifp"], "e(a,b). p :- e(a,b). np :- not p.");
    assert_eq!(code, Some(0));
    // IFP concludes both p and np (the Example 2.2 effect).
    assert!(stdout.contains("p."));
    assert!(stdout.contains("np."));
}

#[test]
fn unknown_semantics_rejected() {
    let (_, stderr, code) = run_afp(&["-s", "nonsense"], "a.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown semantics"));
}

#[test]
fn trace_flag_prints_sequence() {
    let (stdout, _, _) = run_afp(&["-t"], "p :- not q. q :- not p.");
    assert!(stdout.contains("% alternating sequence"));
    assert!(stdout.contains("k=0"));
}

#[test]
fn json_output_for_truth_assignments() {
    let (stdout, _, code) = run_afp(
        &["--json"],
        "a. b :- a. c :- not b. p :- not q. q :- not p.",
    );
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"semantics\":\"wfs\""));
    assert!(stdout.contains("\"total\":false"));
    assert!(stdout.contains("\"true\":[\"a\",\"b\"]"));
    assert!(stdout.contains("\"false\":[\"c\"]"));
    assert!(stdout.contains("\"undefined\":[\"p\",\"q\"]"));
}

#[test]
fn json_output_for_stable_models() {
    let (stdout, _, code) = run_afp(&["-s", "stable", "-j"], "p :- not q. q :- not p.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"semantics\":\"stable\""));
    assert!(stdout.contains("\"count\":2"));
    assert!(stdout.contains("[\"p\"]"));
    assert!(stdout.contains("[\"q\"]"));
    // No stable model still exits 1, with an empty JSON list.
    let (stdout, _, code) = run_afp(
        &["-s", "stable", "-j"],
        "p :- not q. q :- not r. r :- not p.",
    );
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"count\":0"));
}

#[test]
fn json_output_for_queries() {
    let (stdout, _, code) = run_afp(&["-q", "b", "-j"], "a. b :- a.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"query\":\"b\""));
    assert!(stdout.contains("\"truth\":\"true\""));
    let (stdout, _, code) = run_afp(&["-q", "zzz", "-j"], "a.");
    assert_eq!(code, Some(1));
    assert!(stdout.contains("\"truth\":\"false\""));
}

#[test]
fn stable_query_keeps_no_model_exit_code() {
    // The documented contract — exit 1 when no stable model exists —
    // holds even when a query is printed.
    let (stdout, _, code) = run_afp(
        &["-s", "stable", "-q", "a"],
        "a :- not b. b :- not c. c :- not a.",
    );
    assert_eq!(code, Some(1));
    assert!(stdout.contains("Undefined"));
    let (_, _, code) = run_afp(&["-s", "stable", "-q", "p"], "p :- not q. q :- not p.");
    assert_eq!(code, Some(0));
}

#[test]
fn unknown_flags_exit_2_with_usage_hint() {
    let (_, stderr, code) = run_afp(&["--no-such-flag"], "a.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"));
    let (_, stderr, code) = run_afp(&["-s", "nonsense"], "a.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"));
}

#[test]
fn bad_queries_exit_2_with_usage_hint() {
    for query in ["wins(X)", "p(", ""] {
        let (_, stderr, code) = run_afp(&["-q", query], "a.");
        assert_eq!(code, Some(2), "query {query:?}");
        assert!(stderr.contains("bad query"), "query {query:?}: {stderr}");
        assert!(stderr.contains("usage:"), "query {query:?}: {stderr}");
    }
}

#[test]
fn assert_and_retract_apply_in_order() {
    // The asserted rule derives q(a); the later retract removes the fact
    // feeding it, so the final model has q(a) false again.
    let (stdout, _, code) = run_afp(
        &["--assert", "q(X) :- e(X).", "-q", "q(a)"],
        "p(X) :- e(X). e(a).",
    );
    assert_eq!(code, Some(0));
    assert!(stdout.contains("True"));

    let (stdout, _, code) = run_afp(
        &[
            "--assert",
            "q(X) :- e(X).",
            "--retract",
            "e(a).",
            "-q",
            "q(a)",
        ],
        "p(X) :- e(X). e(a).",
    );
    assert_eq!(code, Some(1), "q(a) is false once e(a) is retracted");
    assert!(stdout.contains("False"));

    // Retracting a rule stated in the program works too.
    let (stdout, _, code) = run_afp(
        &["--retract", "p(X) :- e(X).", "-q", "p(a)"],
        "p(X) :- e(X). e(a).",
    );
    assert_eq!(code, Some(1));
    assert!(stdout.contains("False"));
}

#[test]
fn bad_updates_exit_2() {
    // An unsafe asserted rule surfaces the grounding error (exit 2).
    let (_, stderr, code) = run_afp(&["--assert", "r(X) :- not e(X)."], "p(X) :- e(X). e(a).");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unsafe"), "{stderr}");
    // A parse error in the update text too.
    let (_, _, code) = run_afp(&["--assert", "p :- "], "a.");
    assert_eq!(code, Some(2));
    // Missing operand is a usage error.
    let (_, stderr, code) = run_afp(&["--assert"], "a.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"));
}

#[test]
fn stats_flag_prints_json_counters() {
    // JSON mode: a second JSON line with the session counters.
    let (stdout, _, code) = run_afp(&["--json", "--stats"], "a. b :- a. c :- not b.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"stats\":{"), "{stdout}");
    assert!(stdout.contains("\"solves\":1"));
    assert!(stdout.contains("\"snapshot_clones\":1"));
    assert!(stdout.contains("\"snapshot_reuses\":0"));

    // Plain mode: the same object behind a `%` comment.
    let (stdout, _, code) = run_afp(&["--stats"], "a.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("% stats {"), "{stdout}");

    // Counters reflect --assert updates.
    let (stdout, _, code) = run_afp(
        &["--json", "--stats", "--assert", "d."],
        "a. b :- a. c :- not b.",
    );
    assert_eq!(code, Some(0));
    assert!(stdout.contains("\"rule_asserts\":1"), "{stdout}");

    // And compose with queries (exit-code contract intact).
    let (stdout, _, code) = run_afp(&["--stats", "-q", "zzz"], "a.");
    assert_eq!(code, Some(1));
    assert!(stdout.contains("% stats {"));

    // The scheduler counters ride along in the same object.
    let (stdout, _, code) = run_afp(&["--json", "--stats"], "a. b :- a.");
    assert_eq!(code, Some(0));
    for key in [
        "\"last_wavefronts\":",
        "\"last_ready_width\":",
        "\"stolen_tasks\":0",
        "\"par_components\":0",
        "\"seq_components\":",
    ] {
        assert!(stdout.contains(key), "missing {key} in {stdout}");
    }
}

#[test]
fn threads_flag_is_validated_and_model_invariant() {
    let src = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";
    // The solved model is bit-identical across thread counts, auto
    // detection (0) included.
    let (baseline, _, code) = run_afp(&["--threads", "1"], src);
    assert_eq!(code, Some(0));
    for threads in ["2", "4", "0"] {
        let (stdout, _, code) = run_afp(&["--threads", threads], src);
        assert_eq!(code, Some(0));
        assert_eq!(stdout, baseline, "--threads {threads} moved the output");
    }

    // Validation: non-numeric and absurd values are usage errors.
    for bad in ["abc", "-3", "1025"] {
        let (_, stderr, code) = run_afp(&["--threads", bad], "a.");
        assert_eq!(code, Some(2), "--threads {bad} must be rejected");
        assert!(stderr.contains("usage:"), "{stderr}");
    }
    // Missing operand is a usage error too.
    let (_, stderr, code) = run_afp(&["--threads"], "a.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"));

    // --help documents the flag.
    let (_, stderr, _) = run_afp(&["-h"], "");
    assert!(stderr.contains("--threads"), "{stderr}");
}

const SERVE_SRC: &str = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";

fn run_serve(args: &[&str], commands: &str) -> (String, String, Option<i32>) {
    let dir = std::env::temp_dir().join(format!(
        "afp-serve-test-{}-{}",
        std::process::id(),
        commands.len()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("program.afp");
    std::fs::write(&file, SERVE_SRC).unwrap();
    let mut full: Vec<&str> = vec!["--serve"];
    full.extend_from_slice(args);
    let path = file.to_str().unwrap().to_string();
    full.push(&path);
    run_afp(&full, commands)
}

#[test]
fn serve_mode_queries_and_updates() {
    let (stdout, _, code) = run_serve(
        &[],
        "query wins(b)\n\
         assert move(c, d).\n\
         query wins(c)\n\
         at 0 wins(c)\n\
         version\n\
         retract move(c, d).\n\
         query wins(c)\n\
         quit\n",
    );
    assert_eq!(code, Some(0));
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines,
        vec!["True", "ok 1", "True", "False", "1", "ok 2", "False"],
        "{stdout}"
    );
}

#[test]
fn serve_mode_json_protocol() {
    let (stdout, _, code) = run_serve(
        &["--json"],
        "query wins(b)\nassert move(c, d).\nstats\nquit\n",
    );
    assert_eq!(code, Some(0));
    assert!(
        stdout.contains("\"version\":0,\"query\":\"wins(b)\",\"truth\":\"true\""),
        "{stdout}"
    );
    assert!(stdout.contains("{\"ok\":true,\"version\":1}"));
    assert!(stdout.contains("\"service\":{\"version\":1,\"submissions\":1,\"write_cycles\":1"));
}

#[test]
fn serve_mode_survives_bad_commands() {
    let (stdout, _, code) = run_serve(
        &[],
        "bogus\n\
         query wins(X)\n\
         assert r(X) :- not s(X).\n\
         at 99 wins(a)\n\
         query wins(b)\n",
    );
    // EOF ends the loop; every failure was inline, the server kept going.
    assert_eq!(code, Some(0));
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 5, "{stdout}");
    assert!(lines[0].starts_with("error: unknown command"));
    assert!(lines[1].starts_with("error: bad query"));
    assert!(lines[2].starts_with("error: grounding error"), "{stdout}");
    assert!(
        lines[3].starts_with("error: version 99 is outside the retained window"),
        "{stdout}"
    );
    assert_eq!(lines[4], "True");
}

#[test]
fn serve_mode_model_dump() {
    let (stdout, _, code) = run_serve(&[], "assert move(c, d).\nmodel\nquit\n");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("% version 1"), "{stdout}");
    assert!(stdout.contains("wins(c)."));
}

#[test]
fn serve_mode_honors_stats_flag_at_exit() {
    let (stdout, _, code) = run_serve(&["--json", "--stats"], "assert move(c, d).\nquit\n");
    assert_eq!(code, Some(0));
    assert!(
        stdout
            .lines()
            .last()
            .unwrap()
            .contains("\"service\":{\"version\":1"),
        "{stdout}"
    );
}

#[test]
fn serve_mode_structured_json_errors_and_changelog() {
    let (stdout, _, code) = run_serve(
        &["--json"],
        "bogus\n\
         at 99 wins(a)\n\
         assert move(c, d).\n\
         log\n\
         quit\n",
    );
    // Malformed commands are structured error lines; transport was fine,
    // so the exit code stays zero.
    assert_eq!(code, Some(0));
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[0].starts_with("{\"error\":{\"kind\":\"protocol\",\"message\":\"unknown command"),
        "{stdout}"
    );
    assert!(
        lines[1].starts_with("{\"error\":{\"kind\":\"version-evicted\""),
        "{stdout}"
    );
    assert_eq!(lines[2], "{\"ok\":true,\"version\":1}");
    assert_eq!(
        lines[3],
        "{\"changelog\":[{\"version\":1,\"kind\":\"assert-rules\",\"text\":\"move(c, d).\"}]}"
    );
}

#[test]
fn serve_mode_changelog_plain() {
    let (stdout, _, code) = run_serve(&[], "assert move(c, d).\nlog\nlog 1\nquit\n");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("% 1 deltas"), "{stdout}");
    assert!(stdout.contains("1 assert-rules move(c, d)."), "{stdout}");
    assert!(stdout.contains("% 0 deltas"), "{stdout}");
}

/// `--listen`/`--socket`: the bound endpoints are announced on stdout
/// first, the framed protocol answers over both transports with the
/// same JSON the stdin front end prints, and `--stats` at exit carries
/// the net counter block — all through one process.
#[test]
fn serve_listen_and_socket_front_the_same_service() {
    use std::io::{BufRead, BufReader, Read as _};

    let dir = std::env::temp_dir().join(format!("afp-listen-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("program.afp");
    std::fs::write(&file, SERVE_SRC).unwrap();
    let socket = dir.join("afp.sock");
    let _ = std::fs::remove_file(&socket);

    let mut child = Command::new(env!("CARGO_BIN_EXE_afp"))
        .args([
            "--serve",
            "--json",
            "--stats",
            "--listen",
            "127.0.0.1:0",
            "--socket",
            socket.to_str().unwrap(),
            file.to_str().unwrap(),
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut stdout = BufReader::new(child.stdout.take().expect("stdout piped"));

    // The announce lines come first, with the real (ephemeral) port.
    let mut line = String::new();
    stdout.read_line(&mut line).unwrap();
    let addr = line
        .trim()
        .strip_prefix("{\"listening\":{\"transport\":\"tcp\",\"addr\":\"")
        .unwrap_or_else(|| panic!("bad announce line: {line}"))
        .strip_suffix("\"}}")
        .unwrap()
        .to_string();
    line.clear();
    stdout.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("{\"listening\":{\"transport\":\"unix\","),
        "{line}"
    );

    // 4-byte big-endian length framing, by hand — this test is the
    // client-side spec of the wire format.
    fn send(conn: &mut (impl std::io::Read + std::io::Write), line: &str) -> String {
        conn.write_all(&(line.len() as u32).to_be_bytes()).unwrap();
        conn.write_all(line.as_bytes()).unwrap();
        conn.flush().unwrap();
        let mut header = [0u8; 4];
        conn.read_exact(&mut header).unwrap();
        let mut payload = vec![0u8; u32::from_be_bytes(header) as usize];
        conn.read_exact(&mut payload).unwrap();
        String::from_utf8(payload).unwrap()
    }

    let mut tcp = std::net::TcpStream::connect(&addr).unwrap();
    assert_eq!(
        send(&mut tcp, "query wins(b)"),
        "{\"version\":0,\"query\":\"wins(b)\",\"truth\":\"true\"}"
    );
    assert_eq!(
        send(&mut tcp, "assert-facts move(c, d)."),
        "{\"ok\":true,\"version\":1}"
    );

    // The unix socket fronts the same service: version 1 is visible.
    let mut unix = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    assert_eq!(
        send(&mut unix, "query wins(c)"),
        "{\"version\":1,\"query\":\"wins(c)\",\"truth\":\"true\"}"
    );
    drop(tcp);
    drop(unix);

    // Closing stdin shuts the listeners down and exits cleanly.
    drop(child.stdin.take());
    let mut rest = String::new();
    stdout.read_to_string(&mut rest).unwrap();
    let status = child.wait().expect("wait");
    assert_eq!(status.code(), Some(0));
    assert!(rest.contains("\"net\":{\"submitted\":1"), "{rest}");
    assert!(rest.contains("\"conns_accepted\":2"), "{rest}");
    assert!(rest.contains("\"frames_in\":3"), "{rest}");
    assert!(!socket.exists(), "socket file removed on shutdown");
}

/// `ping` through the stdin front end: version + writer liveness, in
/// both renderings. The stdin backend has no async tier, so the writer
/// is the submitting thread itself — always live.
#[test]
fn serve_mode_ping() {
    let (stdout, _, code) = run_serve(&[], "ping\nassert move(c, d).\nping\nquit\n");
    assert_eq!(code, Some(0));
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 3, "{stdout}");
    assert!(
        lines[0].starts_with("pong version 0 writer live uptime "),
        "{stdout}"
    );
    assert!(lines[0].ends_with("ms"), "{stdout}");
    assert_eq!(lines[1], "ok 1", "{stdout}");
    assert!(
        lines[2].starts_with("pong version 1 writer live uptime "),
        "{stdout}"
    );

    let (stdout, _, code) = run_serve(&["--json"], "ping\nquit\n");
    assert_eq!(code, Some(0));
    let first = stdout.lines().next().unwrap();
    assert!(
        first.starts_with("{\"pong\":true,\"version\":0,\"writer_live\":true,\"uptime_ms\":"),
        "{first}"
    );
    assert!(first.ends_with('}'), "{first}");
}

/// `--changelog-cap N` bounds retention: reads behind the horizon come
/// back as version-evicted errors, exactly like the library-level
/// `ServiceOptions::changelog_capacity` they configure.
#[test]
fn changelog_cap_flag_bounds_retention() {
    let (stdout, _, code) = run_serve(
        &["--json", "--changelog-cap", "2"],
        "assert-facts move(x0, y0).\n\
         assert-facts move(x1, y1).\n\
         assert-facts move(x2, y2).\n\
         assert-facts move(x3, y3).\n\
         log\n\
         log 2\n\
         quit\n",
    );
    assert_eq!(code, Some(0));
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[4].starts_with("{\"error\":{\"kind\":\"version-evicted\""),
        "{stdout}"
    );
    assert_eq!(
        lines[5],
        "{\"changelog\":[\
         {\"version\":3,\"kind\":\"assert-facts\",\"text\":\"move(x2, y2).\"},\
         {\"version\":4,\"kind\":\"assert-facts\",\"text\":\"move(x3, y3).\"}]}"
    );
    // A cap needs an operand and a number.
    let (_, stderr, code) = run_afp(&["--serve", "--changelog-cap"], "");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"));
}

/// The durability loop end-to-end through the binary: a journaled serve
/// session absorbs writes and a manual checkpoint, exits, and a second
/// invocation pointed at the same `--journal` directory recovers the
/// exact version and model — announced before anything else — with the
/// journal counters visible in `stats`.
#[test]
fn journal_serve_recovers_across_invocations() {
    let dir = std::env::temp_dir().join(format!("afp-cli-journal-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let file = dir.join("program.afp");
    std::fs::write(&file, SERVE_SRC).unwrap();
    let jdir = dir.join("journal");
    let jdir_s = jdir.to_str().unwrap().to_string();

    // First run: two writes, a checkpoint, one more write.
    let (stdout, stderr, code) = run_afp(
        &["--json", "--journal", &jdir_s, file.to_str().unwrap()],
        "assert-facts move(c, d).\n\
         assert-facts move(d, e).\n\
         checkpoint\n\
         assert-facts move(e, f).\n\
         stats\n\
         quit\n",
    );
    assert_eq!(code, Some(0), "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "{\"ok\":true,\"version\":1}");
    assert_eq!(lines[1], "{\"ok\":true,\"version\":2}");
    assert_eq!(lines[2], "{\"ok\":true,\"checkpoint\":2}");
    assert_eq!(lines[3], "{\"ok\":true,\"version\":3}");
    assert!(
        lines[4].contains("\"journal\":{\"records_appended\":3"),
        "{stdout}"
    );

    // Second run: FILE is superseded by the recovered history.
    let (stdout, stderr, code) = run_afp(
        &["--json", "--journal", &jdir_s, file.to_str().unwrap()],
        "query wins(e)\nquery wins(d)\nquit\n",
    );
    assert_eq!(code, Some(0), "{stderr}");
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(
        lines[0], "{\"journal\":{\"recovered\":3}}",
        "recovery announce comes first: {stdout}"
    );
    assert_eq!(
        lines[1],
        "{\"version\":3,\"query\":\"wins(e)\",\"truth\":\"true\"}"
    );
    assert_eq!(
        lines[2],
        "{\"version\":3,\"query\":\"wins(d)\",\"truth\":\"false\"}"
    );

    // Plain rendering of the same announce + checkpoint grammar.
    let (stdout, _, code) = run_afp(
        &["--journal", &jdir_s, file.to_str().unwrap()],
        "checkpoint\nquit\n",
    );
    assert_eq!(code, Some(0));
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines[0], "% journal recovered version 3");
    assert_eq!(lines[1], "checkpoint 3");
    let _ = std::fs::remove_dir_all(&dir);
}

/// `checkpoint` without `--journal` is a structured journal error, not
/// a crash — and the unknown-command hint advertises the new verbs.
#[test]
fn checkpoint_without_journal_errors_inline() {
    let (stdout, _, code) = run_serve(&["--json"], "checkpoint\nbogus\nquit\n");
    assert_eq!(code, Some(0));
    let lines: Vec<&str> = stdout.lines().collect();
    assert!(
        lines[0].starts_with("{\"error\":{\"kind\":\"journal\""),
        "{stdout}"
    );
    assert!(lines[1].contains("ping/checkpoint"), "{stdout}");
}

/// `--fsync` accepts the documented spellings and rejects the rest.
#[test]
fn fsync_flag_spellings() {
    for policy in ["always", "never", "8"] {
        let (_, stderr, code) = run_serve(&["--fsync", policy], "version\nquit\n");
        assert_eq!(code, Some(0), "--fsync {policy}: {stderr}");
    }
    let (_, stderr, code) = run_afp(&["--serve", "--fsync", "sometimes"], "");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("usage:"));
}
