//! End-to-end tests of the `afp` command-line binary.

use std::io::Write;
use std::process::{Command, Stdio};

fn run_afp(args: &[&str], stdin: &str) -> (String, String, Option<i32>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_afp"))
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary runs");
    child
        .stdin
        .as_mut()
        .expect("stdin piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("wait");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn wfs_is_the_default() {
    let (stdout, _, code) = run_afp(&[], "a. b :- a. c :- not b.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("a."));
    assert!(stdout.contains("b."));
    assert!(!stdout.contains("c."));
    assert!(stdout.contains("% total: true"));
}

#[test]
fn undefined_atoms_marked() {
    let (stdout, _, code) = run_afp(&[], "p :- not q. q :- not p.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("p?"));
    assert!(stdout.contains("q?"));
    assert!(stdout.contains("% total: false"));
}

#[test]
fn query_exit_codes() {
    let (stdout, _, code) = run_afp(&["-q", "b"], "a. b :- a.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("True"));
    let (stdout, _, code) = run_afp(&["-q", "zzz"], "a.");
    assert_eq!(code, Some(1));
    assert!(stdout.contains("False"));
}

#[test]
fn stable_enumeration_and_counts() {
    let (stdout, _, code) = run_afp(&["-s", "stable"], "p :- not q. q :- not p.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("% stable model 1"));
    assert!(stdout.contains("% stable model 2"));
    let (stdout, _, code) = run_afp(
        &["-s", "stable"],
        "p :- not q. q :- not r. r :- not p.",
    );
    assert_eq!(code, Some(1));
    assert!(stdout.contains("% no stable model"));
}

#[test]
fn max_models_flag() {
    let (stdout, _, _) = run_afp(
        &["-s", "stable", "-n", "1"],
        "p :- not q. q :- not p.",
    );
    assert!(stdout.contains("% stable model 1"));
    assert!(!stdout.contains("% stable model 2"));
}

#[test]
fn ground_dump() {
    let (stdout, _, code) = run_afp(
        &["--ground"],
        "wins(X) :- move(X, Y), not wins(Y). move(a, b).",
    );
    assert_eq!(code, Some(0));
    assert!(stdout.contains("move(a, b)."));
    assert!(stdout.contains("wins(a)"));
}

#[test]
fn parse_errors_go_to_stderr_with_code_2() {
    let (_, stderr, code) = run_afp(&[], "p :- ");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("parse error"));
}

#[test]
fn unsafe_rules_suggest_active_domain() {
    let (_, stderr, code) = run_afp(&[], "p(X) :- not q(X). q(a).");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unsafe rule"));
    // With -a the same program works.
    let (stdout, _, code) = run_afp(&["-a"], "p(X) :- not q(X). q(a). r(b).");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("p(b)."));
}

#[test]
fn fitting_and_perfect_semantics() {
    // (The positive-loop Fitting gap is not visible through the CLI: the
    // grounder's envelope already prunes derivation-free loops. A negative
    // cycle survives grounding and stays undefined under Fitting.)
    let (stdout, _, _) = run_afp(&["-s", "fitting"], "x :- not y. y :- not x. z.");
    assert!(stdout.contains("x?"));
    assert!(stdout.contains("z."));
    let (stdout, _, code) = run_afp(&["-s", "perfect"], "a. b :- not a.");
    assert_eq!(code, Some(0));
    assert!(stdout.contains("a."));
    assert!(!stdout.contains("b."));
    // Perfect on a non-locally-stratified program fails cleanly.
    let (_, stderr, code) = run_afp(&["-s", "perfect"], "p :- not q. q :- not p.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("not locally stratified"));
}

#[test]
fn ifp_semantics_runs() {
    let (stdout, _, code) = run_afp(&["-s", "ifp"], "e(a,b). p :- e(a,b). np :- not p.");
    assert_eq!(code, Some(0));
    // IFP concludes both p and np (the Example 2.2 effect).
    assert!(stdout.contains("p."));
    assert!(stdout.contains("np."));
}

#[test]
fn unknown_semantics_rejected() {
    let (_, stderr, code) = run_afp(&["-s", "nonsense"], "a.");
    assert_eq!(code, Some(2));
    assert!(stderr.contains("unknown semantics"));
}

#[test]
fn trace_flag_prints_sequence() {
    let (stdout, _, _) = run_afp(&["-t"], "p :- not q. q :- not p.");
    assert!(stdout.contains("% alternating sequence"));
    assert!(stdout.contains("k=0"));
}
