//! Operator-level properties from Sections 3–5 and 8.4:
//!
//! * `S_P` monotone, `S̃_P` antimonotone, `A_P` monotone;
//! * the Figure 2 sandwich: even iterates ⊆ W̃ ⊆ odd iterates;
//! * both evaluation strategies produce identical models;
//! * `lfp(Q) = lfp(Q_P) = ` positive part of the AFP model
//!   (Lemma 8.9 / Theorem 8.10).

use afp::core::ops;
use afp::core::{alternating_fixpoint_with, AfpOptions, Strategy as AfpStrategy};
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::{GroundProgram, GroundProgramBuilder};
use proptest::prelude::*;

fn program_strategy() -> impl Strategy<Value = GroundProgram> {
    (1usize..=10).prop_flat_map(|n_atoms| {
        let rule = (
            0..n_atoms as u32,
            proptest::collection::vec(0..n_atoms as u32, 0..3),
            proptest::collection::vec(0..n_atoms as u32, 0..3),
        );
        proptest::collection::vec(rule, 0..18).prop_map(move |rules| {
            let mut b = GroundProgramBuilder::new();
            let atoms: Vec<_> = (0..n_atoms).map(|i| b.prop(&format!("a{i}"))).collect();
            for (head, pos, neg) in rules {
                b.rule(
                    atoms[head as usize],
                    pos.iter().map(|&i| atoms[i as usize]).collect(),
                    neg.iter().map(|&i| atoms[i as usize]).collect(),
                );
            }
            b.finish()
        })
    })
}

/// A program together with two nested atom subsets.
fn program_with_nested_sets() -> impl Strategy<Value = (GroundProgram, AtomSet, AtomSet)> {
    program_strategy().prop_flat_map(|prog| {
        let n = prog.atom_count();
        (
            Just(prog),
            proptest::collection::vec(proptest::bool::ANY, n),
            proptest::collection::vec(proptest::bool::ANY, n),
        )
            .prop_map(|(prog, small_bits, extra_bits)| {
                let n = prog.atom_count();
                let mut small = AtomSet::empty(n);
                let mut big = AtomSet::empty(n);
                for i in 0..n {
                    if small_bits[i] {
                        small.insert(i as u32);
                        big.insert(i as u32);
                    }
                    if extra_bits[i] {
                        big.insert(i as u32);
                    }
                }
                (prog, small, big)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn s_p_monotone((prog, small, big) in program_with_nested_sets()) {
        prop_assert!(ops::s_p(&prog, &small).is_subset(&ops::s_p(&prog, &big)));
    }

    #[test]
    fn s_tilde_antimonotone((prog, small, big) in program_with_nested_sets()) {
        prop_assert!(ops::s_tilde(&prog, &big).is_subset(&ops::s_tilde(&prog, &small)));
    }

    #[test]
    fn a_p_monotone((prog, small, big) in program_with_nested_sets()) {
        prop_assert!(ops::a_p(&prog, &small).is_subset(&ops::a_p(&prog, &big)));
    }

    #[test]
    fn counter_engine_matches_naive_reference((prog, i_tilde, _) in program_with_nested_sets()) {
        prop_assert_eq!(
            afp_datalog::horn::eventual_consequences(&prog, &i_tilde),
            afp_datalog::horn::eventual_consequences_naive(&prog, &i_tilde)
        );
    }

    #[test]
    fn sandwich_invariant(prog in program_strategy()) {
        let r = alternating_fixpoint_with(
            &prog,
            &AfpOptions { record_trace: true, ..Default::default() },
        );
        let trace = r.trace.as_ref().unwrap();
        for step in &trace.steps {
            if step.k % 2 == 0 {
                prop_assert!(step.i_tilde.is_subset(&r.negative_fixpoint));
            } else {
                prop_assert!(r.negative_fixpoint.is_subset(&step.i_tilde));
            }
        }
        // Chains are ordered: even increasing, odd decreasing.
        let evens: Vec<&AtomSet> = trace.steps.iter().filter(|s| s.k % 2 == 0).map(|s| &s.i_tilde).collect();
        for w in evens.windows(2) {
            prop_assert!(w[0].is_subset(w[1]));
        }
        let odds: Vec<&AtomSet> = trace.steps.iter().filter(|s| s.k % 2 == 1).map(|s| &s.i_tilde).collect();
        for w in odds.windows(2) {
            prop_assert!(w[1].is_subset(w[0]));
        }
    }

    #[test]
    fn strategies_agree(prog in program_strategy()) {
        let naive = alternating_fixpoint_with(
            &prog,
            &AfpOptions { strategy: AfpStrategy::Naive, record_trace: false },
        );
        let incremental = alternating_fixpoint_with(
            &prog,
            &AfpOptions { strategy: AfpStrategy::IncrementalUnder, record_trace: false },
        );
        prop_assert_eq!(naive.model, incremental.model);
    }

    #[test]
    fn theorem_8_10_q_operators(prog in program_strategy()) {
        let afp = afp::core::alternating_fixpoint(&prog);
        let via_q_p = ops::lfp_positive(&prog, ops::q_p_op);
        let via_q = ops::lfp_positive(&prog, ops::q_op);
        prop_assert_eq!(&via_q_p, &afp.model.pos, "Lemma 8.9: lfp(Q_P) = AFP⁺");
        prop_assert_eq!(&via_q, &afp.model.pos, "Theorem 8.10: lfp(Q) = AFP⁺");
    }

    #[test]
    fn gus_returns_an_unfounded_superset(prog in program_strategy()) {
        use afp::semantics::{greatest_unfounded_set, is_unfounded_set};
        let interp = afp::PartialModel::empty(prog.atom_count());
        let gus = greatest_unfounded_set(&prog, &interp);
        prop_assert!(is_unfounded_set(&prog, &interp, &gus));
        // Maximality: adding any single outside atom breaks unfoundedness
        // or was already covered — check against the naive reference.
        let naive = afp::semantics::unfounded::greatest_unfounded_set_naive(&prog, &interp);
        prop_assert_eq!(gus, naive);
    }
}
