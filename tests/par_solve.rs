//! Parallel wavefront solving is **bit-identical** to sequential solving.
//!
//! The scheduler refactor's contract (see `afp_semantics::schedule`): the
//! solved model is a pure function of the program, never of the thread
//! count, the schedule, or the completion order of component tasks. These
//! tests enforce it three ways:
//!
//! * engine-level differential — identical seeded fact *and rule* update
//!   scripts replayed against sessions built with `--threads 1/2/4`, under
//!   both `WfStrategy` variants, comparing full partial models after every
//!   step (warm cone re-solves included);
//! * adversarial completion orders — the `WavefrontOptions::chaos` fault
//!   seam scrambles every ready-queue pop with a seeded RNG, proving the
//!   ordered commit is order-independent, not just lucky;
//! * repeated runs — the same session solved repeatedly on a real pool
//!   yields the same model every time.

use afp::semantics::{modular_wfs_scheduled, Sequential, Wavefront, WavefrontOptions};
use afp::{Engine, Semantics, Session, Strategy, Truth, WfStrategy};
use afp_bench::gen::{hard_knot_chain_src, random_ground_program};
use afp_datalog::Condensation;

const SCC: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::SccStratified,
};
const GLOBAL: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::Global(Strategy::Naive),
};

/// Deterministic xorshift for update scripts.
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// One mutation step of the random script, applied identically to every
/// session under test.
enum Step {
    AssertFact(String),
    RetractFact(String),
    AssertRule(String),
    RetractRule(String),
}

/// Generate a seeded fact+rule script over the `wins/move` game program.
/// Rule steps toggle an extra derived layer (`safe(X) :- not wins(X).`
/// flavoured) so condensation repairs and rule-delta cones are exercised,
/// not just fact flips.
fn random_script(seed: u64, steps: usize) -> Vec<Step> {
    let mut rng = Rng::new(seed);
    let mut live_edges: Vec<(u32, u32)> = vec![(0, 1), (1, 2)];
    let mut rule_in = false;
    let mut script = Vec::new();
    for _ in 0..steps {
        match rng.next() % 8 {
            0..=2 => {
                let u = (rng.next() % 6) as u32;
                let v = (rng.next() % 6) as u32;
                if u != v {
                    live_edges.push((u, v));
                    script.push(Step::AssertFact(format!("move(n{u}, n{v}).")));
                }
            }
            3 | 4 => {
                if !live_edges.is_empty() {
                    let i = (rng.next() as usize) % live_edges.len();
                    let (u, v) = live_edges.swap_remove(i);
                    script.push(Step::RetractFact(format!("move(n{u}, n{v}).")));
                }
            }
            5 => {
                let u = (rng.next() % 6) as u32;
                script.push(Step::AssertFact(format!("pinned(n{u}).")));
            }
            _ => {
                if rule_in {
                    script.push(Step::RetractRule(EXTRA_RULE.into()));
                } else {
                    script.push(Step::AssertRule(EXTRA_RULE.into()));
                }
                rule_in = !rule_in;
            }
        }
    }
    script
}

const BASE: &str = "wins(X) :- move(X, Y), not wins(Y).\n\
                    pinned(n0).\n\
                    move(n0, n1). move(n1, n2).";
const EXTRA_RULE: &str = "safe(X) :- pinned(X), not wins(X).";

fn apply(session: &mut Session, step: &Step) {
    match step {
        Step::AssertFact(t) => session.assert_facts(t).unwrap(),
        Step::RetractFact(t) => session.retract_facts(t).unwrap(),
        Step::AssertRule(t) => session.assert_rules(t).unwrap(),
        Step::RetractRule(t) => session.retract_rules(t).unwrap(),
    }
}

/// Engine-level differential: the same seeded script replayed at
/// `--threads 1/2/4` under both well-founded strategies produces the same
/// partial model after every step — including the warm cone re-solves,
/// which on the threaded engines run as parallel sub-wavefronts.
#[test]
fn threaded_solves_match_sequential_across_update_scripts() {
    for seed in 0..5u64 {
        let script = random_script(seed, 14);
        let mut sessions: Vec<(usize, Semantics, Session)> = Vec::new();
        for threads in [1usize, 2, 4] {
            let engine = Engine::builder().threads(threads).build();
            sessions.push((threads, SCC, engine.load(BASE).unwrap()));
        }
        // The global strategy ignores the scheduler but must stay
        // consistent with it step for step.
        sessions.push((1, GLOBAL, Engine::default().load(BASE).unwrap()));

        for (stepno, step) in script.iter().enumerate() {
            let mut reference = None;
            for (threads, semantics, session) in sessions.iter_mut() {
                apply(session, step);
                let model = session
                    .solve_with(*semantics)
                    .unwrap()
                    .partial_model()
                    .clone();
                match &reference {
                    None => reference = Some(model),
                    Some(expected) => assert_eq!(
                        expected, &model,
                        "divergence at seed {seed} step {stepno} threads {threads}"
                    ),
                }
            }
        }
        // The threaded sessions really did schedule work.
        for (threads, _, session) in &sessions {
            let stats = session.stats();
            assert!(stats.scc_solves > 0 || stats.solves > 0);
            if *threads == 1 {
                assert_eq!(stats.stolen_tasks, 0, "no stealing on one thread");
                assert_eq!(stats.par_components, 0);
            }
        }
    }
}

/// Semantics-level differential on generated ground programs: a real
/// work-stealing pool at several widths against the sequential evaluator.
#[test]
fn wavefront_matches_sequential_on_random_ground_programs() {
    let pools: Vec<Wavefront> = [2usize, 4]
        .into_iter()
        .map(|threads| {
            Wavefront::with_options(
                threads,
                WavefrontOptions {
                    min_par_tasks: 0,
                    chaos: None,
                },
            )
        })
        .collect();
    for seed in 0..15u64 {
        let prog = random_ground_program(20, 44, 0.45, seed);
        let cond = Condensation::of(&prog);
        let seq = modular_wfs_scheduled(&prog, &cond, None, &Sequential);
        for pool in &pools {
            let par = modular_wfs_scheduled(&prog, &cond, None, pool);
            assert_eq!(seq.model, par.model, "seed {seed} pool {:?}", pool);
            assert_eq!(seq.evaluated, par.evaluated);
            assert_eq!(
                seq.sched.wavefronts, par.sched.wavefronts,
                "critical path is schedule-independent"
            );
        }
    }
}

/// Fault-injection: the chaos seam forces adversarial completion orders
/// (every ready-queue pop is seeded-random, nothing is kept in hand) and
/// the committed model must not move. This is the order-independence
/// proof for the disjoint-write board + ordered commit.
#[test]
fn adversarial_completion_orders_commit_identically() {
    for seed in 0..8u64 {
        let prog = random_ground_program(18, 40, 0.5, seed);
        let cond = Condensation::of(&prog);
        let seq = modular_wfs_scheduled(&prog, &cond, None, &Sequential);
        for chaos in 0..6u64 {
            let pool = Wavefront::with_options(
                4,
                WavefrontOptions {
                    min_par_tasks: 0,
                    chaos: Some(chaos),
                },
            );
            let par = modular_wfs_scheduled(&prog, &cond, None, &pool);
            assert_eq!(
                seq.model, par.model,
                "order-dependent commit at seed {seed} chaos {chaos}"
            );
        }
    }
}

/// Repeated solves on one engine-owned pool are stable, and the scheduler
/// counters surface through `SessionStats`: a knot chain is wide enough
/// to clear the pool's small-graph fallback, so the parallel path runs
/// for real.
#[test]
fn repeated_threaded_solves_are_stable_and_counted() {
    let src = hard_knot_chain_src(24);
    let mut seq_session = Engine::builder().threads(1).build().load(&src).unwrap();
    let expected = seq_session.solve().unwrap().partial_model().clone();
    let seq_stats = *seq_session.stats();
    assert!(seq_stats.seq_components > 0, "sequential path counts tasks");
    assert_eq!(seq_stats.par_components, 0);
    assert!(seq_stats.last_wavefronts > 0);

    let engine = Engine::builder().threads(4).build();
    let mut session = engine.load(&src).unwrap();
    session.solve().unwrap();
    assert_eq!(
        session.stats().last_wavefronts,
        seq_stats.last_wavefronts,
        "cold critical-path depth is thread-independent"
    );
    for round in 0..6 {
        let model = session.solve().unwrap().partial_model().clone();
        assert_eq!(expected, model, "round {round} moved the model");
        // Mutate and restore so every round after the first re-solves a
        // warm cone instead of hitting the snapshot memo.
        session.retract_facts("e(k11).").unwrap();
        let holed = session.solve().unwrap();
        assert_eq!(holed.truth("a", &["k11"]), Truth::False);
        session.assert_facts("e(k11).").unwrap();
    }
    let stats = *session.stats();
    assert!(stats.par_components > 0, "the pool path ran");
    assert!(stats.last_ready_width >= 1);
}

/// `threads(0)` auto-detects and still solves identically; a 1-core
/// runner resolves to the sequential path without error.
#[test]
fn auto_thread_detection_solves_identically() {
    let src = hard_knot_chain_src(8);
    let auto = Engine::builder().threads(0).build();
    let model = auto
        .load(&src)
        .unwrap()
        .solve()
        .unwrap()
        .partial_model()
        .clone();
    let seq = Engine::default()
        .load(&src)
        .unwrap()
        .solve()
        .unwrap()
        .partial_model()
        .clone();
    assert_eq!(model, seq);
}
