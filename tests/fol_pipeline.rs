//! Section 8 end-to-end: random fixpoint-logic (FP) systems evaluated
//! three ways —
//!
//! 1. directly as an FP least model ([`afp_fol::fp_model`]);
//! 2. by the general alternating fixpoint (Theorem 8.1 says the positive
//!    part agrees);
//! 3. reduced to a **normal** program by Lloyd–Topor elementary
//!    simplification, grounded, and solved with the ordinary alternating
//!    fixpoint (Theorem 8.7 says the positive part on the original
//!    relations agrees).

use afp::core::alternating_fixpoint;
use afp_datalog::ast::{Atom, Term};
use afp_fol::{afp_general, fp_model, lloyd_topor, Formula, GeneralProgram, GeneralRule};
use proptest::prelude::*;

const CONSTS: [&str; 3] = ["a", "b", "c"];

/// A compact, always-valid-FP formula description. Terms pick from the
/// variable stack (head variable X plus quantified variables) or the
/// constants; IDB atoms (`p/1`) are only generated in positive positions.
#[derive(Debug, Clone)]
enum FDesc {
    Edb(u8, u8, bool),
    Idb(u8),
    And(Box<FDesc>, Box<FDesc>),
    Or(Box<FDesc>, Box<FDesc>),
    Exists(Box<FDesc>),
    Forall(Box<FDesc>),
}

fn fdesc_strategy() -> impl Strategy<Value = FDesc> {
    let leaf = prop_oneof![
        (0u8..8, 0u8..8, any::<bool>()).prop_map(|(a, b, s)| FDesc::Edb(a, b, s)),
        (0u8..8).prop_map(FDesc::Idb),
    ];
    leaf.prop_recursive(3, 16, 2, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FDesc::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| FDesc::Or(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|f| FDesc::Exists(Box::new(f))),
            inner.prop_map(|f| FDesc::Forall(Box::new(f))),
        ]
    })
}

fn build_formula(
    d: &FDesc,
    y: &mut GeneralProgram,
    stack: &mut Vec<afp_datalog::Symbol>,
    fresh: &mut usize,
) -> Formula {
    let term = |code: u8, y: &mut GeneralProgram, stack: &[afp_datalog::Symbol]| -> Term {
        let n = CONSTS.len() + stack.len();
        let ix = code as usize % n;
        if ix < CONSTS.len() {
            Term::Const(y.symbols.intern(CONSTS[ix]))
        } else {
            Term::Var(stack[ix - CONSTS.len()])
        }
    };
    match d {
        FDesc::Edb(a, b, positive) => {
            let e = y.symbols.intern("e");
            let atom = Formula::Atom(Atom::new(e, vec![term(*a, y, stack), term(*b, y, stack)]));
            if *positive {
                atom
            } else {
                Formula::not(atom)
            }
        }
        FDesc::Idb(a) => {
            let p = y.symbols.intern("p");
            Formula::Atom(Atom::new(p, vec![term(*a, y, stack)]))
        }
        FDesc::And(l, r) => Formula::And(vec![
            build_formula(l, y, stack, fresh),
            build_formula(r, y, stack, fresh),
        ]),
        FDesc::Or(l, r) => Formula::Or(vec![
            build_formula(l, y, stack, fresh),
            build_formula(r, y, stack, fresh),
        ]),
        FDesc::Exists(f) => {
            *fresh += 1;
            let v = y.symbols.intern(&format!("Q{fresh}"));
            stack.push(v);
            let inner = build_formula(f, y, stack, fresh);
            stack.pop();
            Formula::exists(vec![v], inner)
        }
        FDesc::Forall(f) => {
            *fresh += 1;
            let v = y.symbols.intern(&format!("Q{fresh}"));
            stack.push(v);
            let inner = build_formula(f, y, stack, fresh);
            stack.pop();
            Formula::forall(vec![v], inner)
        }
    }
}

fn build_system(desc: &FDesc, edges: &[(usize, usize)]) -> GeneralProgram {
    let mut y = GeneralProgram::new();
    let p = y.symbols.intern("p");
    let x = y.symbols.intern("X");
    let mut stack = vec![x];
    let mut fresh = 0;
    let body = build_formula(desc, &mut y, &mut stack, &mut fresh);
    y.rules.push(GeneralRule {
        head: Atom::new(p, vec![Term::Var(x)]),
        body,
    });
    let e = y.symbols.intern("e");
    for &(u, v) in edges {
        let cu = y.symbols.intern(CONSTS[u % 3]);
        let cv = y.symbols.intern(CONSTS[v % 3]);
        y.facts
            .push(Atom::new(e, vec![Term::Const(cu), Term::Const(cv)]));
    }
    // Always at least one fact so the active domain is non-empty.
    let cu = y.symbols.intern("a");
    let dom = y.symbols.intern("edom");
    y.facts.push(Atom::new(dom, vec![Term::Const(cu)]));
    for c in CONSTS {
        let s = y.symbols.intern(c);
        y.facts.push(Atom::new(dom, vec![Term::Const(s)]));
    }
    y
}

fn p_atoms(names: &[String]) -> Vec<String> {
    names
        .iter()
        .filter(|n| n.starts_with("p("))
        .cloned()
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn theorems_8_1_and_8_7(
        desc in fdesc_strategy(),
        edges in proptest::collection::vec((0usize..3, 0usize..3), 0..5),
    ) {
        let y = build_system(&desc, &edges);

        // Route 1: FP least model.
        let (fp, ctx) = fp_model(&y).expect("generated systems are FP");
        let fp_p = p_atoms(&ctx.set_to_names(&y, &fp));

        // Route 2: general alternating fixpoint (Theorem 8.1).
        let general = afp_general(&y).expect("evaluates");
        let gen_p = p_atoms(&general.ctx.set_to_names(&y, &general.model.pos));
        prop_assert_eq!(&fp_p, &gen_p, "Theorem 8.1");

        // Route 3: Lloyd–Topor → ground → AFP (Theorem 8.7).
        let t = lloyd_topor(&y);
        let ground = afp_datalog::ground_with(
            &t.program,
            &afp_datalog::GroundOptions {
                safety: afp_datalog::SafetyPolicy::ActiveDomain,
                ..Default::default()
            },
        ).expect("transformed program grounds");
        let afp = alternating_fixpoint(&ground);
        let norm_p = p_atoms(&ground.set_to_names(&afp.model.pos));
        prop_assert_eq!(&fp_p, &norm_p, "Theorem 8.7");
    }
}

#[test]
fn transformed_programs_are_strict_in_the_idb() {
    // Theorem 8.6's hypothesis is established by the transformation
    // itself on FP inputs: the resulting normal program is strict in the
    // IDB (including the ADB).
    let y = build_system(
        &FDesc::Forall(Box::new(FDesc::Or(
            Box::new(FDesc::Edb(0, 4, false)),
            Box::new(FDesc::Idb(4)),
        ))),
        &[(0, 1), (1, 2)],
    );
    let t = lloyd_topor(&y);
    let dg = afp_datalog::depgraph::DepGraph::build(&t.program);
    let mut idb: Vec<afp_datalog::Symbol> = t.classification.keys().copied().collect();
    idb.sort_by_key(|s| s.index());
    assert!(dg.is_strict_in_idb(&idb));
}
