//! Property tests for the shared protocol codec: the command grammar
//! and the frame layer are each other's inverses.
//!
//! `parse_command(render_command(r)) == r` for every representable
//! [`Request`], and `read_frame(write_frame(b)) == b` for arbitrary
//! payloads — including the empty payload and both sides of the
//! max-frame boundary, pinned by plain tests below (the vendored
//! proptest shim generates uniformly, so exact boundary values would
//! be astronomically unlikely to come up by chance).
//!
//! The shim has no string strategies, so atom and program texts are
//! built from small integers via `prop_map` — which also keeps every
//! generated `query`/`at` operand inside the ground-atom sublanguage
//! `parse_command` itself validates.

use afp::net::codec::{
    parse_command, read_frame, render_command, write_frame, Request, DEFAULT_MAX_FRAME_LEN,
};
use afp::DeltaKind;
use proptest::prelude::*;

/// A ground atom in canonical spelling: `p2`, `p0(c1)`, `p4(c0, c3)`…
fn atom() -> impl Strategy<Value = String> {
    (0u8..6, 0usize..3).prop_flat_map(|(pred, arity)| {
        proptest::collection::vec(0u8..8, arity).prop_map(move |args| {
            if args.is_empty() {
                format!("p{pred}")
            } else {
                let args: Vec<String> = args.iter().map(|c| format!("c{c}")).collect();
                format!("p{pred}({})", args.join(", "))
            }
        })
    })
}

/// Submission text: one or more statements on one line. `parse_command`
/// stores it verbatim (trimmed), so the property needs no trailing
/// whitespace and no newlines — which this construction guarantees.
fn submit_text() -> impl Strategy<Value = String> {
    proptest::collection::vec((0u8..6, 0u8..6), 1..4).prop_map(|pairs| {
        let stmts: Vec<String> = pairs
            .iter()
            .map(|(a, b)| format!("edge(c{a}, c{b})."))
            .collect();
        stmts.join(" ")
    })
}

fn request() -> impl Strategy<Value = Request> {
    prop_oneof![
        atom().prop_map(|atom| Request::Query { atom }),
        (any::<u32>(), atom()).prop_map(|(version, atom)| Request::At {
            version: version as u64,
            atom,
        }),
        (0u8..4, submit_text()).prop_map(|(kind, text)| Request::Submit {
            kind: match kind {
                0 => DeltaKind::AssertFacts,
                1 => DeltaKind::RetractFacts,
                2 => DeltaKind::AssertRules,
                _ => DeltaKind::RetractRules,
            },
            text,
        }),
        any::<u32>().prop_map(|since| Request::Changelog {
            since: since as u64
        }),
        Just(Request::Model),
        Just(Request::Version),
        Just(Request::Stats),
        Just(Request::Metrics),
        Just(Request::Ping),
        Just(Request::Checkpoint),
        Just(Request::Quit),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn command_render_parse_round_trips(request in request()) {
        let line = render_command(&request);
        let reparsed = parse_command(&line);
        prop_assert_eq!(reparsed.as_ref(), Ok(&request), "line: {line:?}");
    }

    #[test]
    fn frame_write_read_round_trips(payload in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &payload).unwrap();
        prop_assert_eq!(wire.len(), 4 + payload.len());
        let mut reader: &[u8] = &wire;
        let back = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap();
        prop_assert_eq!(back, payload);
        // The reader stops exactly at the frame boundary…
        prop_assert!(reader.is_empty());
        // …so the next read is a clean EOF, not an error.
        prop_assert!(matches!(read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN), Ok(None)));
    }

    #[test]
    fn back_to_back_frames_round_trip(
        first in proptest::collection::vec(any::<u8>(), 0..64),
        second in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut wire = Vec::new();
        write_frame(&mut wire, &first).unwrap();
        write_frame(&mut wire, &second).unwrap();
        let mut reader: &[u8] = &wire;
        prop_assert_eq!(read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap(), first);
        prop_assert_eq!(read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap().unwrap(), second);
        prop_assert!(matches!(read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN), Ok(None)));
    }
}

#[test]
fn empty_payload_round_trips() {
    let mut wire = Vec::new();
    write_frame(&mut wire, &[]).unwrap();
    assert_eq!(wire, [0, 0, 0, 0]);
    let mut reader: &[u8] = &wire;
    assert_eq!(
        read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .unwrap(),
        Vec::<u8>::new()
    );
}

#[test]
fn max_frame_boundary_is_inclusive() {
    // Exactly at the cap: accepted.
    let payload = vec![0xA5u8; DEFAULT_MAX_FRAME_LEN as usize];
    let mut wire = Vec::new();
    write_frame(&mut wire, &payload).unwrap();
    let mut reader: &[u8] = &wire;
    let back = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN)
        .unwrap()
        .unwrap();
    assert_eq!(back.len(), payload.len());

    // One past the cap: the reader refuses before allocating.
    let mut wire = Vec::new();
    write_frame(&mut wire, &vec![0u8; DEFAULT_MAX_FRAME_LEN as usize + 1]).unwrap();
    let mut reader: &[u8] = &wire;
    let err = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
}

#[test]
fn mid_frame_eof_is_an_error_not_a_clean_end() {
    let mut wire = Vec::new();
    write_frame(&mut wire, b"torn").unwrap();
    // Chop inside the payload.
    let mut reader: &[u8] = &wire[..wire.len() - 2];
    assert!(read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).is_err());
    // Chop inside the header.
    let mut reader: &[u8] = &wire[..2];
    let err = read_frame(&mut reader, DEFAULT_MAX_FRAME_LEN).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof);
}

/// `exit` is an accepted alias on the parse side only; the renderer
/// canonicalizes to `quit`. Pinned here so the round-trip property's
/// scope is explicit.
#[test]
fn exit_alias_parses_but_renders_as_quit() {
    assert_eq!(parse_command("exit"), Ok(Request::Quit));
    assert_eq!(render_command(&Request::Quit), "quit");
}
