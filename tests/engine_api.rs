//! The unified `Engine` / `Session` facade: every semantics of the paper
//! through one entry point, one `Model` type, and warm session reuse.

use afp::{Engine, Error, Semantics, SessionStats, Strategy, Truth, WfStrategy};

const WIN_MOVE: &str = "
    wins(X) :- move(X, Y), not wins(Y).
    move(a, b). move(b, a). move(b, c).
";

const ALL_STABLE: Semantics = Semantics::Stable {
    max_models: usize::MAX,
};

/// Every `Semantics` variant solves through the same `Engine` and the same
/// `Session`, returning the unified `Model`.
#[test]
fn all_five_semantics_through_one_engine() {
    let engine = Engine::default();
    let mut session = engine.load(WIN_MOVE).unwrap();

    // Well-founded: Figure 4(c) — total despite the cycle. The default
    // strategy is SCC-stratified evaluation.
    let wfs = session
        .solve_with(Semantics::WellFounded {
            strategy: WfStrategy::SccStratified,
        })
        .unwrap();
    assert_eq!(wfs.truth("wins", &["b"]), Truth::True);
    assert_eq!(wfs.truth("wins", &["a"]), Truth::False);
    assert!(wfs.is_total());
    assert!(session.stats().scc_solves >= 1);

    // Every evaluation strategy agrees.
    for strategy in [
        WfStrategy::Global(Strategy::Naive),
        WfStrategy::Global(Strategy::IncrementalUnder),
    ] {
        let global = session
            .solve_with(Semantics::WellFounded { strategy })
            .unwrap();
        assert_eq!(global.partial_model(), wfs.partial_model());
    }

    // Stable: total WFS ⇒ unique stable model with the same positives.
    let stable = session.solve_with(ALL_STABLE).unwrap();
    assert_eq!(stable.stable_models().len(), 1);
    assert!(stable.is_complete());
    assert_eq!(&stable.stable_models()[0], &wfs.partial_model().pos);
    assert_eq!(stable.truth("wins", &["b"]), Truth::True);

    // Fitting: informationally below the WFS.
    let fitting = session.solve_with(Semantics::Fitting).unwrap();
    assert!(fitting.partial_model().leq(wfs.partial_model()));

    // Perfect: the ground win–move cycle is not locally stratified.
    assert_eq!(
        session.solve_with(Semantics::Perfect).unwrap_err(),
        Error::NotLocallyStratified
    );

    // Inflationary: always total, not necessarily the WFS.
    let ifp = session.solve_with(Semantics::Inflationary).unwrap();
    assert!(ifp.is_total());

    // One engine also serves other sessions; `Perfect` works where the
    // program is stratified.
    let perfect = Engine::new(Semantics::Perfect)
        .solve("a. b :- a. c :- not b.")
        .unwrap();
    assert_eq!(perfect.truth("b", &[]), Truth::True);
    assert_eq!(perfect.truth("c", &[]), Truth::False);
    assert!(perfect.is_total());
}

/// The unified model's iterators are lazy views over the assignment.
#[test]
fn model_iterators_cover_the_base() {
    let model = Engine::default()
        .solve("a. b :- a. c :- not b. p :- not q. q :- not p.")
        .unwrap();
    let mut names: Vec<String> = model
        .true_atoms()
        .chain(model.false_atoms())
        .chain(model.undefined_atoms())
        .collect();
    names.sort();
    assert_eq!(names, vec!["a", "b", "c", "p", "q"]);
    assert_eq!(model.true_atoms().count(), 2);
    assert_eq!(model.false_atoms().count(), 1);
    assert_eq!(model.undefined_atoms().count(), 2);
}

/// `assert_facts` + warm re-solve gives the same model as a cold solve of
/// the concatenated text — without re-parsing or re-grounding.
#[test]
fn session_reuse_equals_cold_solve() {
    // The win–move board plus an independent x → y → z chain: the chain
    // cannot reach the asserted facts in the dependency graph, so its
    // conclusions survive the delta and seed the warm re-solve.
    let src = format!("{WIN_MOVE} move(x, y). move(y, z).");
    let engine = Engine::default();
    let mut session = engine.load(&src).unwrap();
    let first = session.solve().unwrap();
    assert_eq!(first.truth("wins", &["c"]), Truth::False);
    assert_eq!(first.truth("wins", &["y"]), Truth::True);

    // Remember an atom id: grounding reuse keeps ids stable where a cold
    // re-ground would restart interning from scratch.
    let wins_a_before = session.ground().find_atom_by_name("wins", &["a"]).unwrap();
    let rules_before = session.ground().rule_count();

    session.assert_facts("move(c, d). move(d, e).").unwrap();
    let warm = session.solve().unwrap();

    let cold_src = format!("{src} move(c, d). move(d, e).");
    let cold = engine.solve(&cold_src).unwrap();
    for (pred, args) in [
        ("wins", ["a"]),
        ("wins", ["b"]),
        ("wins", ["c"]),
        ("wins", ["d"]),
        ("wins", ["e"]),
        ("wins", ["x"]),
        ("wins", ["y"]),
        ("wins", ["z"]),
    ] {
        assert_eq!(
            warm.truth(pred, &args),
            cold.truth(pred, &args),
            "{pred}({args:?})"
        );
    }
    // The tail decided the game: d escapes to the new sink e, so c (which
    // can only feed the winner d) now loses *for a reason* — and wins(b),
    // whose pruned `not wins(c)` literal was resurrected, stays a winner.
    assert_eq!(warm.truth("wins", &["d"]), Truth::True);
    assert_eq!(warm.truth("wins", &["c"]), Truth::False);
    assert_eq!(warm.truth("wins", &["b"]), Truth::True);

    // The grounding was extended in place, not rebuilt.
    let stats: &SessionStats = session.stats();
    assert_eq!(stats.regrounds, 0, "assert_facts must not re-ground");
    assert_eq!(stats.asserts, 2);
    assert_eq!(
        session.ground().find_atom_by_name("wins", &["a"]).unwrap(),
        wins_a_before,
        "atom ids survive the delta"
    );
    assert!(session.ground().rule_count() > rules_before);

    // And the solve was warm-seeded from surviving conclusions.
    assert_eq!(stats.warm_solves, 1);
    assert!(stats.last_seed_size > 0, "seed carries surviving negatives");
}

/// Retraction patches the grounding in place and re-solves correctly.
#[test]
fn retract_facts_resolve() {
    let engine = Engine::default();
    let mut session = engine
        .load("wins(X) :- move(X, Y), not wins(Y). move(a, b).")
        .unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("wins", &["a"]), Truth::True); // b is a sink

    session.retract_facts("move(a, b).").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("wins", &["a"]), Truth::False); // no moves at all
    assert_eq!(session.stats().retracts, 1);
    assert_eq!(session.stats().regrounds, 0);

    // Round trip: assert it back.
    session.assert_facts("move(a, b).").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("wins", &["a"]), Truth::True);
}

/// Sessions over pre-ground programs support the same update API
/// (appending/removing fact rules is exact for ground programs).
#[test]
fn ground_program_sessions_update_in_place() {
    let ground = afp::datalog::parse_ground("p :- e, not q. q :- f.");
    let mut session = Engine::default().load_ground(ground);
    let model = session.solve().unwrap();
    assert_eq!(model.truth("p", &[]), Truth::False); // e is false

    session.assert_facts("e.").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("p", &[]), Truth::True);

    session.assert_facts("f.").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("p", &[]), Truth::False); // q holds now

    session.retract_facts("f.").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("p", &[]), Truth::True);
}

/// Non-fact input to the update API is a typed error.
#[test]
fn updates_reject_rules_and_non_ground_facts() {
    let mut session = Engine::default().load("p(a).").unwrap();
    assert!(matches!(
        session.assert_facts("q(X) :- p(X)."),
        Err(Error::NotAFact(_))
    ));
    assert!(matches!(
        session.retract_facts("p(X)."),
        Err(Error::NotAFact(_))
    ));
    assert!(matches!(session.assert_facts("p("), Err(Error::Parse(_))));
}

/// The builder's relevance option restricts solving to the query cone.
#[test]
fn relevance_restriction_solves_the_cone_only() {
    let src = "
        goal :- p, not q. p. q :- not r. r :- not q.
        unrelated1 :- not unrelated2. unrelated2 :- not unrelated1.
    ";
    let full = Engine::default().solve(src).unwrap();
    let restricted = Engine::builder()
        .relevance(["goal"])
        .build()
        .solve(src)
        .unwrap();
    assert_eq!(restricted.truth("goal", &[]), full.truth("goal", &[]));
    assert!(restricted.ground().rule_count() < full.ground().rule_count());

    // A relevance query that does not parse is an error, not a silently
    // empty (all-False) restriction.
    assert!(matches!(
        Engine::builder().relevance(["goal("]).build().solve(src),
        Err(Error::Parse(_))
    ));
}

/// Where a warm delta would be unsound, the session re-grounds cold and
/// says so in its stats — the model always matches a cold solve.
#[test]
fn unsound_deltas_fall_back_to_cold_regrounding() {
    use afp::SafetyPolicy;
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();

    // Case 1: a pruned negative literal over a never-materialized term
    // (`not q(f(a))` — f(a) exists nowhere) cannot be keyed for
    // resurrection; asserting q(f(a)) must not leave the stale instance.
    let mut session = engine.load("p(X) :- e(X), not q(f(X)). e(a).").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("p", &["a"]), Truth::True);
    session.assert_facts("q(f(a)).").unwrap();
    let warm = session.solve().unwrap();
    let cold = engine
        .solve("p(X) :- e(X), not q(f(X)). e(a). q(f(a)).")
        .unwrap();
    assert_eq!(warm.truth("p", &["a"]), cold.truth("p", &["a"]));
    assert_eq!(warm.truth("p", &["a"]), Truth::False);
    assert!(session.stats().regrounds >= 1, "must have re-ground cold");

    // Case 2: retraction under the active-domain policy shrinks the
    // domain; instances guarded only by the stripped `$dom` atom must not
    // survive.
    let mut session = engine.load("p(X) :- not q(X). r(c). r(d).").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("p", &["d"]), Truth::True);
    session.retract_facts("r(d).").unwrap();
    let warm = session.solve().unwrap();
    let cold = engine.solve("p(X) :- not q(X). r(c).").unwrap();
    assert_eq!(warm.truth("p", &["d"]), cold.truth("p", &["d"]));
    assert_eq!(warm.truth("p", &["d"]), Truth::False);
    assert!(session.stats().regrounds >= 1);

    // The cold fallback still round-trips: re-asserting restores.
    session.assert_facts("r(d).").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("p", &["d"]), Truth::True);
}

/// Cold fallbacks re-ground from the session's *current* fact set: a fact
/// asserted warm survives a later cold retract, and a fact retracted warm
/// stays gone through a later cold assert. (Regression: the warm paths
/// once updated only the grounder, so the retained AST went stale and the
/// cold fallback silently undid warm updates.)
#[test]
fn cold_fallback_sees_warm_updates() {
    use afp::SafetyPolicy;

    // Warm assert, then a cold retract (retraction under the
    // active-domain policy re-grounds): r(c) must survive the re-ground.
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();
    let mut session = engine.load("p(X) :- not q(X). q(a). r(b).").unwrap();
    session.solve().unwrap();
    session.assert_facts("r(c).").unwrap();
    assert_eq!(session.stats().regrounds, 0, "assert stays warm");
    session.retract_facts("q(a).").unwrap();
    assert!(
        session.stats().regrounds >= 1,
        "active-domain retract goes cold"
    );
    let warm = session.solve().unwrap();
    let cold = engine.solve("p(X) :- not q(X). r(b). r(c).").unwrap();
    for atom in ["a", "b", "c"] {
        assert_eq!(
            warm.truth("p", &[atom]),
            cold.truth("p", &[atom]),
            "p({atom})"
        );
        assert_eq!(
            warm.truth("r", &[atom]),
            cold.truth("r", &[atom]),
            "r({atom})"
        );
        assert_eq!(
            warm.truth("q", &[atom]),
            cold.truth("q", &[atom]),
            "q({atom})"
        );
    }
    assert_eq!(
        warm.truth("r", &["c"]),
        Truth::True,
        "warm-asserted fact survives the cold fallback"
    );

    // Warm retract, then a cold assert (an unkeyable pruned negative
    // literal re-grounds): s(b) must not be resurrected by the re-ground.
    let engine = Engine::default();
    let mut session = engine
        .load("p(X) :- e(X), not q(f(X)). e(a). s(b).")
        .unwrap();
    session.solve().unwrap();
    session.retract_facts("s(b).").unwrap();
    assert_eq!(session.stats().regrounds, 0, "retract stays warm");
    session.assert_facts("q(f(a)).").unwrap();
    assert!(session.stats().regrounds >= 1, "unkeyable assert goes cold");
    let warm = session.solve().unwrap();
    let cold = engine
        .solve("p(X) :- e(X), not q(f(X)). e(a). q(f(a)).")
        .unwrap();
    assert_eq!(warm.truth("p", &["a"]), cold.truth("p", &["a"]));
    assert_eq!(warm.truth("p", &["a"]), Truth::False);
    assert_eq!(
        warm.truth("s", &["b"]),
        Truth::False,
        "warm-retracted fact stays gone through the cold fallback"
    );
}

/// The explain hook renders justifications for explainable semantics and
/// degrades to `None` for non-replayable ones.
#[test]
fn explain_hook() {
    let engine = Engine::default();
    let mut session = engine
        .load("e(a,b). p(a,b) :- e(a,b). np(a,b) :- not p(a,b).")
        .unwrap();
    let wfs = session.solve().unwrap();
    let tree = wfs
        .explain("p", &["a", "b"], 3)
        .expect("wfs is explainable");
    assert!(tree.contains("TRUE"));
    assert!(wfs.explain("nosuch", &[], 3).is_none());

    // The inflationary fixpoint wrongly concludes np(a,b) (Example 2.2) —
    // a conclusion that is not S_P-replayable, so explain declines.
    let ifp = session.solve_with(Semantics::Inflationary).unwrap();
    assert_eq!(ifp.truth("np", &["a", "b"]), Truth::True);
    assert!(ifp.explain("np", &["a", "b"], 3).is_none());
}

/// Stable solving reports the cautious collapse in the unified model.
#[test]
fn stable_cautious_collapse() {
    let model = Engine::new(ALL_STABLE)
        .solve("p :- not q. q :- not p. r :- p. r :- q. s :- not r.")
        .unwrap();
    assert_eq!(model.stable_models().len(), 2);
    assert_eq!(model.truth("r", &[]), Truth::True); // in both models
    assert_eq!(model.truth("s", &[]), Truth::False); // in neither
    assert_eq!(model.truth("p", &[]), Truth::Undefined); // in one
    assert!(!model.is_total());

    // No stable model: empty list, everything undefined.
    let none = Engine::new(ALL_STABLE)
        .solve("a :- not b. b :- not c. c :- not a.")
        .unwrap();
    assert!(none.stable_models().is_empty());
    assert_eq!(none.truth("a", &[]), Truth::Undefined);

    // max_models caps enumeration and reports incompleteness.
    let capped = Engine::new(Semantics::Stable { max_models: 1 })
        .solve("p :- not q. q :- not p.")
        .unwrap();
    assert_eq!(capped.stable_models().len(), 1);
}

/// Warm seeding is an optimization only: an adversarial mix of asserts,
/// retracts and re-solves always matches a cold solve of the final state.
#[test]
fn warm_resolves_match_cold_under_update_sequences() {
    let engine = Engine::default();
    let base = "wins(X) :- move(X, Y), not wins(Y).\n";
    let mut session = engine
        .load(&format!("{base}move(n0, n1). move(n1, n0)."))
        .unwrap();
    session.solve().unwrap();

    let mut live = vec![("n0", "n1"), ("n1", "n0")];
    let script: &[(&str, &str, bool)] = &[
        ("n1", "n2", true),
        ("n2", "n3", true),
        ("n1", "n0", false),
        ("n3", "n4", true),
        ("n2", "n3", false),
        ("n0", "n1", false),
        ("n2", "n3", true),
    ];
    for &(u, v, add) in script {
        if add {
            session.assert_facts(&format!("move({u}, {v}).")).unwrap();
            live.push((u, v));
        } else {
            session.retract_facts(&format!("move({u}, {v}).")).unwrap();
            live.retain(|&e| e != (u, v));
        }
        let warm = session.solve().unwrap();
        let cold_src = live.iter().fold(base.to_string(), |mut acc, (u, v)| {
            acc.push_str(&format!("move({u}, {v}).\n"));
            acc
        });
        let cold = engine.solve(&cold_src).unwrap();
        for n in ["n0", "n1", "n2", "n3", "n4"] {
            assert_eq!(
                warm.truth("wins", &[n]),
                cold.truth("wins", &[n]),
                "wins({n}) after {script:?} step ({u},{v},{add})"
            );
        }
    }
    assert_eq!(session.stats().regrounds, 0);
}

/// Satellite regression (PR 4): a read-only re-solve performs **zero**
/// deep clones — the returned model and ground snapshot are the same
/// allocations as the previous solve's (pointer copies), and the stats
/// counters say the memo served it.
#[test]
fn read_only_resolve_is_a_pointer_copy() {
    let mut session = Engine::default()
        .load("wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).")
        .unwrap();
    let first = session.solve().unwrap();
    assert_eq!(session.stats().snapshot_clones, 1);
    assert_eq!(session.stats().snapshot_reuses, 0);

    let second = session.solve().unwrap();
    assert!(
        std::ptr::eq(first.partial_model(), second.partial_model()),
        "re-solve must share the previous model allocation"
    );
    assert!(
        std::ptr::eq(first.ground(), second.ground()),
        "re-solve must share the previous program snapshot"
    );
    assert_eq!(second.truth("wins", &["b"]), Truth::True);
    assert_eq!(session.stats().snapshot_clones, 1, "no new snapshot");
    assert_eq!(session.stats().snapshot_reuses, 1);

    // A mutation re-materializes (cheaply, via CoW) …
    session.assert_facts("move(c, d).").unwrap();
    let third = session.solve().unwrap();
    assert!(!std::ptr::eq(second.partial_model(), third.partial_model()));
    assert_eq!(session.stats().snapshot_clones, 2);
    assert_eq!(third.truth("wins", &["c"]), Truth::True);
    // … and the pinned old model still answers for its own version.
    assert_eq!(second.truth("wins", &["c"]), Truth::False);

    // The memo serves the new version thereafter, under both strategies
    // (the WFS model is strategy-independent).
    let fourth = session
        .solve_with(Semantics::WellFounded {
            strategy: WfStrategy::Global(Strategy::default()),
        })
        .unwrap();
    assert!(std::ptr::eq(third.partial_model(), fourth.partial_model()));
    assert_eq!(session.stats().snapshot_reuses, 2);

    // Non-WFS semantics bypass the memo (different model object) without
    // disturbing it.
    let fitting = session.solve_with(Semantics::Fitting).unwrap();
    assert!(!std::ptr::eq(
        third.partial_model(),
        fitting.partial_model()
    ));
    let fifth = session.solve().unwrap();
    assert!(std::ptr::eq(third.partial_model(), fifth.partial_model()));
}
