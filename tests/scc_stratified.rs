//! Acceptance tests for SCC-stratified solving as the engine's hot path:
//!
//! * the SCC-stratified default agrees with the global alternating
//!   fixpoint on generated programs (differential), cold and across
//!   random update sequences (per-SCC warm re-solves);
//! * a warm update touching a leaf component re-solves only that
//!   component's forward dependency cone (`SessionStats`);
//! * an N-fact batch runs one grounder delta round, not N;
//! * a rule-budget error mid-assert leaves the session able to solve
//!   correctly (grounder poisoning + cold recovery).

use afp::datalog::GroundOptions;
use afp::{Engine, Error, Semantics, Strategy, Truth, WfStrategy};
use afp_bench::gen::{hard_knot_chain_src, random_ground_program};

const SCC: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::SccStratified,
};
const GLOBAL: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::Global(Strategy::Naive),
};

/// Deterministic xorshift for update scripts.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

#[test]
fn scc_stratified_is_the_default() {
    let mut session = Engine::default()
        .load("a :- not b. b :- not a. c.")
        .unwrap();
    session.solve().unwrap();
    assert_eq!(session.stats().scc_solves, 1);
    assert!(session.stats().last_components >= 2);
}

/// Differential: global AFP vs SCC-stratified on random ground programs.
#[test]
fn scc_agrees_with_global_on_random_programs() {
    let engine = Engine::default();
    for seed in 0..30u64 {
        let prog = random_ground_program(14, 30, 0.45, seed);
        let mut session = engine.load_ground(prog);
        let scc = session.solve_with(SCC).unwrap();
        let global = session.solve_with(GLOBAL).unwrap();
        assert_eq!(
            scc.partial_model(),
            global.partial_model(),
            "strategy divergence on seed {seed}"
        );
    }
}

/// Differential under updates: a session re-solving warm per SCC after a
/// random assert/retract script always matches a cold global solve of
/// the same final state — and interleaving strategies is safe.
#[test]
fn warm_per_scc_resolves_match_cold_after_random_updates() {
    let engine = Engine::default();
    let base = "wins(X) :- move(X, Y), not wins(Y).\n";
    for seed in 1..8u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
        let mut session = engine
            .load(&format!("{base}move(n0, n1). move(n1, n2)."))
            .unwrap();
        session.solve().unwrap();
        let mut live: Vec<(u32, u32)> = vec![(0, 1), (1, 2)];
        for step in 0..12 {
            let u = (rng.next() % 6) as u32;
            let v = (rng.next() % 6) as u32;
            if u == v {
                continue;
            }
            let fact = format!("move(n{u}, n{v}).");
            if live.contains(&(u, v)) && rng.next().is_multiple_of(2) {
                session.retract_facts(&fact).unwrap();
                live.retain(|&e| e != (u, v));
            } else {
                session.assert_facts(&fact).unwrap();
                if !live.contains(&(u, v)) {
                    live.push((u, v));
                }
            }
            // Occasionally interleave a global solve: both warm channels
            // must stay consistent.
            let warm = if step % 5 == 4 {
                session.solve_with(GLOBAL).unwrap()
            } else {
                session.solve_with(SCC).unwrap()
            };
            let cold_src = live.iter().fold(base.to_string(), |mut acc, (u, v)| {
                acc.push_str(&format!("move(n{u}, n{v}).\n"));
                acc
            });
            let cold = engine.solve(&cold_src).unwrap();
            for n in 0..6 {
                let name = format!("n{n}");
                assert_eq!(
                    warm.truth("wins", &[&name]),
                    cold.truth("wins", &[&name]),
                    "wins(n{n}) diverged at seed {seed} step {step}"
                );
            }
        }
        assert_eq!(session.stats().regrounds, 0, "all updates stay warm");
        assert!(session.stats().warm_solves > 0, "per-SCC reuse engaged");
    }
}

/// A warm update touching a leaf knot of a chain re-solves only that
/// knot's forward cone; every other component is copied verbatim.
#[test]
fn leaf_update_resolves_only_its_cone() {
    let k = 24;
    let mut session = Engine::default().load(&hard_knot_chain_src(k)).unwrap();
    let cold = session.solve().unwrap();
    assert!(cold.is_total());
    let components = session.stats().last_components;
    assert!(
        components >= 3 * k,
        "≈5 components per knot, got {components}"
    );
    assert_eq!(session.stats().last_components_reused, 0);

    // Touch the last knot only: retract and re-assert its e-fact.
    let leaf = format!("e(k{}).", k - 1);
    session.retract_facts(&leaf).unwrap();
    let gone = session.solve().unwrap();
    assert_eq!(gone.truth("a", &[&format!("k{}", k - 1)]), Truth::False);
    let stats = *session.stats();
    assert_eq!(stats.regrounds, 0, "retract stays warm");
    assert!(
        stats.last_components_evaluated <= 6,
        "only the leaf knot's cone may be re-solved, got {}",
        stats.last_components_evaluated
    );
    assert!(
        stats.last_components_reused >= components - 6,
        "everything else is copied ({} of {components})",
        stats.last_components_reused
    );

    session.assert_facts(&leaf).unwrap();
    let back = session.solve().unwrap();
    assert_eq!(back.truth("a", &[&format!("k{}", k - 1)]), Truth::True);
    assert!(session.stats().last_components_evaluated <= 6);

    // An update at the chain's *root* invalidates every knot above it:
    // the cone is the whole chain, so almost nothing is reused.
    session.retract_facts("e(k0).").unwrap();
    session.solve().unwrap();
    assert!(
        session.stats().last_components_evaluated >= k,
        "a root update must re-solve the whole cone"
    );
}

/// An N-fact batch performs one grounder delta round, not N.
#[test]
fn fact_batches_run_one_delta_round() {
    let mut src = String::from("wins(X) :- move(X, Y), not wins(Y).\n");
    for i in 0..16 {
        src.push_str(&format!("move(n{i}, n{}).\n", i + 1));
    }
    let engine = Engine::default();

    let mut batched = engine.load(&src).unwrap();
    let batch: String = (0..10).map(|i| format!("move(n16, x{i}). ")).collect();
    batched.assert_facts(&batch).unwrap();
    assert_eq!(batched.stats().asserts, 10);
    assert_eq!(
        batched.stats().delta_rounds,
        1,
        "one envelope/delta round for the whole batch"
    );

    let mut one_by_one = engine.load(&src).unwrap();
    for i in 0..10 {
        one_by_one
            .assert_facts(&format!("move(n16, x{i})."))
            .unwrap();
    }
    assert_eq!(one_by_one.stats().delta_rounds, 10);

    // Same resulting model either way.
    let a = batched.solve().unwrap();
    let b = one_by_one.solve().unwrap();
    assert_eq!(a.partial_model(), b.partial_model());

    // Batched retraction round-trips in one call.
    batched.retract_facts(&batch).unwrap();
    let back = batched.solve().unwrap();
    let cold = engine.solve(&src).unwrap();
    assert_eq!(
        back.partial_model().pos.count(),
        cold.partial_model().pos.count()
    );
    assert_eq!(batched.stats().regrounds, 0);
}

/// Regression (ROADMAP): a rule-budget error mid-assert must not leave
/// the session on a half-extended grounding. The grounder is poisoned
/// and the session recovers by re-grounding cold from its retained AST —
/// solves after the failure match a cold solve of the pre-batch state.
#[test]
fn budget_error_mid_assert_leaves_a_consistent_session() {
    let src = "p(X, Y) :- d(X), d(Y). d(a).";
    let engine = Engine::builder()
        .ground_options(GroundOptions {
            max_ground_rules: 6,
            ..Default::default()
        })
        .build();
    let mut session = engine.load(src).unwrap();
    let before = session.solve().unwrap();
    assert_eq!(before.truth("p", &["a", "a"]), Truth::True);

    // 4 constants → 16 instances: blows the 6-rule budget mid-batch.
    let err = session.assert_facts("d(b). d(c). d(e).");
    assert!(matches!(err, Err(Error::Ground(_))), "budget must surface");

    // The session still solves, and agrees with a cold solve of the
    // program *without* the failed batch.
    let after = session.solve().unwrap();
    let cold = engine.solve(src).unwrap();
    assert_eq!(after.partial_model(), cold.partial_model());
    assert!(
        session.stats().regrounds >= 1,
        "recovery re-grounds from the retained AST"
    );

    // Subsequent updates work: one more constant fits the budget.
    session.assert_facts("d(b).").unwrap();
    let extended = session.solve().unwrap();
    let cold = engine.solve("p(X, Y) :- d(X), d(Y). d(a). d(b).").unwrap();
    assert_eq!(extended.partial_model(), cold.partial_model());
    assert_eq!(extended.truth("p", &["a", "b"]), Truth::True);
}

/// Retracting a *derived* conclusion is a no-op, even when its ground
/// rule happens to be bodyless (stripped `$dom` guard + pruned negative
/// literal). Regression for the warm active-domain retract path.
#[test]
fn retracting_a_derived_conclusion_is_a_noop() {
    use afp::SafetyPolicy;
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();
    let mut session = engine.load("p(X) :- not q(X). ok :- p(c). r(c).").unwrap();
    let before = session.solve().unwrap();
    assert_eq!(before.truth("p", &["c"]), Truth::True);
    assert_eq!(before.truth("ok", &[]), Truth::True);

    session.retract_facts("p(c).").unwrap();
    let after = session.solve().unwrap();
    assert_eq!(after.truth("p", &["c"]), Truth::True, "p(c) is derived");
    assert_eq!(after.truth("ok", &[]), Truth::True);

    // And the refcounts were not corrupted: retracting r(c) stays warm
    // because c is pinned by the rule constant in `ok :- p(c)` — exactly
    // what a cold re-ground of the edited program concludes too.
    session.retract_facts("r(c).").unwrap();
    assert_eq!(session.stats().regrounds, 0, "c stays in the domain");
    let still = session.solve().unwrap();
    let cold = engine.solve("p(X) :- not q(X). ok :- p(c).").unwrap();
    assert_eq!(still.truth("p", &["c"]), cold.truth("p", &["c"]));
    assert_eq!(still.truth("p", &["c"]), Truth::True);
    assert_eq!(still.truth("r", &["c"]), Truth::False);
}

/// The same budget failure followed by a retract (no solve in between):
/// the recovery re-ground must leave the retract operating on the last
/// consistent fact set, never on the half-extended program.
#[test]
fn poisoned_grounder_recovers_before_the_next_retract() {
    let src = "p(X, Y) :- d(X), d(Y). d(a). d(b).";
    let engine = Engine::builder()
        .ground_options(GroundOptions {
            max_ground_rules: 8,
            ..Default::default()
        })
        .build();
    let mut session = engine.load(src).unwrap();
    session.solve().unwrap();
    assert!(session.assert_facts("d(c). d(e). d(f).").is_err());
    assert!(session.stats().regrounds >= 1, "recovery re-ground");

    session.retract_facts("d(b).").unwrap();
    let after = session.solve().unwrap();
    let cold = engine.solve("p(X, Y) :- d(X), d(Y). d(a).").unwrap();
    for (pred, args) in [
        ("d", vec!["a"]),
        ("d", vec!["b"]),
        ("d", vec!["c"]),
        ("p", vec!["a", "a"]),
        ("p", vec!["a", "b"]),
        ("p", vec!["b", "b"]),
        ("p", vec!["c", "c"]),
    ] {
        let refs: Vec<&str> = args.clone();
        assert_eq!(
            after.truth(pred, &refs),
            cold.truth(pred, &refs),
            "{pred}({args:?})"
        );
    }
}
