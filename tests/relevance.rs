//! Relevance restriction (Section 9's query-tractability direction):
//! restricting a program to the dependency cone of a query atom preserves
//! its well-founded truth value — for every atom inside the cone.

use afp::core::alternating_fixpoint;
use afp::core::relevance::{relevant_atoms, restrict_to_query};
use afp_datalog::atoms::AtomId;
use afp_datalog::program::{GroundProgram, GroundProgramBuilder};
use proptest::prelude::*;

fn program_strategy() -> impl Strategy<Value = (GroundProgram, u32)> {
    (2usize..=12).prop_flat_map(|n_atoms| {
        let rule = (
            0..n_atoms as u32,
            proptest::collection::vec(0..n_atoms as u32, 0..3),
            proptest::collection::vec(0..n_atoms as u32, 0..3),
        );
        (proptest::collection::vec(rule, 0..20), 0..n_atoms as u32).prop_map(
            move |(rules, seed)| {
                let mut b = GroundProgramBuilder::new();
                let atoms: Vec<_> = (0..n_atoms).map(|i| b.prop(&format!("a{i}"))).collect();
                for (head, pos, neg) in rules {
                    b.rule(
                        atoms[head as usize],
                        pos.iter().map(|&i| atoms[i as usize]).collect(),
                        neg.iter().map(|&i| atoms[i as usize]).collect(),
                    );
                }
                (b.finish(), seed)
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn restriction_preserves_cone_truth((prog, seed) in program_strategy()) {
        let seed_atom = AtomId(seed);
        let cone = relevant_atoms(&prog, &[seed_atom]);
        let restricted = restrict_to_query(&prog, &[seed_atom]);
        let full = alternating_fixpoint(&prog);
        let sub = alternating_fixpoint(&restricted);
        // Same universe, so truth values compare directly — for every atom
        // in the cone, not just the seed.
        for atom in cone.iter() {
            prop_assert_eq!(
                full.model.truth(atom),
                sub.model.truth(atom),
                "atom a{} changed truth under restriction", atom
            );
        }
        // And the restriction never has more rules.
        prop_assert!(restricted.rule_count() <= prog.rule_count());
    }
}
