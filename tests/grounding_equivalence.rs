//! The grounder's envelope pruning is semantics-preserving: solving the
//! relevance-grounded program gives the same well-founded truth value for
//! every atom as solving the full Herbrand instantiation (atoms the
//! grounder never materializes are false).
//!
//! Random non-ground programs over a fixed active domain {a, b, c} are
//! instantiated both ways and compared atom by atom.

use afp::core::alternating_fixpoint;
use afp::Truth;
use afp_datalog::ast::{Atom, Literal, Program, Rule, Term};
use afp_datalog::ground::{ground_with, GroundOptions, SafetyPolicy};
use afp_datalog::program::GroundProgramBuilder;
use afp_datalog::symbol::Symbol;
use proptest::prelude::*;

const CONSTS: [&str; 3] = ["a", "b", "c"];
const PREDS: [(&str, usize); 4] = [("p", 1), ("q", 1), ("r", 2), ("e", 2)];

/// Compact description of a random rule, decoded into the AST later.
/// Terms: 0..3 = constants a/b/c, 3 = X, 4 = Y.
#[derive(Debug, Clone)]
struct RuleDesc {
    head_pred: usize,
    head_args: Vec<u8>,
    body: Vec<(usize, Vec<u8>, bool)>,
}

fn term(program: &mut Program, code: u8) -> Term {
    match code {
        0..=2 => Term::Const(program.symbols.intern(CONSTS[code as usize])),
        3 => Term::Var(program.symbols.intern("X")),
        _ => Term::Var(program.symbols.intern("Y")),
    }
}

fn build_program(descs: &[RuleDesc], fact_bits: u8) -> Program {
    let mut program = Program::new();
    // A few e/2 facts so the EDB is non-trivial and the active domain is
    // always {a, b, c}.
    for (i, &c1) in CONSTS.iter().enumerate() {
        if fact_bits & (1 << i) != 0 {
            let e = program.symbols.intern("e");
            let a1 = program.symbols.intern(c1);
            let a2 = program.symbols.intern(CONSTS[(i + 1) % 3]);
            program.push(Rule::fact(Atom::new(
                e,
                vec![Term::Const(a1), Term::Const(a2)],
            )));
        }
    }
    let seed = program.symbols.intern("seed");
    for c in CONSTS {
        let s = program.symbols.intern(c);
        program.push(Rule::fact(Atom::new(seed, vec![Term::Const(s)])));
    }
    for d in descs {
        let (hp, harity) = PREDS[d.head_pred];
        let hsym = program.symbols.intern(hp);
        let head_args: Vec<Term> = d.head_args[..harity]
            .iter()
            .map(|&c| term(&mut program, c))
            .collect();
        let head = Atom::new(hsym, head_args);
        let mut body = Vec::new();
        for (bp, args, positive) in &d.body {
            let (bpn, barity) = PREDS[*bp];
            let bsym = program.symbols.intern(bpn);
            let bargs: Vec<Term> = args[..barity]
                .iter()
                .map(|&c| term(&mut program, c))
                .collect();
            let atom = Atom::new(bsym, bargs);
            body.push(if *positive {
                Literal::pos(atom)
            } else {
                Literal::neg(atom)
            });
        }
        program.push(Rule::new(head, body));
    }
    program
}

/// Full instantiation: substitute every variable by every constant, keep
/// every instance, materialize every mentioned atom.
fn full_instantiation(program: &Program) -> afp_datalog::GroundProgram {
    let mut b = GroundProgramBuilder::with_symbols(program.symbols.clone());
    let const_syms: Vec<Symbol> = CONSTS
        .iter()
        .map(|c| program.symbols.get(c).expect("interned"))
        .collect();
    for rule in &program.rules {
        let vars = rule.variables();
        let n = vars.len();
        let mut assignment = vec![0usize; n];
        loop {
            let intern_atom = |a: &Atom, b: &mut GroundProgramBuilder| {
                let args: Vec<afp_datalog::ConstId> = a
                    .args
                    .iter()
                    .map(|t| match t {
                        Term::Const(c) => b.base_mut().intern_const(*c),
                        Term::Var(v) => {
                            let ix = vars.iter().position(|w| w == v).unwrap();
                            b.base_mut().intern_const(const_syms[assignment[ix]])
                        }
                        Term::App(..) => unreachable!("no function symbols generated"),
                    })
                    .collect();
                b.base_mut().intern_atom(a.pred, &args)
            };
            let head = intern_atom(&rule.head, &mut b);
            let mut pos = Vec::new();
            let mut neg = Vec::new();
            for l in &rule.body {
                let id = intern_atom(&l.atom, &mut b);
                if l.positive {
                    pos.push(id);
                } else {
                    neg.push(id);
                }
            }
            b.rule(head, pos, neg);
            // Odometer over assignments.
            let mut pos_ix = 0;
            loop {
                if pos_ix == n {
                    break;
                }
                assignment[pos_ix] += 1;
                if assignment[pos_ix] < CONSTS.len() {
                    break;
                }
                assignment[pos_ix] = 0;
                pos_ix += 1;
            }
            if n == 0 || pos_ix == n {
                break;
            }
        }
    }
    b.finish()
}

fn rule_desc_strategy() -> impl Strategy<Value = RuleDesc> {
    (
        0..PREDS.len(),
        proptest::collection::vec(0u8..5, 2),
        proptest::collection::vec(
            (
                0..PREDS.len(),
                proptest::collection::vec(0u8..5, 2),
                any::<bool>(),
            ),
            0..3,
        ),
    )
        .prop_map(|(head_pred, head_args, body)| RuleDesc {
            head_pred,
            head_args,
            body,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn envelope_grounding_preserves_wfs(
        descs in proptest::collection::vec(rule_desc_strategy(), 0..6),
        fact_bits in 0u8..8,
    ) {
        let program = build_program(&descs, fact_bits);

        // Route 1: relevance grounding (active-domain safety).
        let pruned = ground_with(
            &program,
            &GroundOptions {
                safety: SafetyPolicy::ActiveDomain,
                ..Default::default()
            },
        ).expect("grounds");
        let pruned_afp = alternating_fixpoint(&pruned);

        // Route 2: full instantiation over the same domain.
        let full = full_instantiation(&program);
        let full_afp = alternating_fixpoint(&full);

        // Every atom of the full base must agree (missing ⇒ false).
        for id in 0..full.atom_count() as u32 {
            let name = full.atom_name(afp_datalog::AtomId(id));
            let full_truth = full_afp.model.truth(id);
            let pruned_truth = lookup(&pruned, &pruned_afp, &name);
            prop_assert_eq!(
                full_truth, pruned_truth,
                "atom {} disagrees (full={:?}, pruned={:?})",
                name, full_truth, pruned_truth
            );
        }
    }
}

fn lookup(prog: &afp_datalog::GroundProgram, afp: &afp::AfpResult, name: &str) -> Truth {
    for id in 0..prog.atom_count() as u32 {
        if prog.atom_name(afp_datalog::AtomId(id)) == name {
            return afp.model.truth(id);
        }
    }
    Truth::False
}
