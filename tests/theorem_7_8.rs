//! Theorem 7.8: the alternating fixpoint partial model is identical to the
//! well-founded partial model (defined via greatest unfounded sets).
//!
//! Checked on every worked example in the paper, on structured workloads,
//! and on randomized ground programs.

use afp::core::alternating_fixpoint;
use afp::semantics::well_founded_model;
use afp_bench::gen::{self, Graph};
use afp_datalog::program::{parse_ground, GroundProgram, GroundProgramBuilder};
use proptest::prelude::*;

fn assert_equivalent(g: &GroundProgram, label: &str) {
    let afp = alternating_fixpoint(g);
    let wfs = well_founded_model(g);
    assert_eq!(afp.model, wfs.model, "Theorem 7.8 fails on {label}");
}

#[test]
fn example_5_1() {
    assert_equivalent(&gen::example_5_1(), "Example 5.1");
}

#[test]
fn figure_4_games() {
    assert_equivalent(&gen::fig4::part_a(), "Figure 4(a)");
    assert_equivalent(&gen::fig4::part_b(), "Figure 4(b)");
    assert_equivalent(&gen::fig4::part_c(), "Figure 4(c)");
}

#[test]
fn classic_small_programs() {
    for src in [
        "p :- not q. q :- not p.",
        "p :- not p.",
        "p :- not q. q :- not r. r :- not p.",
        "a. b :- a, not c. c :- not b. d :- b, c.",
        "x :- y. y :- x. z :- not x.",
        "w :- not l. l :- not w. t :- w. t :- l.",
        "p :- not p. p :- not q. q :- not p.",
    ] {
        assert_equivalent(&parse_ground(src), src);
    }
}

#[test]
fn win_move_workloads() {
    for (name, g) in [
        ("path64", Graph::path(64)),
        ("cycle65", Graph::cycle(65)),
        ("er", Graph::random(80, 0.04, 11)),
        ("regular", Graph::random_regular_out(80, 3, 12)),
        ("dag", Graph::random_dag(60, 0.1, 13)),
    ] {
        assert_equivalent(&gen::win_move_ground(&g), name);
    }
}

#[test]
fn grounded_tc_ntc() {
    for g in [Graph::path(8), Graph::cycle(8), Graph::random(10, 0.15, 3)] {
        let ast = gen::tc_ntc_ast(&g);
        let ground = afp_datalog::ground(&ast).unwrap();
        assert_equivalent(&ground, "tc/ntc");
    }
}

#[test]
fn sat_reductions() {
    for seed in 0..5u64 {
        let clauses = gen::random_3sat(6, 20, seed);
        assert_equivalent(&gen::sat_to_stable(6, &clauses), "sat reduction");
    }
}

/// Strategy: a random ground program as raw rule tuples.
fn ground_program_strategy(
    max_atoms: usize,
    max_rules: usize,
) -> impl Strategy<Value = GroundProgram> {
    (1..=max_atoms).prop_flat_map(move |n_atoms| {
        let rule = (
            0..n_atoms as u32,
            proptest::collection::vec(0..n_atoms as u32, 0..3),
            proptest::collection::vec(0..n_atoms as u32, 0..3),
        );
        proptest::collection::vec(rule, 0..=max_rules).prop_map(move |rules| {
            let mut b = GroundProgramBuilder::new();
            let atoms: Vec<_> = (0..n_atoms).map(|i| b.prop(&format!("a{i}"))).collect();
            for (head, pos, neg) in rules {
                b.rule(
                    atoms[head as usize],
                    pos.iter().map(|&i| atoms[i as usize]).collect(),
                    neg.iter().map(|&i| atoms[i as usize]).collect(),
                );
            }
            b.finish()
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn afp_equals_wfs_on_random_programs(prog in ground_program_strategy(10, 20)) {
        let afp = alternating_fixpoint(&prog);
        let wfs = well_founded_model(&prog);
        prop_assert_eq!(&afp.model, &wfs.model);
    }

    #[test]
    fn afp_model_is_always_a_partial_model(prog in ground_program_strategy(10, 20)) {
        let afp = alternating_fixpoint(&prog);
        prop_assert!(afp.model.is_partial_model(&prog));
    }

    #[test]
    fn wfs_extends_fitting(prog in ground_program_strategy(10, 20)) {
        let fit = afp::semantics::fitting_model(&prog);
        let wfs = alternating_fixpoint(&prog);
        prop_assert!(fit.model.leq(&wfs.model), "Fitting ⊑ WFS");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn modular_wfs_equals_global(prog in ground_program_strategy(12, 24)) {
        let global = alternating_fixpoint(&prog);
        let modular = afp::semantics::modular_wfs(&prog);
        prop_assert_eq!(global.model, modular.model);
    }
}
