//! Crash-recovery differential acceptance suite for `afp::journal`.
//!
//! The durability contract under test: **after any crash — injected
//! before the journal append, after the append but before publish, or
//! mid-checkpoint — recovery rebuilds a head model that is
//! bit-identical (modulo the warm/cold false-set asymmetry, see
//! [`comparable`]) to a cold `Engine::load` solve of the program
//! reconstructed from the recovered changelog, and the recovered
//! changelog is prefix-consistent with the pre-crash one** (equal on
//! the common prefix; at most the in-flight delta differs). Torn tails
//! — short writes and damage to the final record — are truncated
//! silently; damage *before* a valid record is mid-journal corruption
//! and recovery refuses with a loud [`Error::JournalCorrupt`]. Both
//! well-founded strategies are exercised, because recovery replays
//! through the same warm-update path the live writer uses.

use afp::net::codec;
use afp::{
    AppliedDelta, CrashPoint, DeltaKind, Engine, Error, FsyncPolicy, Journal, JournalOptions,
    Semantics, Service, ServiceOptions, Strategy, WfStrategy,
};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

const SCC: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::SccStratified,
};
const GLOBAL: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::Global(Strategy::Naive),
};

/// Deterministic xorshift for per-seed write scripts.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

const BASE_RULES: &str = "win(X) :- move(X, Y), not win(Y).\n";
const BASE_FACTS: &[&str] = &["move(n0, n1).", "move(n1, n2)."];

fn base_src() -> String {
    format!("{BASE_RULES}{}\n", BASE_FACTS.join(" "))
}

const RULE_POOL: &[&str] = &[
    "reach(X) :- move(n0, X).",
    "reach(X) :- move(Y, X), reach(Y).",
    "p :- not q.",
    "q :- not p.",
];

const FACT_POOL: &[&str] = &[
    "move(n0, j0).",
    "move(j0, j1).",
    "move(j1, j2).",
    "bonus(j0).",
    "bonus(j2).",
];

/// Rebuild the program text of `version` from a changelog: the base
/// program plus every applied delta with version ≤ `version`, replayed
/// as set updates (same folding as `tests/net.rs`).
fn reconstruct(changelog: &[AppliedDelta], version: u64) -> String {
    let mut live_rules: Vec<&str> = Vec::new();
    let mut live_facts: Vec<&str> = BASE_FACTS.to_vec();
    for entry in changelog {
        if entry.version > version {
            break;
        }
        let text = entry.text.as_str();
        match entry.kind {
            DeltaKind::AssertRules => {
                if !live_rules.contains(&text) {
                    live_rules.push(text);
                }
            }
            DeltaKind::RetractRules => live_rules.retain(|&r| r != text),
            DeltaKind::AssertFacts => {
                if !live_facts.contains(&text) {
                    live_facts.push(text);
                }
            }
            DeltaKind::RetractFacts => live_facts.retain(|&f| f != text),
        }
    }
    let mut src = String::from(BASE_RULES);
    for r in &live_rules {
        src.push_str(r);
        src.push('\n');
    }
    for f in &live_facts {
        src.push_str(f);
        src.push('\n');
    }
    src
}

/// Strip the `"false"` list before comparing: recovery replays through
/// the warm path, whose Herbrand base retains retracted atoms (as
/// false) that a cold load never saw. Every truth value still agrees.
fn comparable(model_json: &str) -> String {
    let start = model_json.find(",\"false\":[").expect("false list");
    let end = start + model_json[start..].find(']').expect("list close") + 1;
    format!("{}{}", &model_json[..start], &model_json[end..])
}

fn temp_journal_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("afp-tj-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn engine(semantics: Semantics) -> Engine {
    Engine::builder().semantics(semantics).build()
}

fn fresh_service(eng: &Engine, dir: &Path, journal_options: JournalOptions) -> Service {
    let session = eng.load(&base_src()).unwrap();
    Service::with_journal(session, ServiceOptions::default(), dir, journal_options).unwrap()
}

/// Head model of `service` must match a cold solve of the program its
/// own changelog reconstructs for the head version.
fn assert_head_matches_cold(eng: &Engine, service: &Service, changelog: &[AppliedDelta]) {
    let snapshot = service.snapshot();
    let version = snapshot.version();
    let warm = codec::model_json(version, snapshot.model());
    let cold_model = eng.solve(&reconstruct(changelog, version)).unwrap();
    let cold = codec::model_json(version, &cold_model);
    assert_eq!(comparable(&warm), comparable(&cold));
}

/// Apply a seeded mixed script of asserts/retracts straight to the
/// service (the submitting thread leads its own write cycles), tracking
/// liveness so retracts only touch live text.
fn run_script(service: &Service, rng: &mut Rng, steps: usize) {
    let mut live_facts: Vec<&str> = Vec::new();
    let mut live_rules: Vec<&str> = Vec::new();
    for _ in 0..steps {
        match rng.next() % 6 {
            0 | 1 => {
                let fact = FACT_POOL[(rng.next() % FACT_POOL.len() as u64) as usize];
                service.assert_facts(fact).unwrap();
                if !live_facts.contains(&fact) {
                    live_facts.push(fact);
                }
            }
            2 => {
                let len = live_facts.len();
                if len > 0 {
                    let fact = live_facts[(rng.next() % len as u64) as usize];
                    service.retract_facts(fact).unwrap();
                    live_facts.retain(|&f| f != fact);
                }
            }
            3 => {
                let rule = RULE_POOL[(rng.next() % RULE_POOL.len() as u64) as usize];
                service.assert_rules(rule).unwrap();
                if !live_rules.contains(&rule) {
                    live_rules.push(rule);
                }
            }
            4 => {
                let len = live_rules.len();
                if len > 0 {
                    let rule = live_rules[(rng.next() % len as u64) as usize];
                    service.retract_rules(rule).unwrap();
                    live_rules.retain(|&r| r != rule);
                }
            }
            _ => {
                // A read between writes, like a real client mix.
                let _ = service.snapshot().truth("win", &["n0"]);
            }
        }
    }
}

/// Clean shutdown and restart: the recovered service resumes at the
/// same version with the same changelog and model, and keeps accepting
/// (and journaling) writes.
fn clean_restart(semantics: Semantics, label: &str) {
    let eng = engine(semantics);
    let dir = temp_journal_dir(&format!("restart-{label}"));
    let service = fresh_service(&eng, &dir, JournalOptions::default());
    run_script(&service, &mut Rng(0xC1EA_A001), 12);
    let pre_version = service.version();
    let pre_changelog = service.changelog().unwrap();
    drop(service);

    let recovered = Service::recover(
        &eng,
        &dir,
        ServiceOptions::default(),
        JournalOptions::default(),
    )
    .unwrap();
    assert_eq!(recovered.version(), pre_version);
    let changelog = recovered.changelog().unwrap();
    assert_eq!(changelog, pre_changelog);
    assert_head_matches_cold(&eng, &recovered, &changelog);
    let stats = recovered.journal_stats().unwrap();
    assert_eq!(stats.records_replayed, pre_changelog.len() as u64);

    // The reopened journal keeps absorbing writes.
    let v = recovered.assert_facts("bonus(j9).").unwrap();
    assert_eq!(v, pre_version + 1);
    assert!(recovered.journal_stats().unwrap().records_appended > 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn clean_restart_round_trips_state_scc() {
    clean_restart(SCC, "scc");
}

#[test]
fn clean_restart_round_trips_state_global() {
    clean_restart(GLOBAL, "global");
}

fn journal_files(dir: &Path) -> (Vec<PathBuf>, Vec<PathBuf>) {
    let mut checkpoints = Vec::new();
    let mut wals = Vec::new();
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        match path.extension().and_then(|e| e.to_str()) {
            Some("ckpt") => checkpoints.push(path),
            Some("log") => wals.push(path),
            _ => {}
        }
    }
    checkpoints.sort();
    wals.sort();
    (checkpoints, wals)
}

/// Periodic checkpoints compact the journal down to one checkpoint and
/// one WAL, so replay is bounded by the checkpoint interval — and the
/// changelog horizon moves up with the checkpoint, so reads below it
/// report eviction rather than silently empty history.
#[test]
fn checkpoint_compaction_bounds_replay() {
    let eng = engine(SCC);
    let dir = temp_journal_dir("compact");
    let options = JournalOptions {
        checkpoint_every: 4,
        ..JournalOptions::default()
    };
    let service = fresh_service(&eng, &dir, options);
    for i in 0..10 {
        service.assert_facts(&format!("move(n0, k{i}).")).unwrap();
    }
    assert_eq!(service.version(), 10);
    let stats = service.journal_stats().unwrap();
    assert!(stats.checkpoints >= 2, "{stats:?}");
    assert!(stats.compacted_records >= 4, "{stats:?}");
    drop(service);

    let (checkpoints, wals) = journal_files(&dir);
    assert_eq!(checkpoints.len(), 1, "{checkpoints:?}");
    assert_eq!(wals.len(), 1, "{wals:?}");

    let recovered = Service::recover(&eng, &dir, ServiceOptions::default(), options).unwrap();
    assert_eq!(recovered.version(), 10);
    let stats = recovered.journal_stats().unwrap();
    // Versions 9 and 10 live past the version-8 checkpoint.
    assert_eq!(stats.records_replayed, 2, "{stats:?}");
    // History at and below the checkpoint is compacted away.
    assert!(matches!(
        recovered.changelog_since(0),
        Err(Error::VersionEvicted { .. })
    ));
    let tail = recovered.changelog_since(8).unwrap();
    assert_eq!(tail.len(), 2);
    assert_eq!(
        recovered.snapshot().truth("win", &["k9"]),
        afp::Truth::False
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// The flagship differential: seeded write scripts crash at injected
/// points (before the append, or after the append but before publish);
/// recovery must land on pre-crash state (PreAppend: the in-flight
/// delta is lost) or pre-crash + the in-flight delta (PostAppend: its
/// record was already durable), with the changelog prefix-consistent
/// and the head model matching a cold solve either way.
fn crash_differential(semantics: Semantics, label: &str) {
    for (seed_idx, seed) in [0xDEAD_0001u64, 0xDEAD_0002, 0xDEAD_0003]
        .into_iter()
        .enumerate()
    {
        for point in [CrashPoint::PreAppend, CrashPoint::PostAppend] {
            let eng = engine(semantics);
            let dir = temp_journal_dir(&format!("crash-{label}-{seed_idx}-{point:?}"));
            let service = fresh_service(&eng, &dir, JournalOptions::default());
            let mut rng = Rng(seed);
            run_script(&service, &mut rng, 8 + (seed % 5) as usize);
            let pre_version = service.version();
            let pre_changelog = service.changelog().unwrap();

            // The crash op: the seam fires inside this write cycle, so
            // the submitting thread (the cycle leader) panics.
            service.inject_crash_for_testing(Some(point));
            let crash_fact = FACT_POOL[(rng.next() % FACT_POOL.len() as u64) as usize];
            let outcome = catch_unwind(AssertUnwindSafe(|| service.assert_facts(crash_fact)));
            assert!(outcome.is_err(), "crash seam must panic the leader");
            drop(service);

            let recovered = Service::recover(
                &eng,
                &dir,
                ServiceOptions::default(),
                JournalOptions::default(),
            )
            .unwrap();
            let recovered_version = recovered.version();
            match point {
                CrashPoint::PreAppend => assert_eq!(
                    recovered_version, pre_version,
                    "pre-append crash loses the in-flight delta"
                ),
                _ => assert_eq!(
                    recovered_version,
                    pre_version + 1,
                    "post-append crash preserves the durable record"
                ),
            }

            let changelog = recovered.changelog().unwrap();
            let common = pre_changelog.len().min(changelog.len());
            assert_eq!(
                &changelog[..common],
                &pre_changelog[..common],
                "recovered changelog must be prefix-consistent"
            );
            assert!(changelog.len() <= pre_changelog.len() + 1);
            if changelog.len() > pre_changelog.len() {
                let extra = changelog.last().unwrap();
                assert_eq!(extra.kind, DeltaKind::AssertFacts);
                assert_eq!(extra.version, pre_version + 1);
            }
            assert_head_matches_cold(&eng, &recovered, &changelog);

            // Post-recovery writes pick up where the journal left off.
            let v = recovered.assert_facts("bonus(j7).").unwrap();
            assert_eq!(v, recovered_version + 1);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }
}

#[test]
fn crash_recovery_differential_scc() {
    crash_differential(SCC, "scc");
}

#[test]
fn crash_recovery_differential_global() {
    crash_differential(GLOBAL, "global");
}

/// A crash in the middle of writing a checkpoint file must not lose
/// anything: the previous checkpoint + full WAL still reconstruct the
/// head, and recovery deletes the torn checkpoint.
#[test]
fn mid_checkpoint_crash_preserves_previous_checkpoint() {
    let eng = engine(SCC);
    let dir = temp_journal_dir("midckpt");
    let service = fresh_service(&eng, &dir, JournalOptions::default());
    run_script(&service, &mut Rng(0xC4C4_0001), 6);
    service.checkpoint().unwrap();
    run_script(&service, &mut Rng(0xC4C4_0002), 5);
    let pre_version = service.version();

    service.inject_crash_for_testing(Some(CrashPoint::MidCheckpoint));
    let outcome = catch_unwind(AssertUnwindSafe(|| service.checkpoint()));
    assert!(outcome.is_err(), "mid-checkpoint seam must panic");
    drop(service);

    let (checkpoints, _) = journal_files(&dir);
    assert_eq!(
        checkpoints.len(),
        2,
        "torn checkpoint written: {checkpoints:?}"
    );

    let recovered = Service::recover(
        &eng,
        &dir,
        ServiceOptions::default(),
        JournalOptions::default(),
    )
    .unwrap();
    assert_eq!(recovered.version(), pre_version);
    // The surviving checkpoint bounds the visible changelog; the
    // differential uses whatever tail is retained.
    let tail = match recovered.changelog_since(0) {
        Ok(entries) => entries,
        Err(Error::VersionEvicted { retained_from, .. }) => {
            recovered.changelog_since(retained_from).unwrap()
        }
        Err(other) => panic!("{other}"),
    };
    assert!(!tail.is_empty() || pre_version == 0);

    let (checkpoints, _) = journal_files(&dir);
    assert_eq!(
        checkpoints.len(),
        1,
        "recovery must delete the torn checkpoint: {checkpoints:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

/// Offsets of complete framed records in a WAL image (past the 8-byte
/// magic): `(start, total_len)` per record.
fn record_frames(bytes: &[u8]) -> Vec<(usize, usize)> {
    let mut frames = Vec::new();
    let mut off = 8;
    while off + 8 <= bytes.len() {
        let len = u32::from_be_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
        if off + 8 + len > bytes.len() {
            break;
        }
        frames.push((off, 8 + len));
        off += 8 + len;
    }
    frames
}

fn wal_file(dir: &Path) -> PathBuf {
    let (_, wals) = journal_files(dir);
    wals.into_iter().next_back().expect("a WAL file")
}

/// External damage to the WAL: a short write or a bit flip in the final
/// record is a torn tail (truncated, state rolls back one version); a
/// bit flip *before* a valid record is mid-journal corruption and
/// recovery refuses loudly.
#[test]
fn torn_tails_truncate_but_mid_journal_corruption_refuses() {
    let eng = engine(SCC);
    let dir = temp_journal_dir("damage");
    let service = fresh_service(&eng, &dir, JournalOptions::default());
    for i in 0..4 {
        service.assert_facts(&format!("move(n0, d{i}).")).unwrap();
    }
    drop(service);
    let wal = wal_file(&dir);
    let pristine = std::fs::read(&wal).unwrap();
    let frames = record_frames(&pristine);
    assert_eq!(frames.len(), 4);

    // Short write: chop into the last record.
    std::fs::write(&wal, &pristine[..pristine.len() - 3]).unwrap();
    let recovered = Service::recover(
        &eng,
        &dir,
        ServiceOptions::default(),
        JournalOptions::default(),
    )
    .unwrap();
    assert_eq!(recovered.version(), 3);
    assert_eq!(recovered.journal_stats().unwrap().torn_truncations, 1);
    assert_eq!(
        recovered.snapshot().truth("win", &["d3"]),
        afp::Truth::False
    );
    drop(recovered);

    // Bit flip in the last record's payload: no valid continuation, so
    // the torn-tail rule truncates it too.
    let mut tail_flip = pristine.clone();
    let (start, len) = *frames.last().unwrap();
    tail_flip[start + len - 1] ^= 0x20;
    std::fs::write(&wal, &tail_flip).unwrap();
    let recovered = Service::recover(
        &eng,
        &dir,
        ServiceOptions::default(),
        JournalOptions::default(),
    )
    .unwrap();
    assert_eq!(recovered.version(), 3);
    drop(recovered);

    // Restore, then flip a payload byte in the FIRST record: records
    // 1..3 still parse after it, so this is mid-journal damage — a
    // loud, typed error, never silent truncation.
    let mut mid_flip = pristine.clone();
    let (start, _) = frames[0];
    mid_flip[start + 8 + 8] ^= 0x20; // past the u64 version stamp
    std::fs::write(&wal, &mid_flip).unwrap();
    match Service::recover(
        &eng,
        &dir,
        ServiceOptions::default(),
        JournalOptions::default(),
    ) {
        Err(Error::JournalCorrupt { record, .. }) => assert_eq!(record, 0),
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("mid-journal corruption must refuse recovery"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every fsync policy recovers a cleanly closed journal; `ack_durable`
/// forces syncs even under `FsyncPolicy::Never`.
#[test]
fn all_fsync_policies_recover() {
    for (label, fsync, ack_durable) in [
        ("always", FsyncPolicy::Always, false),
        ("every3", FsyncPolicy::EveryN(3), false),
        ("never", FsyncPolicy::Never, false),
        ("ackdur", FsyncPolicy::Never, true),
    ] {
        let eng = engine(SCC);
        let dir = temp_journal_dir(&format!("fsync-{label}"));
        let options = JournalOptions {
            fsync,
            ack_durable,
            ..JournalOptions::default()
        };
        let service = fresh_service(&eng, &dir, options);
        run_script(&service, &mut Rng(0xF5F5 ^ fsync_tag(fsync)), 10);
        let pre_version = service.version();
        let stats = service.journal_stats().unwrap();
        if ack_durable {
            assert!(stats.syncs >= 1, "ack-durable must sync: {stats:?}");
        }
        if matches!(fsync, FsyncPolicy::Never) && !ack_durable {
            assert_eq!(stats.syncs, 0, "{stats:?}");
        }
        drop(service);

        let recovered = Service::recover(&eng, &dir, ServiceOptions::default(), options).unwrap();
        assert_eq!(recovered.version(), pre_version, "policy {label}");
        let changelog = recovered.changelog().unwrap();
        assert_head_matches_cold(&eng, &recovered, &changelog);
        let _ = std::fs::remove_dir_all(&dir);
    }
}

fn fsync_tag(policy: FsyncPolicy) -> u64 {
    match policy {
        FsyncPolicy::Always => 1,
        FsyncPolicy::EveryN(n) => 100 + n as u64,
        FsyncPolicy::Never => 2,
    }
}

/// `Journal::exists` drives the CLI's fresh-vs-recover branch; creating
/// over an existing journal is refused.
#[test]
fn create_refuses_existing_journal_dir() {
    let eng = engine(SCC);
    let dir = temp_journal_dir("refuse");
    let service = fresh_service(&eng, &dir, JournalOptions::default());
    drop(service);
    assert!(Journal::exists(&dir));
    let session = eng.load(&base_src()).unwrap();
    match Service::with_journal(
        session,
        ServiceOptions::default(),
        &dir,
        JournalOptions::default(),
    ) {
        Err(Error::Journal(detail)) => assert!(detail.contains("already"), "{detail}"),
        Err(other) => panic!("wrong error: {other}"),
        Ok(_) => panic!("must refuse to overwrite an existing journal"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}
