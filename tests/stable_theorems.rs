//! The stable-model facts of Sections 2.4, 4 and 5:
//!
//! * `M` is stable ⇔ `M̃` is a fixpoint of the stability transformation
//!   `S̃_P` ⇔ `lfp(P^M) = M` (GL-reduct);
//! * every stable model contains the well-founded partial model;
//! * a total well-founded model is the unique stable model (not vice
//!   versa);
//! * the branch-and-propagate enumerator agrees with brute force.

use afp::core::{alternating_fixpoint, ops};
use afp::semantics::stable::{
    brute_force_stable, enumerate_stable, is_stable, reduct_least_model, EnumerateOptions,
};
use afp_datalog::bitset::AtomSet;
use afp_datalog::program::{GroundProgram, GroundProgramBuilder};
use proptest::prelude::*;

fn small_program_strategy() -> impl Strategy<Value = GroundProgram> {
    (1usize..=8).prop_flat_map(|n_atoms| {
        let rule = (
            0..n_atoms as u32,
            proptest::collection::vec(0..n_atoms as u32, 0..2),
            proptest::collection::vec(0..n_atoms as u32, 0..3),
        );
        proptest::collection::vec(rule, 0..12).prop_map(move |rules| {
            let mut b = GroundProgramBuilder::new();
            let atoms: Vec<_> = (0..n_atoms).map(|i| b.prop(&format!("a{i}"))).collect();
            for (head, pos, neg) in rules {
                b.rule(
                    atoms[head as usize],
                    pos.iter().map(|&i| atoms[i as usize]).collect(),
                    neg.iter().map(|&i| atoms[i as usize]).collect(),
                );
            }
            b.finish()
        })
    })
}

fn sorted(mut models: Vec<AtomSet>) -> Vec<Vec<u32>> {
    let mut v: Vec<Vec<u32>> = models
        .drain(..)
        .map(|m| m.iter().collect::<Vec<u32>>())
        .collect();
    v.sort();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn enumerator_agrees_with_brute_force(prog in small_program_strategy()) {
        let fast = enumerate_stable(&prog, &EnumerateOptions::default());
        prop_assert!(fast.complete);
        let slow = brute_force_stable(&prog);
        prop_assert_eq!(sorted(fast.models), sorted(slow));
    }

    #[test]
    fn stable_iff_s_tilde_fixpoint(prog in small_program_strategy()) {
        // For every candidate M ⊆ H: is_stable ⇔ S̃_P(M̃) = M̃.
        let n = prog.atom_count();
        prop_assume!(n <= 8);
        for mask in 0u64..(1 << n) {
            let m = AtomSet::from_iter(n, (0..n as u32).filter(|&i| mask & (1 << i) != 0));
            let m_tilde = m.complement();
            let fixpoint = ops::s_tilde(&prog, &m_tilde) == m_tilde;
            prop_assert_eq!(is_stable(&prog, &m), fixpoint);
            // And the literal GL-reduct agrees with the S_P shortcut.
            prop_assert_eq!(
                reduct_least_model(&prog, &m),
                ops::s_p(&prog, &m_tilde)
            );
        }
    }

    #[test]
    fn every_stable_model_contains_wfs(prog in small_program_strategy()) {
        let wfs = alternating_fixpoint(&prog);
        for m in brute_force_stable(&prog) {
            prop_assert!(wfs.model.pos.is_subset(&m), "WFS⁺ ⊆ M");
            prop_assert!(wfs.model.neg.is_disjoint(&m), "WFS⁻ ∩ M = ∅");
            // Every stable model is a fixpoint of A_P (Section 5).
            let m_tilde = m.complement();
            prop_assert_eq!(ops::a_p(&prog, &m_tilde), m_tilde);
        }
    }

    #[test]
    fn total_wfs_is_unique_stable(prog in small_program_strategy()) {
        let wfs = alternating_fixpoint(&prog);
        if wfs.is_total {
            let models = brute_force_stable(&prog);
            prop_assert_eq!(models.len(), 1);
            prop_assert_eq!(&models[0], &wfs.model.pos);
        }
    }

    #[test]
    fn wfs_undecided_on_no_stable_programs_is_fine(prog in small_program_strategy()) {
        // Programs without stable models still have a WFS (total or not);
        // just assert the computation terminates and is a partial model.
        let wfs = alternating_fixpoint(&prog);
        prop_assert!(wfs.model.is_partial_model(&prog));
    }

    #[test]
    fn splitting_through_the_residual(prog in small_program_strategy()) {
        // stable(P) = { WFS⁺ ∪ S : S ∈ stable(residual(P, WFS)) }.
        use afp::semantics::{lift_residual_model, residual_program};
        let wfs = alternating_fixpoint(&prog);
        let res = residual_program(&prog, &wfs.model);
        let direct = sorted(brute_force_stable(&prog));
        let lifted = sorted(
            brute_force_stable(&res)
                .iter()
                .map(|s| lift_residual_model(&prog, &wfs.model, &res, s))
                .collect(),
        );
        prop_assert_eq!(direct, lifted);
    }
}

#[test]
fn unique_stable_without_total_wfs() {
    // The "not vice versa" of Section 2.4.
    let g = afp_datalog::parse_ground("p :- not p. p :- not q. q :- not p.");
    let wfs = alternating_fixpoint(&g);
    assert!(!wfs.is_total);
    let models = brute_force_stable(&g);
    assert_eq!(models.len(), 1);
}

#[test]
fn enumerator_respects_limits_without_lying() {
    let g = afp_datalog::parse_ground(
        "a :- not b. b :- not a. c :- not d. d :- not c. e :- not f. f :- not e.",
    );
    let full = enumerate_stable(&g, &EnumerateOptions::default());
    assert!(full.complete);
    assert_eq!(full.models.len(), 8);
    let capped = enumerate_stable(
        &g,
        &EnumerateOptions {
            max_models: 3,
            max_nodes: usize::MAX,
        },
    );
    assert_eq!(capped.models.len(), 3);
    let starved = enumerate_stable(
        &g,
        &EnumerateOptions {
            max_models: usize::MAX,
            max_nodes: 2,
        },
    );
    assert!(!starved.complete);
}
