//! Acceptance tests for incremental rule deltas and the warm-state
//! correctness fixes that ride along:
//!
//! * differential: random scripts interleaving rule asserts/retracts with
//!   fact deltas must agree with a fresh `Engine::load` of the final
//!   program, under both `WfStrategy::SccStratified` and
//!   `WfStrategy::Global` — including `win/move`-style odd loops
//!   introduced by an asserted rule;
//! * a rule assert on a k-knot chain re-solves without a cold re-ground
//!   (`SessionStats::regrounds` unchanged, components reused);
//! * envelope enlargement by an asserted rule resurrects pruned negative
//!   literals (in either order of rule vs fact arrival);
//! * active-domain rule retracts go cold only when the domain shrinks;
//! * regression: relevance-restricted solves no longer evict the
//!   memoized condensation;
//! * regression: a stable-model search budget yields a partial-but-sound
//!   model list with `complete == false`, never an error;
//! * regression: a double fault (grounding error during poison recovery)
//!   never lets a later solve trust a half-extended grounding.

use afp::datalog::GroundOptions;
use afp::{Engine, Error, SafetyPolicy, Semantics, Strategy, Truth, WfStrategy};
use afp_bench::gen::hard_knot_chain_src;

const SCC: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::SccStratified,
};
const GLOBAL: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::Global(Strategy::Naive),
};

/// Deterministic xorshift for update scripts.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

/// The rule pool for the differential scripts. `odd` is the
/// `win/move`-style odd loop: asserting it turns a decided program into
/// one with a genuinely three-valued well-founded model.
const RULE_POOL: &[&str] = &[
    "reach(X) :- move(n0, X).",
    "reach(X) :- move(Y, X), reach(Y).",
    "win(X) :- bonus(X).",
    "trapped(X) :- move(X, Y), not win(Y), not reach(Y).",
    "p :- not q.",
    "q :- not p.",
    "odd :- win(n0), not odd.",
];

const FACT_POOL: &[&str] = &[
    "move(n0, n1).",
    "move(n1, n2).",
    "move(n2, n0).",
    "move(n2, n3).",
    "move(n3, n4).",
    "bonus(n2).",
    "bonus(n4).",
];

const BASE_RULES: &str = "win(X) :- move(X, Y), not win(Y).\n";
const BASE_FACTS: &[&str] = &["move(n0, n1).", "move(n1, n2)."];

/// Probe atoms compared between the warm session and the cold reference.
fn probes() -> Vec<(String, Vec<String>)> {
    let mut out = vec![
        ("p".to_string(), vec![]),
        ("q".to_string(), vec![]),
        ("odd".to_string(), vec![]),
    ];
    for n in 0..5 {
        for pred in ["win", "reach", "trapped", "bonus"] {
            out.push((pred.to_string(), vec![format!("n{n}")]));
        }
    }
    out
}

fn assert_models_agree(warm: &afp::Model, cold: &afp::Model, context: &str) {
    for (pred, args) in probes() {
        let refs: Vec<&str> = args.iter().map(String::as_str).collect();
        assert_eq!(
            warm.truth(&pred, &refs),
            cold.truth(&pred, &refs),
            "{pred}({args:?}) diverged {context}"
        );
    }
}

/// The differential suite: random interleavings of rule and fact deltas
/// against a fresh load of the final program, under both strategies.
#[test]
fn random_rule_and_fact_scripts_match_fresh_load() {
    let engine = Engine::default();
    for seed in 1..10u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1);
        let mut live_rules: Vec<&str> = Vec::new();
        let mut live_facts: Vec<&str> = BASE_FACTS.to_vec();
        let base_src = format!("{BASE_RULES}{}\n", BASE_FACTS.join(" "));
        let mut session = engine.load(&base_src).unwrap();
        session.solve().unwrap();
        for step in 0..16 {
            match rng.next() % 4 {
                0 => {
                    let rule = RULE_POOL[(rng.next() % RULE_POOL.len() as u64) as usize];
                    session.assert_rules(rule).unwrap();
                    if !live_rules.contains(&rule) {
                        live_rules.push(rule);
                    }
                }
                1 => {
                    if !live_rules.is_empty() {
                        let rule = live_rules[(rng.next() % live_rules.len() as u64) as usize];
                        session.retract_rules(rule).unwrap();
                        live_rules.retain(|&r| r != rule);
                    }
                }
                2 => {
                    let fact = FACT_POOL[(rng.next() % FACT_POOL.len() as u64) as usize];
                    session.assert_facts(fact).unwrap();
                    if !live_facts.contains(&fact) {
                        live_facts.push(fact);
                    }
                }
                _ => {
                    if !live_facts.is_empty() {
                        let fact = live_facts[(rng.next() % live_facts.len() as u64) as usize];
                        session.retract_facts(fact).unwrap();
                        live_facts.retain(|&f| f != fact);
                    }
                }
            }
            // Warm solve (occasionally under the global strategy) versus
            // a fresh load of the final program text.
            let warm = if step % 5 == 4 {
                session.solve_with(GLOBAL).unwrap()
            } else {
                session.solve_with(SCC).unwrap()
            };
            let mut cold_src = String::from(BASE_RULES);
            for r in &live_rules {
                cold_src.push_str(r);
                cold_src.push('\n');
            }
            for f in &live_facts {
                cold_src.push_str(f);
                cold_src.push('\n');
            }
            let cold = engine.solve(&cold_src).unwrap();
            assert_models_agree(&warm, &cold, &format!("at seed {seed} step {step}"));
        }
        assert_eq!(
            session.stats().regrounds,
            0,
            "every rule/fact delta in the pool stays warm (seed {seed})"
        );
    }
}

/// Acceptance: a rule assert into a k-knot chain re-solves warm —
/// `regrounds` unchanged, components outside the new rule's cone copied —
/// and matches a fresh load of the extended program bit for bit (compared
/// as named true/undefined sets; extra never-derivable atoms retained by
/// the warm grounding are false on both sides).
#[test]
fn rule_assert_on_knot_chain_stays_warm_and_reuses_components() {
    let k = 32;
    let src = hard_knot_chain_src(k);
    let mut session = Engine::default().load(&src).unwrap();
    let cold_base = session.solve().unwrap();
    assert!(cold_base.is_total());
    let regrounds_before = session.stats().regrounds;

    session.assert_rules("q(K) :- a(K).").unwrap();
    let warm = session.solve().unwrap();
    assert_eq!(
        session.stats().regrounds,
        regrounds_before,
        "the rule assert must not fall back to a cold re-ground"
    );
    assert!(
        session.stats().last_components_reused > 0,
        "components outside the new rule's cone are copied"
    );
    assert_eq!(warm.truth("q", &[&format!("k{}", k - 1)]), Truth::True);

    let cold = Engine::default()
        .solve(&format!("{src}q(K) :- a(K).\n"))
        .unwrap();
    let mut warm_true: Vec<String> = warm.true_atoms().collect();
    let mut cold_true: Vec<String> = cold.true_atoms().collect();
    warm_true.sort();
    cold_true.sort();
    assert_eq!(warm_true, cold_true);
    let mut warm_undef: Vec<String> = warm.undefined_atoms().collect();
    let mut cold_undef: Vec<String> = cold.undefined_atoms().collect();
    warm_undef.sort();
    cold_undef.sort();
    assert_eq!(warm_undef, cold_undef);

    // Retract round-trips warm too, back to the base model.
    session.retract_rules("q(K) :- a(K).").unwrap();
    let back = session.solve().unwrap();
    assert_eq!(session.stats().regrounds, regrounds_before);
    assert_eq!(back.truth("q", &[&format!("k{}", k - 1)]), Truth::False);
    assert_eq!(back.truth("a", &["k0"]), Truth::True);
}

/// An asserted rule that enlarges the positive envelope must resurrect
/// the negative literals that were pruned while its head atoms were
/// underivable — in either arrival order of the rule and its feeding
/// fact.
#[test]
fn envelope_enlarging_rule_resurrects_pruned_negatives() {
    let base = "wins(X) :- move(X, Y), not wins(Y). move(b, c).";
    let engine = Engine::default();
    // wins(c) is underivable at load: `not wins(c)` was pruned, wins(b)
    // is (vacuously) true.
    for order in ["rule_then_fact", "fact_then_rule"] {
        let mut session = engine.load(base).unwrap();
        assert_eq!(session.solve().unwrap().truth("wins", &["b"]), Truth::True);
        if order == "rule_then_fact" {
            session.assert_rules("wins(X) :- bonus(X).").unwrap();
            session.assert_facts("bonus(c).").unwrap();
        } else {
            session.assert_facts("bonus(c).").unwrap();
            session.assert_rules("wins(X) :- bonus(X).").unwrap();
        }
        let warm = session.solve().unwrap();
        let cold = engine
            .solve("wins(X) :- move(X, Y), not wins(Y). move(b, c). wins(X) :- bonus(X). bonus(c).")
            .unwrap();
        for args in [["b"], ["c"]] {
            assert_eq!(
                warm.truth("wins", &args),
                cold.truth("wins", &args),
                "wins({args:?}) with {order}"
            );
        }
        assert_eq!(warm.truth("wins", &["c"]), Truth::True);
        assert_eq!(
            warm.truth("wins", &["b"]),
            Truth::False,
            "the resurrected `not wins(c)` must now block wins(b) ({order})"
        );
        assert_eq!(session.stats().regrounds, 0, "both orders stay warm");
    }
}

/// Under the active-domain policy, retracting a rule goes cold exactly
/// when its constants held some term's last domain references.
#[test]
fn active_domain_rule_retract_goes_cold_only_on_domain_shrink() {
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();

    // c pinned by the rule only: the retract must re-ground cold, and the
    // result must match a fresh load of the program without the rule.
    let mut session = engine.load("p(X) :- not q(X). ok :- p(c). r(d).").unwrap();
    session.solve().unwrap();
    session.retract_rules("ok :- p(c).").unwrap();
    assert_eq!(session.stats().regrounds, 1, "domain shrank: cold fallback");
    let after = session.solve().unwrap();
    let cold = engine.solve("p(X) :- not q(X). r(d).").unwrap();
    assert_eq!(after.truth("p", &["d"]), cold.truth("p", &["d"]));
    assert_eq!(after.truth("p", &["c"]), Truth::False, "c left the domain");

    // c also held by a fact: the same retract stays warm.
    let mut session = engine
        .load("p(X) :- not q(X). ok :- p(c). r(c). r(d).")
        .unwrap();
    session.solve().unwrap();
    session.retract_rules("ok :- p(c).").unwrap();
    assert_eq!(session.stats().regrounds, 0, "r(c) keeps c in the domain");
    let after = session.solve().unwrap();
    assert_eq!(after.truth("p", &["c"]), Truth::True);
    assert_eq!(after.truth("ok", &[]), Truth::False);
}

/// The first unsafe rule asserted into a previously-safe active-domain
/// program bootstraps the domain machinery through the (single) cold
/// fallback — and the session keeps working warm afterwards.
#[test]
fn first_unsafe_rule_bootstraps_active_domain_cold_then_stays_warm() {
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();
    let mut session = engine.load("p(X) :- e(X). e(a). e(b).").unwrap();
    session.solve().unwrap();
    session.assert_rules("q(X) :- not p(X).").unwrap();
    assert_eq!(
        session.stats().regrounds,
        1,
        "bootstrap is a cold re-ground"
    );
    let model = session.solve().unwrap();
    let cold = engine
        .solve("p(X) :- e(X). e(a). e(b). q(X) :- not p(X).")
        .unwrap();
    assert_eq!(model.truth("q", &["a"]), cold.truth("q", &["a"]));

    // With the machinery in place, the next unsafe rule stays warm.
    session.assert_rules("s(X) :- not q(X).").unwrap();
    assert_eq!(session.stats().regrounds, 1, "second unsafe rule is warm");
    let model = session.solve().unwrap();
    let cold = engine
        .solve("p(X) :- e(X). e(a). e(b). q(X) :- not p(X). s(X) :- not q(X).")
        .unwrap();
    assert_eq!(model.truth("s", &["a"]), cold.truth("s", &["a"]));
}

/// Rule deltas also work on grounder-less sessions (`load_ground`), for
/// ground rules; non-ground rules are rejected with a typed error.
#[test]
fn ground_sessions_take_ground_rule_deltas() {
    let ground = afp::datalog::parse_ground("a. b :- a, not c.");
    let mut session = Engine::default().load_ground(ground);
    assert_eq!(session.solve().unwrap().truth("b", &[]), Truth::True);

    session.assert_rules("c :- a.").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("c", &[]), Truth::True);
    assert_eq!(model.truth("b", &[]), Truth::False);

    session.retract_rules("c :- a.").unwrap();
    assert_eq!(session.solve().unwrap().truth("b", &[]), Truth::True);

    let err = session.assert_rules("d(X) :- e(X).").unwrap_err();
    assert!(matches!(err, Error::NotGroundRule(_)), "got {err:?}");
}

/// Regression (satellite): a relevance-restricted solve must not evict
/// the memoized condensation — one restricted query used to force a full
/// `Condensation::of` rebuild on the next unrestricted solve.
#[test]
fn restricted_solves_keep_the_memoized_condensation() {
    let mut session = Engine::default()
        .load("a :- not b. b :- not a. c. d :- c, not a.")
        .unwrap();
    session.solve().unwrap();
    assert_eq!(session.stats().condensation_builds, 1);

    // The restricted solve builds its own (restricted) condensation…
    let restricted = session.solve_restricted(["c"]).unwrap();
    assert_eq!(restricted.truth("c", &[]), Truth::True);
    assert_eq!(session.stats().condensation_builds, 2);

    // …and the next unrestricted solve reuses the cached one: the build
    // counter must not move (it used to).
    session.solve().unwrap();
    assert_eq!(
        session.stats().condensation_builds,
        2,
        "the unrestricted condensation survived the restricted solve"
    );

    // The restricted solve must not have corrupted warm state either.
    let model = session.solve().unwrap();
    assert_eq!(model.truth("d", &[]), Truth::Undefined);
}

/// Regression (satellite): a stable-model search budget yields the
/// models found so far (each genuinely stable) with `complete == false`,
/// not an error.
#[test]
fn stable_search_budget_yields_partial_but_sound_models() {
    // Four independent choice pairs: 16 stable models, a search tree far
    // larger than the budget.
    let src = "a :- not na. na :- not a. b :- not nb. nb :- not b.
               c :- not nc. nc :- not c. d :- not nd. nd :- not d.";
    let budgeted = Engine::builder()
        .stable_search_budget(3)
        .build()
        .load(src)
        .unwrap()
        .solve_with(Semantics::Stable {
            max_models: usize::MAX,
        })
        .unwrap();
    assert!(!budgeted.is_complete(), "the budget must trip");
    assert!(
        budgeted.stable_models().len() < 16,
        "partial enumeration only"
    );

    // Soundness: every model the truncated search returned is also found
    // by the unbudgeted enumeration.
    let full = Engine::default()
        .load(src)
        .unwrap()
        .solve_with(Semantics::Stable {
            max_models: usize::MAX,
        })
        .unwrap();
    assert!(full.is_complete());
    assert_eq!(full.stable_models().len(), 16);
    for m in budgeted.stable_models() {
        let names = budgeted.ground().set_to_names(m);
        assert!(
            full.stable_models()
                .iter()
                .any(|fm| full.ground().set_to_names(fm) == names),
            "truncated search returned a non-model: {names:?}"
        );
    }
}

/// Regression (satellite): double fault — the grounder is poisoned *and*
/// the recovery re-ground itself errors (injected: unreachable through
/// the public API, since a retained AST always re-grounds within the
/// budgets that admitted it). Every solve must surface the grounding
/// error rather than trust the half-extended program, and the session
/// must heal completely once re-grounding can succeed again.
#[test]
fn double_fault_budget_error_during_recovery_never_serves_poisoned_state() {
    let src = "p(X, Y) :- d(X), d(Y). d(a). d(b).";
    let engine = Engine::default();
    let mut session = engine.load(src).unwrap();
    let healthy = session.solve().unwrap();
    assert_eq!(healthy.truth("p", &["a", "b"]), Truth::True);

    // Fault injection: poison + a budget no re-ground of this AST fits.
    session.inject_grounder_fault_for_testing(GroundOptions {
        max_ground_rules: 2,
        ..Default::default()
    });
    let err = session.solve();
    assert!(
        matches!(err, Err(Error::Ground(_))),
        "recovery failed: the error surfaces instead of a poisoned solve"
    );
    // Still failing — the session must keep refusing, not wedge or panic.
    assert!(session.solve().is_err());
    // Updates while double-faulted go through the cold path and fail too;
    // the session state stays the last consistent one.
    assert!(session.assert_facts("d(c).").is_err());

    // Restore workable budgets: the next solve recovers from the retained
    // AST (which never saw the failed updates) and matches a fresh load.
    session.inject_grounder_fault_for_testing(GroundOptions::default());
    let after = session.solve().unwrap();
    let cold = engine.solve(src).unwrap();
    assert_eq!(after.partial_model(), cold.partial_model());
    assert!(session.stats().regrounds >= 1);

    // And the session is fully functional again.
    session.assert_facts("d(c).").unwrap();
    let extended = session.solve().unwrap();
    assert_eq!(extended.truth("p", &["a", "c"]), Truth::True);
}

/// Rule deltas compose with warm fact deltas in a single session: the
/// mirrored AST keeps both kinds of edit, so a later cold fallback (here
/// forced by a domain shrink) sees the complete current program.
#[test]
fn cold_fallback_sees_warm_rule_and_fact_updates() {
    let engine = Engine::builder().safety(SafetyPolicy::ActiveDomain).build();
    let mut session = engine.load("p(X) :- not q(X). r(c). r(d). s(d).").unwrap();
    session.solve().unwrap();

    session.assert_rules("t(X) :- p(X), not s(X).").unwrap();
    session.assert_facts("r(e).").unwrap();
    // Retract d's last references: DomainShrunk → cold re-ground from the
    // mirrored AST, which must contain the rule and r(e).
    session.retract_facts("r(d). s(d).").unwrap();
    let after = session.solve().unwrap();
    let cold = engine
        .solve("p(X) :- not q(X). r(c). t(X) :- p(X), not s(X). r(e).")
        .unwrap();
    for c in ["c", "d", "e"] {
        assert_eq!(after.truth("t", &[c]), cold.truth("t", &[c]), "t({c})");
        assert_eq!(after.truth("p", &[c]), cold.truth("p", &[c]), "p({c})");
    }
    assert!(session.stats().regrounds >= 1, "the shrink went cold");
}

/// `odd :- win(n0), not odd.` — an asserted odd loop flips atoms to
/// undefined and retracting it restores the decided model, warm both
/// ways.
#[test]
fn asserted_odd_loop_round_trips_warm() {
    let engine = Engine::default();
    let base_src = format!("{BASE_RULES}{}\n", BASE_FACTS.join(" "));
    let mut session = engine.load(&base_src).unwrap();
    // win(n0): n0 → n1 → n2(sink): n1 wins, n0 loses.
    let before = session.solve().unwrap();
    assert_eq!(before.truth("win", &["n0"]), Truth::False);
    assert_eq!(before.truth("odd", &[]), Truth::False);

    session
        .assert_rules("odd :- not win(n0), not odd.")
        .unwrap();
    let with_loop = session.solve().unwrap();
    let cold = engine
        .solve(&format!("{base_src}odd :- not win(n0), not odd.\n"))
        .unwrap();
    assert_eq!(with_loop.truth("odd", &[]), cold.truth("odd", &[]));
    assert_eq!(
        with_loop.truth("odd", &[]),
        Truth::Undefined,
        "the odd loop is live (win(n0) is false) and undefined"
    );
    assert!(!with_loop.is_total());

    session
        .retract_rules("odd :- not win(n0), not odd.")
        .unwrap();
    let back = session.solve().unwrap();
    assert_eq!(back.truth("odd", &[]), Truth::False);
    assert_eq!(back.truth("win", &["n1"]), Truth::True);
    assert_eq!(session.stats().regrounds, 0, "both deltas stayed warm");
}
