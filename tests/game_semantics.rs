//! Example 5.2 end-to-end: on every graph, `wins(x)` is true / false /
//! undefined in the well-founded model exactly as position `x` is won /
//! lost / drawn under classical retrograde analysis. This pins the
//! semantics of the alternating fixpoint against an implementation that
//! shares no code with it.

use afp::core::alternating_fixpoint;
use afp::Truth;
use afp_bench::game::{solve, GameValue};
use afp_bench::gen::{self, node_name, Graph};
use proptest::prelude::*;

fn check(g: &Graph) -> Result<(), String> {
    let prog = gen::win_move_ground(g);
    let afp = alternating_fixpoint(&prog);
    let reference = solve(g);
    for (i, val) in reference.iter().enumerate() {
        let atom = prog
            .find_atom_by_name("w", &[&node_name(i as u32)])
            .ok_or_else(|| format!("atom w({i}) missing"))?;
        let truth = afp.model.truth(atom.0);
        let ok = matches!(
            (val, truth),
            (GameValue::Win, Truth::True)
                | (GameValue::Lose, Truth::False)
                | (GameValue::Draw, Truth::Undefined)
        );
        if !ok {
            return Err(format!(
                "node {i}: game says {val:?}, WFS says {truth:?} (graph {:?})",
                g.edges
            ));
        }
    }
    Ok(())
}

#[test]
fn structured_graphs() {
    for g in [
        Graph::path(1),
        Graph::path(2),
        Graph::path(9),
        Graph::path(10),
        Graph::cycle(3),
        Graph::cycle(8),
        Graph {
            n: 0,
            edges: vec![],
        },
        Graph {
            n: 4,
            edges: vec![(0, 1), (1, 0), (1, 2), (2, 3)],
        },
    ] {
        check(&g).unwrap();
    }
}

#[test]
fn through_the_grounder_too() {
    // Same theorem, but through parse → ground (move as EDB).
    let g = Graph::random(30, 0.08, 77);
    let ast = gen::win_move_ast(&g);
    let ground = afp_datalog::ground(&ast).unwrap();
    let afp = alternating_fixpoint(&ground);
    let reference = solve(&g);
    for (i, val) in reference.iter().enumerate() {
        let name = node_name(i as u32);
        let truth = match ground.find_atom_by_name("wins", &[&name]) {
            Some(id) => afp.model.truth(id.0),
            // Pruned by the grounder ⇒ no derivation ⇒ false.
            None => Truth::False,
        };
        let ok = matches!(
            (val, truth),
            (GameValue::Win, Truth::True)
                | (GameValue::Lose, Truth::False)
                | (GameValue::Draw, Truth::Undefined)
        );
        assert!(ok, "node {i}: game {val:?} vs WFS {truth:?}");
    }
}

/// Arbitrary graph strategy.
fn graph_strategy() -> impl Strategy<Value = Graph> {
    (1usize..=24).prop_flat_map(|n| {
        proptest::collection::vec((0..n as u32, 0..n as u32), 0..(3 * n)).prop_map(
            move |mut edges| {
                edges.retain(|(u, v)| u != v);
                edges.sort_unstable();
                edges.dedup();
                Graph { n, edges }
            },
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn wfs_solves_the_game(g in graph_strategy()) {
        if let Err(msg) = check(&g) {
            prop_assert!(false, "{}", msg);
        }
    }
}
