//! Concurrent differential acceptance suite for `afp::service`.
//!
//! The contract under test: **every versioned snapshot a reader can pin
//! is bit-identical to a fresh cold `Engine::load` solve of that exact
//! program version**, no matter how reader queries interleave with
//! writer deltas, under both well-founded strategies. The scaffolding
//! (deterministic xorshift scripts, rule/fact pools, probe-atom digests)
//! mirrors `tests/rule_deltas.rs`; the service's changelog provides the
//! version → program-text mapping the cold side replays.
//!
//! Thread counts are bounded (4 readers / 4 writers) and every script is
//! seeded, so the suite is CI-deterministic in its *verdicts* — the
//! interleavings vary run to run, the checked property must not.

use afp::{Engine, Semantics, Strategy, Truth, WfStrategy};
use std::sync::atomic::{AtomicBool, Ordering};
use std::thread;

const SCC: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::SccStratified,
};
const GLOBAL: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::Global(Strategy::Naive),
};

/// Deterministic xorshift for update scripts.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

const RULE_POOL: &[&str] = &[
    "reach(X) :- move(n0, X).",
    "reach(X) :- move(Y, X), reach(Y).",
    "win(X) :- bonus(X).",
    "trapped(X) :- move(X, Y), not win(Y), not reach(Y).",
    "p :- not q.",
    "q :- not p.",
    "odd :- win(n0), not odd.",
];

const FACT_POOL: &[&str] = &[
    "move(n0, n1).",
    "move(n1, n2).",
    "move(n2, n0).",
    "move(n2, n3).",
    "move(n3, n4).",
    "bonus(n2).",
    "bonus(n4).",
];

const BASE_RULES: &str = "win(X) :- move(X, Y), not win(Y).\n";
const BASE_FACTS: &[&str] = &["move(n0, n1).", "move(n1, n2)."];

fn base_src() -> String {
    format!("{BASE_RULES}{}\n", BASE_FACTS.join(" "))
}

/// Probe atoms whose truth values form a version's digest.
fn probes() -> Vec<(String, Vec<String>)> {
    let mut out = vec![
        ("p".to_string(), vec![]),
        ("q".to_string(), vec![]),
        ("odd".to_string(), vec![]),
    ];
    for n in 0..5 {
        for pred in ["win", "reach", "trapped", "bonus"] {
            out.push((pred.to_string(), vec![format!("n{n}")]));
        }
    }
    out
}

fn digest(model: &afp::Model) -> Vec<Truth> {
    probes()
        .iter()
        .map(|(pred, args)| {
            let refs: Vec<&str> = args.iter().map(String::as_str).collect();
            model.truth(pred, &refs)
        })
        .collect()
}

/// Rebuild the program text of `version` from the service changelog —
/// the base program plus every applied delta with version ≤ `version`,
/// replayed as set updates (each submitted text is one pool element, so
/// structural membership is exact).
fn reconstruct(changelog: &[afp::AppliedDelta], version: u64) -> String {
    let mut live_rules: Vec<&str> = Vec::new();
    let mut live_facts: Vec<&str> = BASE_FACTS.to_vec();
    for entry in changelog {
        if entry.version > version {
            break;
        }
        let text = entry.text.as_str();
        match entry.kind {
            afp::DeltaKind::AssertRules => {
                if !live_rules.contains(&text) {
                    live_rules.push(text);
                }
            }
            afp::DeltaKind::RetractRules => live_rules.retain(|&r| r != text),
            afp::DeltaKind::AssertFacts => {
                if !live_facts.contains(&text) {
                    live_facts.push(text);
                }
            }
            afp::DeltaKind::RetractFacts => live_facts.retain(|&f| f != text),
        }
    }
    let mut src = String::from(BASE_RULES);
    for r in &live_rules {
        src.push_str(r);
        src.push('\n');
    }
    for f in &live_facts {
        src.push_str(f);
        src.push('\n');
    }
    src
}

/// The flagship differential: 4 reader threads pin snapshots and record
/// `(version, digest)` observations while the writer replays a seeded
/// random fact+rule delta script; afterwards **every observation** must
/// equal a fresh cold solve of that version's reconstructed program.
/// Run under both strategies.
#[test]
fn concurrent_reads_match_cold_solves_of_their_version() {
    for (semantics, label) in [(SCC, "scc"), (GLOBAL, "global")] {
        let engine = Engine::builder().semantics(semantics).build();
        let service = afp::Service::new(engine.load(&base_src()).unwrap()).unwrap();
        let stop = AtomicBool::new(false);
        const STEPS: usize = 24;
        const READERS: usize = 4;

        let observations: Vec<Vec<(u64, Vec<Truth>)>> = thread::scope(|s| {
            let mut readers = Vec::new();
            for r in 0..READERS {
                let service = &service;
                let stop = &stop;
                readers.push(s.spawn(move || {
                    let mut seen = Vec::new();
                    while !stop.load(Ordering::Acquire) {
                        let snapshot = service.snapshot();
                        seen.push((snapshot.version(), digest(snapshot.model())));
                        // Half the readers also exercise the version
                        // cache and re-pin an older version mid-write.
                        if r % 2 == 0 {
                            if let Ok(old) =
                                service.at_version(snapshot.version().saturating_sub(1))
                            {
                                seen.push((old.version(), digest(old.model())));
                            }
                        }
                        thread::yield_now();
                    }
                    // One final read of the settled head.
                    let snapshot = service.snapshot();
                    seen.push((snapshot.version(), digest(snapshot.model())));
                    seen
                }));
            }

            // Writer: seeded random script, submitted sequentially so each
            // delta publishes its own version (coalescing is exercised by
            // the dedicated test below — here we want a deterministic
            // version ↦ program mapping to verify against).
            let mut rng = Rng(if label == "scc" { 0xDEC0DE } else { 0xC0FFEE });
            let mut live_rules: Vec<&str> = Vec::new();
            let mut live_facts: Vec<&str> = BASE_FACTS.to_vec();
            for _ in 0..STEPS {
                match rng.next() % 4 {
                    0 => {
                        let rule = RULE_POOL[(rng.next() % RULE_POOL.len() as u64) as usize];
                        service.assert_rules(rule).unwrap();
                        if !live_rules.contains(&rule) {
                            live_rules.push(rule);
                        }
                    }
                    1 => {
                        if let Some(&rule) = {
                            let len = live_rules.len();
                            (len > 0).then(|| &live_rules[(rng.next() % len as u64) as usize])
                        } {
                            service.retract_rules(rule).unwrap();
                            live_rules.retain(|&r| r != rule);
                        }
                    }
                    2 => {
                        let fact = FACT_POOL[(rng.next() % FACT_POOL.len() as u64) as usize];
                        service.assert_facts(fact).unwrap();
                        if !live_facts.contains(&fact) {
                            live_facts.push(fact);
                        }
                    }
                    _ => {
                        if let Some(&fact) = {
                            let len = live_facts.len();
                            (len > 0).then(|| &live_facts[(rng.next() % len as u64) as usize])
                        } {
                            service.retract_facts(fact).unwrap();
                            live_facts.retain(|&f| f != fact);
                        }
                    }
                }
                thread::yield_now();
            }
            stop.store(true, Ordering::Release);
            readers.into_iter().map(|h| h.join().unwrap()).collect()
        });

        // Cold-verify every distinct version any reader observed.
        let changelog = service.changelog().unwrap();
        let final_version = service.version();
        let mut cold_digests: Vec<Option<Vec<Truth>>> = vec![None; final_version as usize + 1];
        let mut checked = 0usize;
        for seen in &observations {
            for (version, observed) in seen {
                let slot = &mut cold_digests[*version as usize];
                if slot.is_none() {
                    let cold_src = reconstruct(&changelog, *version);
                    let cold = engine.solve(&cold_src).unwrap();
                    *slot = Some(digest(&cold));
                }
                assert_eq!(
                    observed,
                    slot.as_ref().unwrap(),
                    "snapshot of version {version} diverged from its cold solve ({label})"
                );
                checked += 1;
            }
        }
        assert!(checked > 0, "readers observed nothing ({label})");
        assert_eq!(
            service.session_stats().regrounds,
            0,
            "every pool delta stays warm ({label})"
        );
    }
}

/// Concurrent writers: all submissions succeed, write cycles never
/// exceed submissions (queued deltas coalesce into shared cycles), and
/// the final model equals a cold solve of the base plus all deltas —
/// submission order is immaterial because the deltas are disjoint
/// asserts.
#[test]
fn concurrent_writers_coalesce_into_batched_cycles() {
    const WRITERS: usize = 4;
    const PER_WRITER: usize = 8;
    let service = Engine::default().serve(&base_src()).unwrap();

    thread::scope(|s| {
        for w in 0..WRITERS {
            let service = &service;
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    // Disjoint facts: writer w hangs a chain off node w.
                    let fact = format!("move(n{w}, w{w}_{i}).");
                    let version = service.assert_facts(&fact).unwrap();
                    assert!(version > 0);
                }
            });
        }
    });

    let stats = service.stats();
    assert_eq!(stats.submissions, (WRITERS * PER_WRITER) as u64);
    assert_eq!(stats.rejected, 0);
    assert!(
        stats.write_cycles <= stats.submissions,
        "cycles {} > submissions {}",
        stats.write_cycles,
        stats.submissions
    );
    assert_eq!(
        stats.version, stats.write_cycles,
        "every cycle published exactly one version"
    );
    assert_eq!(service.changelog().unwrap().len(), WRITERS * PER_WRITER);

    // Final-state differential against the cold solve of everything.
    let mut cold_src = base_src();
    for entry in service.changelog().unwrap() {
        cold_src.push_str(&entry.text);
        cold_src.push('\n');
    }
    let cold = Engine::default().solve(&cold_src).unwrap();
    let head = service.snapshot();
    assert_eq!(digest(head.model()), digest(&cold));
    for w in 0..WRITERS {
        let arg = format!("w{w}_0");
        assert_eq!(
            head.truth("win", &[&format!("n{w}")]),
            cold.truth("win", &[&format!("n{w}")])
        );
        assert_eq!(head.truth("win", &[&arg]), Truth::False);
    }
}

/// A pinned snapshot is immutable while the writer churns: its digest
/// and its read-side subqueries keep answering for version 0.
#[test]
fn pinned_snapshots_are_immutable_under_writes() {
    let service = Engine::default().serve(&base_src()).unwrap();
    let pinned = service.snapshot();
    let baseline = digest(pinned.model());
    let cold_v0 = Engine::default().solve(&base_src()).unwrap();
    assert_eq!(baseline, digest(&cold_v0));

    thread::scope(|s| {
        let service = &service;
        let writer = s.spawn(move || {
            for fact in FACT_POOL {
                service.assert_facts(fact).unwrap();
            }
            for rule in RULE_POOL {
                service.assert_rules(rule).unwrap();
            }
        });
        // Reader re-checks the pinned version while the writer runs.
        let pinned = &pinned;
        let baseline = &baseline;
        s.spawn(move || {
            for _ in 0..50 {
                assert_eq!(&digest(pinned.model()), baseline, "pin drifted");
                let sub = pinned.subquery(["win(n1)"]).unwrap();
                assert_eq!(
                    sub.truth("win", &["n1"]),
                    Truth::True,
                    "version-0 cone: n1 → n2 (sink), so n1 wins"
                );
                thread::yield_now();
            }
        });
        writer.join().unwrap();
    });

    // The head moved on; the pin did not.
    assert_eq!(
        service.version(),
        (FACT_POOL.len() + RULE_POOL.len()) as u64
    );
    assert_eq!(pinned.version(), 0);
    assert_eq!(digest(pinned.model()), baseline);
}

/// Warm-path accounting across the service: repeated reads of an
/// unchanged version are served from the session memo (pointer copies),
/// and a failed delta neither publishes nor disturbs the memo.
#[test]
fn service_read_path_rides_the_session_memo() {
    let service = Engine::default().serve(&base_src()).unwrap();
    service.assert_facts("move(n2, n3).").unwrap();
    let before = service.session_stats();

    // Reads do not touch the session at all.
    for _ in 0..10 {
        let snapshot = service.snapshot();
        assert_eq!(snapshot.version(), 1);
    }
    let after = service.session_stats();
    assert_eq!(before, after, "reads must not reach the writer session");

    // A rejected delta leaves version and memo untouched.
    assert!(service.assert_facts("win(X) :- p.").is_err());
    assert_eq!(service.version(), 1);
    assert_eq!(service.stats().rejected, 1);
}

/// Review regression: a semantically invalid delta (valid text, unsafe
/// rule) that lands in the same coalesced cycle as valid deltas must
/// fail **alone** — its cycle-mates' deltas apply and publish.
#[test]
fn invalid_delta_does_not_fail_its_cycle_mates() {
    use std::sync::Barrier;
    let service = Engine::default().serve(&base_src()).unwrap();
    // Hold the leader role with a long-running first submission? Not
    // needed: drive contention with a barrier so several submissions
    // race into shared cycles, some of them unsafe.
    let barrier = Barrier::new(3);
    let (good1, bad, good2) = thread::scope(|s| {
        let b = &barrier;
        let service = &service;
        let good1 = s.spawn(move || {
            b.wait();
            service.assert_rules("reach(X) :- move(n0, X).")
        });
        let bad = s.spawn(move || {
            b.wait();
            service.assert_rules("r(X) :- not s(X).") // unsafe: passes parse
        });
        let good2 = s.spawn(move || {
            b.wait();
            service.assert_facts("move(n2, n3).")
        });
        (
            good1.join().unwrap(),
            bad.join().unwrap(),
            good2.join().unwrap(),
        )
    });
    assert!(matches!(bad, Err(afp::Error::Ground(_))), "{bad:?}");
    let v1 = good1.expect("valid rule must apply despite the unsafe cycle-mate");
    let v2 = good2.expect("valid fact must apply despite the unsafe cycle-mate");
    let head = service.snapshot();
    assert!(head.version() >= v1.max(v2));
    assert_eq!(head.truth("reach", &["n1"]), Truth::True);
    assert_eq!(head.truth("move", &["n2", "n3"]), Truth::True);
    // The changelog records exactly the two applied deltas.
    assert_eq!(service.changelog().unwrap().len(), 2);
    // And the differential still holds for the final version.
    let cold = Engine::default()
        .solve(&reconstruct(&service.changelog().unwrap(), head.version()))
        .unwrap();
    assert_eq!(digest(head.model()), digest(&cold));
}

/// Review regression: a delta that applies but whose cycle's *solve*
/// fails (no perfect model) is retained in the writer and must be
/// attributed, in the changelog, to the next version that does solve —
/// so changelog reconstruction stays exact.
#[test]
fn solve_failure_retains_deltas_and_attributes_them_to_the_next_version() {
    let engine = Engine::builder().semantics(Semantics::Perfect).build();
    let service = afp::Service::new(engine.load("x.").unwrap()).unwrap();

    // The odd loop has no perfect model: apply succeeds, solve fails,
    // nothing publishes.
    let err = service.assert_rules("a :- not b. b :- not a.").unwrap_err();
    assert!(matches!(err, afp::Error::NotLocallyStratified), "{err:?}");
    assert_eq!(service.version(), 0);
    assert!(
        service.changelog().unwrap().is_empty(),
        "no published version yet"
    );

    // Retracting half the loop restores stratification: version 1 must
    // carry BOTH deltas in its changelog, because its snapshot includes
    // both.
    let v = service.retract_rules("b :- not a.").unwrap();
    assert_eq!(v, 1);
    let log = service.changelog().unwrap();
    assert_eq!(
        log.len(),
        2,
        "retained delta attributed on publish: {log:?}"
    );
    assert!(log.iter().all(|e| e.version == 1));
    let head = service.snapshot();
    assert_eq!(
        head.truth("a", &[]),
        Truth::True,
        "a :- not b. with b false"
    );

    // Cold differential over the reconstructed version-1 program.
    let cold = engine.solve("x. a :- not b.").unwrap();
    assert_eq!(head.truth("a", &[]), cold.truth("a", &[]));
    assert_eq!(head.truth("x", &[]), cold.truth("x", &[]));
}
