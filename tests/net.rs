//! Wire-level differential acceptance suite for `afp::net`.
//!
//! The contract under test extends `tests/service.rs` across the
//! network: **every model a client observes over the framed TCP or
//! unix-socket transport assigns every atom the same truth value as a
//! fresh cold `Engine::load` solve of that exact program version**, no
//! matter how N connections interleave reads and writes, under both
//! well-founded strategies. The service changelog provides the
//! version → program-text mapping the cold side replays, and
//! `codec::model_json` is the canonical rendering both sides share
//! (compared minus the false-set enumeration — see [`comparable`]).
//!
//! Alongside the differential, the backpressure contract is pinned at
//! the wire: a full queue answers with an `overloaded` error frame
//! immediately, a queued deadline expires into a `submit-timeout`
//! frame without applying, and drain-shutdown resolves every accepted
//! submission with its real result before the tier stops.

use afp::net::codec::{self, read_frame, write_frame, DEFAULT_MAX_FRAME_LEN};
use afp::{
    AsyncOptions, AsyncService, DeltaKind, Engine, NetOptions, NetServer, Semantics, Shutdown,
    Strategy, WfStrategy,
};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::thread;
use std::time::Duration;

const SCC: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::SccStratified,
};
const GLOBAL: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::Global(Strategy::Naive),
};

/// Deterministic xorshift for per-connection scripts.
struct Rng(u64);
impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

const BASE_RULES: &str = "win(X) :- move(X, Y), not win(Y).\n";
const BASE_FACTS: &[&str] = &["move(n0, n1).", "move(n1, n2)."];

fn base_src() -> String {
    format!("{BASE_RULES}{}\n", BASE_FACTS.join(" "))
}

/// Rules shared across versions; only connection 0 asserts/retracts
/// these, so its local ledger tracks their liveness exactly.
const RULE_POOL: &[&str] = &[
    "reach(X) :- move(n0, X).",
    "reach(X) :- move(Y, X), reach(Y).",
    "trapped(X) :- move(X, Y), not win(Y), not reach(Y).",
    "p :- not q.",
    "q :- not p.",
];

/// Facts namespaced by connection, so each connection's retracts only
/// ever touch facts it asserted itself — liveness stays exact under
/// arbitrary interleaving.
fn fact_pool(conn: usize) -> Vec<String> {
    vec![
        format!("move(n0, c{conn}a)."),
        format!("move(c{conn}a, c{conn}b)."),
        format!("move(c{conn}b, c{conn}c)."),
        format!("bonus(c{conn}a)."),
        format!("bonus(c{conn}c)."),
    ]
}

/// Rebuild the program text of `version` from the service changelog:
/// the base program plus every applied delta with version ≤ `version`,
/// replayed as set updates.
fn reconstruct(changelog: &[afp::AppliedDelta], version: u64) -> String {
    let mut live_rules: Vec<&str> = Vec::new();
    let mut live_facts: Vec<&str> = BASE_FACTS.to_vec();
    for entry in changelog {
        if entry.version > version {
            break;
        }
        let text = entry.text.as_str();
        match entry.kind {
            DeltaKind::AssertRules => {
                if !live_rules.contains(&text) {
                    live_rules.push(text);
                }
            }
            DeltaKind::RetractRules => live_rules.retain(|&r| r != text),
            DeltaKind::AssertFacts => {
                if !live_facts.contains(&text) {
                    live_facts.push(text);
                }
            }
            DeltaKind::RetractFacts => live_facts.retain(|&f| f != text),
        }
    }
    let mut src = String::from(BASE_RULES);
    for r in &live_rules {
        src.push_str(r);
        src.push('\n');
    }
    for f in &live_facts {
        src.push_str(f);
        src.push('\n');
    }
    src
}

trait Stream: Read + Write + Send {}
impl<T: Read + Write + Send> Stream for T {}

/// One request frame out, one response frame back.
fn send(conn: &mut dyn Stream, line: &str) -> String {
    write_frame(conn, line.as_bytes()).expect("request frame");
    let payload = read_frame(conn, DEFAULT_MAX_FRAME_LEN)
        .expect("transport intact")
        .expect("response frame");
    String::from_utf8(payload).expect("utf-8 response")
}

fn version_of(model_json: &str) -> u64 {
    let rest = model_json
        .strip_prefix("{\"version\":")
        .unwrap_or_else(|| panic!("not a model response: {model_json}"));
    rest[..rest.find(',').unwrap()].parse().unwrap()
}

/// Strip the `"false"` list from a model rendering before comparing.
/// A warm session keeps retracted facts' atoms in its Herbrand base
/// (as false) while a cold load never saw them — every *truth value*
/// agrees (closed world: absent = false) but the false-set enumeration
/// differs by construction. Version, semantics, totality, and the true
/// and undefined sets remain, which determine every atom's truth.
fn comparable(model_json: &str) -> String {
    let start = model_json.find(",\"false\":[").expect("false list");
    let end = start + model_json[start..].find(']').expect("list close") + 1;
    format!("{}{}", &model_json[..start], &model_json[end..])
}

/// The flagship wire differential: N client connections run seeded
/// mixed read/write scripts against one served program; every `model`
/// frame any client ever received must equal the canonical rendering of
/// a cold solve of that version's reconstructed program.
fn wire_differential(semantics: Semantics, label: &str, unix: bool) {
    let engine = Engine::builder().semantics(semantics).build();
    let service = afp::Service::new(engine.load(&base_src()).unwrap()).unwrap();
    let tier = Arc::new(AsyncService::new(service.clone(), AsyncOptions::default()));
    let socket_path =
        std::env::temp_dir().join(format!("afp-wire-{label}-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&socket_path);
    let server = if unix {
        NetServer::bind_unix(Arc::clone(&tier), &socket_path, NetOptions::default()).unwrap()
    } else {
        NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", NetOptions::default()).unwrap()
    };
    let addr = server.addr().to_string();

    const CONNS: usize = 3;
    const STEPS: usize = 16;
    let observations: Vec<Vec<String>> = thread::scope(|s| {
        let handles: Vec<_> = (0..CONNS)
            .map(|c| {
                let addr = &addr;
                s.spawn(move || {
                    let mut conn: Box<dyn Stream> = if unix {
                        Box::new(UnixStream::connect(addr).unwrap())
                    } else {
                        Box::new(TcpStream::connect(addr).unwrap())
                    };
                    let pool = fact_pool(c);
                    let mut rng = Rng(0x5EED ^ ((c as u64 + 1) << 32));
                    let mut live_facts: Vec<&str> = Vec::new();
                    let mut live_rules: Vec<&str> = Vec::new();
                    let mut seen = Vec::new();
                    for _ in 0..STEPS {
                        match rng.next() % 6 {
                            0 | 1 => {
                                let fact = pool[(rng.next() % pool.len() as u64) as usize].as_str();
                                let resp = send(&mut *conn, &format!("assert-facts {fact}"));
                                assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
                                if !live_facts.contains(&fact) {
                                    live_facts.push(fact);
                                }
                            }
                            2 => {
                                if let Some(&fact) = {
                                    let len = live_facts.len();
                                    (len > 0)
                                        .then(|| &live_facts[(rng.next() % len as u64) as usize])
                                } {
                                    let resp = send(&mut *conn, &format!("retract-facts {fact}"));
                                    assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
                                    live_facts.retain(|&f| f != fact);
                                }
                            }
                            3 if c == 0 => {
                                let rule =
                                    RULE_POOL[(rng.next() % RULE_POOL.len() as u64) as usize];
                                let resp = send(&mut *conn, &format!("assert {rule}"));
                                assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
                                if !live_rules.contains(&rule) {
                                    live_rules.push(rule);
                                }
                            }
                            4 if c == 0 => {
                                if let Some(&rule) = {
                                    let len = live_rules.len();
                                    (len > 0)
                                        .then(|| &live_rules[(rng.next() % len as u64) as usize])
                                } {
                                    let resp = send(&mut *conn, &format!("retract {rule}"));
                                    assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
                                    live_rules.retain(|&r| r != rule);
                                }
                            }
                            _ => seen.push(send(&mut *conn, "model")),
                        }
                    }
                    // One final read of the settled head, then a clean quit.
                    seen.push(send(&mut *conn, "model"));
                    write_frame(&mut *conn, b"quit").unwrap();
                    seen
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Cold-verify every model frame any connection received.
    let changelog = service.changelog().unwrap();
    let mut cold: HashMap<u64, String> = HashMap::new();
    let mut checked = 0usize;
    for observed in observations.iter().flatten() {
        let version = version_of(observed);
        let expected = cold.entry(version).or_insert_with(|| {
            let cold_model = engine.solve(&reconstruct(&changelog, version)).unwrap();
            comparable(&codec::model_json(version, &cold_model))
        });
        assert_eq!(
            &comparable(observed),
            expected,
            "wire model of version {version} diverged from its cold solve ({label})"
        );
        checked += 1;
    }
    assert!(checked > 0, "connections observed nothing ({label})");

    let stats = server.stats();
    assert_eq!(stats.conns_accepted, CONNS as u64, "({label})");
    assert!(stats.frames_in >= stats.frames_out, "({label})");
    server.shutdown();
    tier.shutdown(Shutdown::Drain);
    let _ = std::fs::remove_file(&socket_path);
}

#[test]
fn tcp_models_match_cold_solves_of_their_version() {
    wire_differential(SCC, "tcp-scc", false);
    wire_differential(GLOBAL, "tcp-global", false);
}

#[test]
fn unix_models_match_cold_solves_of_their_version() {
    wire_differential(SCC, "unix-scc", true);
    wire_differential(GLOBAL, "unix-global", true);
}

const SERVE_SRC: &str = "wins(X) :- move(X, Y), not wins(Y). move(a, b). move(b, a). move(b, c).";

fn tier_with(options: AsyncOptions) -> (afp::Service, Arc<AsyncService>, NetServer) {
    let service = Engine::default().serve(SERVE_SRC).unwrap();
    let tier = Arc::new(AsyncService::new(service.clone(), options));
    let server =
        NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", NetOptions::default()).unwrap();
    (service, tier, server)
}

/// Backpressure at the wire: a full queue answers `overloaded`
/// immediately — the client gets an error frame, not a stalled
/// connection — and the queued work still completes once the writer
/// catches up.
#[test]
fn wire_overload_rejection_is_immediate_and_structured() {
    let (_service, tier, server) = tier_with(AsyncOptions {
        queue_depth: 1,
        submit_deadline: None,
    });
    let mut conn = TcpStream::connect(server.addr()).unwrap();

    tier.hold_writer(true);
    let queued = tier.submit(DeltaKind::AssertFacts, "move(c, d).").unwrap();
    let resp = send(&mut conn, "assert-facts move(d, e).");
    assert!(
        resp.starts_with("{\"error\":{\"kind\":\"overloaded\""),
        "{resp}"
    );
    tier.hold_writer(false);
    assert_eq!(
        queued.wait().unwrap(),
        1,
        "held work completes after release"
    );

    // The connection survived the rejection and the tier still accepts.
    let resp = send(&mut conn, "assert-facts move(d, e).");
    assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
    assert!(tier.stats().overloaded >= 1);
    server.shutdown();
    tier.shutdown(Shutdown::Drain);
}

/// A queued submission's deadline fires while it waits: the client gets
/// a `submit-timeout` error frame and the delta is never applied.
#[test]
fn wire_submission_deadline_expires_without_applying() {
    let (service, tier, server) = tier_with(AsyncOptions {
        queue_depth: 8,
        submit_deadline: Some(Duration::from_millis(25)),
    });
    let mut conn = TcpStream::connect(server.addr()).unwrap();

    tier.hold_writer(true);
    write_frame(&mut conn, b"assert-facts move(c, d).").unwrap();
    thread::sleep(Duration::from_millis(80));
    tier.hold_writer(false);
    let resp = String::from_utf8(
        read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("timeout frame"),
    )
    .unwrap();
    assert!(
        resp.starts_with("{\"error\":{\"kind\":\"submit-timeout\""),
        "{resp}"
    );
    assert_eq!(service.version(), 0, "expired delta never applied");
    assert!(tier.stats().timed_out >= 1);
    server.shutdown();
    tier.shutdown(Shutdown::Drain);
}

/// Drain shutdown with a wire submission in flight: the accepted delta
/// runs to completion and its client receives the real result; later
/// submissions get `service-stopped`.
#[test]
fn wire_drain_shutdown_resolves_accepted_work() {
    let (service, tier, server) = tier_with(AsyncOptions::default());
    let mut conn = TcpStream::connect(server.addr()).unwrap();

    tier.hold_writer(true);
    write_frame(&mut conn, b"assert-facts move(c, d).").unwrap();
    // Wait until the submission is actually queued (not just written to
    // the socket) so the drain provably covers it.
    while tier.stats().queue_depth == 0 {
        thread::yield_now();
    }
    tier.shutdown(Shutdown::Drain);
    let resp = String::from_utf8(
        read_frame(&mut conn, DEFAULT_MAX_FRAME_LEN)
            .unwrap()
            .expect("drained result frame"),
    )
    .unwrap();
    assert_eq!(
        resp, "{\"ok\":true,\"version\":1}",
        "drained work publishes"
    );
    assert_eq!(service.version(), 1);

    let resp = send(&mut conn, "assert-facts move(d, e).");
    assert!(
        resp.starts_with("{\"error\":{\"kind\":\"service-stopped\""),
        "{resp}"
    );
    server.shutdown();
}

/// The changelog crosses the wire: `log SINCE` returns exactly the
/// entries after the anchor, and reads behind the retention horizon
/// come back as structured `version-evicted` errors, not silently
/// truncated history.
#[test]
fn wire_changelog_and_eviction_are_structured() {
    let service = afp::Service::with_options(
        Engine::default().load(SERVE_SRC).unwrap(),
        afp::ServiceOptions {
            cache_capacity: 2,
            changelog_capacity: 2,
        },
    )
    .unwrap();
    let tier = Arc::new(AsyncService::new(service.clone(), AsyncOptions::default()));
    let server =
        NetServer::bind_tcp(Arc::clone(&tier), "127.0.0.1:0", NetOptions::default()).unwrap();
    let mut conn = TcpStream::connect(server.addr()).unwrap();

    for i in 0..4 {
        let resp = send(&mut conn, &format!("assert-facts move(x{i}, y{i})."));
        assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
    }
    // Versions 1..2 were evicted from the changelog (capacity 2).
    let resp = send(&mut conn, "log");
    assert!(
        resp.starts_with("{\"error\":{\"kind\":\"version-evicted\""),
        "{resp}"
    );
    let resp = send(&mut conn, "log 2");
    assert_eq!(
        resp,
        "{\"changelog\":[\
         {\"version\":3,\"kind\":\"assert-facts\",\"text\":\"move(x2, y2).\"},\
         {\"version\":4,\"kind\":\"assert-facts\",\"text\":\"move(x3, y3).\"}]}"
    );
    let resp = send(&mut conn, "at 1 wins(b)");
    assert!(
        resp.starts_with("{\"error\":{\"kind\":\"version-evicted\""),
        "{resp}"
    );
    server.shutdown();
    tier.shutdown(Shutdown::Drain);
}

/// `ping` is a readiness probe: it reports the current version plus
/// writer liveness over the wire, and liveness flips to `false` once
/// the tier stops — so a load balancer can tell a read-only survivor
/// from a fully live server.
#[test]
fn wire_ping_reports_version_and_writer_liveness() {
    let (_service, tier, server) = tier_with(AsyncOptions::default());
    let mut conn = TcpStream::connect(server.addr()).unwrap();

    let resp = send(&mut conn, "ping");
    assert!(
        resp.starts_with("{\"pong\":true,\"version\":0,\"writer_live\":true,\"uptime_ms\":"),
        "{resp}"
    );

    let resp = send(&mut conn, "assert-facts move(c, d).");
    assert!(resp.starts_with("{\"ok\":true,"), "{resp}");
    let resp = send(&mut conn, "ping");
    assert!(
        resp.starts_with("{\"pong\":true,\"version\":1,\"writer_live\":true,\"uptime_ms\":"),
        "{resp}"
    );

    // After the writer stops, reads (including ping) still answer, but
    // liveness is reported honestly.
    tier.shutdown(Shutdown::Drain);
    let resp = send(&mut conn, "ping");
    assert!(
        resp.starts_with("{\"pong\":true,\"version\":1,\"writer_live\":false,\"uptime_ms\":"),
        "{resp}"
    );
    server.shutdown();
}
