//! Acceptance tests for incremental condensation maintenance
//! (`Condensation::apply_delta`): warm re-solves must patch the memoized
//! SCC decomposition in O(|delta window|) instead of rebuilding it in
//! O(|program|), without ever diverging from a from-scratch build.
//!
//! * differential, condensation level: random rule add/remove scripts
//!   over random ground programs (both literal polarities, SCC merges
//!   *and* splits, odd loops through negation) — after every mutation
//!   the repaired condensation must describe the same decomposition as
//!   `Condensation::of` of the current program and pass the full
//!   structural audit (`is_consistent_with`);
//! * differential, session level: random fact+rule delta scripts under
//!   both `WfStrategy` variants agree with a fresh load at every step
//!   while `SessionStats::condensation_builds` stays at **1** — every
//!   later mutation is a repair, not a rebuild (in debug builds the
//!   session additionally asserts repair ≡ rebuild after every single
//!   mutation);
//! * per-component memoization survives repair: components outside a
//!   delta's cone are still copied verbatim after the condensation was
//!   patched (ids inside the window may be renumbered; reuse is keyed by
//!   atom id);
//! * the repair is delta-bounded: a 1-fact delta on a k-knot chain
//!   visits a small constant number of atoms, not Θ(k);
//! * the per-restriction condensation cache: repeated
//!   `solve_restricted` calls with the same query set hit the cache, and
//!   any mutation invalidates it.
//!
//! Component ids are an arbitrary topological labeling (Tarjan renumbers
//! freely), so "identical to a from-scratch build" means: identical atom
//! partition, identical per-component rule sets, and a topologically
//! valid order on both sides — which is what `same_decomposition` +
//! `is_consistent_with` check.

use afp::datalog::depgraph::{Condensation, CondensationDelta, RuleRename};
use afp::datalog::program::parse_ground;
use afp::datalog::{AtomId, GroundProgram, RuleId};
use afp::{Engine, Semantics, Strategy, Truth, WfStrategy};
use afp_bench::gen::hard_knot_chain_src;

const SCC: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::SccStratified,
};
const GLOBAL: Semantics = Semantics::WellFounded {
    strategy: WfStrategy::Global(Strategy::Naive),
};

/// Deterministic xorshift for mutation scripts.
struct Rng(u64);
impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1)
    }
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0
    }
}

fn assert_repaired(cond: &Condensation, prog: &GroundProgram, context: &str) {
    assert!(
        cond.is_consistent_with(prog),
        "structural audit failed {context}"
    );
    let fresh = Condensation::of(prog);
    assert!(
        cond.same_decomposition(&fresh),
        "repair diverged from the from-scratch build {context}"
    );
}

/// Remove a rule from `prog`, returning the delta bookkeeping the
/// condensation repair needs (the swap-remove rename, stamped with the
/// moved rule's head at event time).
fn remove_with_rename(prog: &mut GroundProgram, rid: RuleId) -> (AtomId, Vec<RuleRename>) {
    let head = prog.rule(rid).head;
    let mut renames = Vec::new();
    prog.remove_rule_logged(rid, &mut renames);
    (head, renames)
}

/// Condensation-level differential: random add/remove-rule scripts over
/// a seed program with knots, chains, and odd loops. Every mutation is
/// repaired and checked against a from-scratch build — merges (a new
/// edge closing a long cycle) and splits (removing it again) included.
#[test]
fn random_mutation_scripts_repair_exactly() {
    // Atoms a0..a9; the seed program mixes decided chains, a 2-knot, and
    // an odd loop, so windows cross components of every flavour.
    let seed_src = "a0. a1 :- a0. a2 :- a1, not a3. a3 :- not a2.
                    a4 :- a2. a5 :- not a5, a4. a6 :- a5. a7 :- a6. a8. a9 :- a8, not a0.";
    for seed in 1..12u64 {
        let mut rng = Rng::new(seed);
        let mut prog = parse_ground(seed_src);
        let mut cond = Condensation::of(&prog);
        let atoms: Vec<AtomId> = (0..10)
            .map(|i| prog.find_atom_by_name(&format!("a{i}"), &[]).unwrap())
            .collect();
        // Rules this script added, as (rid, head) — removal candidates.
        let mut added: Vec<RuleId> = Vec::new();
        for step in 0..40 {
            let context = format!("(seed {seed}, step {step})");
            if !rng.next().is_multiple_of(3) || added.is_empty() {
                // Add a random rule: random head, 0..3 body literals of
                // random polarity — long back-edges merge components.
                let head = atoms[(rng.next() % 10) as usize];
                let mut pos = Vec::new();
                let mut neg = Vec::new();
                let mut targets = Vec::new();
                for _ in 0..(rng.next() % 3) {
                    let b = atoms[(rng.next() % 10) as usize];
                    targets.push(b);
                    if rng.next().is_multiple_of(2) {
                        pos.push(b);
                    } else {
                        neg.push(b);
                    }
                }
                let rid = prog.push_rule(head, pos, neg);
                added.push(rid);
                cond.apply_delta(
                    &prog,
                    &CondensationDelta {
                        touched: &[head],
                        new_edge_targets: &targets,
                        renames: &[],
                    },
                );
            } else {
                // Remove one of the added rules (splits what its edge
                // merged). The swap-remove may rename another added rid.
                let ix = (rng.next() % added.len() as u64) as usize;
                let rid = added.swap_remove(ix);
                let (head, renames) = remove_with_rename(&mut prog, rid);
                for r in &renames {
                    for a in added.iter_mut() {
                        if *a == r.from {
                            *a = r.to;
                        }
                    }
                }
                cond.apply_delta(
                    &prog,
                    &CondensationDelta {
                        touched: &[head],
                        new_edge_targets: &[],
                        renames: &renames,
                    },
                );
            }
            assert_repaired(&cond, &prog, &context);
        }
    }
}

/// Merge a whole chain into one big SCC with a single back-edge, then
/// split it again — the window spans every chain component both times.
#[test]
fn chain_collapse_and_split() {
    let k = 24;
    let mut src = String::from("c0.\n");
    for i in 1..k {
        src.push_str(&format!("c{i} :- c{}.\n", i - 1));
    }
    let mut prog = parse_ground(&src);
    let mut cond = Condensation::of(&prog);
    assert_eq!(cond.len(), k);
    let first = prog.find_atom_by_name("c0", &[]).unwrap();
    let last = prog.find_atom_by_name(&format!("c{}", k - 1), &[]).unwrap();

    // Back-edge c0 :- not c{k-1}: everything merges into one odd knot.
    let rid = prog.push_rule(first, vec![], vec![last]);
    let stats = cond.apply_delta(
        &prog,
        &CondensationDelta {
            touched: &[first],
            new_edge_targets: &[last],
            renames: &[],
        },
    );
    assert_repaired(&cond, &prog, "(merge)");
    assert_eq!(cond.len(), 1);
    assert_eq!(cond.largest(), k);
    assert_eq!(stats.components_replaced, k);
    assert_eq!(stats.components_recomputed, 1);

    // Remove it: the knot splits back into k singletons.
    let (head, renames) = remove_with_rename(&mut prog, rid);
    let stats = cond.apply_delta(
        &prog,
        &CondensationDelta {
            touched: &[head],
            new_edge_targets: &[],
            renames: &renames,
        },
    );
    assert_repaired(&cond, &prog, "(split)");
    assert_eq!(cond.len(), k);
    assert_eq!(stats.components_recomputed, k);
}

/// Session-level differential under both strategies: random fact+rule
/// scripts agree with a fresh load at every step, and the SCC session
/// never rebuilds its condensation after the first solve.
#[test]
fn session_scripts_repair_instead_of_rebuilding() {
    const RULE_POOL: &[&str] = &[
        "reach(X) :- move(n0, X).",
        "reach(X) :- move(Y, X), reach(Y).",
        "win(X) :- bonus(X).",
        "p :- not q.",
        "q :- not p.",
        "odd :- win(n0), not odd.",
    ];
    const FACT_POOL: &[&str] = &[
        "move(n0, n1).",
        "move(n1, n2).",
        "move(n2, n0).",
        "move(n2, n3).",
        "move(n3, n4).",
        "bonus(n2).",
    ];
    let base = "win(X) :- move(X, Y), not win(Y).\nmove(n0, n1). move(n1, n2).\n";
    for strategy in [SCC, GLOBAL] {
        let engine = Engine::builder().semantics(strategy).build();
        for seed in 1..6u64 {
            let mut rng = Rng::new(seed);
            let mut live_rules: Vec<&str> = Vec::new();
            let mut live_facts: Vec<&str> = vec!["move(n0, n1).", "move(n1, n2)."];
            let mut session = engine.load(base).unwrap();
            session.solve().unwrap();
            for step in 0..14 {
                match rng.next() % 4 {
                    0 => {
                        let r = RULE_POOL[(rng.next() % RULE_POOL.len() as u64) as usize];
                        session.assert_rules(r).unwrap();
                        if !live_rules.contains(&r) {
                            live_rules.push(r);
                        }
                    }
                    1 => {
                        if let Some(&r) = live_rules.last() {
                            session.retract_rules(r).unwrap();
                            live_rules.pop();
                        }
                    }
                    2 => {
                        let f = FACT_POOL[(rng.next() % FACT_POOL.len() as u64) as usize];
                        session.assert_facts(f).unwrap();
                        if !live_facts.contains(&f) {
                            live_facts.push(f);
                        }
                    }
                    _ => {
                        if let Some(&f) = live_facts.last() {
                            session.retract_facts(f).unwrap();
                            live_facts.pop();
                        }
                    }
                }
                let warm = session.solve().unwrap();
                let cold_src = format!(
                    "win(X) :- move(X, Y), not win(Y).\n{}\n{}\n",
                    live_rules.join("\n"),
                    live_facts.join(" ")
                );
                let cold = engine.load(&cold_src).unwrap().solve().unwrap();
                for pred in ["p", "q", "odd"] {
                    assert_eq!(
                        warm.truth(pred, &[]),
                        cold.truth(pred, &[]),
                        "{pred} diverged (seed {seed}, step {step})"
                    );
                }
                for n in 0..5 {
                    for pred in ["win", "reach", "bonus"] {
                        let arg = format!("n{n}");
                        assert_eq!(
                            warm.truth(pred, &[&arg]),
                            cold.truth(pred, &[&arg]),
                            "{pred}({arg}) diverged (seed {seed}, step {step})"
                        );
                    }
                }
            }
            let stats = session.stats();
            assert_eq!(stats.regrounds, 0, "the whole script stays warm");
            match strategy {
                Semantics::WellFounded {
                    strategy: WfStrategy::SccStratified,
                } => {
                    assert_eq!(
                        stats.condensation_builds, 1,
                        "every mutation after the first solve is a repair (seed {seed})"
                    );
                    assert!(stats.condensation_repairs > 0);
                }
                _ => assert_eq!(
                    stats.condensation_builds, 0,
                    "the global strategy never condenses"
                ),
            }
        }
    }
}

/// Per-component memoization survives repair: after a 1-fact delta on a
/// knot chain, the repaired condensation still lets the warm solve copy
/// every component outside the delta's cone verbatim (reuse is keyed by
/// atom id, so the window's renumbering is irrelevant), and the repair
/// itself touches a small window, not the program.
#[test]
fn memoized_components_survive_repair_and_repair_is_delta_bounded() {
    let k = 128;
    let engine = Engine::default();
    let mut session = engine.load(&hard_knot_chain_src(k)).unwrap();
    session.solve().unwrap();
    assert_eq!(session.stats().condensation_builds, 1);

    let fact = format!("e(k{}).", k - 1);
    session.retract_facts(&fact).unwrap();
    session.solve().unwrap();
    session.assert_facts(&fact).unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("a", &[&format!("k{}", k - 1)]), Truth::True);

    let stats = session.stats();
    assert_eq!(stats.condensation_builds, 1, "repairs, not rebuilds");
    assert_eq!(stats.condensation_repairs, 2);
    let atoms = session.ground().atom_count();
    assert!(
        stats.last_repair_atoms * 10 < atoms,
        "a leaf delta's repair window ({} atoms) must stay under 10% of the program ({atoms} atoms)",
        stats.last_repair_atoms
    );
    assert!(
        stats.last_components_reused * 10 >= stats.last_components * 9,
        "at least 90% of components copied verbatim ({} of {})",
        stats.last_components_reused,
        stats.last_components
    );
}

/// Ground-rule deltas on a grounder-less session (`Engine::load_ground`)
/// go through the same repair path.
#[test]
fn load_ground_sessions_repair_too() {
    let engine = Engine::default();
    let mut session = engine.load_ground(parse_ground("p :- not q. q :- not p. r :- p. s."));
    session.solve().unwrap();
    assert_eq!(session.stats().condensation_builds, 1);

    session.assert_rules("p :- s, not r.").unwrap();
    let model = session.solve().unwrap();
    assert_eq!(model.truth("s", &[]), Truth::True);
    session.retract_rules("p :- s, not r.").unwrap();
    session.assert_facts("t.").unwrap(); // a brand-new atom
    let model = session.solve().unwrap();
    assert_eq!(model.truth("t", &[]), Truth::True);

    let stats = session.stats();
    assert_eq!(stats.condensation_builds, 1);
    assert_eq!(stats.condensation_repairs, 3);
}

/// The per-restriction condensation cache: the second restricted solve
/// of the same query set is a hit; a different query set misses; any
/// mutation invalidates.
#[test]
fn restricted_condensations_are_cached_per_query_set() {
    let engine = Engine::default();
    let mut session = engine
        .load("a :- not b. b :- not a. c. d :- c, not a. e :- d.")
        .unwrap();
    session.solve().unwrap();
    assert_eq!(session.stats().condensation_builds, 1);

    let m = session.solve_restricted(["d"]).unwrap();
    assert_eq!(m.truth("d", &[]), Truth::Undefined);
    assert_eq!(session.stats().condensation_builds, 2, "first: a miss");
    assert_eq!(session.stats().restricted_cond_hits, 0);

    let m = session.solve_restricted(["d"]).unwrap();
    assert_eq!(m.truth("d", &[]), Truth::Undefined);
    assert_eq!(session.stats().condensation_builds, 2, "second: a hit");
    assert_eq!(session.stats().restricted_cond_hits, 1);

    // A different restriction is its own entry.
    session.solve_restricted(["e"]).unwrap();
    assert_eq!(session.stats().condensation_builds, 3);
    session.solve_restricted(["e"]).unwrap();
    assert_eq!(session.stats().restricted_cond_hits, 2);

    // A mutation invalidates the cache but repairs the full-program memo.
    session.assert_facts("f.").unwrap();
    session.solve_restricted(["d"]).unwrap();
    assert_eq!(
        session.stats().condensation_builds,
        4,
        "the restriction cache was cleared by the mutation"
    );
    session.solve().unwrap();
    assert_eq!(
        session.stats().condensation_builds,
        4,
        "the full-program condensation was repaired, not rebuilt"
    );
    assert!(session.stats().condensation_repairs >= 1);

    // The restricted solves never corrupted the unrestricted model.
    let model = session.solve().unwrap();
    assert_eq!(model.truth("a", &[]), Truth::Undefined);
    assert_eq!(model.truth("c", &[]), Truth::True);
}
