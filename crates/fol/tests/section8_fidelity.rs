//! Fidelity tests for the subtle claims of Section 8.
//!
//! The sharpest one is the closing remark of Example 8.2: the **general**
//! alternating fixpoint of the FP system derives the negative `w` literals
//! (non-well-founded nodes come out *false*), while the **normal** program
//! obtained by elementary simplification leaves them *undefined* — the
//! alternating fixpoint on normal programs "captures the negation of
//! positive existential closures (such as transitive closure), but not the
//! negation of positive universal closures (such as well-foundedness)".
//! Only the positive parts agree (Theorem 8.7); the negative parts
//! genuinely differ, and this suite pins both directions.

use afp_datalog::ast::{Atom, Term};
use afp_fol::{afp_general, lloyd_topor, parse_general, Formula};

fn well_founded_nodes_system() -> afp_fol::GeneralProgram {
    parse_general(
        "w(X) <- node(X) & not exists Y (e(Y, X) & not w(Y)).
         node(a). node(b). node(c). node(d).
         e(a, b). e(b, a). e(a, c). e(d, c).",
    )
    .expect("parses")
}

#[test]
fn general_afp_falsifies_unfounded_nodes() {
    let y = well_founded_nodes_system();
    let r = afp_general(&y).expect("evaluates");
    let neg = r.ctx.set_to_names(&y, &r.model.neg);
    // a, b sit on the cycle; c is fed by both the cycle and the
    // well-founded d — still not well-founded.
    assert!(neg.contains(&"w(a)".to_string()));
    assert!(neg.contains(&"w(b)".to_string()));
    assert!(neg.contains(&"w(c)".to_string()));
    let pos = r.ctx.set_to_names(&y, &r.model.pos);
    assert!(pos.contains(&"w(d)".to_string()));
}

#[test]
fn normal_program_leaves_cycle_w_undefined() {
    let y = well_founded_nodes_system();
    let t = lloyd_topor(&y);
    let ground = afp_datalog::ground_with(
        &t.program,
        &afp_datalog::GroundOptions {
            safety: afp_datalog::SafetyPolicy::ActiveDomain,
            ..Default::default()
        },
    )
    .expect("grounds");
    let r = afp_core::alternating_fixpoint(&ground);
    // Positive parts agree (Theorem 8.7)…
    let pos: Vec<String> = ground
        .set_to_names(&r.model.pos)
        .into_iter()
        .filter(|n| n.starts_with("w("))
        .collect();
    assert_eq!(pos, vec!["w(d)".to_string()]);
    // …but the cycle nodes are *undefined*, not false.
    let undef: Vec<String> = ground
        .set_to_names(&r.undefined())
        .into_iter()
        .filter(|n| n.starts_with("w("))
        .collect();
    assert_eq!(
        undef,
        vec!["w(a)".to_string(), "w(b)".to_string(), "w(c)".to_string()],
        "normal-program AFP must NOT falsify the universal closure"
    );
    // And the paper's other remark: no positive literals for the aux
    // relation in the AFP model.
    let aux_name = t.program.symbols.name(t.aux[0].pred).to_string();
    let aux_pos = ground
        .set_to_names(&r.model.pos)
        .into_iter()
        .filter(|n| n.starts_with(&aux_name))
        .count();
    assert_eq!(aux_pos, 0);
}

#[test]
fn ntc_the_existential_closure_is_captured_by_normal_programs() {
    // Contrast: the *existential* closure (transitive closure) negates
    // fine in normal programs (Section 8.5's point that ntc is "expressed
    // naturally and concisely in AFP").
    let src = "
        tc(X, Y) :- e(X, Y).
        tc(X, Y) :- e(X, Z), tc(Z, Y).
        ntc(X, Y) :- node(X), node(Y), not tc(X, Y).
        node(a). node(b). node(c).
        e(a, b). e(b, a).
    ";
    let program = afp_datalog::parse_program(src).unwrap();
    let ground = afp_datalog::ground(&program).unwrap();
    let r = afp_core::alternating_fixpoint(&ground);
    assert!(r.is_total, "tc/ntc is decided everywhere");
    let ntc_ac = ground.find_atom_by_name("ntc", &["a", "c"]).unwrap();
    assert!(r.model.pos.contains(ntc_ac.0));
}

#[test]
fn general_afp_handles_unstratified_fo_bodies() {
    // A general program that is NOT an FP system: w occurs negatively at
    // the top level. fp_model refuses; afp_general computes the
    // three-valued answer.
    let y = parse_general(
        "p(X) <- node(X) & not q(X).
         q(X) <- node(X) & not p(X).
         node(a).",
    )
    .unwrap();
    assert!(afp_fol::fp_model(&y).is_err());
    let r = afp_general(&y).unwrap();
    let undef = r.model.undefined();
    // p(a), q(a) undefined.
    assert_eq!(
        r.ctx
            .set_to_names(&y, &undef)
            .iter()
            .filter(|n| n.starts_with("p(") || n.starts_with("q("))
            .count(),
        2
    );
}

#[test]
fn forall_in_head_position_polarity() {
    // ∀ at positive polarity creates a *negative* aux (∀ = ¬∃¬), and the
    // doubly-nested case flips back to positive — Definition 8.5 polarity
    // bookkeeping through two levels.
    let mut y = afp_fol::GeneralProgram::new();
    let p = y.symbols.intern("p");
    let e = y.symbols.intern("e");
    let x = y.symbols.intern("X");
    let yv = y.symbols.intern("Y");
    let z = y.symbols.intern("Z");
    // p(X) ← ∀Y [ ∃Z e(Y,Z) → e(X,Y) ]  ≡ ∀Y [ ¬∃Z e(Y,Z) ∨ e(X,Y) ]
    y.rules.push(afp_fol::GeneralRule {
        head: Atom::new(p, vec![Term::Var(x)]),
        body: Formula::forall(
            vec![yv],
            Formula::Or(vec![
                Formula::not(Formula::exists(
                    vec![z],
                    Formula::Atom(Atom::new(e, vec![Term::Var(yv), Term::Var(z)])),
                )),
                Formula::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(yv)])),
            ]),
        ),
    });
    let a = y.symbols.intern("a");
    let b = y.symbols.intern("b");
    y.facts
        .push(Atom::new(e, vec![Term::Const(a), Term::Const(b)]));
    let t = lloyd_topor(&y);
    // The outer ∀ gives one globally-negative aux. The inner ¬∃ sits
    // under that aux's negation, so EDNF's double-negation elimination
    // inlines it as a plain positive conjunct — no second aux.
    let negatives = t.aux.iter().filter(|a| !a.globally_positive).count();
    let positives = t.aux.iter().filter(|a| a.globally_positive).count();
    assert_eq!(negatives, 1);
    assert_eq!(positives, 0);
    // The aux rule body is e(Y,Z) ∧ ¬e(X,Y): one positive, one negative
    // literal.
    let aux_rule = t
        .program
        .rules
        .iter()
        .find(|r| r.head.pred == t.aux[0].pred)
        .expect("aux rule exists");
    assert_eq!(aux_rule.body.iter().filter(|l| l.positive).count(), 1);
    assert_eq!(aux_rule.body.iter().filter(|l| !l.positive).count(), 1);
    // "p covers every node that has successors": a→b means a must be
    // covered by X; only nodes X with e(X, a)… none. But b has no
    // successors, so only the e(X,Y) disjunct matters for Y=a.
    let (m, ctx) = afp_fol::fp_model(&y).expect("still an FP system");
    let names = ctx.set_to_names(&y, &m);
    // No node has an edge to a, so no p holds.
    assert!(!names.iter().any(|n| n.starts_with("p(")));
}

#[test]
fn definition_8_2_on_parsed_formulas() {
    // Example 8.1 through the parser: ψ = ¬¬∃X p(X) needs a positive
    // p literal; the inner ¬∃X p(X) needs all negative ones.
    let y = parse_general("holds <- not not exists X (p(X)). p(a). dm(b).").unwrap();
    let (m, ctx) = afp_fol::fp_model(&y).unwrap();
    let names = ctx.set_to_names(&y, &m);
    assert!(names.contains(&"holds".to_string()));
}
