//! EDNF rewriting and the Lloyd–Topor reduction to normal programs
//! (Section 8.3, Definition 8.4).
//!
//! A general rule body is rewritten into *existential disjunctive normal
//! form* (steps 1–4 of Section 8.3):
//!
//! 1. replace `∀X φ` by `¬∃X ¬φ`;
//! 2. push negations down to atoms or `∃`, eliminating `¬¬`;
//! 3. distribute `∧` over `∨`;
//! 4. push `∃` through `∨`.
//!
//! Negative existential subformulas are then *extracted* by elementary
//! simplification: `¬∃v̄ φ(ū,v̄)` is replaced by `¬q(ū)` for a fresh
//! auxiliary (ADB) relation `q` with the rule `q(ū) ← φ`, recursively,
//! until only normal rules remain. Each auxiliary relation is classified
//! globally positive or globally negative according to the polarity of the
//! subformula it replaces (Definition 8.5); the original IDB relations are
//! globally positive. Theorems 8.6/8.7 — the positive AFP model of the
//! original relations is preserved — are verified in this crate's tests
//! and the workspace integration tests.

use crate::formula::{Formula, GeneralProgram};
use afp_datalog::ast::{Atom, Literal, Program, Rule, Term};
use afp_datalog::depgraph::DepGraph;
use afp_datalog::fx::FxHashMap;
use afp_datalog::symbol::{Symbol, SymbolStore};

/// An auxiliary (ADB) predicate created by the reduction.
#[derive(Debug, Clone)]
pub struct AuxPred {
    /// The fresh predicate symbol.
    pub pred: Symbol,
    /// Global polarity class (Definition 8.5).
    pub globally_positive: bool,
    /// Display form of the subformula it replaced (diagnostics).
    pub replaced: String,
}

/// Result of the reduction.
#[derive(Debug, Clone)]
pub struct Transformed {
    /// The normal logic program (plus the original EDB facts).
    pub program: Program,
    /// The auxiliary predicates, in creation order.
    pub aux: Vec<AuxPred>,
    /// Global polarity class for every IDB and ADB predicate.
    pub classification: FxHashMap<Symbol, bool>,
}

/// Reduce a general program to a normal one by repeated elementary
/// simplification.
pub fn lloyd_topor(y: &GeneralProgram) -> Transformed {
    let mut out = Program {
        rules: Vec::new(),
        symbols: y.symbols.clone(),
    };
    let mut aux = Vec::new();
    let mut classification: FxHashMap<Symbol, bool> = FxHashMap::default();
    for p in y.idb_predicates() {
        classification.insert(p, true); // original IDB: globally positive
    }
    for f in &y.facts {
        out.rules.push(Rule::fact(f.clone()));
    }

    let mut counter = 0usize;
    // Worklist of (head, body, polarity of this rule's head class).
    let mut work: Vec<(Atom, Formula, bool)> = y
        .rules
        .iter()
        .map(|r| (r.head.clone(), r.body.clone(), true))
        .collect();

    while let Some((head, body, polarity)) = work.pop() {
        let body = standardize_apart(&body, &mut out.symbols, &mut counter);
        let disjuncts = ednf(&body, true);
        for conj in disjuncts {
            let mut lits = Vec::new();
            for item in conj {
                match item {
                    EItem::Lit(atom, positive) => lits.push(Literal { atom, positive }),
                    EItem::EqLit(l, r, positive) => {
                        // Clark equality: resolve syntactic (in)equality of
                        // ground terms now; variable equalities become a
                        // substitution constraint, which we encode by the
                        // special `$eq` predicate with reflexive facts over
                        // the active domain — but for fidelity and
                        // simplicity we only support ground or
                        // trivially-identical equalities here.
                        match (l, r) {
                            (l, r) if l == r => {
                                if !positive {
                                    lits.push(Literal {
                                        atom: Atom::prop(out.symbols.intern("$false")),
                                        positive: true,
                                    });
                                }
                            }
                            (Term::Const(a), Term::Const(b)) => {
                                let truth = a == b;
                                if truth != positive {
                                    lits.push(Literal {
                                        atom: Atom::prop(out.symbols.intern("$false")),
                                        positive: true,
                                    });
                                }
                            }
                            (l, r) => {
                                // Variable (in)equality: encode via $eq.
                                let eq = out.symbols.intern("$eq");
                                lits.push(Literal {
                                    atom: Atom::new(eq, vec![l, r]),
                                    positive,
                                });
                            }
                        }
                    }
                    EItem::NegExists(vars, inner) => {
                        // Elementary simplification: fresh q(ū) ← inner.
                        let mut free = inner.free_vars();
                        free.retain(|v| !vars.contains(v));
                        let qname = format!("adb{}", aux.len() + 1);
                        let q = out.symbols.intern_fresh(&qname);
                        let q_polarity = !polarity;
                        classification.insert(q, q_polarity);
                        aux.push(AuxPred {
                            pred: q,
                            globally_positive: q_polarity,
                            replaced: Formula::exists(vars.clone(), inner.clone())
                                .display(&out.symbols),
                        });
                        let args: Vec<Term> = free.iter().map(|&v| Term::Var(v)).collect();
                        let q_head = Atom::new(q, args.clone());
                        work.push((q_head, inner, q_polarity));
                        lits.push(Literal {
                            atom: Atom::new(q, args),
                            positive: false,
                        });
                    }
                }
            }
            // A conjunct containing the unsatisfiable marker is dropped.
            let false_marker = out.symbols.get("$false");
            if lits
                .iter()
                .any(|l| Some(l.atom.pred) == false_marker && l.positive)
            {
                continue;
            }
            out.rules.push(Rule::new(head.clone(), lits));
        }
    }
    // Variable equalities were encoded with `$eq`; give it its reflexive
    // extension over the active domain so the encoding is self-contained.
    if let Some(eq) = out.symbols.get("$eq") {
        let mut consts: Vec<Symbol> = Vec::new();
        for f in &y.facts {
            collect_atom_consts(f, &mut consts);
        }
        for r in &y.rules {
            collect_formula_consts(&r.body, &mut consts);
            collect_atom_consts(&r.head, &mut consts);
        }
        consts.sort_unstable();
        consts.dedup();
        for c in consts {
            out.rules.push(Rule::fact(Atom::new(
                eq,
                vec![Term::Const(c), Term::Const(c)],
            )));
        }
    }
    Transformed {
        program: out,
        aux,
        classification,
    }
}

fn collect_term_consts(t: &Term, out: &mut Vec<Symbol>) {
    match t {
        Term::Const(c) => out.push(*c),
        Term::App(_, args) => {
            for a in args {
                collect_term_consts(a, out);
            }
        }
        Term::Var(_) => {}
    }
}

fn collect_atom_consts(a: &Atom, out: &mut Vec<Symbol>) {
    for t in &a.args {
        collect_term_consts(t, out);
    }
}

fn collect_formula_consts(f: &Formula, out: &mut Vec<Symbol>) {
    match f {
        Formula::Atom(a) => collect_atom_consts(a, out),
        Formula::Eq(l, r) => {
            collect_term_consts(l, out);
            collect_term_consts(r, out);
        }
        Formula::True | Formula::False => {}
        Formula::Not(g) => collect_formula_consts(g, out),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                collect_formula_consts(g, out);
            }
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => collect_formula_consts(g, out),
    }
}

/// Items of an EDNF conjunct.
#[derive(Debug, Clone)]
enum EItem {
    /// A literal.
    Lit(Atom, bool),
    /// An equality literal.
    EqLit(Term, Term, bool),
    /// A negated existential subformula `¬∃v̄ φ` awaiting extraction.
    NegExists(Vec<Symbol>, Formula),
}

/// Rewrite into EDNF: a disjunction (outer `Vec`) of conjunctions (inner
/// `Vec`) of items. Quantified variables must be standardized apart first.
fn ednf(f: &Formula, positive: bool) -> Vec<Vec<EItem>> {
    match f {
        Formula::Atom(a) => vec![vec![EItem::Lit(a.clone(), positive)]],
        Formula::Eq(l, r) => vec![vec![EItem::EqLit(l.clone(), r.clone(), positive)]],
        Formula::True => {
            if positive {
                vec![vec![]]
            } else {
                vec![]
            }
        }
        Formula::False => {
            if positive {
                vec![]
            } else {
                vec![vec![]]
            }
        }
        Formula::Not(g) => ednf(g, !positive),
        Formula::And(fs) => {
            if positive {
                distribute(fs, true)
            } else {
                // ¬(f₁ ∧ … ∧ fₙ) = ¬f₁ ∨ … ∨ ¬fₙ
                fs.iter().flat_map(|g| ednf(g, false)).collect()
            }
        }
        Formula::Or(fs) => {
            if positive {
                fs.iter().flat_map(|g| ednf(g, true)).collect()
            } else {
                distribute(fs, false)
            }
        }
        Formula::Exists(vars, g) => {
            if positive {
                // Push ∃ through ∨; the variables stay implicitly
                // existential in each conjunct (rule-body convention).
                ednf(g, true)
            } else {
                // ¬∃ — an extraction point.
                vec![vec![EItem::NegExists(vars.clone(), (**g).clone())]]
            }
        }
        Formula::Forall(vars, g) => {
            if positive {
                // ∀v̄ g = ¬∃v̄ ¬g — an extraction point.
                vec![vec![EItem::NegExists(
                    vars.clone(),
                    Formula::not((**g).clone()),
                )]]
            } else {
                // ¬∀v̄ g = ∃v̄ ¬g — inline.
                ednf(g, false)
            }
        }
    }
}

/// Cross-product distribution of `∧` over `∨` (or the dual when
/// `positive = false`).
fn distribute(fs: &[Formula], positive: bool) -> Vec<Vec<EItem>> {
    let mut acc: Vec<Vec<EItem>> = vec![vec![]];
    for g in fs {
        let parts = ednf(g, positive);
        if parts.is_empty() {
            return vec![]; // conjunct with an unsatisfiable member
        }
        let mut next = Vec::with_capacity(acc.len() * parts.len());
        for a in &acc {
            for p in &parts {
                let mut combined = a.clone();
                combined.extend(p.iter().cloned());
                next.push(combined);
            }
        }
        acc = next;
    }
    acc
}

/// Rename every quantified variable to a fresh one so that pushing `∃`
/// through connectives cannot capture.
fn standardize_apart(f: &Formula, symbols: &mut SymbolStore, counter: &mut usize) -> Formula {
    let mut map: FxHashMap<Symbol, Symbol> = FxHashMap::default();
    rename(f, symbols, counter, &mut map)
}

fn rename(
    f: &Formula,
    symbols: &mut SymbolStore,
    counter: &mut usize,
    map: &mut FxHashMap<Symbol, Symbol>,
) -> Formula {
    match f {
        Formula::Atom(a) => Formula::Atom(Atom::new(
            a.pred,
            a.args.iter().map(|t| rename_term(t, map)).collect(),
        )),
        Formula::Eq(l, r) => Formula::Eq(rename_term(l, map), rename_term(r, map)),
        Formula::True => Formula::True,
        Formula::False => Formula::False,
        Formula::Not(g) => Formula::not(rename(g, symbols, counter, map)),
        Formula::And(fs) => Formula::And(
            fs.iter()
                .map(|g| rename(g, symbols, counter, map))
                .collect(),
        ),
        Formula::Or(fs) => Formula::Or(
            fs.iter()
                .map(|g| rename(g, symbols, counter, map))
                .collect(),
        ),
        Formula::Exists(vars, g) | Formula::Forall(vars, g) => {
            let mut fresh_vars = Vec::with_capacity(vars.len());
            let mut saved = Vec::with_capacity(vars.len());
            for &v in vars {
                *counter += 1;
                let fresh = symbols.intern_fresh(&format!("V{counter}"));
                saved.push((v, map.insert(v, fresh)));
                fresh_vars.push(fresh);
            }
            let inner = rename(g, symbols, counter, map);
            for (v, old) in saved.into_iter().rev() {
                match old {
                    Some(o) => {
                        map.insert(v, o);
                    }
                    None => {
                        map.remove(&v);
                    }
                }
            }
            match f {
                Formula::Exists(..) => Formula::exists(fresh_vars, inner),
                _ => Formula::forall(fresh_vars, inner),
            }
        }
    }
}

fn rename_term(t: &Term, map: &FxHashMap<Symbol, Symbol>) -> Term {
    match t {
        Term::Var(v) => Term::Var(map.get(v).copied().unwrap_or(*v)),
        Term::Const(c) => Term::Const(*c),
        Term::App(f, args) => Term::App(*f, args.iter().map(|a| rename_term(a, map)).collect()),
    }
}

/// Dependency graph of a general program (predicate polarity read off the
/// formula bodies) — the Definition 8.3 graph for the pre-transformation
/// program.
pub fn dependency_graph(y: &GeneralProgram) -> DepGraph {
    let mut edges = Vec::new();
    for r in &y.rules {
        for (pred, positive) in r.body.predicate_occurrences() {
            edges.push((r.head.pred, pred, positive));
        }
    }
    for f in &y.facts {
        edges.push((f.pred, f.pred, true)); // ensure EDB nodes exist
    }
    DepGraph::from_edges(&edges)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::GeneralRule;

    /// Example 8.2's FP formula for well-founded nodes:
    /// `w(X) ← ¬∃Y[e(Y,X) ∧ ¬w(Y)]`.
    fn example_8_2() -> GeneralProgram {
        let mut y = GeneralProgram::new();
        let w = y.symbols.intern("w");
        let e = y.symbols.intern("e");
        let x = y.symbols.intern("X");
        let yv = y.symbols.intern("Y");
        let body = Formula::not(Formula::exists(
            vec![yv],
            Formula::And(vec![
                Formula::Atom(Atom::new(e, vec![Term::Var(yv), Term::Var(x)])),
                Formula::not(Formula::Atom(Atom::new(w, vec![Term::Var(yv)]))),
            ]),
        ));
        y.rules.push(GeneralRule {
            head: Atom::new(w, vec![Term::Var(x)]),
            body,
        });
        let a = y.symbols.intern("a");
        let b = y.symbols.intern("b");
        y.facts
            .push(Atom::new(e, vec![Term::Const(a), Term::Const(b)]));
        y
    }

    #[test]
    fn example_8_2_transforms_to_w_u_program() {
        let y = example_8_2();
        let t = lloyd_topor(&y);
        // Expect: w(X) :- not adb1(X).  adb1(X) :- e(Y', X), not w(Y').
        // plus the e fact.
        assert_eq!(t.aux.len(), 1);
        let u = t.aux[0].pred;
        assert!(
            !t.aux[0].globally_positive,
            "u replaces a negative subformula"
        );
        let texts: Vec<String> = t
            .program
            .rules
            .iter()
            .map(|r| afp_datalog::ast::display_rule(r, &t.program.symbols))
            .collect();
        let uname = t.program.symbols.name(u).to_string();
        assert!(
            texts.iter().any(|s| s.contains(&format!("not {uname}("))),
            "w rule must negate the aux: {texts:?}"
        );
        assert!(
            texts
                .iter()
                .any(|s| s.starts_with(&format!("{uname}(")) && s.contains("not w(")),
            "aux rule must be u(X) :- e(Y,X), not w(Y): {texts:?}"
        );
        // Classification: w globally positive, u globally negative.
        let w = y.symbols.get("w").unwrap();
        assert_eq!(t.classification.get(&w), Some(&true));
        assert_eq!(t.classification.get(&u), Some(&false));
        // The result is strict in the IDB (Definition 8.3).
        let dg = afp_datalog::depgraph::DepGraph::build(&t.program);
        assert!(dg.is_strict_in_idb(&[w, u]));
    }

    #[test]
    fn plain_conjunction_passes_through() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let q = y.symbols.intern("q");
        let r = y.symbols.intern("r");
        let x = y.symbols.intern("X");
        y.rules.push(GeneralRule {
            head: Atom::new(p, vec![Term::Var(x)]),
            body: Formula::And(vec![
                Formula::Atom(Atom::new(q, vec![Term::Var(x)])),
                Formula::not(Formula::Atom(Atom::new(r, vec![Term::Var(x)]))),
            ]),
        });
        let t = lloyd_topor(&y);
        assert!(t.aux.is_empty());
        assert_eq!(t.program.rules.len(), 1);
        let text = afp_datalog::ast::display_rule(&t.program.rules[0], &t.program.symbols);
        assert_eq!(text, "p(X) :- q(X), not r(X).");
    }

    #[test]
    fn disjunction_splits_into_rules() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let q = y.symbols.intern("q");
        let r = y.symbols.intern("r");
        y.rules.push(GeneralRule {
            head: Atom::prop(p),
            body: Formula::Or(vec![
                Formula::Atom(Atom::prop(q)),
                Formula::Atom(Atom::prop(r)),
            ]),
        });
        let t = lloyd_topor(&y);
        assert_eq!(t.program.rules.len(), 2);
    }

    #[test]
    fn conjunction_distributes_over_disjunction() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let a = y.symbols.intern("qa");
        let b = y.symbols.intern("qb");
        let c = y.symbols.intern("qc");
        let d = y.symbols.intern("qd");
        // p ← (a ∨ b) ∧ (c ∨ d): four rules.
        y.rules.push(GeneralRule {
            head: Atom::prop(p),
            body: Formula::And(vec![
                Formula::Or(vec![
                    Formula::Atom(Atom::prop(a)),
                    Formula::Atom(Atom::prop(b)),
                ]),
                Formula::Or(vec![
                    Formula::Atom(Atom::prop(c)),
                    Formula::Atom(Atom::prop(d)),
                ]),
            ]),
        });
        let t = lloyd_topor(&y);
        assert_eq!(t.program.rules.len(), 4);
        assert!(t.aux.is_empty());
    }

    #[test]
    fn negated_conjunction_uses_de_morgan_not_aux() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let q = y.symbols.intern("q");
        let r = y.symbols.intern("r");
        y.rules.push(GeneralRule {
            head: Atom::prop(p),
            body: Formula::not(Formula::And(vec![
                Formula::Atom(Atom::prop(q)),
                Formula::Atom(Atom::prop(r)),
            ])),
        });
        let t = lloyd_topor(&y);
        // ¬(q ∧ r) = ¬q ∨ ¬r: two rules, no aux.
        assert_eq!(t.program.rules.len(), 2);
        assert!(t.aux.is_empty());
    }

    #[test]
    fn universal_quantifier_creates_negative_aux() {
        // p(X) ← ∀Y [¬e(X, Y)]   ("X has no successors")
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let e = y.symbols.intern("e");
        let x = y.symbols.intern("X");
        let yv = y.symbols.intern("Y");
        y.rules.push(GeneralRule {
            head: Atom::new(p, vec![Term::Var(x)]),
            body: Formula::forall(
                vec![yv],
                Formula::not(Formula::Atom(Atom::new(
                    e,
                    vec![Term::Var(x), Term::Var(yv)],
                ))),
            ),
        });
        let t = lloyd_topor(&y);
        assert_eq!(t.aux.len(), 1);
        assert!(!t.aux[0].globally_positive);
        // aux(X) :- e(X, V).  p(X) :- not aux(X).
        let texts: Vec<String> = t
            .program
            .rules
            .iter()
            .map(|r| afp_datalog::ast::display_rule(r, &t.program.symbols))
            .collect();
        assert!(texts.iter().any(|s| s.contains(":- e(X,")));
    }

    #[test]
    fn nested_negation_alternates_polarity() {
        // p ← ¬∃X[q(X) ∧ ¬∃Y[r(X,Y)]]
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let q = y.symbols.intern("q");
        let r = y.symbols.intern("r");
        let x = y.symbols.intern("X");
        let yv = y.symbols.intern("Y");
        y.rules.push(GeneralRule {
            head: Atom::prop(p),
            body: Formula::not(Formula::exists(
                vec![x],
                Formula::And(vec![
                    Formula::Atom(Atom::new(q, vec![Term::Var(x)])),
                    Formula::not(Formula::exists(
                        vec![yv],
                        Formula::Atom(Atom::new(r, vec![Term::Var(x), Term::Var(yv)])),
                    )),
                ]),
            )),
        });
        let t = lloyd_topor(&y);
        assert_eq!(t.aux.len(), 2);
        // First extraction (outer) is negative; second (inner) positive.
        let outer = t.aux.iter().find(|a| !a.globally_positive);
        let inner = t.aux.iter().find(|a| a.globally_positive);
        assert!(outer.is_some() && inner.is_some());
    }

    #[test]
    fn standardize_apart_prevents_capture() {
        // p ← ∃X q(X) ∧ ∃X r(X): flattening must rename the two X's apart.
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let q = y.symbols.intern("q");
        let r = y.symbols.intern("r");
        let x = y.symbols.intern("X");
        y.rules.push(GeneralRule {
            head: Atom::prop(p),
            body: Formula::And(vec![
                Formula::exists(vec![x], Formula::Atom(Atom::new(q, vec![Term::Var(x)]))),
                Formula::exists(vec![x], Formula::Atom(Atom::new(r, vec![Term::Var(x)]))),
            ]),
        });
        let t = lloyd_topor(&y);
        assert_eq!(t.program.rules.len(), 1);
        let rule = &t.program.rules[0];
        let v1 = match &rule.body[0].atom.args[0] {
            Term::Var(v) => *v,
            other => panic!("expected var, got {other:?}"),
        };
        let v2 = match &rule.body[1].atom.args[0] {
            Term::Var(v) => *v,
            other => panic!("expected var, got {other:?}"),
        };
        assert_ne!(v1, v2, "bound variables must be standardized apart");
    }

    #[test]
    fn ground_equality_resolved_statically() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let a = y.symbols.intern("a");
        let b = y.symbols.intern("b");
        // p ← a = a: becomes a bodyless rule. p2 ← a = b: dropped.
        y.rules.push(GeneralRule {
            head: Atom::prop(p),
            body: Formula::Eq(Term::Const(a), Term::Const(a)),
        });
        let p2 = y.symbols.intern("p2");
        y.rules.push(GeneralRule {
            head: Atom::prop(p2),
            body: Formula::Eq(Term::Const(a), Term::Const(b)),
        });
        let t = lloyd_topor(&y);
        let texts: Vec<String> = t
            .program
            .rules
            .iter()
            .map(|r| afp_datalog::ast::display_rule(r, &t.program.symbols))
            .collect();
        assert!(texts.contains(&"p.".to_string()));
        assert!(!texts.iter().any(|s| s.starts_with("p2")));
    }

    #[test]
    fn general_dependency_graph_polarities() {
        let y = example_8_2();
        let dg = dependency_graph(&y);
        let w = y.symbols.get("w").unwrap();
        let e = y.symbols.get("e").unwrap();
        let wn = dg.node(w).unwrap();
        let en = dg.node(e).unwrap();
        // In ¬∃Y[e ∧ ¬w]: e occurs negatively, w positively.
        assert!(dg.edge(wn, en).unwrap().negative);
        assert!(dg.edge(wn, wn).unwrap().positive);
        assert!(!dg.edge(wn, wn).unwrap().negative);
    }
}
