//! Parser for general logic programs (first-order rule bodies).
//!
//! Grammar (binding strength: `not` > `&` > `|`; quantifiers take a
//! parenthesized body):
//!
//! ```text
//! program := item*
//! item    := atom "." | atom "<-" formula "."
//! formula := disj
//! disj    := conj ( ("|" | ";") conj )*
//! conj    := unary ( ("&" | ",") unary )*
//! unary   := ("not" | "~" | "¬") unary
//!          | ("exists" | "forall") VAR+ "(" formula ")"
//!          | "true" | "false"
//!          | "(" formula ")"
//!          | term "=" term
//!          | atom
//! ```
//!
//! Example (the well-founded-nodes formula of Example 8.2):
//!
//! ```text
//! w(X) <- node(X) & not exists Y (e(Y, X) & not w(Y)).
//! node(a). e(a, b).
//! ```

use crate::formula::{Formula, GeneralProgram, GeneralRule};
use afp_datalog::ast::{Atom, Term};
use afp_datalog::symbol::Symbol;
use std::fmt;

/// Errors from the general-program parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FolParseError {
    /// Human-readable description.
    pub message: String,
    /// Byte offset in the source.
    pub offset: usize,
}

impl fmt::Display for FolParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "offset {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for FolParseError {}

/// Parse a general logic program.
pub fn parse_general(src: &str) -> Result<GeneralProgram, FolParseError> {
    let mut p = Parser {
        src: src.as_bytes(),
        pos: 0,
        program: GeneralProgram::new(),
    };
    p.skip_ws();
    while p.pos < p.src.len() {
        p.item()?;
        p.skip_ws();
    }
    Ok(p.program)
}

struct Parser<'a> {
    src: &'a [u8],
    pos: usize,
    program: GeneralProgram,
}

impl Parser<'_> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T, FolParseError> {
        Err(FolParseError {
            message: message.into(),
            offset: self.pos,
        })
    }

    fn skip_ws(&mut self) {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos < self.src.len() && self.src[self.pos] == b'%' {
                while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            break;
        }
    }

    fn eat(&mut self, token: &str) -> bool {
        self.skip_ws();
        let bytes = token.as_bytes();
        if self.src[self.pos..].starts_with(bytes) {
            // Word tokens must not run into identifier characters.
            let is_word = bytes[0].is_ascii_alphabetic();
            let end = self.pos + bytes.len();
            if is_word
                && end < self.src.len()
                && (self.src[end].is_ascii_alphanumeric() || self.src[end] == b'_')
            {
                return false;
            }
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn peek_char(&mut self) -> Option<u8> {
        self.skip_ws();
        self.src.get(self.pos).copied()
    }

    fn ident(&mut self) -> Result<(String, bool), FolParseError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.src.len()
            && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
        {
            self.pos += 1;
        }
        if start == self.pos {
            return self.err("expected an identifier");
        }
        let text = std::str::from_utf8(&self.src[start..self.pos])
            .map_err(|_| FolParseError {
                message: "invalid utf-8".into(),
                offset: start,
            })?
            .to_string();
        let first = text.as_bytes()[0];
        let is_var = first.is_ascii_uppercase() || first == b'_';
        Ok((text, is_var))
    }

    fn item(&mut self) -> Result<(), FolParseError> {
        let head = self.atom()?;
        if self.eat("<-") || self.eat("←") {
            let body = self.disj()?;
            if !self.eat(".") {
                return self.err("expected '.' after rule");
            }
            self.program.rules.push(GeneralRule { head, body });
        } else if self.eat(".") {
            if !head.is_ground() {
                return self.err("facts must be ground");
            }
            self.program.facts.push(head);
        } else {
            return self.err("expected '<-' or '.' after atom");
        }
        Ok(())
    }

    fn disj(&mut self) -> Result<Formula, FolParseError> {
        let mut parts = vec![self.conj()?];
        while self.eat("|") || self.eat(";") {
            parts.push(self.conj()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Formula::Or(parts)
        })
    }

    fn conj(&mut self) -> Result<Formula, FolParseError> {
        let mut parts = vec![self.unary()?];
        while self.eat("&") || self.eat(",") {
            parts.push(self.unary()?);
        }
        Ok(if parts.len() == 1 {
            parts.pop().expect("nonempty")
        } else {
            Formula::And(parts)
        })
    }

    fn unary(&mut self) -> Result<Formula, FolParseError> {
        if self.eat("not") || self.eat("~") || self.eat("¬") {
            return Ok(Formula::not(self.unary()?));
        }
        if self.eat("exists") {
            return self.quantifier(true);
        }
        if self.eat("forall") {
            return self.quantifier(false);
        }
        if self.eat("true") {
            return Ok(Formula::True);
        }
        if self.eat("false") {
            return Ok(Formula::False);
        }
        if self.eat("(") {
            let inner = self.disj()?;
            if !self.eat(")") {
                return self.err("expected ')'");
            }
            return Ok(inner);
        }
        // term "=" term, or an atom.
        let save = self.pos;
        let (name, is_var) = self.ident()?;
        if is_var {
            // Must be the left side of an equality.
            let v = self.program.symbols.intern(&name);
            if !self.eat("=") {
                return self.err("a bare variable can only start an equality");
            }
            let rhs = self.term()?;
            return Ok(Formula::Eq(Term::Var(v), rhs));
        }
        // Lowercase: atom or constant-equality.
        if self.peek_char() == Some(b'=') {
            self.pos += 1;
            let lhs = Term::Const(self.program.symbols.intern(&name));
            let rhs = self.term()?;
            return Ok(Formula::Eq(lhs, rhs));
        }
        self.pos = save;
        Ok(Formula::Atom(self.atom()?))
    }

    fn quantifier(&mut self, existential: bool) -> Result<Formula, FolParseError> {
        let mut vars: Vec<Symbol> = Vec::new();
        loop {
            self.skip_ws();
            match self.src.get(self.pos) {
                Some(c) if c.is_ascii_uppercase() || *c == b'_' => {
                    let (name, _) = self.ident()?;
                    vars.push(self.program.symbols.intern(&name));
                    let _ = self.eat(",");
                }
                _ => break,
            }
        }
        if vars.is_empty() {
            return self.err("quantifier needs at least one variable");
        }
        if !self.eat("(") {
            return self.err("quantifier body must be parenthesized");
        }
        let body = self.disj()?;
        if !self.eat(")") {
            return self.err("expected ')' closing quantifier body");
        }
        Ok(if existential {
            Formula::exists(vars, body)
        } else {
            Formula::forall(vars, body)
        })
    }

    fn atom(&mut self) -> Result<Atom, FolParseError> {
        let (name, is_var) = self.ident()?;
        if is_var {
            return self.err("predicate symbols start lowercase");
        }
        let pred = self.program.symbols.intern(&name);
        let mut args = Vec::new();
        if self.eat("(") {
            loop {
                args.push(self.term()?);
                if !self.eat(",") {
                    break;
                }
            }
            if !self.eat(")") {
                return self.err("expected ')' closing atom");
            }
        }
        Ok(Atom::new(pred, args))
    }

    fn term(&mut self) -> Result<Term, FolParseError> {
        let (name, is_var) = self.ident()?;
        let sym = self.program.symbols.intern(&name);
        Ok(if is_var {
            Term::Var(sym)
        } else {
            Term::Const(sym)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_example_8_2() {
        let y = parse_general(
            "w(X) <- node(X) & not exists Y (e(Y, X) & not w(Y)).
             node(a). node(b). e(a, b).",
        )
        .unwrap();
        assert_eq!(y.rules.len(), 1);
        assert_eq!(y.facts.len(), 3);
        match &y.rules[0].body {
            Formula::And(parts) => {
                assert_eq!(parts.len(), 2);
                assert!(matches!(parts[1], Formula::Not(_)));
            }
            other => panic!("expected And, got {other:?}"),
        }
    }

    #[test]
    fn quantifiers_and_connectives() {
        let y = parse_general("p <- forall X (q(X) | exists Y (r(X, Y))).").unwrap();
        match &y.rules[0].body {
            Formula::Forall(vars, inner) => {
                assert_eq!(vars.len(), 1);
                assert!(matches!(**inner, Formula::Or(_)));
            }
            other => panic!("expected Forall, got {other:?}"),
        }
    }

    #[test]
    fn multi_variable_quantifier() {
        let y = parse_general("p <- exists X, Y (e(X, Y)).").unwrap();
        match &y.rules[0].body {
            Formula::Exists(vars, _) => assert_eq!(vars.len(), 2),
            other => panic!("expected Exists, got {other:?}"),
        }
    }

    #[test]
    fn equality_literals() {
        let y = parse_general("p <- exists X (d(X) & not X = a). d(a). d(b).").unwrap();
        assert_eq!(y.rules.len(), 1);
        let rendered = y.rules[0].body.display(&y.symbols);
        assert!(rendered.contains('='), "{rendered}");
    }

    #[test]
    fn true_false_literals() {
        let y = parse_general("p <- true. q <- false.").unwrap();
        assert_eq!(y.rules[0].body, Formula::True);
        assert_eq!(y.rules[1].body, Formula::False);
    }

    #[test]
    fn comments_skipped() {
        let y = parse_general("% header\np <- q. % trailing\nq.").unwrap();
        assert_eq!(y.rules.len(), 1);
        assert_eq!(y.facts.len(), 1);
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse_general("p <- exists (q).").unwrap_err();
        assert!(e.message.contains("variable"));
        let e = parse_general("p <- q").unwrap_err();
        assert!(e.message.contains('.'));
        let e = parse_general("p(X).").unwrap_err();
        assert!(e.message.contains("ground"));
    }

    #[test]
    fn parsed_program_evaluates() {
        // End-to-end: parse Example 8.2 and get the right answer.
        let y = parse_general(
            "w(X) <- node(X) & not exists Y (e(Y, X) & not w(Y)).
             node(a). node(b). node(c).
             e(a, b). e(b, a). e(a, c).",
        )
        .unwrap();
        let (m, ctx) = crate::eval::fp_model(&y).unwrap();
        let names = ctx.set_to_names(&y, &m);
        // Cycle a ⇄ b poisons everything it reaches.
        assert!(!names.contains(&"w(a)".to_string()));
        assert!(!names.contains(&"w(b)".to_string()));
        assert!(!names.contains(&"w(c)".to_string()));
    }

    #[test]
    fn nested_negation_roundtrip() {
        let y = parse_general("p <- not not q. q.").unwrap();
        let (m, ctx) = crate::eval::fp_model(&y).unwrap_or_else(|e| panic!("{e}"));
        // ¬¬q: q occurs positively (even negations) — still an FP system.
        let names = ctx.set_to_names(&y, &m);
        assert!(names.contains(&"p".to_string()));
    }
}
