//! First-order rule bodies (Section 8.1).
//!
//! A *general logic program* (Lloyd–Topor) permits arbitrary first-order
//! formulas with equality as rule bodies. Truth of a closed formula is
//! assigned by an arbitrary set of literals `Z` per Definition 8.2:
//!
//! 1. put the formula into *explicit literal form* (every negative atom has
//!    its negation immediately above — our negation normal form);
//! 2. a ground literal is true iff it occurs in `Z` — note the asymmetry:
//!    a positive literal needs `p ∈ Z`, a negative one needs `¬p ∈ Z`;
//!    *absence of positive p literals is not enough* (Example 8.1);
//! 3. connectives and quantifiers evaluate classically, with quantifiers
//!    ranging over a finite domain (the active domain of the program).
//!
//! Equality follows the Clark equational theory: ground terms are equal iff
//! syntactically identical.

use afp_datalog::ast::{Atom, Term};
use afp_datalog::atoms::{ConstId, HerbrandBase};
use afp_datalog::bitset::AtomSet;
use afp_datalog::fx::FxHashMap;
use afp_datalog::symbol::{Symbol, SymbolStore};

/// A first-order formula over atoms and equality.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// An atomic formula.
    Atom(Atom),
    /// Term equality under the Clark equational theory.
    Eq(Term, Term),
    /// Verum.
    True,
    /// Falsum.
    False,
    /// Negation.
    Not(Box<Formula>),
    /// Conjunction (empty = true).
    And(Vec<Formula>),
    /// Disjunction (empty = false).
    Or(Vec<Formula>),
    /// Existential quantification.
    Exists(Vec<Symbol>, Box<Formula>),
    /// Universal quantification.
    Forall(Vec<Symbol>, Box<Formula>),
}

impl Formula {
    /// `¬φ`.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Formula {
        Formula::Not(Box::new(f))
    }

    /// `∃ vars. φ`.
    pub fn exists(vars: Vec<Symbol>, f: Formula) -> Formula {
        Formula::Exists(vars, Box::new(f))
    }

    /// `∀ vars. φ`.
    pub fn forall(vars: Vec<Symbol>, f: Formula) -> Formula {
        Formula::Forall(vars, Box::new(f))
    }

    /// Free variables, in first-occurrence order.
    pub fn free_vars(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let mut bound = Vec::new();
        self.free_vars_rec(&mut bound, &mut out);
        out
    }

    fn free_vars_rec(&self, bound: &mut Vec<Symbol>, out: &mut Vec<Symbol>) {
        match self {
            Formula::Atom(a) => {
                let mut vars = Vec::new();
                a.collect_vars(&mut vars);
                for v in vars {
                    if !bound.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Formula::Eq(l, r) => {
                let mut vars = Vec::new();
                l.collect_vars(&mut vars);
                r.collect_vars(&mut vars);
                for v in vars {
                    if !bound.contains(&v) && !out.contains(&v) {
                        out.push(v);
                    }
                }
            }
            Formula::True | Formula::False => {}
            Formula::Not(f) => f.free_vars_rec(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.free_vars_rec(bound, out);
                }
            }
            Formula::Exists(vars, f) | Formula::Forall(vars, f) => {
                let depth = bound.len();
                bound.extend(vars.iter().copied());
                f.free_vars_rec(bound, out);
                bound.truncate(depth);
            }
        }
    }

    /// Every `(predicate, polarity)` occurrence in the formula, where the
    /// polarity is that of the atom within this formula (Definition 8.1:
    /// positive under an even number of negations).
    pub fn predicate_occurrences(&self) -> Vec<(Symbol, bool)> {
        let mut out = Vec::new();
        self.occ_rec(true, &mut out);
        out
    }

    fn occ_rec(&self, positive: bool, out: &mut Vec<(Symbol, bool)>) {
        match self {
            Formula::Atom(a) => out.push((a.pred, positive)),
            Formula::Eq(..) | Formula::True | Formula::False => {}
            Formula::Not(f) => f.occ_rec(!positive, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.occ_rec(positive, out);
                }
            }
            Formula::Exists(_, f) | Formula::Forall(_, f) => f.occ_rec(positive, out),
        }
    }

    /// Render with a symbol store (for diagnostics).
    pub fn display(&self, store: &SymbolStore) -> String {
        match self {
            Formula::Atom(a) => afp_datalog::ast::display_atom(a, store),
            Formula::Eq(l, r) => format!(
                "{} = {}",
                afp_datalog::ast::display_term(l, store),
                afp_datalog::ast::display_term(r, store)
            ),
            Formula::True => "true".into(),
            Formula::False => "false".into(),
            Formula::Not(f) => format!("¬({})", f.display(store)),
            Formula::And(fs) => {
                let parts: Vec<String> = fs.iter().map(|f| f.display(store)).collect();
                format!("({})", parts.join(" ∧ "))
            }
            Formula::Or(fs) => {
                let parts: Vec<String> = fs.iter().map(|f| f.display(store)).collect();
                format!("({})", parts.join(" ∨ "))
            }
            Formula::Exists(vars, f) => {
                let vs: Vec<&str> = vars.iter().map(|v| store.name(*v)).collect();
                format!("∃{}[{}]", vs.join(","), f.display(store))
            }
            Formula::Forall(vars, f) => {
                let vs: Vec<&str> = vars.iter().map(|v| store.name(*v)).collect();
                format!("∀{}[{}]", vs.join(","), f.display(store))
            }
        }
    }
}

/// A rule with a first-order body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GeneralRule {
    /// Head atom (its variables are the rule's universal variables).
    pub head: Atom,
    /// First-order body.
    pub body: Formula,
}

/// A general logic program: general rules plus ground EDB facts.
#[derive(Debug, Clone, Default)]
pub struct GeneralProgram {
    /// The rules.
    pub rules: Vec<GeneralRule>,
    /// Ground facts (the EDB).
    pub facts: Vec<Atom>,
    /// Names.
    pub symbols: SymbolStore,
}

impl GeneralProgram {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// IDB predicates: those with a rule head.
    pub fn idb_predicates(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for r in &self.rules {
            if !out.contains(&r.head.pred) {
                out.push(r.head.pred);
            }
        }
        out
    }

    /// EDB predicates: those with facts and no rules.
    pub fn edb_predicates(&self) -> Vec<Symbol> {
        let idb = self.idb_predicates();
        let mut out = Vec::new();
        for f in &self.facts {
            if !idb.contains(&f.pred) && !out.contains(&f.pred) {
                out.push(f.pred);
            }
        }
        out
    }
}

/// A literal set `Z` for Definition 8.2 evaluation: positive and negative
/// literals over an interned ground-atom universe.
#[derive(Debug, Clone)]
pub struct LiteralSet {
    /// Atoms appearing positively in `Z`.
    pub pos: AtomSet,
    /// Atoms appearing negatively in `Z`.
    pub neg: AtomSet,
}

/// Evaluation context: a finite domain plus the interned atom universe.
pub struct EvalContext<'a> {
    /// Interned ground atoms; atoms absent from the base are simply not in
    /// `Z` (both their literals evaluate false).
    pub base: &'a HerbrandBase,
    /// The finite domain quantifiers range over.
    pub domain: &'a [ConstId],
}

/// Negation normal form — the executable version of "explicit literal
/// form" (Definition 8.1).
#[derive(Debug, Clone)]
pub enum Nnf {
    /// A literal: atom with polarity.
    Lit(Atom, bool),
    /// Equality literal with polarity.
    EqLit(Term, Term, bool),
    /// Verum.
    True,
    /// Falsum.
    False,
    /// Conjunction.
    And(Vec<Nnf>),
    /// Disjunction.
    Or(Vec<Nnf>),
    /// Existential.
    Exists(Vec<Symbol>, Box<Nnf>),
    /// Universal.
    Forall(Vec<Symbol>, Box<Nnf>),
}

/// Convert to negation normal form.
pub fn to_nnf(f: &Formula) -> Nnf {
    nnf_rec(f, true)
}

fn nnf_rec(f: &Formula, positive: bool) -> Nnf {
    match f {
        Formula::Atom(a) => Nnf::Lit(a.clone(), positive),
        Formula::Eq(l, r) => Nnf::EqLit(l.clone(), r.clone(), positive),
        Formula::True => {
            if positive {
                Nnf::True
            } else {
                Nnf::False
            }
        }
        Formula::False => {
            if positive {
                Nnf::False
            } else {
                Nnf::True
            }
        }
        Formula::Not(g) => nnf_rec(g, !positive),
        Formula::And(fs) => {
            let parts = fs.iter().map(|g| nnf_rec(g, positive)).collect();
            if positive {
                Nnf::And(parts)
            } else {
                Nnf::Or(parts)
            }
        }
        Formula::Or(fs) => {
            let parts = fs.iter().map(|g| nnf_rec(g, positive)).collect();
            if positive {
                Nnf::Or(parts)
            } else {
                Nnf::And(parts)
            }
        }
        Formula::Exists(vars, g) => {
            let inner = Box::new(nnf_rec(g, positive));
            if positive {
                Nnf::Exists(vars.clone(), inner)
            } else {
                Nnf::Forall(vars.clone(), inner)
            }
        }
        Formula::Forall(vars, g) => {
            let inner = Box::new(nnf_rec(g, positive));
            if positive {
                Nnf::Forall(vars.clone(), inner)
            } else {
                Nnf::Exists(vars.clone(), inner)
            }
        }
    }
}

/// Evaluate a formula under the literal set `z` with the environment `env`
/// binding its free variables (Definition 8.2).
pub fn eval_formula(
    f: &Formula,
    z: &LiteralSet,
    ctx: &EvalContext<'_>,
    env: &mut FxHashMap<Symbol, ConstId>,
) -> bool {
    let nnf = to_nnf(f);
    eval_nnf(&nnf, z, ctx, env)
}

/// Evaluate an NNF formula.
pub fn eval_nnf(
    f: &Nnf,
    z: &LiteralSet,
    ctx: &EvalContext<'_>,
    env: &mut FxHashMap<Symbol, ConstId>,
) -> bool {
    match f {
        Nnf::True => true,
        Nnf::False => false,
        Nnf::Lit(a, positive) => {
            let Some(id) = resolve_atom(a, ctx.base, env) else {
                // An atom over terms never materialized is in no literal
                // set: both its positive and negative literal are false.
                return false;
            };
            if *positive {
                z.pos.contains(id.0)
            } else {
                z.neg.contains(id.0)
            }
        }
        Nnf::EqLit(l, r, positive) => {
            let lv = resolve_term(l, ctx.base, env);
            let rv = resolve_term(r, ctx.base, env);
            match (lv, rv) {
                (Some(a), Some(b)) => (a == b) == *positive,
                // Clark equality on unresolvable terms: unequal.
                _ => !*positive,
            }
        }
        Nnf::And(fs) => fs.iter().all(|g| eval_nnf(g, z, ctx, env)),
        Nnf::Or(fs) => fs.iter().any(|g| eval_nnf(g, z, ctx, env)),
        Nnf::Exists(vars, g) => quantify(vars, g, z, ctx, env, true),
        Nnf::Forall(vars, g) => quantify(vars, g, z, ctx, env, false),
    }
}

fn quantify(
    vars: &[Symbol],
    body: &Nnf,
    z: &LiteralSet,
    ctx: &EvalContext<'_>,
    env: &mut FxHashMap<Symbol, ConstId>,
    existential: bool,
) -> bool {
    if vars.is_empty() {
        return eval_nnf(body, z, ctx, env);
    }
    let (v, rest) = (vars[0], &vars[1..]);
    let saved = env.get(&v).copied();
    for &d in ctx.domain {
        env.insert(v, d);
        let r = quantify(rest, body, z, ctx, env, existential);
        if r == existential {
            restore(env, v, saved);
            return existential;
        }
    }
    restore(env, v, saved);
    !existential
}

fn restore(env: &mut FxHashMap<Symbol, ConstId>, v: Symbol, saved: Option<ConstId>) {
    match saved {
        Some(x) => {
            env.insert(v, x);
        }
        None => {
            env.remove(&v);
        }
    }
}

/// Resolve a term under `env` without interning; `None` when a sub-term was
/// never materialized.
pub fn resolve_term(
    t: &Term,
    base: &HerbrandBase,
    env: &FxHashMap<Symbol, ConstId>,
) -> Option<ConstId> {
    match t {
        Term::Var(v) => env.get(v).copied(),
        Term::Const(c) => base.find_term(&afp_datalog::atoms::GroundTerm::Const(*c)),
        Term::App(f, args) => {
            let mut ids = Vec::with_capacity(args.len());
            for a in args {
                ids.push(resolve_term(a, base, env)?);
            }
            base.find_term(&afp_datalog::atoms::GroundTerm::App(
                *f,
                ids.into_boxed_slice(),
            ))
        }
    }
}

/// Resolve an atom under `env` without interning.
pub fn resolve_atom(
    a: &Atom,
    base: &HerbrandBase,
    env: &FxHashMap<Symbol, ConstId>,
) -> Option<afp_datalog::AtomId> {
    let mut args = Vec::with_capacity(a.args.len());
    for t in &a.args {
        args.push(resolve_term(t, base, env)?);
    }
    base.find_atom(a.pred, &args)
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fixture {
        symbols: SymbolStore,
        base: HerbrandBase,
        domain: Vec<ConstId>,
        p: Symbol,
        x: Symbol,
    }

    fn fixture() -> Fixture {
        let mut symbols = SymbolStore::new();
        let p = symbols.intern("p");
        let x = symbols.intern("X");
        let mut base = HerbrandBase::new();
        let mut domain = Vec::new();
        for name in ["a", "b", "c"] {
            let s = symbols.intern(name);
            let c = base.intern_const(s);
            base.intern_atom(p, &[c]);
            domain.push(c);
        }
        Fixture {
            symbols,
            base,
            domain,
            p,
            x,
        }
    }

    fn z(fx: &Fixture, pos: &[u32], neg: &[u32]) -> LiteralSet {
        let n = fx.base.atom_count();
        LiteralSet {
            pos: AtomSet::from_iter(n, pos.iter().copied()),
            neg: AtomSet::from_iter(n, neg.iter().copied()),
        }
    }

    #[test]
    fn example_8_1_absence_is_not_falsity() {
        // φ = ¬∃X p(X), explicit literal form ∀X ¬p(X): true only when
        // ¬p(t) ∈ Z for ALL t; absence of positive p literals is not
        // enough.
        let fx = fixture();
        let phi = Formula::not(Formula::exists(
            vec![fx.x],
            Formula::Atom(Atom::new(fx.p, vec![Term::Var(fx.x)])),
        ));
        let ctx = EvalContext {
            base: &fx.base,
            domain: &fx.domain,
        };
        let mut env = FxHashMap::default();
        // Z empty: not true (no ¬p literals present).
        assert!(!eval_formula(&phi, &z(&fx, &[], &[]), &ctx, &mut env));
        // Z = {¬p(a), ¬p(b), ¬p(c)}: true.
        assert!(eval_formula(&phi, &z(&fx, &[], &[0, 1, 2]), &ctx, &mut env));
        // Missing one: false.
        assert!(!eval_formula(&phi, &z(&fx, &[], &[0, 1]), &ctx, &mut env));

        // ψ = ¬φ: p(X) is positive in ψ; ψ is true iff some p(t) ∈ Z⁺…
        let psi = Formula::not(phi);
        assert!(eval_formula(&psi, &z(&fx, &[1], &[]), &ctx, &mut env));
        // …and with Z empty, ψ = ∃X ¬¬p(X) → needs a positive p literal.
        assert!(!eval_formula(&psi, &z(&fx, &[], &[2]), &ctx, &mut env));
    }

    #[test]
    fn nnf_dualizes_connectives() {
        let fx = fixture();
        let f = Formula::not(Formula::And(vec![
            Formula::Atom(Atom::new(fx.p, vec![Term::Var(fx.x)])),
            Formula::True,
        ]));
        match to_nnf(&f) {
            Nnf::Or(parts) => {
                assert!(matches!(&parts[0], Nnf::Lit(_, false)));
                assert!(matches!(&parts[1], Nnf::False));
            }
            other => panic!("expected Or, got {other:?}"),
        }
    }

    #[test]
    fn double_negation_restores_polarity() {
        let fx = fixture();
        let f = Formula::not(Formula::not(Formula::Atom(Atom::new(
            fx.p,
            vec![Term::Var(fx.x)],
        ))));
        assert!(matches!(to_nnf(&f), Nnf::Lit(_, true)));
        assert_eq!(f.predicate_occurrences(), vec![(fx.p, true)]);
    }

    #[test]
    fn equality_is_syntactic_identity() {
        let fx = fixture();
        let a = fx.symbols.get("a").unwrap();
        let b = fx.symbols.get("b").unwrap();
        let ctx = EvalContext {
            base: &fx.base,
            domain: &fx.domain,
        };
        let mut env = FxHashMap::default();
        let zero = z(&fx, &[], &[]);
        assert!(eval_formula(
            &Formula::Eq(Term::Const(a), Term::Const(a)),
            &zero,
            &ctx,
            &mut env
        ));
        assert!(!eval_formula(
            &Formula::Eq(Term::Const(a), Term::Const(b)),
            &zero,
            &ctx,
            &mut env
        ));
        assert!(eval_formula(
            &Formula::not(Formula::Eq(Term::Const(a), Term::Const(b))),
            &zero,
            &ctx,
            &mut env
        ));
    }

    #[test]
    fn forall_over_empty_domain_is_true() {
        let fx = fixture();
        let ctx = EvalContext {
            base: &fx.base,
            domain: &[],
        };
        let mut env = FxHashMap::default();
        let f = Formula::forall(
            vec![fx.x],
            Formula::Atom(Atom::new(fx.p, vec![Term::Var(fx.x)])),
        );
        assert!(eval_formula(&f, &z(&fx, &[], &[]), &ctx, &mut env));
        let g = Formula::exists(
            vec![fx.x],
            Formula::Atom(Atom::new(fx.p, vec![Term::Var(fx.x)])),
        );
        assert!(!eval_formula(&g, &z(&fx, &[], &[]), &ctx, &mut env));
    }

    #[test]
    fn free_vars_respect_binders() {
        let mut symbols = SymbolStore::new();
        let p = symbols.intern("p");
        let x = symbols.intern("X");
        let y = symbols.intern("Y");
        let f = Formula::exists(
            vec![y],
            Formula::Atom(Atom::new(p, vec![Term::Var(x), Term::Var(y)])),
        );
        assert_eq!(f.free_vars(), vec![x]);
    }

    #[test]
    fn predicate_occurrences_through_quantifiers() {
        let mut symbols = SymbolStore::new();
        let e = symbols.intern("e");
        let w = symbols.intern("w");
        let x = symbols.intern("X");
        let y = symbols.intern("Y");
        // ¬∃Y[e(Y,X) ∧ ¬w(Y)] — Example 8.2's body.
        let f = Formula::not(Formula::exists(
            vec![y],
            Formula::And(vec![
                Formula::Atom(Atom::new(e, vec![Term::Var(y), Term::Var(x)])),
                Formula::not(Formula::Atom(Atom::new(w, vec![Term::Var(y)]))),
            ]),
        ));
        let occ = f.predicate_occurrences();
        assert_eq!(occ, vec![(e, false), (w, true)]);
    }
}
