//! # afp-fol — first-order rule bodies and expressive power (Section 8)
//!
//! The paper's Section 8 extends the alternating fixpoint to *general logic
//! programs* whose rule bodies are arbitrary first-order formulas with
//! equality, and uses the extension to relate alternating fixpoint logic to
//! fixpoint logic (FP):
//!
//! * [`formula`] — formula AST, polarity (Definition 8.1), and truth under
//!   a literal set (Definition 8.2, with Example 8.1's subtlety);
//! * [`transform`] — EDNF rewriting and the Lloyd–Topor reduction by
//!   elementary simplification (Definition 8.4), with the global polarity
//!   classification of Definition 8.5;
//! * [`eval`] — direct evaluation: general `S_P`, the general alternating
//!   fixpoint, and FP least models (Theorem 8.1).
//!
//! Theorem 8.7 — reducing an FP system to a normal program preserves the
//! positive AFP model on the original relations — is exercised end-to-end
//! in the workspace integration tests: general program → [`transform`] →
//! `afp_datalog::ground` → `afp_core::alternating_fixpoint`, compared
//! against [`eval::fp_model`].

#![warn(missing_docs)]

pub mod eval;
pub mod formula;
pub mod parser;
pub mod transform;

pub use eval::{
    afp_general, fp_model, s_p_general, GeneralAfpResult, GeneralContext, GeneralError,
};
pub use formula::{Formula, GeneralProgram, GeneralRule, LiteralSet};
pub use parser::{parse_general, FolParseError};
pub use transform::{dependency_graph, lloyd_topor, AuxPred, Transformed};
