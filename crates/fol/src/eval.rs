//! Direct evaluation of general programs: fixpoint logic (FP) and
//! alternating fixpoint logic (Sections 8.1, 8.3, 8.4).
//!
//! Having defined formula truth under a literal set (Definition 8.2), the
//! paper generalizes the operators immediately: the head of an instantiated
//! rule is in the output of `T` when its body is assigned true. `T_P`,
//! `S_P`, and `A_P` stay monotone / antimonotone as before, so the
//! alternating fixpoint lifts verbatim; this module computes it by naive
//! iteration over the finite active domain (FP has no function symbols —
//! function symbols are rejected).
//!
//! For programs whose IDB relations occur only positively, `S_P(Ĩ)` is
//! independent of `Ĩ` (Theorem 8.1) and equals the fixpoint-logic least
//! model, which [`fp_model`] also computes directly — the agreement is a
//! test.

use crate::formula::{
    eval_nnf, resolve_atom, to_nnf, EvalContext, Formula, GeneralProgram, LiteralSet, Nnf,
};
use afp_core::interp::PartialModel;
use afp_datalog::ast::{Atom, Term};
use afp_datalog::atoms::{ConstId, HerbrandBase};
use afp_datalog::bitset::AtomSet;
use afp_datalog::fx::FxHashMap;
use afp_datalog::symbol::Symbol;
use afp_datalog::AtomId;

/// Errors from general-program evaluation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GeneralError {
    /// Function symbols are outside FP / alternating fixpoint logic's
    /// finite-structure setting.
    FunctionSymbols,
    /// A predicate is used with two different arities.
    ArityMismatch(String),
    /// [`fp_model`] requires IDB relations to occur only positively.
    NegativeIdbOccurrence(String),
    /// The program mentions no constants: the active domain is empty and
    /// no atom can be instantiated.
    EmptyDomain,
}

impl std::fmt::Display for GeneralError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeneralError::FunctionSymbols => {
                write!(f, "general programs must be function-free")
            }
            GeneralError::ArityMismatch(p) => write!(f, "predicate {p} used with two arities"),
            GeneralError::NegativeIdbOccurrence(p) => {
                write!(
                    f,
                    "fixpoint logic requires positive IDB occurrences, but {p} occurs negatively"
                )
            }
            GeneralError::EmptyDomain => write!(f, "empty active domain"),
        }
    }
}

impl std::error::Error for GeneralError {}

/// The instantiated universe of a general program: active domain plus the
/// fully materialized Herbrand base (every predicate × every domain tuple).
#[derive(Debug)]
pub struct GeneralContext {
    /// Interned ground atoms.
    pub base: HerbrandBase,
    /// The active domain.
    pub domain: Vec<ConstId>,
    /// Predicates with their arities, in first-appearance order.
    pub preds: Vec<(Symbol, usize)>,
    /// The EDB facts as an atom set.
    pub facts: AtomSet,
}

impl GeneralContext {
    /// Build the context: collect predicates/arities and constants, then
    /// materialize all atoms.
    pub fn build(y: &GeneralProgram) -> Result<GeneralContext, GeneralError> {
        let mut preds: Vec<(Symbol, usize)> = Vec::new();
        let mut consts: Vec<Symbol> = Vec::new();
        fn see_atom(
            a: &Atom,
            preds: &mut Vec<(Symbol, usize)>,
            consts: &mut Vec<Symbol>,
        ) -> Result<(), GeneralError> {
            match preds.iter().find(|(p, _)| *p == a.pred) {
                Some((_, ar)) if *ar != a.arity() => {
                    return Err(GeneralError::ArityMismatch(format!("{:?}", a.pred)))
                }
                Some(_) => {}
                None => preds.push((a.pred, a.arity())),
            }
            for t in &a.args {
                collect_consts(t, consts)?;
            }
            Ok(())
        }
        for f in &y.facts {
            see_atom(f, &mut preds, &mut consts)?;
        }
        for r in &y.rules {
            see_atom(&r.head, &mut preds, &mut consts)?;
            walk_formula(&r.body, &mut preds, &mut consts)?;
        }
        consts.sort_unstable();
        consts.dedup();
        // A purely propositional program is fine over the empty structure
        // (∀ vacuously true, ∃ vacuously false); but a rule head with
        // variables can never be instantiated — reject that as a user
        // error.
        if consts.is_empty() {
            let head_has_vars = y.rules.iter().any(|r| !r.head.is_ground());
            if head_has_vars {
                return Err(GeneralError::EmptyDomain);
            }
        }
        let mut base = HerbrandBase::new();
        let domain: Vec<ConstId> = consts.iter().map(|&c| base.intern_const(c)).collect();
        // Materialize every atom so conjugation ranges over the full base.
        for &(p, arity) in &preds {
            let mut tuple = vec![0usize; arity];
            loop {
                let args: Vec<ConstId> = tuple.iter().map(|&i| domain[i]).collect();
                base.intern_atom(p, &args);
                // Odometer.
                let mut pos = 0;
                loop {
                    if pos == arity {
                        break;
                    }
                    tuple[pos] += 1;
                    if tuple[pos] < domain.len() {
                        break;
                    }
                    tuple[pos] = 0;
                    pos += 1;
                }
                if arity == 0 || pos == arity {
                    break;
                }
            }
        }
        let mut facts = AtomSet::empty(base.atom_count());
        for f in &y.facts {
            let env = FxHashMap::default();
            let id = resolve_atom(f, &base, &env).expect("facts are materialized");
            facts.insert(id.0);
        }
        Ok(GeneralContext {
            base,
            domain,
            preds,
            facts,
        })
    }

    /// Universe size.
    pub fn atom_count(&self) -> usize {
        self.base.atom_count()
    }

    /// Render a set of atoms as sorted names.
    pub fn set_to_names(&self, y: &GeneralProgram, set: &AtomSet) -> Vec<String> {
        let mut v: Vec<String> = set
            .iter()
            .map(|a| self.base.display_atom(AtomId(a), &y.symbols))
            .collect();
        v.sort();
        v
    }
}

fn collect_consts(t: &Term, out: &mut Vec<Symbol>) -> Result<(), GeneralError> {
    match t {
        Term::Const(c) => {
            out.push(*c);
            Ok(())
        }
        Term::Var(_) => Ok(()),
        Term::App(..) => Err(GeneralError::FunctionSymbols),
    }
}

fn walk_formula(
    f: &Formula,
    preds: &mut Vec<(Symbol, usize)>,
    consts: &mut Vec<Symbol>,
) -> Result<(), GeneralError> {
    match f {
        Formula::Atom(a) => {
            match preds.iter().find(|(p, _)| *p == a.pred) {
                Some((_, ar)) if *ar != a.arity() => {
                    return Err(GeneralError::ArityMismatch(format!("{:?}", a.pred)))
                }
                Some(_) => {}
                None => preds.push((a.pred, a.arity())),
            }
            for t in &a.args {
                collect_consts(t, consts)?;
            }
            Ok(())
        }
        Formula::Eq(l, r) => {
            collect_consts(l, consts)?;
            collect_consts(r, consts)
        }
        Formula::True | Formula::False => Ok(()),
        Formula::Not(g) => walk_formula(g, preds, consts),
        Formula::And(fs) | Formula::Or(fs) => {
            for g in fs {
                walk_formula(g, preds, consts)?;
            }
            Ok(())
        }
        Formula::Exists(_, g) | Formula::Forall(_, g) => walk_formula(g, preds, consts),
    }
}

/// A rule pre-compiled for instantiation: head variables and NNF body
/// (body variables not in the head are wrapped in an implicit `∃`).
struct PreparedRule {
    head: Atom,
    head_vars: Vec<Symbol>,
    body: Nnf,
}

fn prepare(y: &GeneralProgram) -> Vec<PreparedRule> {
    y.rules
        .iter()
        .map(|r| {
            let mut head_vars = Vec::new();
            r.head.collect_vars(&mut head_vars);
            head_vars.dedup();
            let mut extra = r.body.free_vars();
            extra.retain(|v| !head_vars.contains(v));
            let body = if extra.is_empty() {
                r.body.clone()
            } else {
                Formula::exists(extra, r.body.clone())
            };
            PreparedRule {
                head: r.head.clone(),
                head_vars,
                body: to_nnf(&body),
            }
        })
        .collect()
}

/// `S_P(Ĩ)` for a general program: least fixpoint of one-step derivation
/// with the negative literals frozen to `Ĩ` (Definition 4.2 lifted to
/// first-order bodies, Section 8.1). EDB facts participate as bodyless
/// rules.
pub fn s_p_general(y: &GeneralProgram, ctx: &GeneralContext, i_tilde: &AtomSet) -> AtomSet {
    let rules = prepare(y);
    let mut current = ctx.facts.clone();
    loop {
        let next = step(&rules, ctx, &current, i_tilde);
        if next == current {
            return current;
        }
        current = next;
    }
}

fn step(rules: &[PreparedRule], ctx: &GeneralContext, pos: &AtomSet, neg: &AtomSet) -> AtomSet {
    let mut out = pos.clone();
    let z = LiteralSet {
        pos: pos.clone(),
        neg: neg.clone(),
    };
    let ectx = EvalContext {
        base: &ctx.base,
        domain: &ctx.domain,
    };
    for rule in rules {
        let mut env: FxHashMap<Symbol, ConstId> = FxHashMap::default();
        instantiate_heads(rule, 0, &mut env, &z, &ectx, &mut out);
    }
    out
}

fn instantiate_heads(
    rule: &PreparedRule,
    depth: usize,
    env: &mut FxHashMap<Symbol, ConstId>,
    z: &LiteralSet,
    ectx: &EvalContext<'_>,
    out: &mut AtomSet,
) {
    if depth == rule.head_vars.len() {
        if eval_nnf(&rule.body, z, ectx, env) {
            if let Some(id) = resolve_atom(&rule.head, ectx.base, env) {
                out.insert(id.0);
            }
        }
        return;
    }
    let v = rule.head_vars[depth];
    for &d in ectx.domain {
        env.insert(v, d);
        instantiate_heads(rule, depth + 1, env, z, ectx, out);
    }
    env.remove(&v);
}

/// Result of the general alternating fixpoint.
pub struct GeneralAfpResult {
    /// The AFP partial model over the materialized base.
    pub model: PartialModel,
    /// The context (for rendering and lookups).
    pub ctx: GeneralContext,
    /// Number of `S̃_P` applications.
    pub iterations: usize,
}

/// Alternating fixpoint of a general program (Section 8.1's lift of
/// Definition 5.1/5.2).
pub fn afp_general(y: &GeneralProgram) -> Result<GeneralAfpResult, GeneralError> {
    let ctx = GeneralContext::build(y)?;
    let mut under = AtomSet::empty(ctx.atom_count());
    let mut iterations = 0;
    let (a_tilde, a_plus) = loop {
        let sp_under = s_p_general(y, &ctx, &under);
        let over = sp_under.complement();
        iterations += 1;
        if over == under {
            break (under, sp_under);
        }
        let sp_over = s_p_general(y, &ctx, &over);
        let next_under = sp_over.complement();
        iterations += 1;
        if next_under == under {
            break (under, sp_under);
        }
        under = next_under;
    };
    Ok(GeneralAfpResult {
        model: PartialModel::new(a_plus, a_tilde),
        ctx,
        iterations,
    })
}

/// The fixpoint-logic (FP) least model of a program whose IDB relations
/// occur only positively (Theorem 8.1's hypothesis; negative EDB literals
/// are allowed and evaluate against the complement of the facts).
pub fn fp_model(y: &GeneralProgram) -> Result<(AtomSet, GeneralContext), GeneralError> {
    let idb = y.idb_predicates();
    for r in &y.rules {
        for (pred, positive) in r.body.predicate_occurrences() {
            if !positive && idb.contains(&pred) {
                return Err(GeneralError::NegativeIdbOccurrence(format!("{pred:?}")));
            }
        }
    }
    let ctx = GeneralContext::build(y)?;
    // Negative literals can only name EDB relations; they hold exactly on
    // the complement of the facts (restricted to EDB predicates).
    let mut neg = ctx.facts.complement();
    let idb_atoms: Vec<u32> = ctx
        .base
        .atom_ids()
        .filter(|&a| {
            let (p, _) = ctx.base.atom(a);
            idb.contains(&p)
        })
        .map(|a| a.0)
        .collect();
    for a in idb_atoms {
        neg.remove(a);
    }
    let m = s_p_general(y, &ctx, &neg);
    Ok((m, ctx))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::formula::GeneralRule;

    /// Example 8.2 over a configurable edge list.
    fn well_founded_program(edges: &[(&str, &str)], extra_nodes: &[&str]) -> GeneralProgram {
        let mut y = GeneralProgram::new();
        let w = y.symbols.intern("w");
        let e = y.symbols.intern("e");
        let node = y.symbols.intern("node");
        let x = y.symbols.intern("X");
        let yv = y.symbols.intern("Y");
        let body = Formula::And(vec![
            Formula::Atom(Atom::new(node, vec![Term::Var(x)])),
            Formula::not(Formula::exists(
                vec![yv],
                Formula::And(vec![
                    Formula::Atom(Atom::new(e, vec![Term::Var(yv), Term::Var(x)])),
                    Formula::not(Formula::Atom(Atom::new(w, vec![Term::Var(yv)]))),
                ]),
            )),
        ]);
        y.rules.push(GeneralRule {
            head: Atom::new(w, vec![Term::Var(x)]),
            body,
        });
        let mut nodes: Vec<&str> = extra_nodes.to_vec();
        for &(a, b) in edges {
            if !nodes.contains(&a) {
                nodes.push(a);
            }
            if !nodes.contains(&b) {
                nodes.push(b);
            }
        }
        for n in nodes {
            let c = y.symbols.intern(n);
            y.facts.push(Atom::new(node, vec![Term::Const(c)]));
        }
        for &(a, b) in edges {
            let ca = y.symbols.intern(a);
            let cb = y.symbols.intern(b);
            y.facts
                .push(Atom::new(e, vec![Term::Const(ca), Term::Const(cb)]));
        }
        y
    }

    #[test]
    fn example_8_2_chain_is_well_founded() {
        // a → b → c (edges point parent→child; e(Y,X) means Y is a
        // predecessor of X). Every node of a finite acyclic graph is
        // well-founded.
        let y = well_founded_program(&[("a", "b"), ("b", "c")], &[]);
        let (m, ctx) = fp_model(&y).unwrap();
        let names = ctx.set_to_names(&y, &m);
        assert!(names.contains(&"w(a)".to_string()));
        assert!(names.contains(&"w(b)".to_string()));
        assert!(names.contains(&"w(c)".to_string()));
    }

    #[test]
    fn example_8_2_cycle_is_not_well_founded() {
        // a ⇄ b cycle plus isolated d: cycle nodes have an infinite
        // descending chain; d is well-founded.
        let y = well_founded_program(&[("a", "b"), ("b", "a")], &["d"]);
        let (m, ctx) = fp_model(&y).unwrap();
        let names = ctx.set_to_names(&y, &m);
        assert!(!names.contains(&"w(a)".to_string()));
        assert!(!names.contains(&"w(b)".to_string()));
        assert!(names.contains(&"w(d)".to_string()));
    }

    #[test]
    fn theorem_8_1_afp_positive_part_equals_fp() {
        let y = well_founded_program(&[("a", "b"), ("b", "a"), ("b", "c")], &["d"]);
        let (fp, ctx_fp) = fp_model(&y).unwrap();
        let afp = afp_general(&y).unwrap();
        // Compare on the w relation by display names (the two contexts
        // intern identically, but names are the robust interface).
        let fp_names = ctx_fp.set_to_names(&y, &fp);
        let afp_names = afp.ctx.set_to_names(&y, &afp.model.pos);
        let fp_w: Vec<&String> = fp_names.iter().filter(|n| n.starts_with("w(")).collect();
        let afp_w: Vec<&String> = afp_names.iter().filter(|n| n.starts_with("w(")).collect();
        assert_eq!(fp_w, afp_w, "Theorem 8.1");
    }

    #[test]
    fn fp_rejects_negative_idb() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let q = y.symbols.intern("q");
        let a = y.symbols.intern("a");
        y.rules.push(GeneralRule {
            head: Atom::new(p, vec![Term::Const(a)]),
            body: Formula::not(Formula::Atom(Atom::new(q, vec![Term::Const(a)]))),
        });
        y.rules.push(GeneralRule {
            head: Atom::new(q, vec![Term::Const(a)]),
            body: Formula::False,
        });
        assert!(matches!(
            fp_model(&y),
            Err(GeneralError::NegativeIdbOccurrence(_))
        ));
        // But the alternating fixpoint handles it fine.
        let afp = afp_general(&y).unwrap();
        let names = afp.ctx.set_to_names(&y, &afp.model.pos);
        assert!(names.contains(&"p(a)".to_string()));
    }

    #[test]
    fn function_symbols_rejected() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let f = y.symbols.intern("f");
        let a = y.symbols.intern("a");
        y.facts
            .push(Atom::new(p, vec![Term::App(f, vec![Term::Const(a)])]));
        assert_eq!(
            GeneralContext::build(&y).unwrap_err(),
            GeneralError::FunctionSymbols
        );
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let a = y.symbols.intern("a");
        y.facts.push(Atom::new(p, vec![Term::Const(a)]));
        y.facts
            .push(Atom::new(p, vec![Term::Const(a), Term::Const(a)]));
        assert!(matches!(
            GeneralContext::build(&y),
            Err(GeneralError::ArityMismatch(_))
        ));
    }

    #[test]
    fn empty_domain_rejected() {
        let mut y = GeneralProgram::new();
        let p = y.symbols.intern("p");
        let x = y.symbols.intern("X");
        y.rules.push(GeneralRule {
            head: Atom::new(p, vec![Term::Var(x)]),
            body: Formula::True,
        });
        assert_eq!(
            GeneralContext::build(&y).unwrap_err(),
            GeneralError::EmptyDomain
        );
    }

    #[test]
    fn transitive_closure_in_fp() {
        // tc(X,Y) ← e(X,Y) ∨ ∃Z[e(X,Z) ∧ tc(Z,Y)] — one rule per IDB
        // relation, FP style.
        let mut y = GeneralProgram::new();
        let tc = y.symbols.intern("tc");
        let e = y.symbols.intern("e");
        let x = y.symbols.intern("X");
        let yy = y.symbols.intern("Y");
        let z = y.symbols.intern("Z");
        y.rules.push(GeneralRule {
            head: Atom::new(tc, vec![Term::Var(x), Term::Var(yy)]),
            body: Formula::Or(vec![
                Formula::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(yy)])),
                Formula::exists(
                    vec![z],
                    Formula::And(vec![
                        Formula::Atom(Atom::new(e, vec![Term::Var(x), Term::Var(z)])),
                        Formula::Atom(Atom::new(tc, vec![Term::Var(z), Term::Var(yy)])),
                    ]),
                ),
            ]),
        });
        for (a, b) in [("a", "b"), ("b", "c")] {
            let ca = y.symbols.intern(a);
            let cb = y.symbols.intern(b);
            y.facts
                .push(Atom::new(e, vec![Term::Const(ca), Term::Const(cb)]));
        }
        let (m, ctx) = fp_model(&y).unwrap();
        let names = ctx.set_to_names(&y, &m);
        assert!(names.contains(&"tc(a, c)".to_string()));
        assert!(!names.contains(&"tc(c, a)".to_string()));
    }
}
