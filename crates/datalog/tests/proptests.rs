//! Property tests for the substrate: bitsets against a `BTreeSet` model,
//! parser round-trips over arbitrary ASTs, and semi-naive evaluation
//! against naive ground-level closure.

use afp_datalog::ast::{Atom, Literal, Program, Rule, Term};
use afp_datalog::bitset::AtomSet;
use afp_datalog::parser::parse_program;
use proptest::prelude::*;
use std::collections::BTreeSet;

// ---------------------------------------------------------------- bitset

fn set_pair() -> impl Strategy<Value = (usize, Vec<u32>, Vec<u32>)> {
    (1usize..200).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec(0..n as u32, 0..n),
            proptest::collection::vec(0..n as u32, 0..n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn bitset_matches_btreeset((n, xs, ys) in set_pair()) {
        let a = AtomSet::from_iter(n, xs.iter().copied());
        let b = AtomSet::from_iter(n, ys.iter().copied());
        let ra: BTreeSet<u32> = xs.iter().copied().collect();
        let rb: BTreeSet<u32> = ys.iter().copied().collect();

        prop_assert_eq!(a.count(), ra.len());
        prop_assert_eq!(
            a.union(&b).iter().collect::<Vec<_>>(),
            ra.union(&rb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            a.intersection(&b).iter().collect::<Vec<_>>(),
            ra.intersection(&rb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(
            a.difference(&b).iter().collect::<Vec<_>>(),
            ra.difference(&rb).copied().collect::<Vec<_>>()
        );
        prop_assert_eq!(a.is_subset(&b), ra.is_subset(&rb));
        prop_assert_eq!(a.is_disjoint(&b), ra.is_disjoint(&rb));
        // Complement laws.
        prop_assert_eq!(a.complement().complement(), a.clone());
        prop_assert_eq!(a.complement().count(), n - ra.len());
        prop_assert!(a.complement().is_disjoint(&a));
    }

    #[test]
    fn bitset_insert_remove((n, xs, _) in set_pair()) {
        let mut s = AtomSet::empty(n);
        let mut model: BTreeSet<u32> = BTreeSet::new();
        for x in xs {
            prop_assert_eq!(s.insert(x), model.insert(x));
        }
        for x in model.clone() {
            prop_assert!(s.contains(x));
            prop_assert!(s.remove(x));
            prop_assert!(!s.remove(x));
        }
        prop_assert!(s.is_empty());
    }
}

// ---------------------------------------------------------------- parser

/// Generate a random (well-formed) program AST and check that rendering
/// then reparsing is a fixpoint of rendering.
fn ast_strategy() -> impl Strategy<Value = Program> {
    let pred_names = prop_oneof![
        Just("p"),
        Just("q"),
        Just("edge"),
        Just("wins"),
        Just("a_b1")
    ];
    let const_names = prop_oneof![
        Just("a"),
        Just("b"),
        Just("c42"),
        Just("two words"),
        Just("It's"),
        Just("42")
    ];
    let var_names = prop_oneof![Just("X"), Just("Y"), Just("_Z")];
    let term = prop_oneof![
        const_names.clone().prop_map(TermDesc::Const),
        var_names.prop_map(TermDesc::Var),
        const_names.prop_map(|c| TermDesc::App("f", vec![TermDesc::Const(c)])),
    ];
    let atom = (pred_names, proptest::collection::vec(term, 0..3));
    let literal = (atom.clone(), any::<bool>());
    let rule = (atom, proptest::collection::vec(literal, 0..3));
    proptest::collection::vec(rule, 0..6).prop_map(|rules| {
        let mut p = Program::new();
        for ((hp, hargs), body) in rules {
            let head = build_atom(&mut p, hp, &hargs);
            let lits = body
                .into_iter()
                .map(|((bp, bargs), positive)| {
                    let atom = build_atom(&mut p, bp, &bargs);
                    Literal { atom, positive }
                })
                .collect();
            p.push(Rule::new(head, lits));
        }
        p
    })
}

#[derive(Debug, Clone)]
enum TermDesc {
    Const(&'static str),
    Var(&'static str),
    App(&'static str, Vec<TermDesc>),
}

fn build_term(p: &mut Program, d: &TermDesc) -> Term {
    match d {
        TermDesc::Const(c) => Term::Const(p.symbols.intern(c)),
        TermDesc::Var(v) => Term::Var(p.symbols.intern(v)),
        TermDesc::App(f, args) => {
            let fs = p.symbols.intern(f);
            let ts = args.iter().map(|a| build_term(p, a)).collect();
            Term::App(fs, ts)
        }
    }
}

fn build_atom(p: &mut Program, pred: &str, args: &[TermDesc]) -> Atom {
    let ps = p.symbols.intern(pred);
    let ts = args.iter().map(|a| build_term(p, a)).collect();
    Atom::new(ps, ts)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_parse_roundtrip(ast in ast_strategy()) {
        let text1 = ast.to_text();
        let reparsed = parse_program(&text1).unwrap_or_else(|e| {
            panic!("rendered program failed to parse: {e}\n{text1}")
        });
        let text2 = reparsed.to_text();
        prop_assert_eq!(text1, text2, "render ∘ parse must be a fixpoint");
    }
}

// ------------------------------------------------- grounding vs ground AST

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn positive_seminaive_agrees_with_ground_horn(
        edges in proptest::collection::vec((0u8..5, 0u8..5), 0..12)
    ) {
        // tc over a random small graph: evaluate with the relational
        // semi-naive engine (via the grounder's envelope) and compare to
        // the Horn closure of the *manually* instantiated program.
        let mut src = String::from(
            "tc(X, Y) :- e(X, Y).\n tc(X, Y) :- e(X, Z), tc(Z, Y).\n",
        );
        for &(u, v) in &edges {
            src.push_str(&format!("e(c{u}, c{v}).\n"));
        }
        let ast = parse_program(&src).unwrap();
        let env = afp_datalog::ground::positive_envelope(
            &ast,
            &afp_datalog::GroundOptions::default(),
        ).unwrap();
        let tc = ast.symbols.get("tc");
        let seminaive_count = tc
            .and_then(|t| env.relation(t))
            .map(|r| r.len())
            .unwrap_or(0);

        // Reference: Floyd–Warshall style closure.
        let mut reach = [[false; 5]; 5];
        for &(u, v) in &edges {
            reach[u as usize][v as usize] = true;
        }
        for k in 0..5 {
            for i in 0..5 {
                for j in 0..5 {
                    if reach[i][k] && reach[k][j] {
                        reach[i][j] = true;
                    }
                }
            }
        }
        let expected = reach.iter().flatten().filter(|&&b| b).count();
        prop_assert_eq!(seminaive_count, expected);
    }
}
