//! Tuple storage: relations and database instances.
//!
//! The grounder evaluates the positive part of a program bottom-up over
//! *relations* — sets of tuples of interned ground terms — exactly the
//! EDB/IDB view of Section 2.5 (Figure 1). A [`Relation`] stores its tuples
//! densely with a hash map for deduplication and optional per-column hash
//! indices for join lookups.

use crate::atoms::ConstId;
use crate::fx::FxHashMap;
use crate::symbol::Symbol;

/// A tuple of interned ground terms.
pub type Tuple = Box<[ConstId]>;

/// A set of tuples of fixed arity with optional per-column indices.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    arity: usize,
    rows: Vec<Tuple>,
    map: FxHashMap<Tuple, u32>,
    /// `indices[col]`, when built, maps a term id to the row numbers whose
    /// `col`-th component equals it. Maintained incrementally by `insert`.
    indices: FxHashMap<usize, FxHashMap<ConstId, Vec<u32>>>,
}

impl Relation {
    /// An empty relation of the given arity.
    pub fn new(arity: usize) -> Self {
        Relation {
            arity,
            rows: Vec::new(),
            map: FxHashMap::default(),
            indices: FxHashMap::default(),
        }
    }

    /// Arity of the relation.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no tuples.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Insert a tuple; returns `true` if it was new.
    ///
    /// # Panics
    /// Panics in debug builds if the tuple's arity is wrong.
    pub fn insert(&mut self, tuple: Tuple) -> bool {
        debug_assert_eq!(tuple.len(), self.arity);
        if self.map.contains_key(&tuple) {
            return false;
        }
        let row = self.rows.len() as u32;
        for (&col, index) in self.indices.iter_mut() {
            index.entry(tuple[col]).or_default().push(row);
        }
        self.map.insert(tuple.clone(), row);
        self.rows.push(tuple);
        true
    }

    /// Membership test.
    pub fn contains(&self, tuple: &[ConstId]) -> bool {
        self.map.contains_key(tuple)
    }

    /// All tuples, in insertion order.
    pub fn rows(&self) -> &[Tuple] {
        &self.rows
    }

    /// Build (if absent) the index for `col`.
    pub fn ensure_index(&mut self, col: usize) {
        debug_assert!(col < self.arity);
        if self.indices.contains_key(&col) {
            return;
        }
        let mut index: FxHashMap<ConstId, Vec<u32>> = FxHashMap::default();
        for (row, t) in self.rows.iter().enumerate() {
            index.entry(t[col]).or_default().push(row as u32);
        }
        self.indices.insert(col, index);
    }

    /// Row numbers whose `col`-th component is `value`, if that column is
    /// indexed.
    pub fn probe(&self, col: usize, value: ConstId) -> Option<&[u32]> {
        self.indices
            .get(&col)
            .map(|ix| ix.get(&value).map(|v| v.as_slice()).unwrap_or(&[]))
    }

    /// A tuple by row number.
    pub fn row(&self, row: u32) -> &Tuple {
        &self.rows[row as usize]
    }
}

/// A database instance: one relation per predicate symbol.
#[derive(Debug, Clone, Default)]
pub struct Database {
    relations: FxHashMap<Symbol, Relation>,
}

impl Database {
    /// An empty instance.
    pub fn new() -> Self {
        Self::default()
    }

    /// The relation for `pred`, creating it (with the given arity) if absent.
    pub fn relation_mut(&mut self, pred: Symbol, arity: usize) -> &mut Relation {
        self.relations
            .entry(pred)
            .or_insert_with(|| Relation::new(arity))
    }

    /// The relation for `pred`, if any tuples or schema were ever recorded.
    pub fn relation(&self, pred: Symbol) -> Option<&Relation> {
        self.relations.get(&pred)
    }

    /// Insert a tuple; creates the relation on first use.
    pub fn insert(&mut self, pred: Symbol, tuple: Tuple) -> bool {
        let arity = tuple.len();
        self.relation_mut(pred, arity).insert(tuple)
    }

    /// Membership test (false if the relation does not exist).
    pub fn contains(&self, pred: Symbol, tuple: &[ConstId]) -> bool {
        self.relations
            .get(&pred)
            .map(|r| r.contains(tuple))
            .unwrap_or(false)
    }

    /// Total tuple count across relations.
    pub fn total_tuples(&self) -> usize {
        self.relations.values().map(Relation::len).sum()
    }

    /// Iterate over `(pred, relation)` pairs (arbitrary order).
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &Relation)> {
        self.relations.iter().map(|(&p, r)| (p, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::HerbrandBase;
    use crate::symbol::SymbolStore;

    fn consts(n: usize) -> (HerbrandBase, Vec<ConstId>, SymbolStore) {
        let mut syms = SymbolStore::new();
        let mut hb = HerbrandBase::new();
        let ids = (0..n)
            .map(|i| {
                let s = syms.intern(&format!("c{i}"));
                hb.intern_const(s)
            })
            .collect();
        (hb, ids, syms)
    }

    #[test]
    fn insert_dedup_and_contains() {
        let (_, c, _) = consts(3);
        let mut r = Relation::new(2);
        assert!(r.insert(vec![c[0], c[1]].into()));
        assert!(!r.insert(vec![c[0], c[1]].into()));
        assert!(r.insert(vec![c[1], c[2]].into()));
        assert_eq!(r.len(), 2);
        assert!(r.contains(&[c[0], c[1]]));
        assert!(!r.contains(&[c[2], c[0]]));
    }

    #[test]
    fn index_probe_finds_rows() {
        let (_, c, _) = consts(4);
        let mut r = Relation::new(2);
        r.insert(vec![c[0], c[1]].into());
        r.insert(vec![c[0], c[2]].into());
        r.insert(vec![c[3], c[1]].into());
        r.ensure_index(0);
        let rows = r.probe(0, c[0]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(r.probe(0, c[3]).unwrap().len(), 1);
        assert!(r.probe(1, c[1]).is_none(), "column 1 not indexed");
    }

    #[test]
    fn index_is_maintained_across_inserts() {
        let (_, c, _) = consts(3);
        let mut r = Relation::new(1);
        r.ensure_index(0);
        r.insert(vec![c[0]].into());
        r.insert(vec![c[1]].into());
        assert_eq!(r.probe(0, c[0]).unwrap(), &[0]);
        assert_eq!(r.probe(0, c[1]).unwrap(), &[1]);
        assert_eq!(r.probe(0, c[2]).unwrap(), &[] as &[u32]);
    }

    #[test]
    fn database_roundtrip() {
        let (_, c, mut syms) = consts(2);
        let e = syms.intern("e");
        let mut db = Database::new();
        assert!(db.insert(e, vec![c[0], c[1]].into()));
        assert!(!db.insert(e, vec![c[0], c[1]].into()));
        assert!(db.contains(e, &[c[0], c[1]]));
        assert!(!db.contains(e, &[c[1], c[0]]));
        assert_eq!(db.total_tuples(), 1);
        let missing = syms.intern("missing");
        assert!(db.relation(missing).is_none());
        assert!(!db.contains(missing, &[c[0]]));
    }
}
