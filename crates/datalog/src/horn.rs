//! Linear-time Horn closure: the engine behind the eventual consequence
//! mapping `S_P` (Definition 4.2).
//!
//! Given a fixed set `Ĩ` of negative literals, the paper forms the program
//! `P ∪ Ĩ` — negative literals in `P` are treated as *additional EDB
//! relations* whose facts are given by `Ĩ` (Figure 3) — and takes the Horn
//! least fixpoint `S_P(Ĩ) = T_{P∪Ĩ}↑ω(∅)`. Because the negative facts are
//! frozen, this closure is a plain Horn computation and runs in time linear
//! in the program size with the classic Dowling–Gallier counter scheme:
//! every rule keeps a countdown of positive subgoals not yet derived and of
//! negative subgoals not yet confirmed by `Ĩ`; when both hit zero the head
//! is derived and its own counters cascade.
//!
//! [`HornEngine`] additionally supports *warm starting*: `Ĩ` may grow
//! monotonically (`assume_false`) and the closure is extended incrementally
//! instead of recomputed. The alternating fixpoint's increasing chain of
//! underestimates `Ĩ₀ ⊆ Ĩ₂ ⊆ Ĩ₄ ⊆ …` exploits this (see
//! `afp-core::afp::Strategy::IncrementalUnder`).

use crate::atoms::AtomId;
use crate::bitset::AtomSet;
use crate::program::GroundProgram;

/// Incremental Horn-closure engine over a ground program.
///
/// Invariant: `derived` is exactly `T_{P∪Ĩ}↑ω(∅)` for the current set `Ĩ`
/// of assumed-false atoms, at every point where the public API returns.
pub struct HornEngine<'p> {
    prog: &'p GroundProgram,
    /// Per rule: positive subgoals not yet derived.
    pos_remaining: Vec<u32>,
    /// Per rule: negative subgoals not yet confirmed in `Ĩ`.
    neg_remaining: Vec<u32>,
    /// The atoms assumed false (`Ĩ`, stored as positive ids).
    assumed_false: AtomSet,
    /// The derived positive atoms.
    derived: AtomSet,
    /// Work queue of freshly derived atoms whose consequences are pending.
    queue: Vec<AtomId>,
}

impl<'p> HornEngine<'p> {
    /// Create an engine with `Ĩ = ∅` and run the initial closure (rules
    /// with no positive and no negative subgoals fire immediately).
    pub fn new(prog: &'p GroundProgram) -> Self {
        let mut engine = HornEngine {
            prog,
            pos_remaining: Vec::with_capacity(prog.rule_count()),
            neg_remaining: Vec::with_capacity(prog.rule_count()),
            assumed_false: prog.empty_set(),
            derived: prog.empty_set(),
            queue: Vec::new(),
        };
        for (i, r) in prog.rules().enumerate() {
            engine.pos_remaining.push(r.pos.len() as u32);
            engine.neg_remaining.push(r.neg.len() as u32);
            if r.pos.is_empty() && r.neg.is_empty() {
                engine.fire(i as u32);
            }
        }
        engine.propagate();
        engine
    }

    /// Create an engine with a given initial `Ĩ` and run the closure.
    pub fn with_assumed_false(prog: &'p GroundProgram, assumed: &AtomSet) -> Self {
        let mut engine = Self::new(prog);
        engine.assume_false_all(assumed);
        engine
    }

    /// The current closure `S_P(Ĩ)`.
    pub fn derived(&self) -> &AtomSet {
        &self.derived
    }

    /// The current `Ĩ`.
    pub fn assumed_false(&self) -> &AtomSet {
        &self.assumed_false
    }

    /// Grow `Ĩ` by one atom and extend the closure. Adding an atom twice is
    /// a no-op (counters are decremented exactly once per rule occurrence —
    /// body lists are deduplicated by [`GroundProgram`]).
    pub fn assume_false(&mut self, atom: AtomId) {
        if !self.assumed_false.insert(atom.0) {
            return;
        }
        for &rid in self.prog.rules_with_neg(atom) {
            let n = &mut self.neg_remaining[rid as usize];
            *n -= 1;
            if *n == 0 && self.pos_remaining[rid as usize] == 0 {
                self.fire(rid);
            }
        }
        self.propagate();
    }

    /// Grow `Ĩ` by a whole set and extend the closure.
    pub fn assume_false_all(&mut self, atoms: &AtomSet) {
        for id in atoms.iter() {
            if !self.assumed_false.insert(id) {
                continue;
            }
            for &rid in self.prog.rules_with_neg(AtomId(id)) {
                let n = &mut self.neg_remaining[rid as usize];
                *n -= 1;
                if *n == 0 && self.pos_remaining[rid as usize] == 0 {
                    self.fire(rid);
                }
            }
        }
        self.propagate();
    }

    #[inline]
    fn fire(&mut self, rid: u32) {
        let head = self.prog.rule(rid).head;
        if self.derived.insert(head.0) {
            self.queue.push(head);
        }
    }

    fn propagate(&mut self) {
        while let Some(atom) = self.queue.pop() {
            for i in 0..self.prog.rules_with_pos(atom).len() {
                let rid = self.prog.rules_with_pos(atom)[i];
                let p = &mut self.pos_remaining[rid as usize];
                *p -= 1;
                if *p == 0 && self.neg_remaining[rid as usize] == 0 {
                    let head = self.prog.rule(rid).head;
                    if self.derived.insert(head.0) {
                        self.queue.push(head);
                    }
                }
            }
        }
    }
}

/// One-shot eventual consequence mapping: `S_P(Ĩ) = T_{P∪Ĩ}↑ω(∅)`
/// (Definition 4.2). Linear in the program size.
pub fn eventual_consequences(prog: &GroundProgram, assumed_false: &AtomSet) -> AtomSet {
    let mut engine = HornEngine::new(prog);
    engine.assume_false_all(assumed_false);
    engine.derived
}

/// Reference implementation of `S_P` by naive round-based iteration of
/// `T_{P∪Ĩ}` — quadratic, used only for differential testing of the
/// counter engine.
pub fn eventual_consequences_naive(prog: &GroundProgram, assumed_false: &AtomSet) -> AtomSet {
    let mut current = prog.empty_set();
    loop {
        let next = immediate_consequences(prog, &current, assumed_false);
        if next == current {
            return current;
        }
        current = next;
    }
}

/// The two-argument immediate consequence mapping `C_P(I⁺, Ĩ)` of
/// Definition 3.6: heads of rules whose positive subgoals all lie in `I⁺`
/// and whose negated subgoals all lie in `Ĩ`. One application, no closure.
///
/// The combined set `I⁺ ∔ Ĩ` is *not* required to be consistent — during
/// the alternating computation overestimates can be "contradictory"
/// (Example 5.1) and that is fine.
pub fn immediate_consequences(
    prog: &GroundProgram,
    pos: &AtomSet,
    assumed_false: &AtomSet,
) -> AtomSet {
    let mut out = prog.empty_set();
    'rules: for r in prog.rules() {
        for &p in r.pos.iter() {
            if !pos.contains(p.0) {
                continue 'rules;
            }
        }
        for &n in r.neg.iter() {
            if !assumed_false.contains(n.0) {
                continue 'rules;
            }
        }
        out.insert(r.head.0);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::parse_ground;

    #[test]
    fn plain_horn_closure() {
        let g = parse_ground("a. b :- a. c :- b. d :- e.");
        let out = eventual_consequences(&g, &g.empty_set());
        assert_eq!(g.set_to_names(&out), vec!["a", "b", "c"]);
    }

    #[test]
    fn negative_literals_block_until_assumed() {
        let g = parse_ground("p :- not q. q :- r.");
        let none = eventual_consequences(&g, &g.empty_set());
        assert!(none.is_empty());
        let q = g.find_atom_by_name("q", &[]).unwrap();
        let mut assumed = g.empty_set();
        assumed.insert(q.0);
        let out = eventual_consequences(&g, &assumed);
        assert_eq!(g.set_to_names(&out), vec!["p"]);
    }

    #[test]
    fn contradictory_overestimates_are_allowed() {
        // With Ĩ = {¬p, ¬q} both p and q are derivable — the combination is
        // "contradictory" in the paper's words, and deliberately permitted.
        let g = parse_ground("p :- not q. q :- not p.");
        let out = eventual_consequences(&g, &g.full_set());
        assert_eq!(out.count(), 2);
    }

    #[test]
    fn warm_start_equals_cold_start() {
        let g = parse_ground("p :- not q. q :- not r. r :- s, not t. s. u :- p, q. v :- not v.");
        let t = g.find_atom_by_name("t", &[]).unwrap();
        let r = g.find_atom_by_name("r", &[]).unwrap();
        let q = g.find_atom_by_name("q", &[]).unwrap();

        let mut warm = HornEngine::new(&g);
        warm.assume_false(t);
        warm.assume_false(r);
        warm.assume_false(q);
        // duplicate add is a no-op
        warm.assume_false(q);

        let mut assumed = g.empty_set();
        for a in [t, r, q] {
            assumed.insert(a.0);
        }
        let cold = eventual_consequences(&g, &assumed);
        assert_eq!(warm.derived(), &cold);
    }

    #[test]
    fn counter_engine_matches_naive_reference() {
        let g = parse_ground("a. b :- a, not c. c :- not b. d :- b, c. e :- d. e :- a, not a.");
        for mask in 0u32..32 {
            let mut assumed = g.empty_set();
            for bit in 0..5 {
                if mask & (1 << bit) != 0 {
                    assumed.insert(bit);
                }
            }
            assert_eq!(
                eventual_consequences(&g, &assumed),
                eventual_consequences_naive(&g, &assumed),
                "mismatch for Ĩ = {assumed:?}"
            );
        }
    }

    #[test]
    fn s_p_is_monotone_in_assumed_false() {
        let g = parse_ground("p :- not q. r :- p, not s. q :- not p.");
        let small = g.empty_set();
        let mut big = g.empty_set();
        big.insert(g.find_atom_by_name("q", &[]).unwrap().0);
        big.insert(g.find_atom_by_name("s", &[]).unwrap().0);
        let s_small = eventual_consequences(&g, &small);
        let s_big = eventual_consequences(&g, &big);
        assert!(s_small.is_subset(&s_big));
    }

    #[test]
    fn immediate_consequences_single_step() {
        let g = parse_ground("a. b :- a. c :- b.");
        let step1 = immediate_consequences(&g, &g.empty_set(), &g.empty_set());
        assert_eq!(g.set_to_names(&step1), vec!["a"]);
        let step2 = immediate_consequences(&g, &step1, &g.empty_set());
        assert_eq!(g.set_to_names(&step2), vec!["a", "b"]);
    }

    #[test]
    fn self_negation_never_fires_without_assumption() {
        let g = parse_ground("v :- not v.");
        assert!(eventual_consequences(&g, &g.empty_set()).is_empty());
        let out = eventual_consequences(&g, &g.full_set());
        assert_eq!(out.count(), 1);
    }

    #[test]
    fn example_5_1_first_steps() {
        // The program of Example 5.1 / Table I:
        //   S_P(∅)   = {p(c)}
        //   Ĩ₁       = conj({p(c)}) = ¬·p{a,b,d,e,f,g,h,i}
        //   S_P(Ĩ₁)  = p{a,b,c,i}   (row 1 of Table I)
        let g = example_5_1();
        let s0 = eventual_consequences(&g, &g.empty_set());
        assert_eq!(g.set_to_names(&s0), vec!["p(c)"]);
        let i1 = s0.complement();
        let s1 = eventual_consequences(&g, &i1);
        assert_eq!(g.set_to_names(&s1), vec!["p(a)", "p(b)", "p(c)", "p(i)"]);
    }

    /// The nine-atom program of Example 5.1 / Table I.
    pub(crate) fn example_5_1() -> GroundProgram {
        parse_ground(
            "p(a) :- p(c), not p(b).
             p(b) :- not p(a).
             p(c).
             p(d) :- p(e), not p(f).
             p(d) :- p(f), not p(g).
             p(d) :- p(h).
             p(e) :- p(d).
             p(f) :- p(e).
             p(f) :- not p(c).
             p(i) :- p(c), not p(d).",
        )
    }
}
