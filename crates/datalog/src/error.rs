//! Typed errors for parsing, validation, and grounding.

use std::fmt;

/// Source location (1-based line and column) of a parse diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Location {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column number.
    pub column: u32,
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.column)
    }
}

/// Errors produced while turning program text into an AST.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// A character the tokenizer does not understand.
    UnexpectedChar {
        /// The offending character.
        ch: char,
        /// Where it was found.
        at: Location,
    },
    /// A token that does not fit the grammar at this point.
    UnexpectedToken {
        /// Debug rendering of the found token.
        found: String,
        /// What the grammar wanted.
        expected: &'static str,
        /// Where the token was found.
        at: Location,
    },
    /// Input ended mid-rule.
    UnexpectedEof {
        /// What the grammar wanted.
        expected: &'static str,
    },
    /// A quoted constant was never closed.
    UnterminatedQuote {
        /// Where the quote opened.
        at: Location,
    },
    /// A rule head used a variable-headed "atom" or other non-atom.
    InvalidHead {
        /// Where the head starts.
        at: Location,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedChar { ch, at } => {
                write!(f, "{at}: unexpected character {ch:?}")
            }
            ParseError::UnexpectedToken {
                found,
                expected,
                at,
            } => write!(f, "{at}: expected {expected}, found {found}"),
            ParseError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            ParseError::UnterminatedQuote { at } => {
                write!(f, "{at}: unterminated quoted constant")
            }
            ParseError::InvalidHead { at } => {
                write!(f, "{at}: rule head must be a non-negated atom")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors produced while validating or grounding a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GroundError {
    /// A rule is unsafe: `variable` occurs in the head or in a negative
    /// subgoal but in no positive body subgoal, and the active-domain
    /// safety policy was not enabled.
    UnsafeRule {
        /// Display form of the offending rule.
        rule: String,
        /// Name of the first unguarded variable.
        variable: String,
    },
    /// Instantiation exceeded the configured atom budget; the Herbrand
    /// universe is (or behaves as if) infinite.
    AtomBudgetExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// Instantiation exceeded the configured ground-rule budget.
    RuleBudgetExceeded {
        /// The configured limit.
        limit: usize,
    },
    /// A program with no constants anywhere cannot be grounded under the
    /// active-domain policy (the active domain is empty).
    EmptyDomain,
}

impl fmt::Display for GroundError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GroundError::UnsafeRule { rule, variable } => write!(
                f,
                "unsafe rule `{rule}`: variable {variable} does not occur in any \
                 positive body subgoal (enable SafetyPolicy::ActiveDomain to range-restrict it)"
            ),
            GroundError::AtomBudgetExceeded { limit } => write!(
                f,
                "grounding exceeded the atom budget of {limit}; the Herbrand base is too \
                 large or infinite (function symbols?)"
            ),
            GroundError::RuleBudgetExceeded { limit } => {
                write!(f, "grounding exceeded the ground-rule budget of {limit}")
            }
            GroundError::EmptyDomain => write!(
                f,
                "cannot ground under the active-domain policy: the program mentions no constants"
            ),
        }
    }
}

impl std::error::Error for GroundError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let e = ParseError::UnexpectedToken {
            found: "','".into(),
            expected: "an atom",
            at: Location { line: 3, column: 7 },
        };
        let s = e.to_string();
        assert!(s.contains("3:7"));
        assert!(s.contains("an atom"));

        let g = GroundError::UnsafeRule {
            rule: "p(X) :- not q(X).".into(),
            variable: "X".into(),
        };
        assert!(g.to_string().contains("unsafe rule"));
        assert!(g.to_string().contains('X'));
    }
}
