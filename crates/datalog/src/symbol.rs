//! String interning.
//!
//! Every name in a program — predicate symbols, constants, function symbols,
//! variable names — is interned once into a [`SymbolStore`] and referred to by
//! a 4-byte [`Symbol`] thereafter. All comparisons on hot paths are integer
//! comparisons; the store is only consulted again for display.

use crate::fx::FxHashMap;
use std::fmt;

/// An interned string. Cheap to copy and compare; resolve through the
/// [`SymbolStore`] that produced it.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(u32);

impl Symbol {
    /// The raw index of this symbol inside its store.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Reconstruct a symbol from a raw index. The caller must guarantee the
    /// index came from [`Symbol::index`] on the same store.
    #[inline]
    pub fn from_index(ix: usize) -> Symbol {
        Symbol(u32::try_from(ix).expect("symbol index overflow"))
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sym#{}", self.0)
    }
}

/// An append-only intern table mapping strings to [`Symbol`]s.
#[derive(Default, Clone)]
pub struct SymbolStore {
    names: Vec<Box<str>>,
    map: FxHashMap<Box<str>, Symbol>,
}

impl SymbolStore {
    /// Create an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern `name`, returning its symbol. Re-interning an existing name
    /// returns the same symbol.
    pub fn intern(&mut self, name: &str) -> Symbol {
        if let Some(&sym) = self.map.get(name) {
            return sym;
        }
        let sym = Symbol(u32::try_from(self.names.len()).expect("too many symbols"));
        let boxed: Box<str> = name.into();
        self.names.push(boxed.clone());
        self.map.insert(boxed, sym);
        sym
    }

    /// Look up a name without interning it.
    pub fn get(&self, name: &str) -> Option<Symbol> {
        self.map.get(name).copied()
    }

    /// Resolve a symbol back to its string.
    ///
    /// # Panics
    /// Panics if `sym` did not come from this store.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Number of interned symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// True when nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterate over `(symbol, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Symbol(i as u32), n.as_ref()))
    }

    /// Intern a name that is guaranteed fresh (used by transformations that
    /// invent auxiliary predicates). If `base` is taken, `base_2`, `base_3`,
    /// … are tried.
    pub fn intern_fresh(&mut self, base: &str) -> Symbol {
        if self.get(base).is_none() {
            return self.intern(base);
        }
        for i in 2.. {
            let candidate = format!("{base}_{i}");
            if self.get(&candidate).is_none() {
                return self.intern(&candidate);
            }
        }
        unreachable!("unbounded loop always returns")
    }
}

impl fmt::Debug for SymbolStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SymbolStore")
            .field("len", &self.names.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_idempotent() {
        let mut store = SymbolStore::new();
        let a = store.intern("wins");
        let b = store.intern("wins");
        assert_eq!(a, b);
        assert_eq!(store.len(), 1);
        assert_eq!(store.name(a), "wins");
    }

    #[test]
    fn distinct_names_distinct_symbols() {
        let mut store = SymbolStore::new();
        let a = store.intern("p");
        let b = store.intern("q");
        assert_ne!(a, b);
        assert_eq!(store.name(a), "p");
        assert_eq!(store.name(b), "q");
    }

    #[test]
    fn get_does_not_intern() {
        let mut store = SymbolStore::new();
        assert!(store.get("missing").is_none());
        let s = store.intern("present");
        assert_eq!(store.get("present"), Some(s));
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn fresh_names_avoid_collisions() {
        let mut store = SymbolStore::new();
        store.intern("aux");
        store.intern("aux_2");
        let f = store.intern_fresh("aux");
        assert_eq!(store.name(f), "aux_3");
        let g = store.intern_fresh("other");
        assert_eq!(store.name(g), "other");
    }

    #[test]
    fn iteration_order_is_interning_order() {
        let mut store = SymbolStore::new();
        store.intern("a");
        store.intern("b");
        store.intern("c");
        let names: Vec<&str> = store.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["a", "b", "c"]);
    }

    #[test]
    fn symbol_index_roundtrip() {
        let mut store = SymbolStore::new();
        let s = store.intern("x");
        assert_eq!(Symbol::from_index(s.index()), s);
    }
}
