//! Parser for normal logic programs.
//!
//! Grammar (Prolog-flavoured, as in the paper's examples):
//!
//! ```text
//! program  := rule*
//! rule     := atom ( ":-" literals )? "."
//! literals := literal ( "," literal )*
//! literal  := ("not" | "\+" | "~" | "¬")? atom
//! atom     := IDENT ( "(" term ("," term)* ")" )?
//! term     := VARIABLE | CONSTANT | NUMBER | QUOTED | IDENT "(" term,* ")"
//! ```
//!
//! Identifiers beginning with a lowercase letter are constants / predicate /
//! function symbols; identifiers beginning with an uppercase letter or `_`
//! are variables (convention (3) of Section 1.1). Comments run from `%` or
//! `//` to end of line, or between `/*` and `*/`.

use crate::ast::{Atom, Literal, Program, Rule, Term};
use crate::error::{Location, ParseError};

/// Parse a complete program from source text.
pub fn parse_program(src: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        program: Program::new(),
    };
    parser.program()?;
    Ok(parser.program)
}

/// Parse a single ground or non-ground atom (handy for queries in examples
/// and tests). The atom must consume the entire input (a trailing `.` is
/// allowed).
pub fn parse_atom_into(src: &str, program: &mut Program) -> Result<Atom, ParseError> {
    let tokens = tokenize(src)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        program: std::mem::take(program),
    };
    let atom = parser.atom();
    let atom = match atom {
        Ok(a) => a,
        Err(e) => {
            *program = std::mem::take(&mut parser.program);
            return Err(e);
        }
    };
    let _ = parser.eat(&TokenKind::Dot);
    let result = if parser.peek().is_some() {
        Err(parser.unexpected("end of input"))
    } else {
        Ok(atom)
    };
    *program = std::mem::take(&mut parser.program);
    result
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum TokenKind {
    /// lowercase-initial identifier
    Ident(String),
    /// uppercase/underscore-initial identifier
    Variable(String),
    /// number or quoted literal, kept as constant text
    Constant(String),
    If,  // :-
    Not, // not | \+ | ~ | ¬
    Comma,
    Dot,
    LParen,
    RParen,
}

#[derive(Debug, Clone)]
struct Token {
    kind: TokenKind,
    at: Location,
}

fn tokenize(src: &str) -> Result<Vec<Token>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;
    let mut col: u32 = 1;

    macro_rules! bump {
        () => {{
            let c = chars.next();
            if let Some(c) = c {
                if c == '\n' {
                    line += 1;
                    col = 1;
                } else {
                    col += 1;
                }
            }
            c
        }};
    }

    loop {
        let at = Location { line, column: col };
        let Some(&c) = chars.peek() else { break };
        match c {
            c if c.is_whitespace() => {
                bump!();
            }
            '%' => {
                while let Some(&c) = chars.peek() {
                    if c == '\n' {
                        break;
                    }
                    bump!();
                }
            }
            '/' => {
                bump!();
                match chars.peek() {
                    Some('/') => {
                        while let Some(&c) = chars.peek() {
                            if c == '\n' {
                                break;
                            }
                            bump!();
                        }
                    }
                    Some('*') => {
                        bump!();
                        let mut prev = ' ';
                        loop {
                            match bump!() {
                                None => {
                                    return Err(ParseError::UnexpectedEof {
                                        expected: "closing */",
                                    })
                                }
                                Some('/') if prev == '*' => break,
                                Some(c) => prev = c,
                            }
                        }
                    }
                    _ => return Err(ParseError::UnexpectedChar { ch: '/', at }),
                }
            }
            ':' => {
                bump!();
                if chars.peek() == Some(&'-') {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::If,
                        at,
                    });
                } else {
                    return Err(ParseError::UnexpectedChar { ch: ':', at });
                }
            }
            '←' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::If,
                    at,
                });
            }
            '\\' => {
                bump!();
                if chars.peek() == Some(&'+') {
                    bump!();
                    tokens.push(Token {
                        kind: TokenKind::Not,
                        at,
                    });
                } else {
                    return Err(ParseError::UnexpectedChar { ch: '\\', at });
                }
            }
            '~' | '¬' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Not,
                    at,
                });
            }
            ',' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Comma,
                    at,
                });
            }
            '.' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::Dot,
                    at,
                });
            }
            '(' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    at,
                });
            }
            ')' => {
                bump!();
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    at,
                });
            }
            '\'' => {
                bump!();
                let mut text = String::new();
                loop {
                    match bump!() {
                        None => return Err(ParseError::UnterminatedQuote { at }),
                        Some('\\') => match bump!() {
                            Some('\\') => text.push('\\'),
                            Some('\'') => text.push('\''),
                            Some('n') => text.push('\n'),
                            Some(other) => text.push(other),
                            None => return Err(ParseError::UnterminatedQuote { at }),
                        },
                        Some('\'') => break,
                        Some(c) => text.push(c),
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Constant(text),
                    at,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        text.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Constant(text),
                    at,
                });
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        text.push(c);
                        bump!();
                    } else {
                        break;
                    }
                }
                let kind = if text == "not" {
                    TokenKind::Not
                } else if c.is_uppercase() || c == '_' {
                    TokenKind::Variable(text)
                } else {
                    TokenKind::Ident(text)
                };
                tokens.push(Token { kind, at });
            }
            other => return Err(ParseError::UnexpectedChar { ch: other, at }),
        }
    }
    Ok(tokens)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    program: Program,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek().map(|t| &t.kind) == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind, expected: &'static str) -> Result<(), ParseError> {
        if self.eat(&kind) {
            Ok(())
        } else {
            Err(self.unexpected(expected))
        }
    }

    fn unexpected(&self, expected: &'static str) -> ParseError {
        match self.peek() {
            Some(t) => ParseError::UnexpectedToken {
                found: format!("{:?}", t.kind),
                expected,
                at: t.at,
            },
            None => ParseError::UnexpectedEof { expected },
        }
    }

    fn program(&mut self) -> Result<(), ParseError> {
        while self.peek().is_some() {
            let rule = self.rule()?;
            self.program.push(rule);
        }
        Ok(())
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        // A head must be a plain atom; reject a leading `not`.
        if let Some(t) = self.peek() {
            if t.kind == TokenKind::Not {
                return Err(ParseError::InvalidHead { at: t.at });
            }
            if matches!(t.kind, TokenKind::Variable(_)) {
                return Err(ParseError::InvalidHead { at: t.at });
            }
        }
        let head = self.atom()?;
        let mut body = Vec::new();
        if self.eat(&TokenKind::If) {
            loop {
                body.push(self.literal()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        self.expect(TokenKind::Dot, "'.' at end of rule")?;
        Ok(Rule::new(head, body))
    }

    fn literal(&mut self) -> Result<Literal, ParseError> {
        if self.eat(&TokenKind::Not) {
            Ok(Literal::neg(self.atom()?))
        } else {
            Ok(Literal::pos(self.atom()?))
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let tok = self.next().ok_or(ParseError::UnexpectedEof {
            expected: "an atom",
        })?;
        let pred = match tok.kind {
            TokenKind::Ident(name) => self.program.symbols.intern(&name),
            other => {
                return Err(ParseError::UnexpectedToken {
                    found: format!("{other:?}"),
                    expected: "a predicate symbol",
                    at: tok.at,
                })
            }
        };
        let mut args = Vec::new();
        if self.eat(&TokenKind::LParen) {
            loop {
                args.push(self.term()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(TokenKind::RParen, "')'")?;
        }
        Ok(Atom::new(pred, args))
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        let tok = self
            .next()
            .ok_or(ParseError::UnexpectedEof { expected: "a term" })?;
        match tok.kind {
            TokenKind::Variable(name) => Ok(Term::Var(self.program.symbols.intern(&name))),
            TokenKind::Constant(text) => Ok(Term::Const(self.program.symbols.intern(&text))),
            TokenKind::Ident(name) => {
                let sym = self.program.symbols.intern(&name);
                if self.eat(&TokenKind::LParen) {
                    let mut args = Vec::new();
                    loop {
                        args.push(self.term()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                    self.expect(TokenKind::RParen, "')'")?;
                    Ok(Term::App(sym, args))
                } else {
                    Ok(Term::Const(sym))
                }
            }
            other => Err(ParseError::UnexpectedToken {
                found: format!("{other:?}"),
                expected: "a term",
                at: tok.at,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::display_rule;

    #[test]
    fn parses_win_move() {
        let p = parse_program(
            "wins(X) :- move(X, Y), not wins(Y).\n\
             move(a, b). move(b, a). move(b, c).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 4);
        assert!(!p.rules[0].body[1].positive);
        assert!(p.symbols.get("wins").is_some());
    }

    #[test]
    fn parses_propositional() {
        let p = parse_program("p :- not q. q :- not p. r.").unwrap();
        assert_eq!(p.rules.len(), 3);
        assert_eq!(p.rules[0].head.arity(), 0);
        assert!(p.rules[2].is_fact());
    }

    #[test]
    fn alternative_negation_and_arrow_syntax() {
        let a = parse_program("p :- not q.").unwrap();
        let b = parse_program("p :- \\+ q.").unwrap();
        let c = parse_program("p :- ~q.").unwrap();
        let d = parse_program("p ← ¬q.").unwrap();
        for prog in [&a, &b, &c, &d] {
            assert_eq!(prog.rules.len(), 1);
            assert!(!prog.rules[0].body[0].positive);
        }
    }

    #[test]
    fn comments_are_skipped() {
        let p = parse_program(
            "% line comment\n\
             p. // another\n\
             /* block\n comment */ q :- p.",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
    }

    #[test]
    fn quoted_and_numeric_constants() {
        let p = parse_program("age('Alice Smith', 42).").unwrap();
        let r = &p.rules[0];
        assert!(r.is_fact());
        match (&r.head.args[0], &r.head.args[1]) {
            (Term::Const(a), Term::Const(n)) => {
                assert_eq!(p.symbols.name(*a), "Alice Smith");
                assert_eq!(p.symbols.name(*n), "42");
            }
            other => panic!("unexpected args {other:?}"),
        }
    }

    #[test]
    fn function_symbols_parse() {
        let p = parse_program("p(f(X, a)) :- q(X).").unwrap();
        match &p.rules[0].head.args[0] {
            Term::App(f, args) => {
                assert_eq!(p.symbols.name(*f), "f");
                assert_eq!(args.len(), 2);
            }
            other => panic!("expected App, got {other:?}"),
        }
    }

    #[test]
    fn error_on_negated_head() {
        let e = parse_program("not p :- q.").unwrap_err();
        assert!(matches!(e, ParseError::InvalidHead { .. }));
    }

    #[test]
    fn error_on_missing_dot() {
        let e = parse_program("p :- q").unwrap_err();
        assert!(matches!(e, ParseError::UnexpectedEof { .. }));
    }

    #[test]
    fn error_on_variable_head() {
        let e = parse_program("X :- p.").unwrap_err();
        assert!(matches!(e, ParseError::InvalidHead { .. }));
    }

    #[test]
    fn error_reports_location() {
        let e = parse_program("p.\nq :- ,").unwrap_err();
        match e {
            ParseError::UnexpectedToken { at, .. } => {
                assert_eq!(at.line, 2);
            }
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unterminated_quote_is_reported() {
        let e = parse_program("p('oops.").unwrap_err();
        assert!(matches!(e, ParseError::UnterminatedQuote { .. }));
    }

    #[test]
    fn unterminated_block_comment_is_reported() {
        let e = parse_program("/* forever").unwrap_err();
        assert!(matches!(e, ParseError::UnexpectedEof { .. }));
    }

    #[test]
    fn roundtrip_display_then_reparse() {
        let src = "wins(X) :- move(X, Y), not wins(Y).\nmove(a, b).\n";
        let p1 = parse_program(src).unwrap();
        let text = p1.to_text();
        let p2 = parse_program(&text).unwrap();
        assert_eq!(p1.rules.len(), p2.rules.len());
        for (a, b) in p1.rules.iter().zip(&p2.rules) {
            assert_eq!(display_rule(a, &p1.symbols), display_rule(b, &p2.symbols));
        }
    }

    #[test]
    fn parse_atom_helper() {
        let mut p = parse_program("p(a).").unwrap();
        let atom = parse_atom_into("p(b)", &mut p).unwrap();
        assert_eq!(p.symbols.name(atom.pred), "p");
        assert_eq!(atom.arity(), 1);
        // trailing junk is rejected
        assert!(parse_atom_into("p(b) extra", &mut p).is_err());
    }
}
