//! Semi-naive bottom-up evaluation of positive programs.
//!
//! This is the classical Horn-clause least-fixpoint `T_P↑ω` of van Emden &
//! Kowalski computed at the *relational* level: rules are compiled to
//! backtracking joins over indexed relations, and each round only re-joins
//! against the tuples newly derived in the previous round (the semi-naive
//! delta discipline). The grounder ([`mod@crate::ground`]) runs this engine on
//! the negation-erased program to obtain the *positive envelope* — the set
//! of atoms with any derivation at all — and then instantiates rules only
//! over that envelope.

use crate::ast::{Rule, Term};
use crate::atoms::{ConstId, GroundTerm, HerbrandBase};
use crate::error::GroundError;
use crate::fx::FxHashMap;
use crate::relation::{Database, Relation, Tuple};
use crate::symbol::Symbol;

/// A term pattern with rule variables renamed to dense slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Pat {
    /// Slot in the binding environment.
    Var(usize),
    /// A constant symbol (interned to a term id lazily during matching).
    Const(Symbol),
    /// Function application over sub-patterns.
    App(Symbol, Vec<Pat>),
}

impl Pat {
    /// True when every variable in the pattern is bound in `env`.
    fn is_determined(&self, env: &[Option<ConstId>]) -> bool {
        match self {
            Pat::Var(v) => env[*v].is_some(),
            Pat::Const(_) => true,
            Pat::App(_, args) => args.iter().all(|a| a.is_determined(env)),
        }
    }
}

/// A compiled atom: predicate plus argument patterns.
#[derive(Debug, Clone)]
pub struct CompiledAtom {
    /// Predicate symbol.
    pub pred: Symbol,
    /// Argument patterns.
    pub pats: Vec<Pat>,
}

/// A rule compiled for join evaluation. Only positive body literals are
/// retained here; callers that need the negative literals (the grounder)
/// keep them separately.
#[derive(Debug, Clone)]
pub struct CompiledRule {
    /// Compiled head.
    pub head: CompiledAtom,
    /// Compiled positive body, in evaluation order.
    pub body: Vec<CompiledAtom>,
    /// Number of variable slots.
    pub nvars: usize,
    /// Map from slot to the source variable symbol (for diagnostics).
    pub var_names: Vec<Symbol>,
}

/// Compile a rule's head and positive body. `extra_guards` are appended to
/// the body after compilation (used for active-domain safety guards).
pub fn compile_rule(rule: &Rule, extra_guards: &[CompiledAtom]) -> CompiledRule {
    let mut slots: FxHashMap<Symbol, usize> = FxHashMap::default();
    let mut var_names = Vec::new();
    let compile_term = |t: &Term,
                        slots: &mut FxHashMap<Symbol, usize>,
                        var_names: &mut Vec<Symbol>|
     -> Pat { compile_term_rec(t, slots, var_names) };
    let mut body = Vec::new();
    for lit in rule.body.iter().filter(|l| l.positive) {
        let pats = lit
            .atom
            .args
            .iter()
            .map(|t| compile_term(t, &mut slots, &mut var_names))
            .collect();
        body.push(CompiledAtom {
            pred: lit.atom.pred,
            pats,
        });
    }
    let head_pats = rule
        .head
        .args
        .iter()
        .map(|t| compile_term(t, &mut slots, &mut var_names))
        .collect();
    // Also assign slots to variables that occur only in negative literals,
    // so the grounder can substitute them (they are guarded separately).
    for lit in rule.body.iter().filter(|l| !l.positive) {
        for t in &lit.atom.args {
            compile_term(t, &mut slots, &mut var_names);
        }
    }
    body.extend(extra_guards.iter().cloned());
    CompiledRule {
        head: CompiledAtom {
            pred: rule.head.pred,
            pats: head_pats,
        },
        body,
        nvars: slots.len(),
        var_names,
    }
}

fn compile_term_rec(
    t: &Term,
    slots: &mut FxHashMap<Symbol, usize>,
    var_names: &mut Vec<Symbol>,
) -> Pat {
    match t {
        Term::Var(v) => {
            let next = slots.len();
            let slot = *slots.entry(*v).or_insert(next);
            if slot == var_names.len() {
                var_names.push(*v);
            }
            Pat::Var(slot)
        }
        Term::Const(c) => Pat::Const(*c),
        Term::App(f, args) => Pat::App(
            *f,
            args.iter()
                .map(|a| compile_term_rec(a, slots, var_names))
                .collect(),
        ),
    }
}

/// Compile a negative literal's atom against the slot assignment of an
/// already-compiled rule (slots must match — call with the same rule).
pub fn compile_neg_atoms(rule: &Rule) -> Vec<CompiledAtom> {
    // Recompute the same slot assignment deterministically.
    let compiled = compile_rule(rule, &[]);
    let mut slots: FxHashMap<Symbol, usize> = FxHashMap::default();
    for (i, v) in compiled.var_names.iter().enumerate() {
        slots.insert(*v, i);
    }
    let mut out = Vec::new();
    for lit in rule.body.iter().filter(|l| !l.positive) {
        let pats = lit
            .atom
            .args
            .iter()
            .map(|t| compile_term_ro(t, &slots))
            .collect();
        out.push(CompiledAtom {
            pred: lit.atom.pred,
            pats,
        });
    }
    out
}

fn compile_term_ro(t: &Term, slots: &FxHashMap<Symbol, usize>) -> Pat {
    match t {
        Term::Var(v) => Pat::Var(*slots.get(v).expect("slot assigned for every rule variable")),
        Term::Const(c) => Pat::Const(*c),
        Term::App(f, args) => {
            Pat::App(*f, args.iter().map(|a| compile_term_ro(a, slots)).collect())
        }
    }
}

/// Match a pattern against an interned ground term, extending `env`.
/// Returns false (without fully undoing bindings — the caller snapshots)
/// when the match fails.
fn match_pat(pat: &Pat, value: ConstId, env: &mut [Option<ConstId>], base: &HerbrandBase) -> bool {
    match pat {
        Pat::Var(slot) => match env[*slot] {
            Some(bound) => bound == value,
            None => {
                env[*slot] = Some(value);
                true
            }
        },
        Pat::Const(c) => match base.find_term(&GroundTerm::Const(*c)) {
            Some(id) => id == value,
            None => false,
        },
        Pat::App(f, pats) => match base.term(value) {
            GroundTerm::App(g, args) if g == f && args.len() == pats.len() => {
                let args = args.clone();
                pats.iter()
                    .zip(args.iter())
                    .all(|(p, &a)| match_pat(p, a, env, base))
            }
            _ => false,
        },
    }
}

/// Evaluate a fully determined pattern to a term id, interning new terms as
/// needed (head construction).
pub fn eval_pat(pat: &Pat, env: &[Option<ConstId>], base: &mut HerbrandBase) -> ConstId {
    match pat {
        Pat::Var(slot) => env[*slot].expect("pattern not determined"),
        Pat::Const(c) => base.intern_const(*c),
        Pat::App(f, pats) => {
            let args: Vec<ConstId> = pats.iter().map(|p| eval_pat(p, env, base)).collect();
            base.intern_term(GroundTerm::App(*f, args.into_boxed_slice()))
        }
    }
}

/// Evaluate a fully determined pattern without interning; `None` when some
/// sub-term was never materialized (in which case no tuple can match it).
pub fn try_eval_pat(pat: &Pat, env: &[Option<ConstId>], base: &HerbrandBase) -> Option<ConstId> {
    match pat {
        Pat::Var(slot) => env[*slot],
        Pat::Const(c) => base.find_term(&GroundTerm::Const(*c)),
        Pat::App(f, pats) => {
            let mut args = Vec::with_capacity(pats.len());
            for p in pats {
                args.push(try_eval_pat(p, env, base)?);
            }
            base.find_term(&GroundTerm::App(*f, args.into_boxed_slice()))
        }
    }
}

/// Backtracking join: enumerate every binding of `body` against the given
/// relations (one per body atom, parallel arrays) and call `emit` with the
/// complete environment.
pub fn join(
    body: &[CompiledAtom],
    rels: &[&Relation],
    base: &HerbrandBase,
    env: &mut Vec<Option<ConstId>>,
    emit: &mut dyn FnMut(&[Option<ConstId>], &HerbrandBase),
) {
    join_rec(body, rels, base, env, 0, emit);
}

fn join_rec(
    body: &[CompiledAtom],
    rels: &[&Relation],
    base: &HerbrandBase,
    env: &mut Vec<Option<ConstId>>,
    depth: usize,
    emit: &mut dyn FnMut(&[Option<ConstId>], &HerbrandBase),
) {
    if depth == body.len() {
        emit(env, base);
        return;
    }
    let atom = &body[depth];
    let rel = rels[depth];
    // Pick an indexed probe if some column's pattern is fully determined.
    let mut probe: Option<(usize, ConstId)> = None;
    for (col, pat) in atom.pats.iter().enumerate() {
        if pat.is_determined(env) {
            match try_eval_pat(pat, env, base) {
                Some(v) => {
                    probe = Some((col, v));
                    break;
                }
                // A determined pattern naming a term that was never
                // materialized matches nothing.
                None => return,
            }
        }
    }
    let snapshot = env.clone();
    let try_row = |row: &Tuple,
                   env: &mut Vec<Option<ConstId>>,
                   emit: &mut dyn FnMut(&[Option<ConstId>], &HerbrandBase)| {
        let mut ok = true;
        for (pat, &val) in atom.pats.iter().zip(row.iter()) {
            if !match_pat(pat, val, env, base) {
                ok = false;
                break;
            }
        }
        if ok {
            join_rec(body, rels, base, env, depth + 1, emit);
        }
        env.copy_from_slice(&snapshot);
    };
    match probe {
        Some((col, value)) => match rel.probe(col, value) {
            Some(rows) => {
                for &r in rows {
                    try_row(rel.row(r), env, emit);
                }
            }
            None => {
                // Column not indexed: fall back to a scan with the
                // determined column as a filter (match_pat handles it).
                for row in rel.rows() {
                    try_row(row, env, emit);
                }
            }
        },
        None => {
            for row in rel.rows() {
                try_row(row, env, emit);
            }
        }
    }
}

/// Resource bounds for evaluation; exceeding them aborts with an error
/// instead of diverging (function symbols can make the envelope infinite).
#[derive(Debug, Clone, Copy)]
pub struct EvalLimits {
    /// Maximum number of tuples across all relations.
    pub max_tuples: usize,
}

impl Default for EvalLimits {
    fn default() -> Self {
        EvalLimits {
            max_tuples: 10_000_000,
        }
    }
}

/// Compute the least model of a *positive* program (facts plus compiled
/// rules) by semi-naive iteration.
///
/// `facts` are inserted first; `rules` are the compiled non-fact rules.
/// Returns the full database. Rounds stop when no new tuple is derived.
pub fn evaluate_positive(
    rules: &[CompiledRule],
    facts: &[(Symbol, Tuple)],
    base: &mut HerbrandBase,
    limits: &EvalLimits,
) -> Result<Database, GroundError> {
    let mut full = Database::new();
    let mut seed: Vec<(Symbol, Tuple)> = facts.to_vec();
    // Zero-body compiled rules (ground heads after compilation) fire once.
    for rule in rules.iter().filter(|r| r.body.is_empty()) {
        let env: Vec<Option<ConstId>> = vec![None; rule.nvars];
        let head: Vec<ConstId> = rule
            .head
            .pats
            .iter()
            .map(|p| eval_pat(p, &env, base))
            .collect();
        seed.push((rule.head.pred, head.into_boxed_slice()));
    }
    extend_positive(rules, &mut full, seed, base, limits)?;
    Ok(full)
}

/// Extend an existing least-model database with new seed tuples and run
/// the semi-naive rounds to closure. `full` is updated in place; the
/// returned database holds **exactly the tuples added by this call** (the
/// delta-closure), which the incremental grounder uses to instantiate only
/// the affected rule instances.
pub fn extend_positive(
    rules: &[CompiledRule],
    full: &mut Database,
    seed: Vec<(Symbol, Tuple)>,
    base: &mut HerbrandBase,
    limits: &EvalLimits,
) -> Result<Database, GroundError> {
    let mut added = Database::new();
    let mut delta = Database::new();
    for (pred, tuple) in seed {
        if full.insert(pred, tuple.clone()) {
            added.insert(pred, tuple.clone());
            delta.insert(pred, tuple);
        }
    }
    let mut buffer: Vec<(Symbol, Tuple)> = Vec::new();

    loop {
        if full.total_tuples() > limits.max_tuples {
            return Err(GroundError::AtomBudgetExceeded {
                limit: limits.max_tuples,
            });
        }
        // Ensure indices for every column of every relation used in a body.
        for rule in rules {
            for atom in &rule.body {
                for db in [&mut *full, &mut delta] {
                    if let Some(rel) = db.relation(atom.pred) {
                        let arity = rel.arity();
                        let rel = db.relation_mut(atom.pred, arity);
                        for col in 0..arity {
                            rel.ensure_index(col);
                        }
                    }
                }
            }
        }
        buffer.clear();
        let empty = Relation::new(0);
        for rule in rules.iter().filter(|r| !r.body.is_empty()) {
            for focus in 0..rule.body.len() {
                // Occurrence `focus` ranges over the last delta; a derivation
                // with no delta tuple was already found in an earlier round.
                let rels: Vec<&Relation> = rule
                    .body
                    .iter()
                    .enumerate()
                    .map(|(i, atom)| {
                        let db: &Database = if i == focus { &delta } else { full };
                        db.relation(atom.pred).unwrap_or(&empty)
                    })
                    .collect();
                if rels[focus].is_empty() {
                    continue;
                }
                let mut env: Vec<Option<ConstId>> = vec![None; rule.nvars];
                let head_pred = rule.head.pred;
                let head_pats = &rule.head.pats;
                let mut local: Vec<(Symbol, Vec<ConstId>)> = Vec::new();
                join(&rule.body, &rels, base, &mut env, &mut |env, base| {
                    let head: Vec<ConstId> = head_pats
                        .iter()
                        .map(|p| try_eval_pat(p, env, base).map(Ok).unwrap_or(Err(())))
                        .collect::<Result<_, _>>()
                        .unwrap_or_default();
                    if head.len() == head_pats.len() {
                        local.push((head_pred, head));
                    } else {
                        // Head mentions a term not yet interned; record
                        // the env so we can intern outside the borrow.
                        local.push((head_pred, vec![]));
                    }
                });
                // Second pass for heads that needed interning: rerun with
                // mutable base access. To keep the hot path allocation-free
                // we only rerun when at least one head failed to resolve.
                if local.iter().any(|(_, h)| h.len() != rule.head.pats.len()) {
                    local.clear();
                    let mut envs: Vec<Vec<Option<ConstId>>> = Vec::new();
                    let mut env2: Vec<Option<ConstId>> = vec![None; rule.nvars];
                    join(&rule.body, &rels, base, &mut env2, &mut |env, _| {
                        envs.push(env.to_vec());
                    });
                    for env in envs {
                        let head: Vec<ConstId> = rule
                            .head
                            .pats
                            .iter()
                            .map(|p| eval_pat(p, &env, base))
                            .collect();
                        local.push((head_pred, head));
                    }
                }
                for (pred, head) in local {
                    buffer.push((pred, head.into_boxed_slice()));
                }
            }
        }
        let mut next_delta = Database::new();
        let mut grew = false;
        for (pred, tuple) in buffer.drain(..) {
            if !full.contains(pred, &tuple) {
                full.insert(pred, tuple.clone());
                added.insert(pred, tuple.clone());
                next_delta.insert(pred, tuple);
                grew = true;
            }
        }
        delta = next_delta;
        if !grew {
            return Ok(added);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    /// Helper: run the positive part of a parsed program.
    fn run(src: &str) -> (Database, HerbrandBase, crate::symbol::SymbolStore) {
        let prog = parse_program(src).unwrap();
        let mut base = HerbrandBase::new();
        let mut facts = Vec::new();
        let mut rules = Vec::new();
        for rule in &prog.rules {
            if rule.is_fact() {
                let tuple: Vec<ConstId> = rule
                    .head
                    .args
                    .iter()
                    .map(|t| intern_ground(t, &mut base))
                    .collect();
                facts.push((rule.head.pred, tuple.into_boxed_slice()));
            } else {
                rules.push(compile_rule(rule, &[]));
            }
        }
        let db = evaluate_positive(&rules, &facts, &mut base, &EvalLimits::default()).unwrap();
        (db, base, prog.symbols)
    }

    fn intern_ground(t: &Term, base: &mut HerbrandBase) -> ConstId {
        match t {
            Term::Const(c) => base.intern_const(*c),
            Term::App(f, args) => {
                let ids: Vec<ConstId> = args.iter().map(|a| intern_ground(a, base)).collect();
                base.intern_term(GroundTerm::App(*f, ids.into_boxed_slice()))
            }
            Term::Var(_) => panic!("fact with variable"),
        }
    }

    #[test]
    fn transitive_closure() {
        let (db, base, syms) = run("e(a,b). e(b,c). e(c,d).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- e(X,Z), tc(Z,Y).");
        let tc = syms.get("tc").unwrap();
        let rel = db.relation(tc).unwrap();
        assert_eq!(rel.len(), 6); // ab ac ad bc bd cd
        let a = base
            .find_term(&GroundTerm::Const(syms.get("a").unwrap()))
            .unwrap();
        let d = base
            .find_term(&GroundTerm::Const(syms.get("d").unwrap()))
            .unwrap();
        assert!(rel.contains(&[a, d]));
        assert!(!rel.contains(&[d, a]));
    }

    #[test]
    fn join_with_repeated_variables() {
        let (db, _, syms) = run("e(a,a). e(a,b). loop(X) :- e(X,X).");
        let l = syms.get("loop").unwrap();
        assert_eq!(db.relation(l).unwrap().len(), 1);
    }

    #[test]
    fn constants_in_rule_bodies() {
        let (db, _, syms) = run("e(a,b). e(b,c). from_a(Y) :- e(a,Y).");
        assert_eq!(db.relation(syms.get("from_a").unwrap()).unwrap().len(), 1);
    }

    #[test]
    fn function_symbols_in_heads() {
        // Successor-bounded arithmetic: derivations build new terms.
        let (db, base, syms) = run("n(z).
             n(s(X)) :- n(X), small(X).
             small(z). small(s(z)).");
        let n = syms.get("n").unwrap();
        // z, s(z), s(s(z)) — growth stops because small/1 is finite.
        assert_eq!(db.relation(n).unwrap().len(), 3);
        assert!(base.term_count() >= 3);
    }

    #[test]
    fn budget_stops_runaway_programs() {
        let prog = parse_program("n(z). n(s(X)) :- n(X).").unwrap();
        let mut base = HerbrandBase::new();
        let mut facts = Vec::new();
        let mut rules = Vec::new();
        for rule in &prog.rules {
            if rule.is_fact() {
                let t: Vec<ConstId> = rule
                    .head
                    .args
                    .iter()
                    .map(|t| intern_ground(t, &mut base))
                    .collect();
                facts.push((rule.head.pred, t.into_boxed_slice()));
            } else {
                rules.push(compile_rule(rule, &[]));
            }
        }
        let err = evaluate_positive(&rules, &facts, &mut base, &EvalLimits { max_tuples: 100 })
            .unwrap_err();
        assert!(matches!(err, GroundError::AtomBudgetExceeded { .. }));
    }

    #[test]
    fn seminaive_equals_expected_on_cycles() {
        let (db, _, syms) = run("e(a,b). e(b,a).
             tc(X,Y) :- e(X,Y).
             tc(X,Y) :- e(X,Z), tc(Z,Y).");
        // {a,b}² — cycles must terminate.
        assert_eq!(db.relation(syms.get("tc").unwrap()).unwrap().len(), 4);
    }

    #[test]
    fn propositional_rules_work() {
        let (db, _, syms) = run("p. q :- p. r :- q, p.");
        assert!(db.contains(syms.get("r").unwrap(), &[]));
    }

    #[test]
    fn compile_assigns_slots_to_negative_only_vars() {
        let prog = parse_program("p(X) :- e(X, Y), not q(Y, Z).").unwrap();
        let compiled = compile_rule(&prog.rules[0], &[]);
        // X, Y from positive body and head; Z from the negative literal.
        assert_eq!(compiled.nvars, 3);
        let negs = compile_neg_atoms(&prog.rules[0]);
        assert_eq!(negs.len(), 1);
        assert_eq!(negs[0].pats.len(), 2);
    }
}
