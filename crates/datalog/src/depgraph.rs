//! Predicate dependency graphs, stratification, and strictness.
//!
//! The *dependency graph* of a program (Definition 8.3) has the relation
//! symbols as nodes and an arc `p → q` whenever `q` occurs in the body of a
//! rule with head `p`. Arcs are labeled positive, negative, or mixed
//! according to the polarity of `q`'s occurrences.
//!
//! On top of it we provide:
//!
//! * **Stratification** (Section 2.3): a program is stratified when no
//!   negative arc lies inside a strongly connected component; the stratum
//!   assignment drives the iterated-fixpoint evaluation in
//!   `afp-semantics::stratified`.
//! * **Strictness** (Definition 8.3, Section 8.2): a pair `(p, q)` is strict
//!   when all paths `p ⇝ q` cross an even number of negative arcs and no
//!   mixed arc, or all cross an odd number and no mixed arc, or there is no
//!   path. Strictness-in-the-IDB is the side condition of the
//!   expressiveness theorems (8.6, 8.7).

use crate::ast::Program;
use crate::atoms::AtomId;
use crate::fx::FxHashMap;
use crate::program::{GroundProgram, RuleId};
use crate::symbol::Symbol;

/// Polarity label of a dependency arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgePolarity {
    /// Some occurrence of the target is positive.
    pub positive: bool,
    /// Some occurrence of the target is negative.
    pub negative: bool,
}

impl EdgePolarity {
    /// "Mixed" per Definition 8.3: the target occurs both ways.
    pub fn is_mixed(&self) -> bool {
        self.positive && self.negative
    }
}

/// The dependency graph of a program.
#[derive(Debug, Clone)]
pub struct DepGraph {
    preds: Vec<Symbol>,
    index: FxHashMap<Symbol, usize>,
    /// `edges[p]` maps a successor node to the arc polarity.
    edges: Vec<FxHashMap<usize, EdgePolarity>>,
}

impl DepGraph {
    /// Build the graph from a program. Every predicate that occurs anywhere
    /// becomes a node.
    pub fn build(program: &Program) -> Self {
        let preds = program.all_predicates();
        let mut index = FxHashMap::default();
        for (i, &p) in preds.iter().enumerate() {
            index.insert(p, i);
        }
        let mut edges = vec![FxHashMap::<usize, EdgePolarity>::default(); preds.len()];
        for rule in &program.rules {
            let from = index[&rule.head.pred];
            for lit in &rule.body {
                let to = index[&lit.atom.pred];
                let e = edges[from].entry(to).or_default();
                if lit.positive {
                    e.positive = true;
                } else {
                    e.negative = true;
                }
            }
        }
        DepGraph {
            preds,
            index,
            edges,
        }
    }

    /// Build a graph from raw `(head, body, positive-occurrence)` triples —
    /// used by the first-order extension (`afp-fol`), where bodies are
    /// formulas rather than literal lists. Every symbol mentioned becomes a
    /// node.
    pub fn from_edges(edges: &[(Symbol, Symbol, bool)]) -> Self {
        let mut preds = Vec::new();
        let mut index: FxHashMap<Symbol, usize> = FxHashMap::default();
        let node = |s: Symbol, preds: &mut Vec<Symbol>, index: &mut FxHashMap<Symbol, usize>| {
            *index.entry(s).or_insert_with(|| {
                preds.push(s);
                preds.len() - 1
            })
        };
        let mut edge_list = Vec::new();
        for &(from, to, positive) in edges {
            let f = node(from, &mut preds, &mut index);
            let t = node(to, &mut preds, &mut index);
            edge_list.push((f, t, positive));
        }
        let mut adj = vec![FxHashMap::<usize, EdgePolarity>::default(); preds.len()];
        for (f, t, positive) in edge_list {
            let e = adj[f].entry(t).or_default();
            if positive {
                e.positive = true;
            } else {
                e.negative = true;
            }
        }
        DepGraph {
            preds,
            index,
            edges: adj,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Node id of a predicate, if present.
    pub fn node(&self, pred: Symbol) -> Option<usize> {
        self.index.get(&pred).copied()
    }

    /// Predicate of a node id.
    pub fn pred(&self, node: usize) -> Symbol {
        self.preds[node]
    }

    /// The polarity of the arc `p → q`, if it exists.
    pub fn edge(&self, p: usize, q: usize) -> Option<EdgePolarity> {
        self.edges[p].get(&q).copied()
    }

    /// Iterate over the successors of a node.
    pub fn successors(&self, p: usize) -> impl Iterator<Item = (usize, EdgePolarity)> + '_ {
        self.edges[p].iter().map(|(&q, &e)| (q, e))
    }

    /// Strongly connected components in *dependency order*: if any node of
    /// component `A` depends (directly or transitively) on a node of
    /// component `B ≠ A`, then `B` appears before `A` in the result.
    pub fn sccs(&self) -> SccList {
        let adj: Vec<Vec<usize>> = self
            .edges
            .iter()
            .map(|m| m.keys().copied().collect())
            .collect();
        tarjan_sccs(&adj)
    }

    /// Stratum assignment per node, or `None` if the program is not
    /// stratified (a negative or mixed arc inside an SCC). EDB predicates
    /// and other bottom predicates get stratum 0.
    pub fn stratification(&self) -> Option<Vec<u32>> {
        let sccs = self.sccs();
        let mut comp_of = vec![usize::MAX; self.len()];
        for (cid, comp) in sccs.iter().enumerate() {
            for &n in comp {
                comp_of[n as usize] = cid;
            }
        }
        // Reject negative arcs within a component.
        for (p, succ) in self.edges.iter().enumerate() {
            for (&q, e) in succ {
                if comp_of[p] == comp_of[q] && e.negative {
                    return None;
                }
            }
        }
        // Components come in dependency order, so one pass suffices.
        let mut comp_stratum = vec![0u32; sccs.len()];
        for (cid, comp) in sccs.iter().enumerate() {
            let mut s = 0;
            for &p in comp {
                for (q, e) in self.successors(p as usize) {
                    let qc = comp_of[q];
                    if qc != cid {
                        let need = comp_stratum[qc] + u32::from(e.negative);
                        s = s.max(need);
                    }
                }
            }
            comp_stratum[cid] = s;
        }
        Some((0..self.len()).map(|n| comp_stratum[comp_of[n]]).collect())
    }

    /// True iff the program is stratified.
    pub fn is_stratified(&self) -> bool {
        self.stratification().is_some()
    }

    /// Parity-reachability from `p`: for each node `q`, which parities of
    /// negative-arc counts are achievable on some path `p ⇝ q`. Traversing
    /// a mixed arc makes both parities achievable from that point on.
    /// The null path makes `p` even-reachable from itself.
    ///
    /// Returned as `(even, odd)` bit vectors.
    pub fn parity_reachability(&self, p: usize) -> (Vec<bool>, Vec<bool>) {
        let n = self.len();
        let mut even = vec![false; n];
        let mut odd = vec![false; n];
        let mut queue: Vec<(usize, bool)> = Vec::new(); // (node, parity-is-odd)
        even[p] = true;
        queue.push((p, false));
        while let Some((u, is_odd)) = queue.pop() {
            for (v, e) in self.successors(u) {
                let push = |v: usize,
                            po: bool,
                            even: &mut Vec<bool>,
                            odd: &mut Vec<bool>,
                            queue: &mut Vec<(usize, bool)>| {
                    let seen = if po { &mut odd[v] } else { &mut even[v] };
                    if !*seen {
                        *seen = true;
                        queue.push((v, po));
                    }
                };
                if e.is_mixed() {
                    push(v, false, &mut even, &mut odd, &mut queue);
                    push(v, true, &mut even, &mut odd, &mut queue);
                } else if e.negative {
                    push(v, !is_odd, &mut even, &mut odd, &mut queue);
                } else {
                    push(v, is_odd, &mut even, &mut odd, &mut queue);
                }
            }
        }
        (even, odd)
    }

    /// Is the ordered pair `(p, q)` strict (Definition 8.3)?
    pub fn is_strict_pair(&self, p: usize, q: usize) -> bool {
        let (even, odd) = self.parity_reachability(p);
        !(even[q] && odd[q])
    }

    /// Is the whole program strict?
    pub fn is_strict(&self) -> bool {
        (0..self.len()).all(|p| {
            let (even, odd) = self.parity_reachability(p);
            (0..self.len()).all(|q| !(even[q] && odd[q]))
        })
    }

    /// Is the program strict when restricted to pairs of IDB predicates?
    pub fn is_strict_in_idb(&self, idb: &[Symbol]) -> bool {
        let idb_nodes: Vec<usize> = idb.iter().filter_map(|&s| self.node(s)).collect();
        idb_nodes.iter().all(|&p| {
            let (even, odd) = self.parity_reachability(p);
            idb_nodes.iter().all(|&q| !(even[q] && odd[q]))
        })
    }
}

/// Strongly connected components in a flat CSR layout: one `nodes` array
/// grouped by component plus an `offsets` fence array, like
/// [`Condensation`] — two allocations total instead of one `Vec` per
/// component. Components are stored in reverse topological order of the
/// condensation (callees before callers), matching what [`tarjan_sccs`]
/// has always emitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SccList {
    /// Component `i` is `nodes[offsets[i]..offsets[i + 1]]`.
    offsets: Vec<u32>,
    /// Node ids grouped by component.
    nodes: Vec<u32>,
}

impl SccList {
    /// Number of components.
    pub fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    /// True when the underlying graph had no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The nodes of component `i`.
    pub fn get(&self, i: usize) -> &[u32] {
        &self.nodes[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Iterate over the components in emission (dependency) order.
    pub fn iter(&self) -> impl Iterator<Item = &[u32]> {
        (0..self.len()).map(move |i| self.get(i))
    }
}

/// Iterative Tarjan SCC. Components are returned in reverse topological
/// order of the condensation — i.e. if there is an arc from a node of `A`
/// to a node of `B` (A depends on B), `B` is emitted before `A`.
pub fn tarjan_sccs(adj: &[Vec<usize>]) -> SccList {
    let n = adj.len();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut targets = Vec::new();
    for succ in adj {
        targets.extend(succ.iter().map(|&w| w as u32));
        offsets.push(targets.len() as u32);
    }
    let mut out = SccList {
        offsets: vec![0u32],
        nodes: Vec::with_capacity(n),
    };
    tarjan_csr(n, &offsets, &targets, |comp| {
        out.nodes.extend_from_slice(comp);
        out.offsets.push(out.nodes.len() as u32);
    });
    out
}

/// Iterative Tarjan over a CSR adjacency (`targets[offsets[v]..offsets[v+1]]`
/// are the successors of `v`). `emit` is called once per strongly connected
/// component, in reverse topological order of the condensation (callees
/// before callers); the slice it receives is scratch, valid for the call.
fn tarjan_csr(n: usize, offsets: &[u32], targets: &[u32], mut emit: impl FnMut(&[u32])) {
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;

    // Explicit DFS stack: (node, next child position in `targets`).
    let mut call: Vec<(u32, u32)> = Vec::new();
    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        call.push((root as u32, offsets[root]));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            let v = v as usize;
            if *ci < offsets[v + 1] {
                let w = targets[*ci as usize] as usize;
                *ci += 1;
                if index[w] == u32::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, offsets[w]));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    let parent = parent as usize;
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let first = stack
                        .iter()
                        .rposition(|&w| w as usize == v)
                        .expect("stack holds the component");
                    for &w in &stack[first..] {
                        on_stack[w as usize] = false;
                    }
                    emit(&stack[first..]);
                    stack.truncate(first);
                }
            }
        }
    }
}

/// The condensation of a ground program's **atom** dependency graph,
/// precomputed once and reused across solves: atom → component ids in
/// topological (dependency) order, the atoms of each component, and the
/// rules of each component (those whose head lies in it).
///
/// Component ids are assigned so that if any atom of component `A` depends
/// (directly or transitively) on an atom of component `B ≠ A`, then
/// `B < A` — processing components in id order is bottom-up. This is the
/// substrate of the in-place component-wise well-founded evaluation
/// (`afp-semantics::modular`) and of per-component warm re-solves in the
/// engine's sessions.
///
/// The condensation is **maintained incrementally** across in-place
/// program mutations: [`Condensation::apply_delta`] patches the CSR
/// structures by re-running Tarjan only over the *window* of components
/// the delta's dependency edges can possibly restructure, so a warm
/// re-solve pays `O(|delta cone|)` for its SCC structure, not
/// `O(|program|)`. Components outside the window keep their ids, atom
/// slices, and rule slices untouched. Atom ids are stable across
/// in-place mutations, which is why per-component memoization keyed by
/// atom id additionally survives even the id renumbering *inside* the
/// window: a component whose atoms all lie outside the delta's forward
/// cone can copy its previous truth values verbatim.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Atom index → component id.
    comp_of: Vec<u32>,
    /// Component id → range into `atoms` (len = components + 1).
    atom_offsets: Vec<u32>,
    /// Atom indices grouped by component, components in id order.
    atoms: Vec<u32>,
    /// Component id → range into `rules` (len = components + 1).
    rule_offsets: Vec<u32>,
    /// Rule ids grouped by their head's component.
    rules: Vec<RuleId>,
    /// Size of the largest component.
    largest: usize,
}

impl Condensation {
    /// Condense the atom dependency graph of `prog` (an arc `head → q` for
    /// every body atom `q`, positive or negative). Linear in the program
    /// size.
    pub fn of(prog: &crate::program::GroundProgram) -> Condensation {
        let n = prog.atom_count();
        // CSR adjacency head → body atoms.
        let mut offsets = vec![0u32; n + 1];
        for r in prog.rules() {
            offsets[r.head.index() + 1] += (r.pos.len() + r.neg.len()) as u32;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        for r in prog.rules() {
            let c = &mut cursor[r.head.index()];
            for &q in r.pos.iter().chain(r.neg.iter()) {
                targets[*c as usize] = q.0;
                *c += 1;
            }
        }

        let mut comp_of = vec![0u32; n];
        let mut comp_sizes: Vec<u32> = Vec::new();
        let mut largest = 0usize;
        tarjan_csr(n, &offsets, &targets, |comp| {
            let cid = comp_sizes.len() as u32;
            for &a in comp {
                comp_of[a as usize] = cid;
            }
            comp_sizes.push(comp.len() as u32);
            largest = largest.max(comp.len());
        });

        // Group atoms and rules by component (counting sort).
        let k = comp_sizes.len();
        let mut atom_offsets = vec![0u32; k + 1];
        for (i, &s) in comp_sizes.iter().enumerate() {
            atom_offsets[i + 1] = atom_offsets[i] + s;
        }
        let mut cursor = atom_offsets.clone();
        let mut atoms = vec![0u32; n];
        for a in 0..n as u32 {
            let c = &mut cursor[comp_of[a as usize] as usize];
            atoms[*c as usize] = a;
            *c += 1;
        }

        let mut rule_offsets = vec![0u32; k + 1];
        for r in prog.rules() {
            rule_offsets[comp_of[r.head.index()] as usize + 1] += 1;
        }
        for i in 0..k {
            rule_offsets[i + 1] += rule_offsets[i];
        }
        let mut cursor = rule_offsets.clone();
        let mut rules = vec![0 as RuleId; prog.rule_count()];
        for (rid, r) in prog.rules().enumerate() {
            let c = &mut cursor[comp_of[r.head.index()] as usize];
            rules[*c as usize] = rid as RuleId;
            *c += 1;
        }

        Condensation {
            comp_of,
            atom_offsets,
            atoms,
            rule_offsets,
            rules,
            largest,
        }
    }

    /// Number of strongly connected components.
    pub fn len(&self) -> usize {
        self.atom_offsets.len() - 1
    }

    /// True when the program has no atoms.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Component id of an atom. Component ids respect dependencies: every
    /// component an atom's rules mention (other than its own) has a
    /// smaller id.
    pub fn component_of(&self, atom: u32) -> u32 {
        self.comp_of[atom as usize]
    }

    /// The atoms of component `comp`, in ascending atom-id order.
    pub fn atoms(&self, comp: usize) -> &[u32] {
        &self.atoms[self.atom_offsets[comp] as usize..self.atom_offsets[comp + 1] as usize]
    }

    /// The rules whose head lies in component `comp`.
    pub fn rules(&self, comp: usize) -> &[RuleId] {
        &self.rules[self.rule_offsets[comp] as usize..self.rule_offsets[comp + 1] as usize]
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.largest
    }

    /// Patch this condensation after a batch of in-place program
    /// mutations, instead of rebuilding it from scratch. `prog` is the
    /// program **after** the mutations; `delta` describes them (see
    /// [`CondensationDelta`] for the exact contract). Returns counters
    /// for how much of the graph the repair actually walked.
    ///
    /// # Algorithm
    ///
    /// Component membership and order can only change inside a bounded
    /// *window* of the topological order. A removed edge can split only
    /// the component that contained it (its head is touched). An added
    /// edge `u → v` can merge components only along a pre-existing
    /// dependency path `v ⇝ u`, and every component on such a path has an
    /// id between `comp(u)` and `comp(v)` — ids along old dependency
    /// edges are non-increasing and both endpoints of every added edge
    /// are recorded in the delta. So the window `[lo, hi]` spanned by the
    /// components of all touched heads and new-edge targets contains
    /// every component whose membership or relative position can change;
    /// no cycle through a changed edge can leave it. The repair re-runs
    /// Tarjan over the window's atoms only (plus atoms interned since the
    /// last repair, which join the window), splices the recomputed
    /// components back into the id range `[lo, lo + m)`, shifts the
    /// suffix only when the component count actually changed, and
    /// regroups rule slices for window components straight from the
    /// program's head index. Components outside the window keep their
    /// ids, atom slices, and rule slices (modulo swap-remove rule-id
    /// renames, which are patched pointwise).
    pub fn apply_delta(&mut self, prog: &GroundProgram, delta: &CondensationDelta) -> RepairStats {
        let old_n = self.comp_of.len();
        let new_n = prog.atom_count();
        let k_old = self.len();

        // ---- Window of possibly-restructured components -----------------
        let mut lo = usize::MAX;
        let mut hi_ex = 0usize; // exclusive upper bound
        for &a in delta.touched.iter().chain(delta.new_edge_targets.iter()) {
            if a.index() < old_n {
                let c = self.comp_of[a.index()] as usize;
                lo = lo.min(c);
                hi_ex = hi_ex.max(c + 1);
            }
        }
        if lo == usize::MAX {
            // No existing component is seeded: new atoms (if any) are
            // appended as fresh components after everything else.
            lo = k_old;
            hi_ex = k_old;
        }
        let w = hi_ex - lo;

        // ---- Rename pass ------------------------------------------------
        // Swap-removed rule ids in slices *outside* the window are patched
        // pointwise, in chronological order (window slices are regrouped
        // wholesale below, so stale entries there are simply discarded).
        for r in delta.renames {
            if r.head.index() >= old_n {
                // The moved rule was added in this same batch (its head is
                // a new atom): it was never indexed here, and the window
                // regroup below picks up its final id from the program.
                continue;
            }
            let c = self.comp_of[r.head.index()] as usize;
            if c >= lo && c < hi_ex {
                continue;
            }
            let (s, e) = (
                self.rule_offsets[c] as usize,
                self.rule_offsets[c + 1] as usize,
            );
            let slice = &mut self.rules[s..e];
            let pos = slice
                .iter()
                .position(|&x| x == r.from)
                .expect("renamed rule is indexed under its head's component");
            slice[pos] = r.to;
        }

        if w == 0 && new_n == old_n {
            return RepairStats::default(); // renames were the whole delta
        }

        // ---- Localized Tarjan over the window's atoms -------------------
        let a_lo = self.atom_offsets[lo] as usize;
        let a_hi = self.atom_offsets[hi_ex] as usize;
        let mut window_atoms: Vec<u32> = Vec::with_capacity(a_hi - a_lo + (new_n - old_n));
        window_atoms.extend_from_slice(&self.atoms[a_lo..a_hi]);
        window_atoms.extend(old_n as u32..new_n as u32);
        let nw = window_atoms.len();
        let mut local: FxHashMap<u32, u32> = FxHashMap::default();
        for (i, &a) in window_atoms.iter().enumerate() {
            local.insert(a, i as u32);
        }
        let mut offsets: Vec<u32> = Vec::with_capacity(nw + 1);
        offsets.push(0);
        let mut targets: Vec<u32> = Vec::new();
        let mut edges_visited = 0usize;
        for &a in &window_atoms {
            for &rid in prog.rules_with_head(AtomId(a)) {
                let r = prog.rule(rid);
                for &q in r.pos.iter().chain(r.neg.iter()) {
                    edges_visited += 1;
                    if let Some(&lq) = local.get(&q.0) {
                        targets.push(lq);
                    } else {
                        // A dependency that leaves the window can only go
                        // below it: old edges respect the old order, and
                        // both endpoints of every added edge are seeds.
                        debug_assert!(
                            (self.comp_of[q.index()] as usize) < lo,
                            "window atoms only depend into or below the window"
                        );
                    }
                }
            }
            offsets.push(targets.len() as u32);
        }
        let mut local_comp = vec![0u32; nw];
        let mut m = 0u32;
        tarjan_csr(nw, &offsets, &targets, |comp| {
            for &x in comp {
                local_comp[x as usize] = m;
            }
            m += 1;
        });
        let m = m as usize;

        // Group the window's atoms by new component, ascending atom id
        // within each component (the invariant `Condensation::of`'s
        // counting sort establishes globally).
        let mut new_atom_offsets = vec![0u32; m + 1];
        for &lc in &local_comp {
            new_atom_offsets[lc as usize + 1] += 1;
        }
        for i in 0..m {
            new_atom_offsets[i + 1] += new_atom_offsets[i];
        }
        let mut sorted = window_atoms.clone();
        sorted.sort_unstable();
        let mut cursor = new_atom_offsets.clone();
        let mut grouped_atoms = vec![0u32; nw];
        for &a in &sorted {
            let lc = local_comp[local[&a] as usize] as usize;
            grouped_atoms[cursor[lc] as usize] = a;
            cursor[lc] += 1;
        }

        // Did the window hold a component of the current maximum size?
        // Only then can the maximum shrink, requiring a full fence
        // rescan below; otherwise `largest` is monotone under this
        // repair and a window-local max suffices. Read the old fences
        // before they are spliced.
        let window_held_largest = (lo..hi_ex)
            .any(|c| (self.atom_offsets[c + 1] - self.atom_offsets[c]) as usize == self.largest);

        // ---- Splice: comp_of --------------------------------------------
        let dcomp = m as i64 - w as i64;
        self.comp_of.resize(new_n, 0);
        if dcomp != 0 {
            // Suffix components shift uniformly; their relative order (and
            // hence every dependency constraint they participate in) is
            // preserved.
            for &a in &self.atoms[a_hi..] {
                self.comp_of[a as usize] = (self.comp_of[a as usize] as i64 + dcomp) as u32;
            }
        }
        for (i, &a) in window_atoms.iter().enumerate() {
            self.comp_of[a as usize] = lo as u32 + local_comp[i];
        }

        // ---- Splice: atom slices ----------------------------------------
        if m == w && nw == a_hi - a_lo {
            // Same component count, no new atoms: patch in place.
            self.atoms[a_lo..a_hi].copy_from_slice(&grouped_atoms);
            for i in 0..m {
                self.atom_offsets[lo + 1 + i] = a_lo as u32 + new_atom_offsets[i + 1];
            }
        } else {
            let mut atoms2 = Vec::with_capacity(new_n);
            atoms2.extend_from_slice(&self.atoms[..a_lo]);
            atoms2.extend_from_slice(&grouped_atoms);
            atoms2.extend_from_slice(&self.atoms[a_hi..]);
            self.atoms = atoms2;
            let grow = nw as i64 - (a_hi - a_lo) as i64;
            let mut off2 = Vec::with_capacity((k_old as i64 + dcomp) as usize + 1);
            off2.extend_from_slice(&self.atom_offsets[..=lo]);
            off2.extend(new_atom_offsets[1..].iter().map(|&o| a_lo as u32 + o));
            for &o in &self.atom_offsets[hi_ex + 1..] {
                off2.push((o as i64 + grow) as u32);
            }
            self.atom_offsets = off2;
        }

        // ---- Splice: rule slices ----------------------------------------
        // Membership changes are confined to window components (every
        // added or removed rule's head is touched), so the window's rule
        // slices are regrouped straight from the program's head index.
        let r_lo = self.rule_offsets[lo] as usize;
        let r_hi = self.rule_offsets[hi_ex] as usize;
        let mut grouped_rules: Vec<RuleId> = Vec::with_capacity(r_hi - r_lo);
        let mut new_rule_offsets = vec![0u32; m + 1];
        for c in 0..m {
            let range = new_atom_offsets[c] as usize..new_atom_offsets[c + 1] as usize;
            for &a in &grouped_atoms[range] {
                grouped_rules.extend_from_slice(prog.rules_with_head(AtomId(a)));
            }
            new_rule_offsets[c + 1] = grouped_rules.len() as u32;
        }
        if m == w && grouped_rules.len() == r_hi - r_lo {
            self.rules[r_lo..r_hi].copy_from_slice(&grouped_rules);
            for i in 0..m {
                self.rule_offsets[lo + 1 + i] = r_lo as u32 + new_rule_offsets[i + 1];
            }
        } else {
            let grow = grouped_rules.len() as i64 - (r_hi - r_lo) as i64;
            let mut rules2 = Vec::with_capacity((self.rules.len() as i64 + grow) as usize);
            rules2.extend_from_slice(&self.rules[..r_lo]);
            rules2.extend_from_slice(&grouped_rules);
            rules2.extend_from_slice(&self.rules[r_hi..]);
            self.rules = rules2;
            let mut off2 = Vec::with_capacity((k_old as i64 + dcomp) as usize + 1);
            off2.extend_from_slice(&self.rule_offsets[..=lo]);
            off2.extend(new_rule_offsets[1..].iter().map(|&o| r_lo as u32 + o));
            for &o in &self.rule_offsets[hi_ex + 1..] {
                off2.push((o as i64 + grow) as u32);
            }
            self.rule_offsets = off2;
        }
        debug_assert_eq!(self.rules.len(), prog.rule_count());
        debug_assert_eq!(self.atoms.len(), new_n);

        // ---- Largest component ------------------------------------------
        let window_max = (0..m)
            .map(|c| (new_atom_offsets[c + 1] - new_atom_offsets[c]) as usize)
            .max()
            .unwrap_or(0);
        if window_held_largest {
            // A split may have shrunk the maximum: rescan the (cheap,
            // fence-array-only) component sizes.
            let k_new = self.len();
            self.largest = (0..k_new)
                .map(|c| (self.atom_offsets[c + 1] - self.atom_offsets[c]) as usize)
                .max()
                .unwrap_or(0);
        } else {
            // Components outside the window are untouched, so the
            // maximum can only grow — by a merge inside the window.
            self.largest = self.largest.max(window_max);
        }

        RepairStats {
            atoms_visited: nw,
            edges_visited,
            components_replaced: w,
            components_recomputed: m,
        }
    }

    /// Build the inter-component dependency structure a task-DAG
    /// scheduler needs, restricted to the components in `scheduled`
    /// (component ids, **ascending**): per scheduled component, its
    /// indegree (number of *distinct* scheduled components its rules
    /// read) and its CSR reverse-edge list (the scheduled components
    /// that depend on it), plus the critical-path depth of the DAG.
    ///
    /// Dependencies on components outside `scheduled` are dropped — the
    /// caller settles those before scheduling (a warm re-solve copies
    /// them from the previous model), so they gate nothing. Cost is
    /// `O(Σ rules of scheduled components)`: the structure is rebuilt
    /// per solve from exactly the components that solve evaluates, so a
    /// warm repair's task graph stays delta-bounded by construction —
    /// there is deliberately **no** persistent cross-solve edge cache
    /// for [`Condensation::apply_delta`] to splice, because a window
    /// split renumbers suffix components and would force non-local
    /// rewrites of every stored edge into the window, defeating the
    /// bound the repair exists to keep.
    pub fn task_graph(&self, prog: &GroundProgram, scheduled: &[u32]) -> TaskGraph {
        debug_assert!(scheduled.windows(2).all(|w| w[0] < w[1]));
        let k = self.len();
        let t = scheduled.len();
        let mut task_of = vec![u32::MAX; k];
        for (i, &c) in scheduled.iter().enumerate() {
            task_of[c as usize] = i as u32;
        }
        // Distinct predecessor lists, deduplicated with a stamp array:
        // `stamp[pc] == ti` means component `pc` is already recorded as
        // a predecessor of task `ti`.
        let mut stamp = vec![u32::MAX; k];
        let mut preds: Vec<u32> = Vec::new();
        let mut pred_offsets = vec![0u32; t + 1];
        for (ti, &c) in scheduled.iter().enumerate() {
            for &rid in self.rules(c as usize) {
                let r = prog.rule(rid);
                for &q in r.pos.iter().chain(r.neg.iter()) {
                    let pc = self.comp_of[q.index()];
                    if pc == c || stamp[pc as usize] == ti as u32 {
                        continue;
                    }
                    stamp[pc as usize] = ti as u32;
                    let pt = task_of[pc as usize];
                    if pt != u32::MAX {
                        preds.push(pt);
                    }
                }
            }
            pred_offsets[ti + 1] = preds.len() as u32;
        }
        // Indegrees, and the reverse edges as a counting sort of the
        // pred lists by predecessor.
        let mut indegree = vec![0u32; t];
        let mut dep_offsets = vec![0u32; t + 1];
        for ti in 0..t {
            indegree[ti] = pred_offsets[ti + 1] - pred_offsets[ti];
        }
        for &pt in &preds {
            dep_offsets[pt as usize + 1] += 1;
        }
        for i in 0..t {
            dep_offsets[i + 1] += dep_offsets[i];
        }
        let mut cursor = dep_offsets.clone();
        let mut dependents = vec![0u32; preds.len()];
        for ti in 0..t {
            for &pt in &preds[pred_offsets[ti] as usize..pred_offsets[ti + 1] as usize] {
                dependents[cursor[pt as usize] as usize] = ti as u32;
                cursor[pt as usize] += 1;
            }
        }
        // Critical path: predecessors always have a smaller task index
        // (`scheduled` ascends and component ids are topological), so
        // one forward pass suffices.
        let mut depth = 0usize;
        let mut level = vec![0u32; t];
        for ti in 0..t {
            let mut l = 1u32;
            for &pt in &preds[pred_offsets[ti] as usize..pred_offsets[ti + 1] as usize] {
                debug_assert!((pt as usize) < ti);
                l = l.max(level[pt as usize] + 1);
            }
            level[ti] = l;
            depth = depth.max(l as usize);
        }
        TaskGraph {
            tasks: scheduled.to_vec(),
            dep_offsets,
            dependents,
            indegree,
            depth,
        }
    }

    /// Do `self` and `other` describe the same condensation? The SCC
    /// *partition* of a graph is unique but component ids are an arbitrary
    /// topological labeling, so this compares the atom partition and the
    /// per-component rule **sets** — the notion of identity the
    /// differential suite holds [`Condensation::apply_delta`] to against
    /// a from-scratch [`Condensation::of`] (use
    /// [`Condensation::is_consistent_with`] for the order-validity half).
    pub fn same_decomposition(&self, other: &Condensation) -> bool {
        if self.comp_of.len() != other.comp_of.len()
            || self.len() != other.len()
            || self.rules.len() != other.rules.len()
        {
            return false;
        }
        for c in 0..self.len() {
            let atoms = self.atoms(c);
            let oc = other.comp_of[atoms[0] as usize] as usize;
            // Atom slices are ascending on both sides, so slice equality
            // is set equality; equal counts + disjointness make the
            // component mapping a bijection.
            if atoms != other.atoms(oc) {
                return false;
            }
            let mut r1: Vec<RuleId> = self.rules(c).to_vec();
            let mut r2: Vec<RuleId> = other.rules(oc).to_vec();
            r1.sort_unstable();
            r2.sort_unstable();
            if r1 != r2 {
                return false;
            }
        }
        true
    }

    /// Full structural audit against `prog`: sizes, slice/`comp_of`
    /// agreement, ascending atom slices, every rule indexed exactly once
    /// under its head's component, **topologically valid** component ids
    /// (no rule's body reaches a higher component than its head), and a
    /// correct `largest`. `O(|program|)` — this is the debug-mode check
    /// behind warm condensation repairs, not a hot-path operation.
    pub fn is_consistent_with(&self, prog: &GroundProgram) -> bool {
        let n = prog.atom_count();
        let k = self.len();
        if self.comp_of.len() != n
            || self.atoms.len() != n
            || self.rules.len() != prog.rule_count()
            || self.rule_offsets.len() != k + 1
        {
            return false;
        }
        let mut seen_rule = vec![false; prog.rule_count()];
        for c in 0..k {
            let atoms = self.atoms(c);
            if atoms.is_empty() || !atoms.windows(2).all(|p| p[0] < p[1]) {
                return false;
            }
            if atoms.iter().any(|&a| self.comp_of[a as usize] != c as u32) {
                return false;
            }
            for &rid in self.rules(c) {
                if seen_rule[rid as usize] || self.comp_of[prog.rule(rid).head.index()] != c as u32
                {
                    return false;
                }
                seen_rule[rid as usize] = true;
            }
        }
        for r in prog.rules() {
            let hc = self.comp_of[r.head.index()];
            if r.pos
                .iter()
                .chain(r.neg.iter())
                .any(|&q| self.comp_of[q.index()] > hc)
            {
                return false;
            }
        }
        let largest = (0..k).map(|c| self.atoms(c).len()).max().unwrap_or(0);
        self.largest == largest
    }
}

/// The task-DAG view of a (subset of a) [`Condensation`]: the structure
/// an indegree-driven wavefront scheduler consumes. Built by
/// [`Condensation::task_graph`] over exactly the components one solve
/// evaluates; tasks are indexed `0..len()` in ascending component-id
/// order, so predecessors always have smaller task indices and running
/// tasks in index order is a valid sequential schedule.
#[derive(Debug, Clone, Default)]
pub struct TaskGraph {
    /// Task index → component id (ascending).
    tasks: Vec<u32>,
    /// Task index → range into `dependents` (CSR fences).
    dep_offsets: Vec<u32>,
    /// Reverse edges: for each task, the tasks that read it (and so
    /// become ready only after it settles).
    dependents: Vec<u32>,
    /// Task index → number of distinct scheduled components it reads.
    indegree: Vec<u32>,
    /// Critical-path length in dependency levels (0 for an empty graph):
    /// the number of wavefronts an idealized width-unbounded schedule
    /// needs, and the lower bound no thread count can beat.
    depth: usize,
}

impl TaskGraph {
    /// Number of scheduled tasks.
    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Component id of task `ti`.
    pub fn component(&self, ti: usize) -> u32 {
        self.tasks[ti]
    }

    /// Number of distinct scheduled components task `ti` reads.
    pub fn indegree(&self, ti: usize) -> u32 {
        self.indegree[ti]
    }

    /// The tasks that depend on task `ti`.
    pub fn dependents(&self, ti: usize) -> &[u32] {
        &self.dependents[self.dep_offsets[ti] as usize..self.dep_offsets[ti + 1] as usize]
    }

    /// Dependency edges in the scheduled DAG.
    pub fn edge_count(&self) -> usize {
        self.dependents.len()
    }

    /// Critical-path length in dependency levels.
    pub fn depth(&self) -> usize {
        self.depth
    }
}

/// The change a batch of in-place program mutations makes to the atom
/// dependency graph, as [`Condensation::apply_delta`] needs to see it.
///
/// # Contract
///
/// The condensation must be current up to (but not including) the batch
/// — apply deltas after **every** mutation batch, in order. The batch
/// must satisfy:
///
/// * `touched` holds the head atom of every ground rule the batch added,
///   removed, or patched (a resurrected negative literal patches its
///   rule);
/// * `new_edge_targets` holds every body atom of every added rule and
///   every atom added to an existing rule's body — the targets of
///   dependency edges that did not necessarily exist before;
/// * `renames` records every swap-remove rename
///   ([`GroundProgram::remove_rule`] moving the last rule into the freed
///   slot) in chronological order, each stamped with the moved rule's
///   head **at event time**;
/// * atoms interned since the last delta are exactly
///   `old_atom_count..prog.atom_count()` (dense append), and each of
///   them either has its rules' heads in `touched` or appears in
///   `new_edge_targets` or has no incident dependency edges at all.
#[derive(Debug, Clone, Copy)]
pub struct CondensationDelta<'a> {
    /// Heads whose rule set changed (rules added, removed, or patched).
    pub touched: &'a [AtomId],
    /// Body atoms of added rules and added (resurrected) body literals.
    pub new_edge_targets: &'a [AtomId],
    /// Swap-remove rule-id renames, in chronological order.
    pub renames: &'a [RuleRename],
}

/// A swap-remove rename of a ground rule id: the rule formerly at `from`
/// now lives at `to`. `head` is that rule's head **at event time** —
/// recorded eagerly because a later rename in the same batch may move
/// the slot again.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RuleRename {
    /// The rule's previous id (the last rule at removal time).
    pub from: RuleId,
    /// The slot it moved into.
    pub to: RuleId,
    /// The moved rule's head atom.
    pub head: AtomId,
}

/// What one [`Condensation::apply_delta`] call actually walked — the
/// evidence that a repair was delta-bounded rather than a hidden rebuild.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RepairStats {
    /// Atoms the localized Tarjan visited (the repair window).
    pub atoms_visited: usize,
    /// Dependency edges inspected while rebuilding the window adjacency.
    pub edges_visited: usize,
    /// Components the window replaced.
    pub components_replaced: usize,
    /// Components the localized Tarjan emitted in their place.
    pub components_recomputed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn graph(src: &str) -> (DepGraph, Program) {
        let p = parse_program(src).unwrap();
        (DepGraph::build(&p), p)
    }

    #[test]
    fn builds_labeled_edges() {
        let (g, p) = graph("p(X) :- q(X), not r(X). q(a).");
        let pn = g.node(p.symbols.get("p").unwrap()).unwrap();
        let qn = g.node(p.symbols.get("q").unwrap()).unwrap();
        let rn = g.node(p.symbols.get("r").unwrap()).unwrap();
        assert_eq!(
            g.edge(pn, qn),
            Some(EdgePolarity {
                positive: true,
                negative: false
            })
        );
        assert!(g.edge(pn, rn).unwrap().negative);
        assert!(g.edge(qn, pn).is_none());
    }

    #[test]
    fn mixed_edges_detected() {
        let (g, p) = graph("p(X) :- q(X), not q(X).");
        let pn = g.node(p.symbols.get("p").unwrap()).unwrap();
        let qn = g.node(p.symbols.get("q").unwrap()).unwrap();
        assert!(g.edge(pn, qn).unwrap().is_mixed());
    }

    #[test]
    fn tc_program_is_stratified() {
        let (g, p) = graph(
            "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
             ntc(X,Y) :- d(X), d(Y), not tc(X,Y). e(a,b). d(a).",
        );
        let strata = g.stratification().expect("stratified");
        let s = |name: &str| strata[g.node(p.symbols.get(name).unwrap()).unwrap()];
        assert_eq!(s("e"), 0);
        assert_eq!(s("tc"), 0);
        assert_eq!(s("ntc"), 1);
        assert!(g.is_stratified());
    }

    #[test]
    fn win_move_is_not_stratified() {
        let (g, _) = graph("wins(X) :- move(X,Y), not wins(Y). move(a,b).");
        assert!(!g.is_stratified());
        assert!(g.stratification().is_none());
    }

    #[test]
    fn even_odd_cycle_stratification() {
        // p :- not q. q :- not p.  — a 2-cycle through negation: unstratified.
        let (g, _) = graph("p :- not q. q :- not p.");
        assert!(!g.is_stratified());
    }

    #[test]
    fn sccs_in_dependency_order() {
        let (g, p) = graph("a :- b. b :- a. c :- a.");
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        // {a, b} must come before {c}.
        let first: Vec<&str> = sccs
            .get(0)
            .iter()
            .map(|&n| p.symbols.name(g.pred(n as usize)))
            .collect();
        assert!(first.contains(&"a") && first.contains(&"b"));
        assert_eq!(p.symbols.name(g.pred(sccs.get(1)[0] as usize)), "c");
    }

    #[test]
    fn strictness_of_win_move() {
        // wins depends on itself through one negation: paths wins⇝wins have
        // lengths 0, 1, 2, … negations — both parities ⇒ not strict.
        let (g, p) = graph("wins(X) :- move(X,Y), not wins(Y). move(a,b).");
        let w = g.node(p.symbols.get("wins").unwrap()).unwrap();
        assert!(!g.is_strict_pair(w, w));
        assert!(!g.is_strict());
        // But restricted to {move} as "IDB" it is trivially strict.
        assert!(g.is_strict_in_idb(&[p.symbols.get("move").unwrap()]));
    }

    #[test]
    fn strict_program_example_8_2() {
        // w(X) :- not u(X).  u(X) :- e(Y,X), not w(Y).  (Example 8.2)
        // Paths w⇝w: w→u→w with 2 negations; w⇝u: 1 negation; all strict.
        let (g, p) = graph("w(X) :- not u(X). u(X) :- e(Y, X), not w(Y). e(a, b).");
        assert!(g.is_strict());
        let idb = [p.symbols.get("w").unwrap(), p.symbols.get("u").unwrap()];
        assert!(g.is_strict_in_idb(&idb));
    }

    #[test]
    fn mixed_arc_breaks_strictness() {
        let (g, p) = graph("p(X) :- q(X), not q(X). q(a).");
        let pn = g.node(p.symbols.get("p").unwrap()).unwrap();
        let qn = g.node(p.symbols.get("q").unwrap()).unwrap();
        assert!(!g.is_strict_pair(pn, qn));
    }

    #[test]
    fn tarjan_on_larger_graph() {
        // 0→1→2→0 cycle; 3→0; 4 isolated.
        let adj = vec![vec![1], vec![2], vec![0], vec![0], vec![]];
        let sccs = tarjan_sccs(&adj);
        assert_eq!(sccs.len(), 3);
        let cycle = sccs.iter().find(|c| c.len() == 3).unwrap();
        let mut sorted = cycle.to_vec();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2]);
        // The cycle must precede node 3 (which depends on it).
        let cycle_pos = sccs.iter().position(|c| c.len() == 3).unwrap();
        let three_pos = sccs.iter().position(|c| c == [3]).unwrap();
        assert!(cycle_pos < three_pos);
    }

    #[test]
    fn condensation_groups_atoms_and_rules() {
        use crate::program::parse_ground;
        let g = parse_ground("p :- not q. q :- not p. r :- p. r :- q. s :- not r. t.");
        let c = Condensation::of(&g);
        assert_eq!(c.len(), 4, "{{p,q}}, {{r}}, {{s}}, {{t}}");
        assert_eq!(c.largest(), 2);
        let p = g.find_atom_by_name("p", &[]).unwrap().0;
        let q = g.find_atom_by_name("q", &[]).unwrap().0;
        let r = g.find_atom_by_name("r", &[]).unwrap().0;
        let s = g.find_atom_by_name("s", &[]).unwrap().0;
        assert_eq!(c.component_of(p), c.component_of(q));
        assert_ne!(c.component_of(p), c.component_of(r));
        // Dependency order: callees get smaller ids.
        assert!(c.component_of(p) < c.component_of(r));
        assert!(c.component_of(r) < c.component_of(s));
        // The knot's component holds both atoms and both 2-cycle rules.
        let knot = c.component_of(p) as usize;
        assert_eq!(c.atoms(knot), &[p.min(q), p.max(q)]);
        assert_eq!(c.rules(knot).len(), 2);
        // Every rule lands in exactly one component slice.
        let total: usize = (0..c.len()).map(|i| c.rules(i).len()).sum();
        assert_eq!(total, g.rule_count());
        let total_atoms: usize = (0..c.len()).map(|i| c.atoms(i).len()).sum();
        assert_eq!(total_atoms, g.atom_count());
    }

    #[test]
    fn condensation_of_empty_program() {
        use crate::program::GroundProgramBuilder;
        let g = GroundProgramBuilder::new().finish();
        let c = Condensation::of(&g);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    /// Rebuild from scratch and check the repaired condensation against
    /// it — the identity notion of the differential suite.
    fn assert_repaired(c: &Condensation, g: &crate::program::GroundProgram) {
        let fresh = Condensation::of(g);
        assert!(c.is_consistent_with(g), "repaired condensation audits");
        assert!(
            c.same_decomposition(&fresh),
            "repair must reproduce the from-scratch decomposition"
        );
    }

    #[test]
    fn apply_delta_fact_toggle_is_partition_stable() {
        use crate::program::parse_ground;
        let mut g = parse_ground("p :- not q, e. q :- not p. r :- p. e.");
        let mut c = Condensation::of(&g);
        let e = g.find_atom_by_name("e", &[]).unwrap();
        let fact = *g
            .rules_with_head(e)
            .iter()
            .find(|&&r| g.rule(r).is_fact())
            .unwrap();
        // Retract the fact…
        let mut renames: Vec<RuleRename> = Vec::new();
        g.remove_rule_logged(fact, &mut renames);
        let stats = c.apply_delta(
            &g,
            &CondensationDelta {
                touched: &[e],
                new_edge_targets: &[],
                renames: &renames,
            },
        );
        assert_repaired(&c, &g);
        assert!(stats.atoms_visited <= 1, "only e's singleton is rewalked");
        // …and assert it back.
        g.push_rule(e, vec![], vec![]);
        c.apply_delta(
            &g,
            &CondensationDelta {
                touched: &[e],
                new_edge_targets: &[],
                renames: &[],
            },
        );
        assert_repaired(&c, &g);
    }

    #[test]
    fn apply_delta_merges_and_splits_components() {
        use crate::program::parse_ground;
        // A 3-chain of singletons: c depends on b depends on a.
        let mut g = parse_ground("a. b :- a. c :- b. z :- not c.");
        let mut c = Condensation::of(&g);
        let a = g.find_atom_by_name("a", &[]).unwrap();
        let b = g.find_atom_by_name("b", &[]).unwrap();
        let cc = g.find_atom_by_name("c", &[]).unwrap();
        // Add `a :- c.`: merges {a}, {b}, {c} into one odd-sized knot.
        let rid = g.push_rule(a, vec![cc], vec![]);
        let stats = c.apply_delta(
            &g,
            &CondensationDelta {
                touched: &[a],
                new_edge_targets: &[cc],
                renames: &[],
            },
        );
        assert_repaired(&c, &g);
        assert_eq!(c.component_of(a.0), c.component_of(cc.0));
        assert_eq!(stats.components_replaced, 3, "the window is the chain");
        assert_eq!(stats.components_recomputed, 1, "merged into one knot");
        assert_eq!(c.largest(), 3);
        // Remove it again: the knot splits back into three singletons.
        let mut renames: Vec<RuleRename> = Vec::new();
        g.remove_rule_logged(rid, &mut renames);
        c.apply_delta(
            &g,
            &CondensationDelta {
                touched: &[a],
                new_edge_targets: &[],
                renames: &renames,
            },
        );
        assert_repaired(&c, &g);
        assert_ne!(c.component_of(a.0), c.component_of(b.0));
        assert_eq!(c.largest(), 1);
    }

    #[test]
    fn apply_delta_handles_new_atoms_and_odd_loops() {
        use crate::program::parse_ground;
        let mut g = parse_ground("p :- not q. q :- not p. r :- p.");
        let mut c = Condensation::of(&g);
        // Intern a brand-new atom with an odd loop through negation on
        // itself plus an edge into the old program.
        let s = g.intern_symbol("s");
        let sa = g.intern_atom_ids(s, &[]);
        let p = g.find_atom_by_name("p", &[]).unwrap();
        g.push_rule(sa, vec![p], vec![sa]);
        c.apply_delta(
            &g,
            &CondensationDelta {
                touched: &[sa],
                new_edge_targets: &[p, sa],
                renames: &[],
            },
        );
        assert_repaired(&c, &g);
        assert!(c.component_of(sa.0) > c.component_of(p.0));
        // A floating new atom with no rules at all becomes a singleton.
        let t = g.intern_symbol("t");
        let ta = g.intern_atom_ids(t, &[]);
        c.apply_delta(
            &g,
            &CondensationDelta {
                touched: &[],
                new_edge_targets: &[],
                renames: &[],
            },
        );
        assert_repaired(&c, &g);
        assert_eq!(c.atoms(c.component_of(ta.0) as usize), &[ta.0]);
    }

    #[test]
    fn task_graph_over_full_condensation() {
        use crate::program::parse_ground;
        // {p,q} ← r ← s, plus t isolated: a 3-deep chain and a free task.
        let g = parse_ground("p :- not q. q :- not p. r :- p. r :- q. s :- not r. t.");
        let c = Condensation::of(&g);
        let all: Vec<u32> = (0..c.len() as u32).collect();
        let tg = c.task_graph(&g, &all);
        assert_eq!(tg.len(), 4);
        assert_eq!(tg.depth(), 3, "knot → r → s is the critical path");
        let task_of_comp = |comp: u32| (0..tg.len()).find(|&ti| tg.component(ti) == comp).unwrap();
        let knot = task_of_comp(c.component_of(g.find_atom_by_name("p", &[]).unwrap().0));
        let r = task_of_comp(c.component_of(g.find_atom_by_name("r", &[]).unwrap().0));
        let s = task_of_comp(c.component_of(g.find_atom_by_name("s", &[]).unwrap().0));
        let t = task_of_comp(c.component_of(g.find_atom_by_name("t", &[]).unwrap().0));
        assert_eq!(tg.indegree(knot), 0);
        assert_eq!(tg.indegree(r), 1, "r reads the knot once, deduplicated");
        assert_eq!(tg.indegree(s), 1);
        assert_eq!(tg.indegree(t), 0);
        assert_eq!(tg.dependents(knot), &[r as u32]);
        assert_eq!(tg.dependents(r), &[s as u32]);
        assert!(tg.dependents(s).is_empty() && tg.dependents(t).is_empty());
        assert_eq!(tg.edge_count(), 2);
    }

    #[test]
    fn task_graph_restricted_drops_settled_dependencies() {
        use crate::program::parse_ground;
        let g = parse_ground("a. b :- a. c :- b. d :- c.");
        let c = Condensation::of(&g);
        let comp = |name: &str| c.component_of(g.find_atom_by_name(name, &[]).unwrap().0);
        // Schedule only {c, d}: c's dependency on b leaves the schedule,
        // so c starts ready and d gates on c alone.
        let mut sched = vec![comp("c"), comp("d")];
        sched.sort_unstable();
        let tg = c.task_graph(&g, &sched);
        assert_eq!(tg.len(), 2);
        assert_eq!(tg.depth(), 2);
        assert_eq!(tg.indegree(0), 0, "the settled b is not a gate");
        assert_eq!(tg.indegree(1), 1);
        assert_eq!(tg.dependents(0), &[1]);
        // Empty schedule: empty graph.
        let tg = c.task_graph(&g, &[]);
        assert!(tg.is_empty());
        assert_eq!(tg.depth(), 0);
    }

    #[test]
    fn stratification_depth_chain() {
        let (g, p) =
            graph("s1(X) :- e(X). s2(X) :- e(X), not s1(X). s3(X) :- e(X), not s2(X). e(a).");
        let strata = g.stratification().unwrap();
        let s = |name: &str| strata[g.node(p.symbols.get(name).unwrap()).unwrap()];
        assert_eq!(s("e"), 0);
        assert_eq!(s("s1"), 0);
        assert_eq!(s("s2"), 1);
        assert_eq!(s("s3"), 2);
    }
}
