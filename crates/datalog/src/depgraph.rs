//! Predicate dependency graphs, stratification, and strictness.
//!
//! The *dependency graph* of a program (Definition 8.3) has the relation
//! symbols as nodes and an arc `p → q` whenever `q` occurs in the body of a
//! rule with head `p`. Arcs are labeled positive, negative, or mixed
//! according to the polarity of `q`'s occurrences.
//!
//! On top of it we provide:
//!
//! * **Stratification** (Section 2.3): a program is stratified when no
//!   negative arc lies inside a strongly connected component; the stratum
//!   assignment drives the iterated-fixpoint evaluation in
//!   `afp-semantics::stratified`.
//! * **Strictness** (Definition 8.3, Section 8.2): a pair `(p, q)` is strict
//!   when all paths `p ⇝ q` cross an even number of negative arcs and no
//!   mixed arc, or all cross an odd number and no mixed arc, or there is no
//!   path. Strictness-in-the-IDB is the side condition of the
//!   expressiveness theorems (8.6, 8.7).

use crate::ast::Program;
use crate::fx::FxHashMap;
use crate::program::RuleId;
use crate::symbol::Symbol;

/// Polarity label of a dependency arc.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EdgePolarity {
    /// Some occurrence of the target is positive.
    pub positive: bool,
    /// Some occurrence of the target is negative.
    pub negative: bool,
}

impl EdgePolarity {
    /// "Mixed" per Definition 8.3: the target occurs both ways.
    pub fn is_mixed(&self) -> bool {
        self.positive && self.negative
    }
}

/// The dependency graph of a program.
#[derive(Debug, Clone)]
pub struct DepGraph {
    preds: Vec<Symbol>,
    index: FxHashMap<Symbol, usize>,
    /// `edges[p]` maps a successor node to the arc polarity.
    edges: Vec<FxHashMap<usize, EdgePolarity>>,
}

impl DepGraph {
    /// Build the graph from a program. Every predicate that occurs anywhere
    /// becomes a node.
    pub fn build(program: &Program) -> Self {
        let preds = program.all_predicates();
        let mut index = FxHashMap::default();
        for (i, &p) in preds.iter().enumerate() {
            index.insert(p, i);
        }
        let mut edges = vec![FxHashMap::<usize, EdgePolarity>::default(); preds.len()];
        for rule in &program.rules {
            let from = index[&rule.head.pred];
            for lit in &rule.body {
                let to = index[&lit.atom.pred];
                let e = edges[from].entry(to).or_default();
                if lit.positive {
                    e.positive = true;
                } else {
                    e.negative = true;
                }
            }
        }
        DepGraph {
            preds,
            index,
            edges,
        }
    }

    /// Build a graph from raw `(head, body, positive-occurrence)` triples —
    /// used by the first-order extension (`afp-fol`), where bodies are
    /// formulas rather than literal lists. Every symbol mentioned becomes a
    /// node.
    pub fn from_edges(edges: &[(Symbol, Symbol, bool)]) -> Self {
        let mut preds = Vec::new();
        let mut index: FxHashMap<Symbol, usize> = FxHashMap::default();
        let node = |s: Symbol, preds: &mut Vec<Symbol>, index: &mut FxHashMap<Symbol, usize>| {
            *index.entry(s).or_insert_with(|| {
                preds.push(s);
                preds.len() - 1
            })
        };
        let mut edge_list = Vec::new();
        for &(from, to, positive) in edges {
            let f = node(from, &mut preds, &mut index);
            let t = node(to, &mut preds, &mut index);
            edge_list.push((f, t, positive));
        }
        let mut adj = vec![FxHashMap::<usize, EdgePolarity>::default(); preds.len()];
        for (f, t, positive) in edge_list {
            let e = adj[f].entry(t).or_default();
            if positive {
                e.positive = true;
            } else {
                e.negative = true;
            }
        }
        DepGraph {
            preds,
            index,
            edges: adj,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }

    /// Node id of a predicate, if present.
    pub fn node(&self, pred: Symbol) -> Option<usize> {
        self.index.get(&pred).copied()
    }

    /// Predicate of a node id.
    pub fn pred(&self, node: usize) -> Symbol {
        self.preds[node]
    }

    /// The polarity of the arc `p → q`, if it exists.
    pub fn edge(&self, p: usize, q: usize) -> Option<EdgePolarity> {
        self.edges[p].get(&q).copied()
    }

    /// Iterate over the successors of a node.
    pub fn successors(&self, p: usize) -> impl Iterator<Item = (usize, EdgePolarity)> + '_ {
        self.edges[p].iter().map(|(&q, &e)| (q, e))
    }

    /// Strongly connected components in *dependency order*: if any node of
    /// component `A` depends (directly or transitively) on a node of
    /// component `B ≠ A`, then `B` appears before `A` in the result.
    pub fn sccs(&self) -> Vec<Vec<usize>> {
        let adj: Vec<Vec<usize>> = self
            .edges
            .iter()
            .map(|m| m.keys().copied().collect())
            .collect();
        tarjan_sccs(&adj)
    }

    /// Stratum assignment per node, or `None` if the program is not
    /// stratified (a negative or mixed arc inside an SCC). EDB predicates
    /// and other bottom predicates get stratum 0.
    pub fn stratification(&self) -> Option<Vec<u32>> {
        let sccs = self.sccs();
        let mut comp_of = vec![usize::MAX; self.len()];
        for (cid, comp) in sccs.iter().enumerate() {
            for &n in comp {
                comp_of[n] = cid;
            }
        }
        // Reject negative arcs within a component.
        for (p, succ) in self.edges.iter().enumerate() {
            for (&q, e) in succ {
                if comp_of[p] == comp_of[q] && e.negative {
                    return None;
                }
            }
        }
        // Components come in dependency order, so one pass suffices.
        let mut comp_stratum = vec![0u32; sccs.len()];
        for (cid, comp) in sccs.iter().enumerate() {
            let mut s = 0;
            for &p in comp {
                for (q, e) in self.successors(p) {
                    let qc = comp_of[q];
                    if qc != cid {
                        let need = comp_stratum[qc] + u32::from(e.negative);
                        s = s.max(need);
                    }
                }
            }
            comp_stratum[cid] = s;
        }
        Some((0..self.len()).map(|n| comp_stratum[comp_of[n]]).collect())
    }

    /// True iff the program is stratified.
    pub fn is_stratified(&self) -> bool {
        self.stratification().is_some()
    }

    /// Parity-reachability from `p`: for each node `q`, which parities of
    /// negative-arc counts are achievable on some path `p ⇝ q`. Traversing
    /// a mixed arc makes both parities achievable from that point on.
    /// The null path makes `p` even-reachable from itself.
    ///
    /// Returned as `(even, odd)` bit vectors.
    pub fn parity_reachability(&self, p: usize) -> (Vec<bool>, Vec<bool>) {
        let n = self.len();
        let mut even = vec![false; n];
        let mut odd = vec![false; n];
        let mut queue: Vec<(usize, bool)> = Vec::new(); // (node, parity-is-odd)
        even[p] = true;
        queue.push((p, false));
        while let Some((u, is_odd)) = queue.pop() {
            for (v, e) in self.successors(u) {
                let push = |v: usize,
                            po: bool,
                            even: &mut Vec<bool>,
                            odd: &mut Vec<bool>,
                            queue: &mut Vec<(usize, bool)>| {
                    let seen = if po { &mut odd[v] } else { &mut even[v] };
                    if !*seen {
                        *seen = true;
                        queue.push((v, po));
                    }
                };
                if e.is_mixed() {
                    push(v, false, &mut even, &mut odd, &mut queue);
                    push(v, true, &mut even, &mut odd, &mut queue);
                } else if e.negative {
                    push(v, !is_odd, &mut even, &mut odd, &mut queue);
                } else {
                    push(v, is_odd, &mut even, &mut odd, &mut queue);
                }
            }
        }
        (even, odd)
    }

    /// Is the ordered pair `(p, q)` strict (Definition 8.3)?
    pub fn is_strict_pair(&self, p: usize, q: usize) -> bool {
        let (even, odd) = self.parity_reachability(p);
        !(even[q] && odd[q])
    }

    /// Is the whole program strict?
    pub fn is_strict(&self) -> bool {
        (0..self.len()).all(|p| {
            let (even, odd) = self.parity_reachability(p);
            (0..self.len()).all(|q| !(even[q] && odd[q]))
        })
    }

    /// Is the program strict when restricted to pairs of IDB predicates?
    pub fn is_strict_in_idb(&self, idb: &[Symbol]) -> bool {
        let idb_nodes: Vec<usize> = idb.iter().filter_map(|&s| self.node(s)).collect();
        idb_nodes.iter().all(|&p| {
            let (even, odd) = self.parity_reachability(p);
            idb_nodes.iter().all(|&q| !(even[q] && odd[q]))
        })
    }
}

/// Iterative Tarjan SCC. Components are returned in reverse topological
/// order of the condensation — i.e. if there is an arc from a node of `A`
/// to a node of `B` (A depends on B), `B` is emitted before `A`.
pub fn tarjan_sccs(adj: &[Vec<usize>]) -> Vec<Vec<usize>> {
    let n = adj.len();
    let mut offsets = Vec::with_capacity(n + 1);
    offsets.push(0u32);
    let mut targets = Vec::new();
    for succ in adj {
        targets.extend(succ.iter().map(|&w| w as u32));
        offsets.push(targets.len() as u32);
    }
    let mut out: Vec<Vec<usize>> = Vec::new();
    tarjan_csr(n, &offsets, &targets, |comp| {
        out.push(comp.iter().map(|&w| w as usize).collect());
    });
    out
}

/// Iterative Tarjan over a CSR adjacency (`targets[offsets[v]..offsets[v+1]]`
/// are the successors of `v`). `emit` is called once per strongly connected
/// component, in reverse topological order of the condensation (callees
/// before callers); the slice it receives is scratch, valid for the call.
fn tarjan_csr(n: usize, offsets: &[u32], targets: &[u32], mut emit: impl FnMut(&[u32])) {
    let mut index = vec![u32::MAX; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index: u32 = 0;

    // Explicit DFS stack: (node, next child position in `targets`).
    let mut call: Vec<(u32, u32)> = Vec::new();
    for root in 0..n {
        if index[root] != u32::MAX {
            continue;
        }
        call.push((root as u32, offsets[root]));
        index[root] = next_index;
        low[root] = next_index;
        next_index += 1;
        stack.push(root as u32);
        on_stack[root] = true;
        while let Some(&mut (v, ref mut ci)) = call.last_mut() {
            let v = v as usize;
            if *ci < offsets[v + 1] {
                let w = targets[*ci as usize] as usize;
                *ci += 1;
                if index[w] == u32::MAX {
                    index[w] = next_index;
                    low[w] = next_index;
                    next_index += 1;
                    stack.push(w as u32);
                    on_stack[w] = true;
                    call.push((w as u32, offsets[w]));
                } else if on_stack[w] {
                    low[v] = low[v].min(index[w]);
                }
            } else {
                call.pop();
                if let Some(&(parent, _)) = call.last() {
                    let parent = parent as usize;
                    low[parent] = low[parent].min(low[v]);
                }
                if low[v] == index[v] {
                    let first = stack
                        .iter()
                        .rposition(|&w| w as usize == v)
                        .expect("stack holds the component");
                    for &w in &stack[first..] {
                        on_stack[w as usize] = false;
                    }
                    emit(&stack[first..]);
                    stack.truncate(first);
                }
            }
        }
    }
}

/// The condensation of a ground program's **atom** dependency graph,
/// precomputed once and reused across solves: atom → component ids in
/// topological (dependency) order, the atoms of each component, and the
/// rules of each component (those whose head lies in it).
///
/// Component ids are assigned so that if any atom of component `A` depends
/// (directly or transitively) on an atom of component `B ≠ A`, then
/// `B < A` — processing components in id order is bottom-up. This is the
/// substrate of the in-place component-wise well-founded evaluation
/// (`afp-semantics::modular`) and of per-component warm re-solves in the
/// engine's sessions.
///
/// Component ids are **not** stable across program mutations (Tarjan
/// renumbers freely), so sessions rebuild the condensation lazily after
/// any fact or rule delta. Atom ids *are* stable across in-place
/// mutations, which is why per-component memoization keyed by atom id
/// survives the rebuild: a rebuilt component whose atoms all lie outside
/// the delta's forward cone can copy its previous truth values verbatim.
#[derive(Debug, Clone)]
pub struct Condensation {
    /// Atom index → component id.
    comp_of: Vec<u32>,
    /// Component id → range into `atoms` (len = components + 1).
    atom_offsets: Vec<u32>,
    /// Atom indices grouped by component, components in id order.
    atoms: Vec<u32>,
    /// Component id → range into `rules` (len = components + 1).
    rule_offsets: Vec<u32>,
    /// Rule ids grouped by their head's component.
    rules: Vec<RuleId>,
    /// Size of the largest component.
    largest: usize,
}

impl Condensation {
    /// Condense the atom dependency graph of `prog` (an arc `head → q` for
    /// every body atom `q`, positive or negative). Linear in the program
    /// size.
    pub fn of(prog: &crate::program::GroundProgram) -> Condensation {
        let n = prog.atom_count();
        // CSR adjacency head → body atoms.
        let mut offsets = vec![0u32; n + 1];
        for r in prog.rules() {
            offsets[r.head.index() + 1] += (r.pos.len() + r.neg.len()) as u32;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0u32; *offsets.last().unwrap_or(&0) as usize];
        for r in prog.rules() {
            let c = &mut cursor[r.head.index()];
            for &q in r.pos.iter().chain(r.neg.iter()) {
                targets[*c as usize] = q.0;
                *c += 1;
            }
        }

        let mut comp_of = vec![0u32; n];
        let mut comp_sizes: Vec<u32> = Vec::new();
        let mut largest = 0usize;
        tarjan_csr(n, &offsets, &targets, |comp| {
            let cid = comp_sizes.len() as u32;
            for &a in comp {
                comp_of[a as usize] = cid;
            }
            comp_sizes.push(comp.len() as u32);
            largest = largest.max(comp.len());
        });

        // Group atoms and rules by component (counting sort).
        let k = comp_sizes.len();
        let mut atom_offsets = vec![0u32; k + 1];
        for (i, &s) in comp_sizes.iter().enumerate() {
            atom_offsets[i + 1] = atom_offsets[i] + s;
        }
        let mut cursor = atom_offsets.clone();
        let mut atoms = vec![0u32; n];
        for a in 0..n as u32 {
            let c = &mut cursor[comp_of[a as usize] as usize];
            atoms[*c as usize] = a;
            *c += 1;
        }

        let mut rule_offsets = vec![0u32; k + 1];
        for r in prog.rules() {
            rule_offsets[comp_of[r.head.index()] as usize + 1] += 1;
        }
        for i in 0..k {
            rule_offsets[i + 1] += rule_offsets[i];
        }
        let mut cursor = rule_offsets.clone();
        let mut rules = vec![0 as RuleId; prog.rule_count()];
        for (rid, r) in prog.rules().enumerate() {
            let c = &mut cursor[comp_of[r.head.index()] as usize];
            rules[*c as usize] = rid as RuleId;
            *c += 1;
        }

        Condensation {
            comp_of,
            atom_offsets,
            atoms,
            rule_offsets,
            rules,
            largest,
        }
    }

    /// Number of strongly connected components.
    pub fn len(&self) -> usize {
        self.atom_offsets.len() - 1
    }

    /// True when the program has no atoms.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Component id of an atom. Component ids respect dependencies: every
    /// component an atom's rules mention (other than its own) has a
    /// smaller id.
    pub fn component_of(&self, atom: u32) -> u32 {
        self.comp_of[atom as usize]
    }

    /// The atoms of component `comp`, in ascending atom-id order.
    pub fn atoms(&self, comp: usize) -> &[u32] {
        &self.atoms[self.atom_offsets[comp] as usize..self.atom_offsets[comp + 1] as usize]
    }

    /// The rules whose head lies in component `comp`.
    pub fn rules(&self, comp: usize) -> &[RuleId] {
        &self.rules[self.rule_offsets[comp] as usize..self.rule_offsets[comp + 1] as usize]
    }

    /// Size of the largest component.
    pub fn largest(&self) -> usize {
        self.largest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn graph(src: &str) -> (DepGraph, Program) {
        let p = parse_program(src).unwrap();
        (DepGraph::build(&p), p)
    }

    #[test]
    fn builds_labeled_edges() {
        let (g, p) = graph("p(X) :- q(X), not r(X). q(a).");
        let pn = g.node(p.symbols.get("p").unwrap()).unwrap();
        let qn = g.node(p.symbols.get("q").unwrap()).unwrap();
        let rn = g.node(p.symbols.get("r").unwrap()).unwrap();
        assert_eq!(
            g.edge(pn, qn),
            Some(EdgePolarity {
                positive: true,
                negative: false
            })
        );
        assert!(g.edge(pn, rn).unwrap().negative);
        assert!(g.edge(qn, pn).is_none());
    }

    #[test]
    fn mixed_edges_detected() {
        let (g, p) = graph("p(X) :- q(X), not q(X).");
        let pn = g.node(p.symbols.get("p").unwrap()).unwrap();
        let qn = g.node(p.symbols.get("q").unwrap()).unwrap();
        assert!(g.edge(pn, qn).unwrap().is_mixed());
    }

    #[test]
    fn tc_program_is_stratified() {
        let (g, p) = graph(
            "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y).
             ntc(X,Y) :- d(X), d(Y), not tc(X,Y). e(a,b). d(a).",
        );
        let strata = g.stratification().expect("stratified");
        let s = |name: &str| strata[g.node(p.symbols.get(name).unwrap()).unwrap()];
        assert_eq!(s("e"), 0);
        assert_eq!(s("tc"), 0);
        assert_eq!(s("ntc"), 1);
        assert!(g.is_stratified());
    }

    #[test]
    fn win_move_is_not_stratified() {
        let (g, _) = graph("wins(X) :- move(X,Y), not wins(Y). move(a,b).");
        assert!(!g.is_stratified());
        assert!(g.stratification().is_none());
    }

    #[test]
    fn even_odd_cycle_stratification() {
        // p :- not q. q :- not p.  — a 2-cycle through negation: unstratified.
        let (g, _) = graph("p :- not q. q :- not p.");
        assert!(!g.is_stratified());
    }

    #[test]
    fn sccs_in_dependency_order() {
        let (g, p) = graph("a :- b. b :- a. c :- a.");
        let sccs = g.sccs();
        assert_eq!(sccs.len(), 2);
        // {a, b} must come before {c}.
        let first: Vec<&str> = sccs[0].iter().map(|&n| p.symbols.name(g.pred(n))).collect();
        assert!(first.contains(&"a") && first.contains(&"b"));
        assert_eq!(p.symbols.name(g.pred(sccs[1][0])), "c");
    }

    #[test]
    fn strictness_of_win_move() {
        // wins depends on itself through one negation: paths wins⇝wins have
        // lengths 0, 1, 2, … negations — both parities ⇒ not strict.
        let (g, p) = graph("wins(X) :- move(X,Y), not wins(Y). move(a,b).");
        let w = g.node(p.symbols.get("wins").unwrap()).unwrap();
        assert!(!g.is_strict_pair(w, w));
        assert!(!g.is_strict());
        // But restricted to {move} as "IDB" it is trivially strict.
        assert!(g.is_strict_in_idb(&[p.symbols.get("move").unwrap()]));
    }

    #[test]
    fn strict_program_example_8_2() {
        // w(X) :- not u(X).  u(X) :- e(Y,X), not w(Y).  (Example 8.2)
        // Paths w⇝w: w→u→w with 2 negations; w⇝u: 1 negation; all strict.
        let (g, p) = graph("w(X) :- not u(X). u(X) :- e(Y, X), not w(Y). e(a, b).");
        assert!(g.is_strict());
        let idb = [p.symbols.get("w").unwrap(), p.symbols.get("u").unwrap()];
        assert!(g.is_strict_in_idb(&idb));
    }

    #[test]
    fn mixed_arc_breaks_strictness() {
        let (g, p) = graph("p(X) :- q(X), not q(X). q(a).");
        let pn = g.node(p.symbols.get("p").unwrap()).unwrap();
        let qn = g.node(p.symbols.get("q").unwrap()).unwrap();
        assert!(!g.is_strict_pair(pn, qn));
    }

    #[test]
    fn tarjan_on_larger_graph() {
        // 0→1→2→0 cycle; 3→0; 4 isolated.
        let adj = vec![vec![1], vec![2], vec![0], vec![0], vec![]];
        let sccs = tarjan_sccs(&adj);
        assert_eq!(sccs.len(), 3);
        let cycle = sccs.iter().find(|c| c.len() == 3).unwrap();
        let mut sorted = cycle.clone();
        sorted.sort();
        assert_eq!(sorted, vec![0, 1, 2]);
        // The cycle must precede node 3 (which depends on it).
        let cycle_pos = sccs.iter().position(|c| c.len() == 3).unwrap();
        let three_pos = sccs.iter().position(|c| c == &vec![3]).unwrap();
        assert!(cycle_pos < three_pos);
    }

    #[test]
    fn condensation_groups_atoms_and_rules() {
        use crate::program::parse_ground;
        let g = parse_ground("p :- not q. q :- not p. r :- p. r :- q. s :- not r. t.");
        let c = Condensation::of(&g);
        assert_eq!(c.len(), 4, "{{p,q}}, {{r}}, {{s}}, {{t}}");
        assert_eq!(c.largest(), 2);
        let p = g.find_atom_by_name("p", &[]).unwrap().0;
        let q = g.find_atom_by_name("q", &[]).unwrap().0;
        let r = g.find_atom_by_name("r", &[]).unwrap().0;
        let s = g.find_atom_by_name("s", &[]).unwrap().0;
        assert_eq!(c.component_of(p), c.component_of(q));
        assert_ne!(c.component_of(p), c.component_of(r));
        // Dependency order: callees get smaller ids.
        assert!(c.component_of(p) < c.component_of(r));
        assert!(c.component_of(r) < c.component_of(s));
        // The knot's component holds both atoms and both 2-cycle rules.
        let knot = c.component_of(p) as usize;
        assert_eq!(c.atoms(knot), &[p.min(q), p.max(q)]);
        assert_eq!(c.rules(knot).len(), 2);
        // Every rule lands in exactly one component slice.
        let total: usize = (0..c.len()).map(|i| c.rules(i).len()).sum();
        assert_eq!(total, g.rule_count());
        let total_atoms: usize = (0..c.len()).map(|i| c.atoms(i).len()).sum();
        assert_eq!(total_atoms, g.atom_count());
    }

    #[test]
    fn condensation_of_empty_program() {
        use crate::program::GroundProgramBuilder;
        let g = GroundProgramBuilder::new().finish();
        let c = Condensation::of(&g);
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn stratification_depth_chain() {
        let (g, p) =
            graph("s1(X) :- e(X). s2(X) :- e(X), not s1(X). s3(X) :- e(X), not s2(X). e(a).");
        let strata = g.stratification().unwrap();
        let s = |name: &str| strata[g.node(p.symbols.get(name).unwrap()).unwrap()];
        assert_eq!(s("e"), 0);
        assert_eq!(s("s1"), 0);
        assert_eq!(s("s2"), 1);
        assert_eq!(s("s3"), 2);
    }
}
