//! The abstract syntax of normal logic programs (Definition 3.1).
//!
//! A *normal rule* is `head ← l₁, …, lₙ` where the head is an atom and each
//! `lᵢ` is a literal — an atom or a negated atom. A *normal logic program* is
//! a finite set of normal rules. A *fact* is a variable-free rule with an
//! empty body; the extensional database (EDB) of a program is exactly its
//! facts (Section 2.5).
//!
//! Terms may contain function symbols (the paper works over general Herbrand
//! universes); the grounder in [`mod@crate::ground`] bounds instantiation so that
//! only finitely-derivable programs are accepted.

use crate::symbol::{Symbol, SymbolStore};

/// A first-order term: a variable, a constant, or a function application.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A logical variable (`X`, `Y`, …). Variables are scoped to one rule.
    Var(Symbol),
    /// A constant (`a`, `42`, `'two words'`).
    Const(Symbol),
    /// A function application `f(t₁, …, tₖ)` with `k ≥ 1`.
    App(Symbol, Vec<Term>),
}

impl Term {
    /// True if no variable occurs in the term.
    pub fn is_ground(&self) -> bool {
        match self {
            Term::Var(_) => false,
            Term::Const(_) => true,
            Term::App(_, args) => args.iter().all(Term::is_ground),
        }
    }

    /// Collect the variables of this term into `out` (with duplicates).
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        match self {
            Term::Var(v) => out.push(*v),
            Term::Const(_) => {}
            Term::App(_, args) => {
                for a in args {
                    a.collect_vars(out);
                }
            }
        }
    }
}

/// An atomic formula `p(t₁, …, tₖ)`; `k = 0` atoms are propositions.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Atom {
    /// The predicate (relation) symbol.
    pub pred: Symbol,
    /// Argument terms.
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom.
    pub fn new(pred: Symbol, args: Vec<Term>) -> Self {
        Atom { pred, args }
    }

    /// A zero-ary (propositional) atom.
    pub fn prop(pred: Symbol) -> Self {
        Atom { pred, args: vec![] }
    }

    /// Number of arguments.
    pub fn arity(&self) -> usize {
        self.args.len()
    }

    /// True if every argument is ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// Collect variables (with duplicates) into `out`.
    pub fn collect_vars(&self, out: &mut Vec<Symbol>) {
        for t in &self.args {
            t.collect_vars(out);
        }
    }
}

/// A body literal: an atom or its negation. "¬ q" is read *q cannot be
/// proved* (negation as failure), never classical negation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Literal {
    /// The underlying atom.
    pub atom: Atom,
    /// `true` for a positive literal, `false` for a negated one.
    pub positive: bool,
}

impl Literal {
    /// A positive literal.
    pub fn pos(atom: Atom) -> Self {
        Literal {
            atom,
            positive: true,
        }
    }

    /// A negative literal.
    pub fn neg(atom: Atom) -> Self {
        Literal {
            atom,
            positive: false,
        }
    }
}

/// A normal rule `head ← body` (Definition 3.1). An empty body means the
/// head holds unconditionally; if additionally the head is ground, the rule
/// is a *fact*.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The rule head.
    pub head: Atom,
    /// Conjunction of body literals.
    pub body: Vec<Literal>,
}

impl Rule {
    /// Construct a rule.
    pub fn new(head: Atom, body: Vec<Literal>) -> Self {
        Rule { head, body }
    }

    /// A bodyless rule.
    pub fn fact(head: Atom) -> Self {
        Rule { head, body: vec![] }
    }

    /// True iff this is a fact: ground head, no body.
    pub fn is_fact(&self) -> bool {
        self.body.is_empty() && self.head.is_ground()
    }

    /// Positive body literals.
    pub fn pos_body(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter(|l| l.positive).map(|l| &l.atom)
    }

    /// Negative body literals (their atoms).
    pub fn neg_body(&self) -> impl Iterator<Item = &Atom> {
        self.body.iter().filter(|l| !l.positive).map(|l| &l.atom)
    }

    /// All variables of the rule, deduplicated, in first-occurrence order.
    pub fn variables(&self) -> Vec<Symbol> {
        let mut vars = Vec::new();
        self.head.collect_vars(&mut vars);
        for l in &self.body {
            l.atom.collect_vars(&mut vars);
        }
        let mut seen = Vec::new();
        for v in vars {
            if !seen.contains(&v) {
                seen.push(v);
            }
        }
        seen
    }
}

/// A normal logic program: a finite set of rules plus the symbol store all
/// of its names live in.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// The rules, in source order.
    pub rules: Vec<Rule>,
    /// Interned names.
    pub symbols: SymbolStore,
}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a rule.
    pub fn push(&mut self, rule: Rule) {
        self.rules.push(rule);
    }

    /// Predicates that appear only as facts — the extensional database
    /// (Section 2.5). Returned in first-appearance order.
    pub fn edb_predicates(&self) -> Vec<Symbol> {
        let mut order = Vec::new();
        let mut intensional = Vec::new();
        for r in &self.rules {
            if !order.contains(&r.head.pred) {
                order.push(r.head.pred);
            }
            if !r.is_fact() && !intensional.contains(&r.head.pred) {
                intensional.push(r.head.pred);
            }
        }
        order.retain(|p| !intensional.contains(p));
        order
    }

    /// Predicates defined by at least one non-fact rule — the intentional
    /// database.
    pub fn idb_predicates(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        for r in &self.rules {
            if !r.is_fact() && !out.contains(&r.head.pred) {
                out.push(r.head.pred);
            }
        }
        out
    }

    /// Every predicate that occurs anywhere (head or body), in first
    /// appearance order.
    pub fn all_predicates(&self) -> Vec<Symbol> {
        let mut out = Vec::new();
        let push = |p: Symbol, out: &mut Vec<Symbol>| {
            if !out.contains(&p) {
                out.push(p);
            }
        };
        for r in &self.rules {
            push(r.head.pred, &mut out);
            for l in &r.body {
                push(l.atom.pred, &mut out);
            }
        }
        out
    }

    /// Render the whole program in re-parseable syntax.
    pub fn to_text(&self) -> String {
        let mut s = String::new();
        for r in &self.rules {
            s.push_str(&display_rule(r, &self.symbols));
            s.push('\n');
        }
        s
    }
}

/// Translate an atom expressed against a foreign [`SymbolStore`] into
/// `to`'s symbol space, mapping by name and interning as needed. Two
/// stores that start as clones diverge as soon as either side interns a
/// new name, so any atom crossing between them goes through this.
pub fn import_atom(to: &mut SymbolStore, atom: &Atom, from: &SymbolStore) -> Atom {
    import_atom_with(&mut |name| to.intern(name), atom, from)
}

/// [`import_atom`] generalized over the interner: callers with
/// copy-on-write symbol storage (`GroundProgram::import_atom`) pass a
/// read-first closure so that importing already-known names never forces
/// a copy of a shared store.
pub fn import_atom_with(
    intern: &mut impl FnMut(&str) -> Symbol,
    atom: &Atom,
    from: &SymbolStore,
) -> Atom {
    fn import_term(t: &Term, from: &SymbolStore, intern: &mut impl FnMut(&str) -> Symbol) -> Term {
        match t {
            Term::Const(c) => Term::Const(intern(from.name(*c))),
            Term::App(f, args) => Term::App(
                intern(from.name(*f)),
                args.iter().map(|a| import_term(a, from, intern)).collect(),
            ),
            Term::Var(v) => Term::Var(intern(from.name(*v))),
        }
    }
    Atom::new(
        intern(from.name(atom.pred)),
        atom.args
            .iter()
            .map(|t| import_term(t, from, intern))
            .collect(),
    )
}

/// Translate a whole rule between symbol stores — [`import_atom`] applied
/// to the head and every body atom, preserving literal order and polarity.
/// Used by the incremental grounder to bring asserted/retracted rules into
/// its own symbol space before compiling or matching them.
pub fn import_rule(to: &mut SymbolStore, rule: &Rule, from: &SymbolStore) -> Rule {
    import_rule_with(&mut |name| to.intern(name), rule, from)
}

/// [`import_rule`] generalized over the interner, like
/// [`import_atom_with`].
pub fn import_rule_with(
    intern: &mut impl FnMut(&str) -> Symbol,
    rule: &Rule,
    from: &SymbolStore,
) -> Rule {
    Rule::new(
        import_atom_with(intern, &rule.head, from),
        rule.body
            .iter()
            .map(|l| Literal {
                atom: import_atom_with(intern, &l.atom, from),
                positive: l.positive,
            })
            .collect(),
    )
}

/// Render a term.
pub fn display_term(t: &Term, store: &SymbolStore) -> String {
    match t {
        Term::Var(v) => store.name(*v).to_string(),
        Term::Const(c) => quote_if_needed(store.name(*c)),
        Term::App(f, args) => {
            let inner: Vec<String> = args.iter().map(|a| display_term(a, store)).collect();
            format!("{}({})", store.name(*f), inner.join(", "))
        }
    }
}

/// Render an atom.
pub fn display_atom(a: &Atom, store: &SymbolStore) -> String {
    if a.args.is_empty() {
        store.name(a.pred).to_string()
    } else {
        let inner: Vec<String> = a.args.iter().map(|t| display_term(t, store)).collect();
        format!("{}({})", store.name(a.pred), inner.join(", "))
    }
}

/// Render a literal.
pub fn display_literal(l: &Literal, store: &SymbolStore) -> String {
    if l.positive {
        display_atom(&l.atom, store)
    } else {
        format!("not {}", display_atom(&l.atom, store))
    }
}

/// Render a rule, terminated with `.`.
pub fn display_rule(r: &Rule, store: &SymbolStore) -> String {
    if r.body.is_empty() {
        format!("{}.", display_atom(&r.head, store))
    } else {
        let body: Vec<String> = r.body.iter().map(|l| display_literal(l, store)).collect();
        format!("{} :- {}.", display_atom(&r.head, store), body.join(", "))
    }
}

/// Quote a constant name when it would not re-parse as a bare constant.
fn quote_if_needed(name: &str) -> String {
    let bare = !name.is_empty()
        && name
            .chars()
            .next()
            .map(|c| c.is_ascii_lowercase() || c.is_ascii_digit())
            .unwrap_or(false)
        && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_');
    if bare {
        name.to_string()
    } else {
        format!("'{}'", name.replace('\\', "\\\\").replace('\'', "\\'"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_program() -> Program {
        // wins(X) :- move(X, Y), not wins(Y).   move(a,b).
        let mut p = Program::new();
        let wins = p.symbols.intern("wins");
        let mv = p.symbols.intern("move");
        let x = p.symbols.intern("X");
        let y = p.symbols.intern("Y");
        let a = p.symbols.intern("a");
        let b = p.symbols.intern("b");
        p.push(Rule::new(
            Atom::new(wins, vec![Term::Var(x)]),
            vec![
                Literal::pos(Atom::new(mv, vec![Term::Var(x), Term::Var(y)])),
                Literal::neg(Atom::new(wins, vec![Term::Var(y)])),
            ],
        ));
        p.push(Rule::fact(Atom::new(
            mv,
            vec![Term::Const(a), Term::Const(b)],
        )));
        p
    }

    #[test]
    fn groundness() {
        let p = small_program();
        assert!(!p.rules[0].head.is_ground());
        assert!(p.rules[1].head.is_ground());
        assert!(p.rules[1].is_fact());
        assert!(!p.rules[0].is_fact());
    }

    #[test]
    fn edb_idb_partition() {
        let p = small_program();
        let edb = p.edb_predicates();
        let idb = p.idb_predicates();
        assert_eq!(edb.len(), 1);
        assert_eq!(p.symbols.name(edb[0]), "move");
        assert_eq!(idb.len(), 1);
        assert_eq!(p.symbols.name(idb[0]), "wins");
    }

    #[test]
    fn variables_deduplicated_in_order() {
        let p = small_program();
        let vars = p.rules[0].variables();
        let names: Vec<&str> = vars.iter().map(|v| p.symbols.name(*v)).collect();
        assert_eq!(names, vec!["X", "Y"]);
    }

    #[test]
    fn display_roundtrip_shape() {
        let p = small_program();
        let text = p.to_text();
        assert!(text.contains("wins(X) :- move(X, Y), not wins(Y)."));
        assert!(text.contains("move(a, b)."));
    }

    #[test]
    fn quoting_non_bare_constants() {
        assert_eq!(quote_if_needed("abc"), "abc");
        assert_eq!(quote_if_needed("a_b1"), "a_b1");
        assert_eq!(quote_if_needed("Abc"), "'Abc'");
        assert_eq!(quote_if_needed("two words"), "'two words'");
        assert_eq!(quote_if_needed("it's"), "'it\\'s'");
        assert_eq!(quote_if_needed("42"), "42");
    }

    #[test]
    fn function_terms_display() {
        let mut store = SymbolStore::new();
        let f = store.intern("f");
        let a = store.intern("a");
        let x = store.intern("X");
        let t = Term::App(f, vec![Term::Const(a), Term::Var(x)]);
        assert_eq!(display_term(&t, &store), "f(a, X)");
        assert!(!t.is_ground());
    }

    #[test]
    fn pos_neg_body_iterators() {
        let p = small_program();
        assert_eq!(p.rules[0].pos_body().count(), 1);
        assert_eq!(p.rules[0].neg_body().count(), 1);
    }
}
