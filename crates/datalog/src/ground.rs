//! Grounding: from a normal program with variables to its relevant Herbrand
//! instantiation `P_H`.
//!
//! The paper's operators are defined on the full instantiation of `P`
//! (Section 3.3), which is wasteful or infinite to materialize directly.
//! We instead instantiate over the **positive envelope**: the least model of
//! the program with every negative literal erased. Any atom outside the
//! envelope has no derivation even with all negative literals granted, so it
//! is false in the well-founded, stable, Fitting, stratified, *and*
//! inflationary semantics; rule instances whose positive body leaves the
//! envelope can never fire under any of them. Concretely:
//!
//! * rule instances are enumerated by joining the positive body over the
//!   envelope;
//! * a negative literal `¬q` whose instantiation lies outside the envelope
//!   is certainly true and is deleted from the instance;
//! * everything else is kept verbatim.
//!
//! This is the standard "intelligent grounding" argument; the proptest
//! `grounding_preserves_semantics` in the workspace integration tests
//! checks it against full instantiation on random programs.
//!
//! # Safety
//!
//! A rule is *safe* when every variable occurring in its head or in a
//! negative subgoal also occurs in a positive subgoal. Unsafe rules are
//! rejected by default ([`SafetyPolicy::Reject`]); with
//! [`SafetyPolicy::ActiveDomain`] each unguarded variable is instead
//! restricted to the active domain (all ground terms appearing in facts
//! plus all constants in rules), which matches the finite-structure
//! convention of fixpoint logic used in Section 8.

use crate::ast::{Program, Rule, Term};
use crate::atoms::{AtomId, ConstId, HerbrandBase};
use crate::error::GroundError;
use crate::fx::FxHashMap;
use crate::program::{GroundProgram, GroundRule};
use crate::relation::{Database, Relation, Tuple};
use crate::seminaive::{
    compile_neg_atoms, compile_rule, evaluate_positive, join, try_eval_pat, CompiledAtom,
    CompiledRule, EvalLimits, Pat,
};
use crate::symbol::Symbol;

/// What to do with unsafe rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SafetyPolicy {
    /// Return [`GroundError::UnsafeRule`].
    #[default]
    Reject,
    /// Guard every unsafe variable with the active domain.
    ActiveDomain,
}

/// Grounding options.
#[derive(Debug, Clone, Copy)]
pub struct GroundOptions {
    /// Safety policy for rules with unguarded variables.
    pub safety: SafetyPolicy,
    /// Cap on materialized envelope tuples (defends against infinite
    /// Herbrand universes introduced by function symbols).
    pub max_envelope_tuples: usize,
    /// Cap on emitted ground rules.
    pub max_ground_rules: usize,
}

impl Default for GroundOptions {
    fn default() -> Self {
        GroundOptions {
            safety: SafetyPolicy::Reject,
            max_envelope_tuples: 10_000_000,
            max_ground_rules: 50_000_000,
        }
    }
}

/// Ground `program` into its relevant instantiation.
pub fn ground(program: &Program) -> Result<GroundProgram, GroundError> {
    ground_with(program, &GroundOptions::default())
}

/// Ground with explicit options.
pub fn ground_with(
    program: &Program,
    options: &GroundOptions,
) -> Result<GroundProgram, GroundError> {
    let mut symbols = program.symbols.clone();
    let dom_pred = symbols.intern_fresh("$dom");
    let mut base = HerbrandBase::new();

    // ---- Pass 1: safety analysis & compilation --------------------------
    let mut compiled: Vec<(usize, CompiledRule, Vec<CompiledAtom>)> = Vec::new();
    let mut facts: Vec<(Symbol, Tuple)> = Vec::new();
    let mut need_dom = false;
    for (ix, rule) in program.rules.iter().enumerate() {
        if rule.is_fact() {
            let tuple: Vec<ConstId> = rule
                .head
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut base))
                .collect();
            facts.push((rule.head.pred, tuple.into_boxed_slice()));
            continue;
        }
        let unsafe_vars = unsafe_variables(rule);
        let guards: Vec<CompiledAtom> = if unsafe_vars.is_empty() {
            vec![]
        } else {
            match options.safety {
                SafetyPolicy::Reject => {
                    return Err(GroundError::UnsafeRule {
                        rule: crate::ast::display_rule(rule, &symbols),
                        variable: symbols.name(unsafe_vars[0]).to_string(),
                    });
                }
                SafetyPolicy::ActiveDomain => {
                    need_dom = true;
                    // Guards are compiled against the same slot assignment
                    // as the rule; compute slots first.
                    let probe = compile_rule(rule, &[]);
                    let mut slot_of: FxHashMap<Symbol, usize> = FxHashMap::default();
                    for (i, v) in probe.var_names.iter().enumerate() {
                        slot_of.insert(*v, i);
                    }
                    unsafe_vars
                        .iter()
                        .map(|v| CompiledAtom {
                            pred: dom_pred,
                            pats: vec![Pat::Var(slot_of[v])],
                        })
                        .collect()
                }
            }
        };
        let negs = compile_neg_atoms(rule);
        let cr = compile_rule(rule, &guards);
        compiled.push((ix, cr, negs));
    }

    // ---- Active domain facts --------------------------------------------
    if need_dom {
        let mut dom_terms: Vec<ConstId> = Vec::new();
        for (_, tuple) in &facts {
            for &t in tuple.iter() {
                collect_subterms(t, &base, &mut dom_terms);
            }
        }
        // Constants syntactically present in rules.
        for rule in &program.rules {
            collect_rule_consts(rule, &mut base, &mut dom_terms);
        }
        dom_terms.sort_unstable();
        dom_terms.dedup();
        if dom_terms.is_empty() {
            return Err(GroundError::EmptyDomain);
        }
        for t in dom_terms {
            facts.push((dom_pred, vec![t].into_boxed_slice()));
        }
    }

    // ---- Pass 2: positive envelope --------------------------------------
    let rules_only: Vec<CompiledRule> = compiled.iter().map(|(_, r, _)| r.clone()).collect();
    let limits = EvalLimits {
        max_tuples: options.max_envelope_tuples,
    };
    let mut envelope = evaluate_positive(&rules_only, &facts, &mut base, &limits)?;

    // ---- Pass 3: instantiate rules over the envelope ---------------------
    // Index every column of every relation once for the final joins.
    let preds: Vec<Symbol> = envelope.iter().map(|(p, _)| p).collect();
    for p in preds {
        if let Some(rel) = envelope.relation(p) {
            let arity = rel.arity();
            let rel = envelope.relation_mut(p, arity);
            for col in 0..arity {
                rel.ensure_index(col);
            }
        }
    }

    let mut atom_ids: FxHashMap<(Symbol, Tuple), AtomId> = FxHashMap::default();
    let mut atom_count: u32 = 0;
    let mut out_rules: Vec<GroundRule> = Vec::new();
    let empty = Relation::new(0);

    // Keep the final Herbrand base in a fresh interner so ids are dense in
    // emission order (nicer traces); remember pred/args for display.
    let mut final_base = HerbrandBase::new();
    let intern_final =
        |pred: Symbol,
         args: &[ConstId],
         base: &HerbrandBase,
         final_base: &mut HerbrandBase,
         atom_ids: &mut FxHashMap<(Symbol, Tuple), AtomId>,
         atom_count: &mut u32| {
            let key = (pred, args.to_vec().into_boxed_slice());
            if let Some(&id) = atom_ids.get(&key) {
                return id;
            }
            // Re-intern the argument terms into the final base.
            let new_args: Vec<ConstId> = args
                .iter()
                .map(|&a| reintern_term(a, base, final_base))
                .collect();
            let id = final_base.intern_atom(pred, &new_args);
            debug_assert_eq!(id.0, *atom_count);
            *atom_count += 1;
            atom_ids.insert(key, id);
            id
        };

    // EDB facts become bodyless ground rules.
    for (pred, tuple) in &facts {
        if *pred == dom_pred {
            continue; // the synthetic domain guard is not part of H
        }
        let head = intern_final(
            *pred,
            tuple,
            &base,
            &mut final_base,
            &mut atom_ids,
            &mut atom_count,
        );
        out_rules.push(GroundRule::new(head, vec![], vec![]));
        if out_rules.len() > options.max_ground_rules {
            return Err(GroundError::RuleBudgetExceeded {
                limit: options.max_ground_rules,
            });
        }
    }

    for (_, cr, negs) in &compiled {
        let rels: Vec<&Relation> = cr
            .body
            .iter()
            .map(|atom| envelope.relation(atom.pred).unwrap_or(&empty))
            .collect();
        let mut env: Vec<Option<ConstId>> = vec![None; cr.nvars];
        // (head args, positive body args, negative body args-or-dropped)
        type Emission = (Vec<ConstId>, Vec<Vec<ConstId>>, Vec<Option<Vec<ConstId>>>);
        let mut emissions: Vec<Emission> = Vec::new();
        join(&cr.body, &rels, &base, &mut env, &mut |env, base| {
            // Head and positive body are fully determined and inside the
            // envelope (positive atoms matched against it). The head may
            // still name a never-interned term only if the rule head has a
            // ground term not in the envelope — impossible, since the
            // envelope closure derived this very instance. Negative atoms
            // are ground by safety; resolve them against the envelope.
            let head: Vec<ConstId> = cr
                .head
                .pats
                .iter()
                .map(|p| try_eval_pat(p, env, base).expect("head term is in the envelope"))
                .collect();
            let pos: Vec<Vec<ConstId>> = cr
                .body
                .iter()
                .filter(|a| a.pred != dom_pred)
                .map(|a| {
                    a.pats
                        .iter()
                        .map(|p| try_eval_pat(p, env, base).expect("pos body term matched"))
                        .collect()
                })
                .collect();
            let neg: Vec<Option<Vec<ConstId>>> = negs
                .iter()
                .map(|a| {
                    let args: Option<Vec<ConstId>> = a
                        .pats
                        .iter()
                        .map(|p| try_eval_pat(p, env, base))
                        .collect();
                    args.filter(|args| envelope.contains(a.pred, args))
                })
                .collect();
            emissions.push((head, pos, neg));
        });

        let (_, cr, negs) = (&(), cr, negs); // keep names in scope for clarity
        for (head_args, pos_args, neg_args) in emissions {
            let head = intern_final(
                cr.head.pred,
                &head_args,
                &base,
                &mut final_base,
                &mut atom_ids,
                &mut atom_count,
            );
            let mut pos_ids = Vec::with_capacity(pos_args.len());
            for (atom, args) in cr
                .body
                .iter()
                .filter(|a| a.pred != dom_pred)
                .zip(pos_args.iter())
            {
                pos_ids.push(intern_final(
                    atom.pred,
                    args,
                    &base,
                    &mut final_base,
                    &mut atom_ids,
                    &mut atom_count,
                ));
            }
            let mut neg_ids = Vec::new();
            for (atom, args) in negs.iter().zip(neg_args.iter()) {
                if let Some(args) = args {
                    neg_ids.push(intern_final(
                        atom.pred,
                        args,
                        &base,
                        &mut final_base,
                        &mut atom_ids,
                        &mut atom_count,
                    ));
                }
            }
            out_rules.push(GroundRule::new(head, pos_ids, neg_ids));
            if out_rules.len() > options.max_ground_rules {
                return Err(GroundError::RuleBudgetExceeded {
                    limit: options.max_ground_rules,
                });
            }
        }
    }

    let mut builder = crate::program::GroundProgramBuilder::with_symbols(symbols);
    *builder.base_mut() = final_base;
    for r in out_rules {
        builder.rule(r.head, r.pos.to_vec(), r.neg.to_vec());
    }
    Ok(builder.finish())
}

/// The variables of `rule` that occur in the head or a negative subgoal but
/// in no positive subgoal.
pub fn unsafe_variables(rule: &Rule) -> Vec<Symbol> {
    let mut bound = Vec::new();
    for atom in rule.pos_body() {
        atom.collect_vars(&mut bound);
    }
    let mut needed = Vec::new();
    rule.head.collect_vars(&mut needed);
    for atom in rule.neg_body() {
        atom.collect_vars(&mut needed);
    }
    let mut out = Vec::new();
    for v in needed {
        if !bound.contains(&v) && !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// True iff every rule of the program is safe.
pub fn is_safe(program: &Program) -> bool {
    program.rules.iter().all(|r| unsafe_variables(r).is_empty())
}

fn intern_ground_term(t: &Term, base: &mut HerbrandBase) -> ConstId {
    match t {
        Term::Const(c) => base.intern_const(*c),
        Term::App(f, args) => {
            let ids: Vec<ConstId> = args.iter().map(|a| intern_ground_term(a, base)).collect();
            base.intern_term(crate::atoms::GroundTerm::App(*f, ids.into_boxed_slice()))
        }
        Term::Var(_) => unreachable!("caller checked groundness"),
    }
}

/// Add `t` and all its subterms to `out`.
fn collect_subterms(t: ConstId, base: &HerbrandBase, out: &mut Vec<ConstId>) {
    out.push(t);
    if let crate::atoms::GroundTerm::App(_, args) = base.term(t) {
        for &a in args.clone().iter() {
            collect_subterms(a, base, out);
        }
    }
}

/// Intern every constant appearing syntactically in `rule` and add it to
/// `out` (for the active domain).
fn collect_rule_consts(rule: &Rule, base: &mut HerbrandBase, out: &mut Vec<ConstId>) {
    fn walk(t: &Term, base: &mut HerbrandBase, out: &mut Vec<ConstId>) {
        match t {
            Term::Const(c) => out.push(base.intern_const(*c)),
            Term::App(_, args) => {
                for a in args {
                    walk(a, base, out);
                }
            }
            Term::Var(_) => {}
        }
    }
    for t in &rule.head.args {
        walk(t, base, out);
    }
    for l in &rule.body {
        for t in &l.atom.args {
            walk(t, base, out);
        }
    }
}

/// Copy a term from one base into another (id spaces differ).
fn reintern_term(t: ConstId, from: &HerbrandBase, to: &mut HerbrandBase) -> ConstId {
    match from.term(t).clone() {
        crate::atoms::GroundTerm::Const(c) => to.intern_const(c),
        crate::atoms::GroundTerm::App(f, args) => {
            let new_args: Vec<ConstId> = args
                .iter()
                .map(|&a| reintern_term(a, from, to))
                .collect();
            to.intern_term(crate::atoms::GroundTerm::App(f, new_args.into_boxed_slice()))
        }
    }
}

/// Compute only the positive envelope of a program (exposed for the
/// benchmarks and for diagnostics).
pub fn positive_envelope(
    program: &Program,
    options: &GroundOptions,
) -> Result<Database, GroundError> {
    let mut base = HerbrandBase::new();
    let mut facts = Vec::new();
    let mut rules = Vec::new();
    for rule in &program.rules {
        if rule.is_fact() {
            let tuple: Vec<ConstId> = rule
                .head
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut base))
                .collect();
            facts.push((rule.head.pred, tuple.into_boxed_slice()));
        } else {
            rules.push(compile_rule(rule, &[]));
        }
    }
    evaluate_positive(
        &rules,
        &facts,
        &mut base,
        &EvalLimits {
            max_tuples: options.max_envelope_tuples,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn ground_src(src: &str) -> GroundProgram {
        ground(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn win_move_grounding() {
        let g = ground_src(
            "wins(X) :- move(X, Y), not wins(Y).
             move(a, b). move(b, a). move(b, c).",
        );
        // Atoms: 3 move facts + wins(a), wins(b), wins(c) heads... wins(c)
        // appears only in a negative literal of the instance for wins(b).
        // Envelope(wins) = {a, b} (sources of edges); wins(c) is outside
        // the envelope so `not wins(c)` is dropped.
        let names: Vec<String> = (0..g.atom_count() as u32)
            .map(|i| g.atom_name(AtomId(i)))
            .collect();
        assert!(names.contains(&"wins(a)".to_string()));
        assert!(names.contains(&"wins(b)".to_string()));
        assert!(!names.contains(&"wins(c)".to_string()));
        // Rules: 3 facts + wins(a):-move(a,b),¬wins(b);
        // wins(b):-move(b,a),¬wins(a); wins(b):-move(b,c) (literal dropped).
        assert_eq!(g.rule_count(), 6);
        let dropped = g
            .rules()
            .iter()
            .find(|r| !r.pos.is_empty() && r.neg.is_empty())
            .expect("the wins(b) :- move(b,c) instance lost its negative literal");
        assert_eq!(g.atom_name(dropped.head), "wins(b)");
    }

    #[test]
    fn unsafe_rule_rejected_by_default() {
        let p = parse_program("p(X) :- not q(X). q(a).").unwrap();
        let err = ground(&p).unwrap_err();
        assert!(matches!(err, GroundError::UnsafeRule { .. }));
    }

    #[test]
    fn unsafe_head_variable_rejected() {
        let p = parse_program("p(X, Y) :- q(X). q(a).").unwrap();
        let err = ground(&p).unwrap_err();
        assert!(matches!(err, GroundError::UnsafeRule { .. }));
    }

    #[test]
    fn active_domain_guards_unsafe_rules() {
        let p = parse_program("p(X) :- not q(X). q(a). r(b).").unwrap();
        let g = ground_with(
            &p,
            &GroundOptions {
                safety: SafetyPolicy::ActiveDomain,
                ..Default::default()
            },
        )
        .unwrap();
        // Active domain {a, b}: p(a) :- not q(a); p(b) (not q(b) dropped,
        // q(b) outside envelope).
        let pa = g.find_atom_by_name("p", &["a"]).unwrap();
        let pb = g.find_atom_by_name("p", &["b"]).unwrap();
        let qa = g.find_atom_by_name("q", &["a"]).unwrap();
        assert!(g.find_atom_by_name("q", &["b"]).is_none());
        let pa_rules = g.rules_with_head(pa);
        assert_eq!(pa_rules.len(), 1);
        assert_eq!(g.rule(pa_rules[0]).neg.as_ref(), &[qa]);
        let pb_rules = g.rules_with_head(pb);
        assert_eq!(pb_rules.len(), 1);
        assert!(g.rule(pb_rules[0]).is_fact());
    }

    #[test]
    fn empty_domain_reported() {
        let p = parse_program("p(X) :- not q(X).").unwrap();
        let err = ground_with(
            &p,
            &GroundOptions {
                safety: SafetyPolicy::ActiveDomain,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GroundError::EmptyDomain));
    }

    #[test]
    fn envelope_prunes_underivable_instances() {
        let g = ground_src(
            "p(X) :- e(X, Y), p(Y).
             p(a) :- not q(a).
             q(a) :- not p(a).
             e(b, a). e(c, b).",
        );
        // Envelope: p{a,b,c}, q(a); instances p(b):-e(b,a),p(a) etc.
        assert!(g.find_atom_by_name("p", &["c"]).is_some());
        // No instance with head p over constants not reachable: only a,b,c.
        for r in g.rules() {
            assert!(r.pos.len() <= 2);
        }
    }

    #[test]
    fn propositional_programs_ground_to_themselves() {
        let g = ground_src("p :- not q. q :- not p. r :- p, q.");
        assert_eq!(g.rule_count(), 3);
        assert_eq!(g.atom_count(), 3);
    }

    #[test]
    fn budget_error_on_function_symbol_divergence() {
        let p = parse_program("n(z). n(s(X)) :- n(X).").unwrap();
        let err = ground_with(
            &p,
            &GroundOptions {
                max_envelope_tuples: 1000,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GroundError::AtomBudgetExceeded { .. }));
    }

    #[test]
    fn bounded_function_symbols_ground_fine() {
        let g = ground_src(
            "n(z). n(s(X)) :- n(X), small(X). small(z).",
        );
        // n(z), n(s(z)); small(z); the rule instance for X=s(z) is pruned
        // because small(s(z)) is outside the envelope.
        assert!(g.find_atom_by_name("n", &[]).is_none()); // arity mismatch probe
        let names: Vec<String> = (0..g.atom_count() as u32)
            .map(|i| g.atom_name(AtomId(i)))
            .collect();
        assert!(names.contains(&"n(s(z))".to_string()));
        assert!(!names.iter().any(|n| n.contains("s(s(z))")));
    }

    #[test]
    fn positive_envelope_standalone() {
        let p = parse_program(
            "tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y). e(a,b). e(b,c).",
        )
        .unwrap();
        let env = positive_envelope(&p, &GroundOptions::default()).unwrap();
        let tc = p.symbols.get("tc").unwrap();
        assert_eq!(env.relation(tc).unwrap().len(), 3);
    }

    #[test]
    fn safety_analysis_lists_offending_variable() {
        let p = parse_program("p(X) :- q(Y), not r(X, Z).").unwrap();
        let v = unsafe_variables(&p.rules[0]);
        let names: Vec<&str> = v.iter().map(|s| p.symbols.name(*s)).collect();
        assert_eq!(names, vec!["X", "Z"]);
        assert!(!is_safe(&p));
    }
}
