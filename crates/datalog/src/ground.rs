//! Grounding: from a normal program with variables to its relevant Herbrand
//! instantiation `P_H`.
//!
//! The paper's operators are defined on the full instantiation of `P`
//! (Section 3.3), which is wasteful or infinite to materialize directly.
//! We instead instantiate over the **positive envelope**: the least model of
//! the program with every negative literal erased. Any atom outside the
//! envelope has no derivation even with all negative literals granted, so it
//! is false in the well-founded, stable, Fitting, stratified, *and*
//! inflationary semantics; rule instances whose positive body leaves the
//! envelope can never fire under any of them. Concretely:
//!
//! * rule instances are enumerated by joining the positive body over the
//!   envelope;
//! * a negative literal `¬q` whose instantiation lies outside the envelope
//!   is certainly true and is deleted from the instance;
//! * everything else is kept verbatim.
//!
//! This is the standard "intelligent grounding" argument; the proptest
//! `grounding_preserves_semantics` in the workspace integration tests
//! checks it against full instantiation on random programs.
//!
//! # Safety
//!
//! A rule is *safe* when every variable occurring in its head or in a
//! negative subgoal also occurs in a positive subgoal. Unsafe rules are
//! rejected by default ([`SafetyPolicy::Reject`]); with
//! [`SafetyPolicy::ActiveDomain`] each unguarded variable is instead
//! restricted to the active domain (all ground terms appearing in facts
//! plus all constants in rules), which matches the finite-structure
//! convention of fixpoint logic used in Section 8.

use crate::ast::{Program, Rule, Term};
use crate::atoms::{ConstId, HerbrandBase};
use crate::error::GroundError;
use crate::program::GroundProgram;
use crate::relation::Database;
use crate::seminaive::{compile_rule, evaluate_positive, EvalLimits};
use crate::symbol::Symbol;

/// What to do with unsafe rules.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SafetyPolicy {
    /// Return [`GroundError::UnsafeRule`].
    #[default]
    Reject,
    /// Guard every unsafe variable with the active domain.
    ActiveDomain,
}

/// Grounding options.
#[derive(Debug, Clone, Copy)]
pub struct GroundOptions {
    /// Safety policy for rules with unguarded variables.
    pub safety: SafetyPolicy,
    /// Cap on materialized envelope tuples (defends against infinite
    /// Herbrand universes introduced by function symbols).
    pub max_envelope_tuples: usize,
    /// Cap on emitted ground rules.
    pub max_ground_rules: usize,
}

impl Default for GroundOptions {
    fn default() -> Self {
        GroundOptions {
            safety: SafetyPolicy::Reject,
            max_envelope_tuples: 10_000_000,
            max_ground_rules: 50_000_000,
        }
    }
}

/// Ground `program` into its relevant instantiation.
pub fn ground(program: &Program) -> Result<GroundProgram, GroundError> {
    ground_with(program, &GroundOptions::default())
}

/// Ground with explicit options.
///
/// This is the one-shot entry point; it runs the same three passes as
/// [`crate::incremental::IncrementalGrounder`] (which it delegates to) and
/// discards the working state. Callers that will later assert or retract
/// facts should hold on to the grounder instead.
pub fn ground_with(
    program: &Program,
    options: &GroundOptions,
) -> Result<GroundProgram, GroundError> {
    Ok(crate::incremental::IncrementalGrounder::new(program, options)?.into_program())
}

/// The variables of `rule` that occur in the head or a negative subgoal but
/// in no positive subgoal.
pub fn unsafe_variables(rule: &Rule) -> Vec<Symbol> {
    let mut bound = Vec::new();
    for atom in rule.pos_body() {
        atom.collect_vars(&mut bound);
    }
    let mut needed = Vec::new();
    rule.head.collect_vars(&mut needed);
    for atom in rule.neg_body() {
        atom.collect_vars(&mut needed);
    }
    let mut out = Vec::new();
    for v in needed {
        if !bound.contains(&v) && !out.contains(&v) {
            out.push(v);
        }
    }
    out
}

/// True iff every rule of the program is safe.
pub fn is_safe(program: &Program) -> bool {
    program.rules.iter().all(|r| unsafe_variables(r).is_empty())
}

pub(crate) fn intern_ground_term(t: &Term, base: &mut HerbrandBase) -> ConstId {
    match t {
        Term::Const(c) => base.intern_const(*c),
        Term::App(f, args) => {
            let ids: Vec<ConstId> = args.iter().map(|a| intern_ground_term(a, base)).collect();
            base.intern_term(crate::atoms::GroundTerm::App(*f, ids.into_boxed_slice()))
        }
        Term::Var(_) => unreachable!("caller checked groundness"),
    }
}

/// Add `t` and all its subterms to `out`.
pub(crate) fn collect_subterms(t: ConstId, base: &HerbrandBase, out: &mut Vec<ConstId>) {
    out.push(t);
    if let crate::atoms::GroundTerm::App(_, args) = base.term(t) {
        for &a in args.clone().iter() {
            collect_subterms(a, base, out);
        }
    }
}

/// Intern every constant appearing syntactically in `rule` and add it to
/// `out` (for the active domain).
pub(crate) fn collect_rule_consts(rule: &Rule, base: &mut HerbrandBase, out: &mut Vec<ConstId>) {
    fn walk(t: &Term, base: &mut HerbrandBase, out: &mut Vec<ConstId>) {
        match t {
            Term::Const(c) => out.push(base.intern_const(*c)),
            Term::App(_, args) => {
                for a in args {
                    walk(a, base, out);
                }
            }
            Term::Var(_) => {}
        }
    }
    for t in &rule.head.args {
        walk(t, base, out);
    }
    for l in &rule.body {
        for t in &l.atom.args {
            walk(t, base, out);
        }
    }
}

/// Compute only the positive envelope of a program (exposed for the
/// benchmarks and for diagnostics).
pub fn positive_envelope(
    program: &Program,
    options: &GroundOptions,
) -> Result<Database, GroundError> {
    let mut base = HerbrandBase::new();
    let mut facts = Vec::new();
    let mut rules = Vec::new();
    for rule in &program.rules {
        if rule.is_fact() {
            let tuple: Vec<ConstId> = rule
                .head
                .args
                .iter()
                .map(|t| intern_ground_term(t, &mut base))
                .collect();
            facts.push((rule.head.pred, tuple.into_boxed_slice()));
        } else {
            rules.push(compile_rule(rule, &[]));
        }
    }
    evaluate_positive(
        &rules,
        &facts,
        &mut base,
        &EvalLimits {
            max_tuples: options.max_envelope_tuples,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atoms::AtomId;
    use crate::parser::parse_program;

    fn ground_src(src: &str) -> GroundProgram {
        ground(&parse_program(src).unwrap()).unwrap()
    }

    #[test]
    fn win_move_grounding() {
        let g = ground_src(
            "wins(X) :- move(X, Y), not wins(Y).
             move(a, b). move(b, a). move(b, c).",
        );
        // Atoms: 3 move facts + wins(a), wins(b), wins(c) heads... wins(c)
        // appears only in a negative literal of the instance for wins(b).
        // Envelope(wins) = {a, b} (sources of edges); wins(c) is outside
        // the envelope so `not wins(c)` is dropped.
        let names: Vec<String> = (0..g.atom_count() as u32)
            .map(|i| g.atom_name(AtomId(i)))
            .collect();
        assert!(names.contains(&"wins(a)".to_string()));
        assert!(names.contains(&"wins(b)".to_string()));
        assert!(!names.contains(&"wins(c)".to_string()));
        // Rules: 3 facts + wins(a):-move(a,b),¬wins(b);
        // wins(b):-move(b,a),¬wins(a); wins(b):-move(b,c) (literal dropped).
        assert_eq!(g.rule_count(), 6);
        let dropped = g
            .rules()
            .find(|r| !r.pos.is_empty() && r.neg.is_empty())
            .expect("the wins(b) :- move(b,c) instance lost its negative literal");
        assert_eq!(g.atom_name(dropped.head), "wins(b)");
    }

    #[test]
    fn unsafe_rule_rejected_by_default() {
        let p = parse_program("p(X) :- not q(X). q(a).").unwrap();
        let err = ground(&p).unwrap_err();
        assert!(matches!(err, GroundError::UnsafeRule { .. }));
    }

    #[test]
    fn unsafe_head_variable_rejected() {
        let p = parse_program("p(X, Y) :- q(X). q(a).").unwrap();
        let err = ground(&p).unwrap_err();
        assert!(matches!(err, GroundError::UnsafeRule { .. }));
    }

    #[test]
    fn active_domain_guards_unsafe_rules() {
        let p = parse_program("p(X) :- not q(X). q(a). r(b).").unwrap();
        let g = ground_with(
            &p,
            &GroundOptions {
                safety: SafetyPolicy::ActiveDomain,
                ..Default::default()
            },
        )
        .unwrap();
        // Active domain {a, b}: p(a) :- not q(a); p(b) (not q(b) dropped,
        // q(b) outside envelope).
        let pa = g.find_atom_by_name("p", &["a"]).unwrap();
        let pb = g.find_atom_by_name("p", &["b"]).unwrap();
        let qa = g.find_atom_by_name("q", &["a"]).unwrap();
        assert!(g.find_atom_by_name("q", &["b"]).is_none());
        let pa_rules = g.rules_with_head(pa);
        assert_eq!(pa_rules.len(), 1);
        assert_eq!(g.rule(pa_rules[0]).neg.as_ref(), &[qa]);
        let pb_rules = g.rules_with_head(pb);
        assert_eq!(pb_rules.len(), 1);
        assert!(g.rule(pb_rules[0]).is_fact());
    }

    #[test]
    fn empty_domain_reported() {
        let p = parse_program("p(X) :- not q(X).").unwrap();
        let err = ground_with(
            &p,
            &GroundOptions {
                safety: SafetyPolicy::ActiveDomain,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GroundError::EmptyDomain));
    }

    #[test]
    fn envelope_prunes_underivable_instances() {
        let g = ground_src(
            "p(X) :- e(X, Y), p(Y).
             p(a) :- not q(a).
             q(a) :- not p(a).
             e(b, a). e(c, b).",
        );
        // Envelope: p{a,b,c}, q(a); instances p(b):-e(b,a),p(a) etc.
        assert!(g.find_atom_by_name("p", &["c"]).is_some());
        // No instance with head p over constants not reachable: only a,b,c.
        for r in g.rules() {
            assert!(r.pos.len() <= 2);
        }
    }

    #[test]
    fn propositional_programs_ground_to_themselves() {
        let g = ground_src("p :- not q. q :- not p. r :- p, q.");
        assert_eq!(g.rule_count(), 3);
        assert_eq!(g.atom_count(), 3);
    }

    #[test]
    fn budget_error_on_function_symbol_divergence() {
        let p = parse_program("n(z). n(s(X)) :- n(X).").unwrap();
        let err = ground_with(
            &p,
            &GroundOptions {
                max_envelope_tuples: 1000,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, GroundError::AtomBudgetExceeded { .. }));
    }

    #[test]
    fn bounded_function_symbols_ground_fine() {
        let g = ground_src("n(z). n(s(X)) :- n(X), small(X). small(z).");
        // n(z), n(s(z)); small(z); the rule instance for X=s(z) is pruned
        // because small(s(z)) is outside the envelope.
        assert!(g.find_atom_by_name("n", &[]).is_none()); // arity mismatch probe
        let names: Vec<String> = (0..g.atom_count() as u32)
            .map(|i| g.atom_name(AtomId(i)))
            .collect();
        assert!(names.contains(&"n(s(z))".to_string()));
        assert!(!names.iter().any(|n| n.contains("s(s(z))")));
    }

    #[test]
    fn positive_envelope_standalone() {
        let p = parse_program("tc(X,Y) :- e(X,Y). tc(X,Y) :- e(X,Z), tc(Z,Y). e(a,b). e(b,c).")
            .unwrap();
        let env = positive_envelope(&p, &GroundOptions::default()).unwrap();
        let tc = p.symbols.get("tc").unwrap();
        assert_eq!(env.relation(tc).unwrap().len(), 3);
    }

    #[test]
    fn safety_analysis_lists_offending_variable() {
        let p = parse_program("p(X) :- q(Y), not r(X, Z).").unwrap();
        let v = unsafe_variables(&p.rules[0]);
        let names: Vec<&str> = v.iter().map(|s| p.symbols.name(*s)).collect();
        assert_eq!(names, vec!["X", "Z"]);
        assert!(!is_safe(&p));
    }
}
