//! # afp-datalog — the Datalog-with-negation substrate
//!
//! Everything the alternating-fixpoint computation of
//! *Van Gelder, "The Alternating Fixpoint of Logic Programs with Negation"*
//! (PODS 1989 / JCSS 1993) stands on:
//!
//! * [`ast`] / [`parser`] — normal logic programs (Definition 3.1) and a
//!   Prolog-flavoured surface syntax;
//! * [`atoms`] / [`bitset`] — the interned Herbrand base and dense
//!   interpretations;
//! * [`program`] — ground programs `P_H` with occurrence indices, stored
//!   copy-on-write ([`cow`]) so snapshots are reference-count bumps;
//! * [`horn`] — the linear-time Horn closure behind the eventual
//!   consequence operator `S_P` (Definition 4.2);
//! * [`relation`] / [`seminaive`] — an indexed relational engine with
//!   semi-naive evaluation for positive programs;
//! * [`mod@ground`] — safety checking and relevance-based instantiation over
//!   the positive envelope;
//! * [`depgraph`] — dependency graphs, stratification (Section 2.3) and
//!   strictness (Definition 8.3).
//!
//! The operators of the paper itself (`S_P`, `S̃_P`, `A_P`, the AFP model)
//! live one crate up, in `afp-core`.

#![warn(missing_docs)]

pub mod ast;
pub mod atoms;
pub mod bitset;
pub mod cow;
pub mod depgraph;
pub mod error;
pub mod fx;
pub mod ground;
pub mod horn;
pub mod incremental;
pub mod parser;
pub mod program;
pub mod relation;
pub mod seminaive;
pub mod symbol;

pub use ast::{Atom, Literal, Program, Rule, Term};
pub use atoms::{AtomId, ConstId, HerbrandBase};
pub use bitset::AtomSet;
pub use depgraph::{Condensation, CondensationDelta, RepairStats, RuleRename, SccList, TaskGraph};
pub use error::{GroundError, ParseError};
pub use ground::{ground, ground_with, GroundOptions, SafetyPolicy};
pub use incremental::{DeltaEffect, IncrementalGrounder, RetractOutcome, RuleAssertOutcome};
pub use parser::parse_program;
pub use program::{parse_ground, GroundProgram, GroundProgramBuilder, GroundRule, RuleId};
pub use symbol::{Symbol, SymbolStore};
