//! Ground (instantiated) programs `P_H` with rule indices.
//!
//! The paper's operators all work on the *Herbrand instantiation* of a
//! program (Section 3.3): every rule has ground terms substituted for its
//! variables in all possible ways. [`GroundProgram`] stores that
//! instantiation with atoms interned to dense [`AtomId`]s and three
//! occurrence indices (by head, by positive-body, by negative-body) so that
//! every fixpoint operator runs in time linear in the program size.
//!
//! ## Copy-on-write snapshots
//!
//! All storage is segmented behind [`Arc`]s ([`crate::cow::CowVec`] for
//! the rules and occurrence indices, whole-structure `Arc`s for the
//! Herbrand base and symbol store): **cloning a `GroundProgram` is a
//! handful of reference-count bumps**, however large the program. A clone
//! is an immutable snapshot — mutating either side afterwards copies only
//! the segments actually touched (`Arc::make_mut`), so a mutate →
//! snapshot → solve loop pays `O(delta)` per cycle, not `O(program)`.
//! [`GroundProgram::deep_clone`] forces a full copy when genuine
//! structural independence is wanted. The interning entry points
//! ([`GroundProgram::intern_symbol`], [`GroundProgram::intern_const`],
//! [`GroundProgram::intern_term`], [`GroundProgram::intern_atom_ids`],
//! [`GroundProgram::import_atom`] / [`GroundProgram::import_rule`]) are
//! read-first: re-interning something already present never copies a
//! shared base, which keeps steady-state update loops allocation-free on
//! the shared segments.

use crate::ast::{Program, Term};
use crate::atoms::{AtomId, ConstId, GroundTerm, HerbrandBase};
use crate::bitset::AtomSet;
use crate::cow::CowVec;
use crate::symbol::{Symbol, SymbolStore};
use std::fmt;
use std::sync::Arc;

/// Index of a rule within a [`GroundProgram`].
pub type RuleId = u32;

/// A ground normal rule `head ← pos₁,…,posₖ, ¬neg₁,…,¬negₘ`.
///
/// `pos` and `neg` are sorted and deduplicated at construction so that the
/// counter-based propagation engines can decrement exactly once per
/// (atom, rule) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroundRule {
    /// Head atom.
    pub head: AtomId,
    /// Positive body atoms (sorted, deduplicated).
    pub pos: Box<[AtomId]>,
    /// Negated body atoms (sorted, deduplicated).
    pub neg: Box<[AtomId]>,
}

impl GroundRule {
    /// Normalize body lists: sort and deduplicate.
    pub fn new(head: AtomId, mut pos: Vec<AtomId>, mut neg: Vec<AtomId>) -> Self {
        pos.sort_unstable();
        pos.dedup();
        neg.sort_unstable();
        neg.dedup();
        GroundRule {
            head,
            pos: pos.into_boxed_slice(),
            neg: neg.into_boxed_slice(),
        }
    }

    /// True iff the rule has an empty body.
    pub fn is_fact(&self) -> bool {
        self.pos.is_empty() && self.neg.is_empty()
    }
}

/// An instantiated program together with its interned Herbrand base and
/// occurrence indices.
///
/// `Clone` is a copy-on-write snapshot (reference-count bumps only); see
/// the module docs. Use [`GroundProgram::deep_clone`] for a structurally
/// independent copy.
#[derive(Clone)]
pub struct GroundProgram {
    rules: CowVec<GroundRule>,
    base: Arc<HerbrandBase>,
    symbols: Arc<SymbolStore>,
    head_index: CowVec<Vec<RuleId>>,
    pos_index: CowVec<Vec<RuleId>>,
    neg_index: CowVec<Vec<RuleId>>,
}

impl GroundProgram {
    /// The rules, in id order.
    pub fn rules(&self) -> impl Iterator<Item = &GroundRule> {
        self.rules.iter()
    }

    /// A rule by id.
    #[inline]
    pub fn rule(&self, id: RuleId) -> &GroundRule {
        self.rules.get(id as usize)
    }

    /// Number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Size of the Herbrand base (number of distinct atoms). This is the
    /// universe every [`AtomSet`] over this program ranges over.
    pub fn atom_count(&self) -> usize {
        self.base.atom_count()
    }

    /// The interned Herbrand base.
    pub fn base(&self) -> &HerbrandBase {
        &self.base
    }

    /// The symbol store names resolve through.
    pub fn symbols(&self) -> &SymbolStore {
        &self.symbols
    }

    /// Rules whose head is `atom`.
    #[inline]
    pub fn rules_with_head(&self, atom: AtomId) -> &[RuleId] {
        self.head_index.get(atom.index())
    }

    /// Rules with `atom` in their positive body.
    #[inline]
    pub fn rules_with_pos(&self, atom: AtomId) -> &[RuleId] {
        self.pos_index.get(atom.index())
    }

    /// Rules with `atom` in their negative body.
    #[inline]
    pub fn rules_with_neg(&self, atom: AtomId) -> &[RuleId] {
        self.neg_index.get(atom.index())
    }

    /// An empty atom set sized for this program's Herbrand base.
    pub fn empty_set(&self) -> AtomSet {
        AtomSet::empty(self.atom_count())
    }

    /// The full Herbrand base as a set.
    pub fn full_set(&self) -> AtomSet {
        AtomSet::full(self.atom_count())
    }

    /// Render a ground atom.
    pub fn atom_name(&self, id: AtomId) -> String {
        self.base.display_atom(id, &self.symbols)
    }

    /// Resolve an atom by textual predicate name and constant arguments.
    /// Returns `None` if any name is unknown or the atom was never
    /// materialized during grounding (such an atom is false in every
    /// semantics computed over this program).
    pub fn find_atom_by_name(&self, pred: &str, args: &[&str]) -> Option<AtomId> {
        let p = self.symbols.get(pred)?;
        let mut ids = Vec::with_capacity(args.len());
        for a in args {
            let sym = self.symbols.get(a)?;
            let id = self.base.find_term(&crate::atoms::GroundTerm::Const(sym))?;
            ids.push(id);
        }
        self.base.find_atom(p, &ids)
    }

    /// Render a set of atoms sorted by display name — handy in tests and
    /// the experiment harness.
    pub fn set_to_names(&self, set: &AtomSet) -> Vec<String> {
        let mut v: Vec<String> = set.iter().map(|id| self.atom_name(AtomId(id))).collect();
        v.sort();
        v
    }

    /// Total size: Σ over rules of (1 + |pos| + |neg|). The complexity
    /// bounds in DESIGN.md are stated against this quantity.
    pub fn size(&self) -> usize {
        self.rules
            .iter()
            .map(|r| 1 + r.pos.len() + r.neg.len())
            .sum()
    }

    /// Intern a ground atom (over term ids of **this program's base**) and
    /// grow the occurrence indices to cover it. New atoms start with no
    /// rules — false in every semantics — until rules are pushed.
    /// Read-first: an already-interned atom is resolved without touching
    /// (and so without copying) a shared base.
    pub fn intern_atom_ids(&mut self, pred: Symbol, args: &[ConstId]) -> AtomId {
        if let Some(id) = self.base.find_atom(pred, args) {
            return id;
        }
        let id = Arc::make_mut(&mut self.base).intern_atom(pred, args);
        let n = self.base.atom_count();
        self.head_index.grow_with(n, Vec::new);
        self.pos_index.grow_with(n, Vec::new);
        self.neg_index.grow_with(n, Vec::new);
        id
    }

    /// Intern a symbol name, read-first (a known name never copies a
    /// shared symbol store).
    pub fn intern_symbol(&mut self, name: &str) -> Symbol {
        match self.symbols.get(name) {
            Some(sym) => sym,
            None => Arc::make_mut(&mut self.symbols).intern(name),
        }
    }

    /// Intern a constant term, read-first.
    pub fn intern_const(&mut self, sym: Symbol) -> ConstId {
        self.intern_term(GroundTerm::Const(sym))
    }

    /// Intern a ground term (over this program's symbols and term ids),
    /// read-first.
    pub fn intern_term(&mut self, term: GroundTerm) -> ConstId {
        match self.base.find_term(&term) {
            Some(id) => id,
            None => Arc::make_mut(&mut self.base).intern_term(term),
        }
    }

    /// Copy a term interned in another base (over the **same** symbol
    /// space) into this program's base, read-first. Replaces the old
    /// free-function `reintern_term` pattern on the warm update paths,
    /// where the term almost always exists already and a shared base must
    /// not be copied just to look it up.
    pub fn reintern_term(&mut self, t: ConstId, from: &HerbrandBase) -> ConstId {
        match from.term(t).clone() {
            GroundTerm::Const(c) => self.intern_const(c),
            GroundTerm::App(f, args) => {
                let new_args: Vec<ConstId> =
                    args.iter().map(|&a| self.reintern_term(a, from)).collect();
                self.intern_term(GroundTerm::App(f, new_args.into_boxed_slice()))
            }
        }
    }

    /// Translate an AST atom from another symbol store into this
    /// program's, read-first (see [`crate::ast::import_atom`]).
    pub fn import_atom(&mut self, atom: &crate::ast::Atom, from: &SymbolStore) -> crate::ast::Atom {
        crate::ast::import_atom_with(&mut |name| self.intern_symbol(name), atom, from)
    }

    /// Translate an AST rule from another symbol store into this
    /// program's, read-first (see [`crate::ast::import_rule`]).
    pub fn import_rule(&mut self, rule: &crate::ast::Rule, from: &SymbolStore) -> crate::ast::Rule {
        crate::ast::import_rule_with(&mut |name| self.intern_symbol(name), rule, from)
    }

    /// Mutable access to the Herbrand base, for interning ground **terms**
    /// before [`GroundProgram::intern_atom_ids`]. Callers must not intern
    /// atoms through this handle directly — atom growth has to go through
    /// `intern_atom_ids` so the occurrence indices stay sized to the base.
    /// **Forces copy-on-write** when the base is shared with a snapshot,
    /// even if nothing ends up mutated; prefer the read-first interning
    /// methods above on warm paths.
    pub fn base_mut(&mut self) -> &mut HerbrandBase {
        Arc::make_mut(&mut self.base)
    }

    /// Mutable access to the symbol store (to intern predicate or constant
    /// names arriving after initial grounding). **Forces copy-on-write**
    /// when shared; prefer [`GroundProgram::intern_symbol`] on warm paths.
    pub fn symbols_mut(&mut self) -> &mut SymbolStore {
        Arc::make_mut(&mut self.symbols)
    }

    /// Do `self` and `other` still share their Herbrand base storage?
    /// True between a program and its snapshot until one of them interns
    /// a genuinely new symbol/term/atom — the observable guarantee of the
    /// copy-on-write layout, asserted by tests and relied on by
    /// [`GroundProgram::restrict_heads`].
    pub fn shares_base_with(&self, other: &GroundProgram) -> bool {
        Arc::ptr_eq(&self.base, &other.base) && Arc::ptr_eq(&self.symbols, &other.symbols)
    }

    /// A structurally independent copy: every segment is cloned eagerly,
    /// exactly what `Clone` used to do before the copy-on-write layout.
    /// Useful when a snapshot must not keep segment `Arc`s alive (archival
    /// of many versions of a mutating program), and as the baseline the
    /// `serve_throughput` bench compares CoW snapshots against.
    pub fn deep_clone(&self) -> GroundProgram {
        GroundProgram {
            rules: CowVec::from_vec(self.rules.iter().cloned().collect()),
            base: Arc::new((*self.base).clone()),
            symbols: Arc::new((*self.symbols).clone()),
            head_index: CowVec::from_vec(self.head_index.iter().cloned().collect()),
            pos_index: CowVec::from_vec(self.pos_index.iter().cloned().collect()),
            neg_index: CowVec::from_vec(self.neg_index.iter().cloned().collect()),
        }
    }

    /// Append a rule, maintaining the occurrence indices. Body lists are
    /// normalized exactly as during initial construction.
    pub fn push_rule(&mut self, head: AtomId, pos: Vec<AtomId>, neg: Vec<AtomId>) -> RuleId {
        let rule = GroundRule::new(head, pos, neg);
        let id = self.rules.len() as RuleId;
        self.head_index.get_mut(rule.head.index()).push(id);
        for &p in rule.pos.iter() {
            self.pos_index.get_mut(p.index()).push(id);
        }
        for &q in rule.neg.iter() {
            self.neg_index.get_mut(q.index()).push(id);
        }
        self.rules.push(rule);
        id
    }

    /// Add `atom` to the negative body of `rule` (no-op when already
    /// present), maintaining the occurrence indices. Used by the
    /// incremental grounder to resurrect negative literals it had pruned
    /// while their atom was outside the positive envelope.
    pub fn add_neg_literal(&mut self, rule: RuleId, atom: AtomId) {
        let r = self.rules.get_mut(rule as usize);
        match r.neg.binary_search(&atom) {
            Ok(_) => {}
            Err(ix) => {
                let mut neg = r.neg.to_vec();
                neg.insert(ix, atom);
                r.neg = neg.into_boxed_slice();
                self.neg_index.get_mut(atom.index()).push(rule);
            }
        }
    }

    /// Remove a rule by id via swap-remove: the **last** rule takes over
    /// `id` (the returned value names the rule that moved, if any). All
    /// occurrence indices are patched; other rule ids are unchanged.
    /// Callers maintaining a memoized [`crate::depgraph::Condensation`]
    /// must record the move as a [`crate::depgraph::RuleRename`]
    /// (stamped with the moved rule's head at this moment) so
    /// `apply_delta` can keep its rule slices pointing at the right ids
    /// — [`GroundProgram::remove_rule_logged`] does that for you.
    pub fn remove_rule(&mut self, id: RuleId) -> Option<RuleId> {
        let unlink = |index: &mut CowVec<Vec<RuleId>>, atom: AtomId, rid: RuleId| {
            let v = index.get_mut(atom.index());
            let pos = v.iter().position(|&r| r == rid).expect("indexed rule");
            v.swap_remove(pos);
        };
        let relink = |index: &mut CowVec<Vec<RuleId>>, atom: AtomId, from: RuleId, to: RuleId| {
            let v = index.get_mut(atom.index());
            let pos = v.iter().position(|&r| r == from).expect("indexed rule");
            v[pos] = to;
        };
        let gone = self.rules.get(id as usize).clone();
        unlink(&mut self.head_index, gone.head, id);
        for &p in gone.pos.iter() {
            unlink(&mut self.pos_index, p, id);
        }
        for &q in gone.neg.iter() {
            unlink(&mut self.neg_index, q, id);
        }
        let last = (self.rules.len() - 1) as RuleId;
        self.rules.swap_remove(id as usize);
        if last == id {
            return None;
        }
        let moved = self.rules.get(id as usize).clone();
        relink(&mut self.head_index, moved.head, last, id);
        for &p in moved.pos.iter() {
            relink(&mut self.pos_index, p, last, id);
        }
        for &q in moved.neg.iter() {
            relink(&mut self.neg_index, q, last, id);
        }
        Some(last)
    }

    /// [`GroundProgram::remove_rule`] plus the condensation-repair
    /// bookkeeping: when the swap-remove moves the last rule into the
    /// freed slot, the move is appended to `renames` stamped with the
    /// moved rule's head **at this moment** (a later removal may move
    /// the slot again, so the stamp cannot be recovered afterwards).
    /// Returns the moved rule's previous id for callers that keep other
    /// id-keyed state of their own.
    pub fn remove_rule_logged(
        &mut self,
        id: RuleId,
        renames: &mut Vec<crate::depgraph::RuleRename>,
    ) -> Option<RuleId> {
        let moved = self.remove_rule(id)?;
        renames.push(crate::depgraph::RuleRename {
            from: moved,
            to: id,
            head: self.rule(id).head,
        });
        Some(moved)
    }

    /// A copy of this program over the **same Herbrand base and atom ids**
    /// but keeping only the rules whose head is in `keep`. Atoms outside
    /// `keep` lose all their rules and become false in every semantics —
    /// which is exactly what query-directed relevance restriction wants
    /// (see `afp-core::relevance`). The base and symbol store are shared
    /// with `self` (`Arc` clones), so restriction costs only the kept
    /// rules and their indices.
    pub fn restrict_heads(&self, keep: &crate::bitset::AtomSet) -> GroundProgram {
        let rules: Vec<GroundRule> = self
            .rules
            .iter()
            .filter(|r| keep.contains(r.head.0))
            .cloned()
            .collect();
        let n = self.atom_count();
        let mut head_index = vec![Vec::new(); n];
        let mut pos_index = vec![Vec::new(); n];
        let mut neg_index = vec![Vec::new(); n];
        for (i, r) in rules.iter().enumerate() {
            let id = i as RuleId;
            head_index[r.head.index()].push(id);
            for &p in r.pos.iter() {
                pos_index[p.index()].push(id);
            }
            for &q in r.neg.iter() {
                neg_index[q.index()].push(id);
            }
        }
        GroundProgram {
            rules: CowVec::from_vec(rules),
            base: Arc::clone(&self.base),
            symbols: Arc::clone(&self.symbols),
            head_index: CowVec::from_vec(head_index),
            pos_index: CowVec::from_vec(pos_index),
            neg_index: CowVec::from_vec(neg_index),
        }
    }
}

impl fmt::Debug for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("GroundProgram")
            .field("rules", &self.rules.len())
            .field("atoms", &self.atom_count())
            .finish()
    }
}

impl fmt::Display for GroundProgram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in self.rules.iter() {
            write!(f, "{}", self.atom_name(r.head))?;
            if !r.is_fact() {
                write!(f, " :- ")?;
                let mut first = true;
                for &p in r.pos.iter() {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "{}", self.atom_name(p))?;
                }
                for &n in r.neg.iter() {
                    if !first {
                        write!(f, ", ")?;
                    }
                    first = false;
                    write!(f, "not {}", self.atom_name(n))?;
                }
            }
            writeln!(f, ".")?;
        }
        Ok(())
    }
}

/// Incremental builder for [`GroundProgram`].
#[derive(Default)]
pub struct GroundProgramBuilder {
    rules: Vec<GroundRule>,
    base: HerbrandBase,
    symbols: SymbolStore,
}

impl GroundProgramBuilder {
    /// Start from an empty Herbrand base and symbol store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Start from an existing symbol store (e.g. the one a [`Program`] was
    /// parsed into) so that displayed names match the source.
    pub fn with_symbols(symbols: SymbolStore) -> Self {
        GroundProgramBuilder {
            rules: Vec::new(),
            base: HerbrandBase::new(),
            symbols,
        }
    }

    /// Access the symbol store mutably (to intern new names).
    pub fn symbols_mut(&mut self) -> &mut SymbolStore {
        &mut self.symbols
    }

    /// Access the Herbrand base mutably (to intern terms/atoms).
    pub fn base_mut(&mut self) -> &mut HerbrandBase {
        &mut self.base
    }

    /// Intern a propositional atom by name.
    pub fn prop(&mut self, name: &str) -> AtomId {
        let sym = self.symbols.intern(name);
        self.base.intern_atom(sym, &[])
    }

    /// Intern an atom `pred(c1, …, ck)` over constant names.
    pub fn atom(&mut self, pred: &str, args: &[&str]) -> AtomId {
        let p = self.symbols.intern(pred);
        let ids: Vec<_> = args
            .iter()
            .map(|a| {
                let sym = self.symbols.intern(a);
                self.base.intern_const(sym)
            })
            .collect();
        self.base.intern_atom(p, &ids)
    }

    /// Add a rule.
    pub fn rule(&mut self, head: AtomId, pos: Vec<AtomId>, neg: Vec<AtomId>) -> &mut Self {
        self.rules.push(GroundRule::new(head, pos, neg));
        self
    }

    /// Add a fact.
    pub fn fact(&mut self, head: AtomId) -> &mut Self {
        self.rules.push(GroundRule::new(head, vec![], vec![]));
        self
    }

    /// Current number of interned atoms.
    pub fn atom_count(&self) -> usize {
        self.base.atom_count()
    }

    /// Current number of rules.
    pub fn rule_count(&self) -> usize {
        self.rules.len()
    }

    /// Build the indices and finish.
    pub fn finish(self) -> GroundProgram {
        let n = self.base.atom_count();
        let mut head_index = vec![Vec::new(); n];
        let mut pos_index = vec![Vec::new(); n];
        let mut neg_index = vec![Vec::new(); n];
        for (i, r) in self.rules.iter().enumerate() {
            let id = i as RuleId;
            head_index[r.head.index()].push(id);
            for &p in r.pos.iter() {
                pos_index[p.index()].push(id);
            }
            for &q in r.neg.iter() {
                neg_index[q.index()].push(id);
            }
        }
        GroundProgram {
            rules: CowVec::from_vec(self.rules),
            base: Arc::new(self.base),
            symbols: Arc::new(self.symbols),
            head_index: CowVec::from_vec(head_index),
            pos_index: CowVec::from_vec(pos_index),
            neg_index: CowVec::from_vec(neg_index),
        }
    }
}

/// Build a ground program directly from an AST [`Program`] whose rules are
/// all ground (no variables). This bypasses the grounder for propositional
/// programs — the common case in tests, random workloads, and the paper's
/// propositional examples.
///
/// # Errors
/// Returns the display string of the first non-ground rule encountered.
pub fn ground_program_from_ast(program: &Program) -> Result<GroundProgram, String> {
    let mut b = GroundProgramBuilder::with_symbols(program.symbols.clone());
    for rule in &program.rules {
        let head = intern_ground_atom(&mut b, rule)?;
        let mut pos = Vec::new();
        let mut neg = Vec::new();
        for lit in &rule.body {
            let id = intern_atom_checked(&mut b, &lit.atom, rule, &program.symbols)?;
            if lit.positive {
                pos.push(id);
            } else {
                neg.push(id);
            }
        }
        b.rule(head, pos, neg);
    }
    Ok(b.finish())
}

fn intern_ground_atom(
    b: &mut GroundProgramBuilder,
    rule: &crate::ast::Rule,
) -> Result<AtomId, String> {
    let symbols = b.symbols.clone();
    intern_atom_checked(b, &rule.head.clone(), rule, &symbols)
}

fn intern_atom_checked(
    b: &mut GroundProgramBuilder,
    atom: &crate::ast::Atom,
    rule: &crate::ast::Rule,
    symbols: &SymbolStore,
) -> Result<AtomId, String> {
    if !atom.is_ground() {
        return Err(format!(
            "rule is not ground: {}",
            crate::ast::display_rule(rule, symbols)
        ));
    }
    let mut args = Vec::with_capacity(atom.args.len());
    for t in &atom.args {
        args.push(intern_ground_term(b, t));
    }
    Ok(b.base.intern_atom(atom.pred, &args))
}

fn intern_ground_term(b: &mut GroundProgramBuilder, t: &Term) -> crate::atoms::ConstId {
    match t {
        Term::Const(c) => b.base.intern_const(*c),
        Term::App(f, args) => {
            let ids: Vec<_> = args.iter().map(|a| intern_ground_term(b, a)).collect();
            b.base
                .intern_term(crate::atoms::GroundTerm::App(*f, ids.into_boxed_slice()))
        }
        Term::Var(_) => unreachable!("groundness checked by caller"),
    }
}

/// Parse a propositional (already-ground) program from text — a convenience
/// wrapper for tests and examples.
pub fn parse_ground(src: &str) -> GroundProgram {
    let ast = crate::parser::parse_program(src).expect("parse error");
    ground_program_from_ast(&ast).expect("program must be ground")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_and_indices() {
        let mut b = GroundProgramBuilder::new();
        let p = b.prop("p");
        let q = b.prop("q");
        let r = b.prop("r");
        b.rule(p, vec![q], vec![r]);
        b.fact(q);
        let g = b.finish();
        assert_eq!(g.rule_count(), 2);
        assert_eq!(g.atom_count(), 3);
        assert_eq!(g.rules_with_head(p), &[0]);
        assert_eq!(g.rules_with_pos(q), &[0]);
        assert_eq!(g.rules_with_neg(r), &[0]);
        assert_eq!(g.rules_with_head(q), &[1]);
        assert_eq!(g.size(), 2 + 1 + 1 + 1 - 1); // rule0: 1+1+1, rule1: 1
    }

    #[test]
    fn duplicate_body_literals_are_deduped() {
        let mut b = GroundProgramBuilder::new();
        let p = b.prop("p");
        let q = b.prop("q");
        b.rule(p, vec![q, q], vec![q, q]);
        let g = b.finish();
        assert_eq!(g.rule(0).pos.len(), 1);
        assert_eq!(g.rule(0).neg.len(), 1);
    }

    #[test]
    fn from_ast_ground_program() {
        let g = parse_ground("p :- q, not r. q. r :- not s.");
        assert_eq!(g.rule_count(), 3);
        assert_eq!(g.atom_count(), 4);
        let p = g.find_atom_by_name("p", &[]).unwrap();
        assert_eq!(g.atom_name(p), "p");
    }

    #[test]
    fn from_ast_rejects_variables() {
        let ast = crate::parser::parse_program("p(X) :- q(X).").unwrap();
        let err = ground_program_from_ast(&ast).unwrap_err();
        assert!(err.contains("not ground"));
    }

    #[test]
    fn from_ast_with_relational_facts() {
        let g = parse_ground("e(a, b). e(b, c). p(a, c) :- e(a, b), e(b, c).");
        assert_eq!(g.atom_count(), 3);
        let atom = g.find_atom_by_name("e", &["a", "b"]).unwrap();
        assert_eq!(g.atom_name(atom), "e(a, b)");
        assert!(g.find_atom_by_name("e", &["a", "c"]).is_none());
        assert!(g.find_atom_by_name("nope", &[]).is_none());
    }

    #[test]
    fn display_roundtrip() {
        let g = parse_ground("p :- q, not r. q.");
        let text = g.to_string();
        assert!(text.contains("p :- q, not r."));
        assert!(text.contains("q."));
    }

    #[test]
    fn clone_is_a_snapshot_mutation_is_isolated() {
        let mut g = parse_ground("p :- q, not r. q. r :- not s.");
        let snapshot = g.clone();
        assert!(g.shares_base_with(&snapshot), "clone shares all storage");

        // Mutate the original: push a new fact rule for an existing atom.
        let s = g.find_atom_by_name("s", &[]).unwrap();
        g.push_rule(s, vec![], vec![]);
        assert_eq!(g.rule_count(), 4);
        assert_eq!(snapshot.rule_count(), 3, "snapshot sees the old rules");
        assert!(snapshot.rules_with_head(s).is_empty());
        assert_eq!(g.rules_with_head(s).len(), 1);
        assert!(
            g.shares_base_with(&snapshot),
            "no new atoms: the Herbrand base stays shared"
        );

        // Interning a genuinely new atom un-shares the base only then.
        let sym = g.intern_symbol("brand_new");
        g.intern_atom_ids(sym, &[]);
        assert!(!g.shares_base_with(&snapshot));
        assert!(snapshot.find_atom_by_name("brand_new", &[]).is_none());
    }

    #[test]
    fn read_first_interning_never_unshares() {
        let mut g = parse_ground("e(a, b). p :- e(a, b).");
        let snapshot = g.clone();
        // Everything below re-interns existing material only.
        let sym_e = g.intern_symbol("e");
        let sym_a = g.intern_symbol("a");
        let sym_b = g.intern_symbol("b");
        let a = g.intern_const(sym_a);
        let b = g.intern_const(sym_b);
        assert_eq!(
            g.intern_atom_ids(sym_e, &[a, b]),
            g.base().find_atom(sym_e, &[a, b]).unwrap()
        );
        assert!(
            g.shares_base_with(&snapshot),
            "re-interning known symbols/terms/atoms must not copy shared storage"
        );
    }

    #[test]
    fn remove_rule_after_snapshot_keeps_snapshot_indices_intact() {
        let mut g = parse_ground("p :- q, not r. q. r :- not s.");
        let snapshot = g.clone();
        let q = g.find_atom_by_name("q", &[]).unwrap();
        let fact = *g
            .rules_with_head(q)
            .iter()
            .find(|&&r| g.rule(r).is_fact())
            .unwrap();
        g.remove_rule(fact);
        assert_eq!(g.rule_count(), 2);
        assert_eq!(snapshot.rule_count(), 3);
        let snap_fact = snapshot.rules_with_head(q);
        assert_eq!(snap_fact.len(), 1);
        assert!(snapshot.rule(snap_fact[0]).is_fact());
    }

    #[test]
    fn deep_clone_is_structurally_independent() {
        let g = parse_ground("p :- q, not r. q.");
        let deep = g.deep_clone();
        assert!(!g.shares_base_with(&deep));
        assert_eq!(deep.rule_count(), g.rule_count());
        assert_eq!(deep.atom_count(), g.atom_count());
        assert_eq!(deep.to_string(), g.to_string());
    }

    #[test]
    fn restrict_heads_shares_the_base() {
        let g = parse_ground("p :- q. q. r :- not p.");
        let p = g.find_atom_by_name("p", &[]).unwrap();
        let keep = AtomSet::from_iter(g.atom_count(), [p.0]);
        let restricted = g.restrict_heads(&keep);
        assert!(restricted.shares_base_with(&g));
        assert_eq!(restricted.rule_count(), 1);
    }

    #[test]
    fn function_symbol_ground_atoms() {
        let g = parse_ground("p(f(a)). q :- p(f(a)).");
        let q = g.find_atom_by_name("q", &[]).unwrap();
        assert_eq!(g.atom_name(q), "q");
        assert_eq!(g.atom_count(), 2);
        assert_eq!(g.rule(1).pos.len(), 1);
    }
}
