//! Copy-on-write segmented storage for ground-program state.
//!
//! [`CowVec`] is the structural backbone of cheap [`crate::program::GroundProgram`]
//! snapshots: a vector split into fixed-size segments, each behind its own
//! [`Arc`], with the segment directory behind one more `Arc`. Cloning is
//! two reference-count bumps regardless of length; mutating element `i`
//! copies **only** the segment holding `i` (and the pointer directory),
//! via [`Arc::make_mut`], and only when that segment is actually shared
//! with a live snapshot. A mutate → snapshot → mutate loop therefore pays
//! `O(segment)` per touched location instead of `O(collection)` per
//! cycle, which is what turns `Session::snapshot` from a deep clone into
//! a pointer copy.
//!
//! The invariants are those of a plain `Vec` chunked greedily: every
//! segment is full ([`SEG_LEN`] elements) except possibly the last, and
//! the last is non-empty unless the vector is.

use std::sync::Arc;

/// Log₂ of the segment length.
const SEG_SHIFT: usize = 10;
/// Elements per segment. The trade-off: larger segments amortize the
/// per-segment `Arc` overhead on reads, smaller segments bound the copy a
/// single mutation can trigger.
pub const SEG_LEN: usize = 1 << SEG_SHIFT;
const SEG_MASK: usize = SEG_LEN - 1;

/// A segmented vector with `Arc`-shared segments and copy-on-write
/// mutation. See the module docs for the sharing model.
#[derive(Clone)]
pub struct CowVec<T> {
    segs: Arc<Vec<Arc<Vec<T>>>>,
    len: usize,
}

impl<T> Default for CowVec<T> {
    fn default() -> Self {
        CowVec {
            segs: Arc::new(Vec::new()),
            len: 0,
        }
    }
}

impl<T: Clone> CowVec<T> {
    /// An empty vector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Chunk an existing `Vec` into segments (consumes it; no sharing with
    /// anything yet).
    pub fn from_vec(v: Vec<T>) -> Self {
        let len = v.len();
        let mut segs = Vec::with_capacity(len.div_ceil(SEG_LEN));
        let mut iter = v.into_iter();
        loop {
            let seg: Vec<T> = iter.by_ref().take(SEG_LEN).collect();
            if seg.is_empty() {
                break;
            }
            segs.push(Arc::new(seg));
        }
        CowVec {
            segs: Arc::new(segs),
            len,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared access to element `i`.
    ///
    /// # Panics
    /// Panics if `i >= len`, like slice indexing.
    #[inline]
    pub fn get(&self, i: usize) -> &T {
        &self.segs[i >> SEG_SHIFT][i & SEG_MASK]
    }

    /// Mutable access to element `i`, copying the segment holding it (and
    /// the segment directory) first if shared with a clone.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let segs = Arc::make_mut(&mut self.segs);
        let seg = Arc::make_mut(&mut segs[i >> SEG_SHIFT]);
        &mut seg[i & SEG_MASK]
    }

    /// Append an element.
    pub fn push(&mut self, value: T) {
        let segs = Arc::make_mut(&mut self.segs);
        if self.len == segs.len() << SEG_SHIFT {
            segs.push(Arc::new(Vec::with_capacity(SEG_LEN)));
        }
        let last = segs.last_mut().expect("segment just ensured");
        Arc::make_mut(last).push(value);
        self.len += 1;
    }

    /// Remove and return the last element.
    pub fn pop(&mut self) -> Option<T> {
        if self.len == 0 {
            return None;
        }
        let segs = Arc::make_mut(&mut self.segs);
        let last = Arc::make_mut(segs.last_mut().expect("non-empty"));
        let value = last.pop().expect("last segment non-empty");
        if last.is_empty() {
            segs.pop();
        }
        self.len -= 1;
        Some(value)
    }

    /// Remove element `i` by moving the **last** element into its place
    /// (like `Vec::swap_remove`); returns the removed element.
    ///
    /// # Panics
    /// Panics if `i >= len`.
    pub fn swap_remove(&mut self, i: usize) -> T {
        assert!(i < self.len, "index {i} out of bounds (len {})", self.len);
        let last = self.pop().expect("non-empty");
        if i == self.len {
            last // removed element *was* the last
        } else {
            std::mem::replace(self.get_mut(i), last)
        }
    }

    /// Grow to at least `n` elements, filling with `fill()`.
    pub fn grow_with(&mut self, n: usize, mut fill: impl FnMut() -> T) {
        while self.len < n {
            self.push(fill());
        }
    }

    /// Iterate over the elements in order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.segs.iter().flat_map(|s| s.iter())
    }
}

impl<T: Clone + std::fmt::Debug> std::fmt::Debug for CowVec<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_list().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(n: usize) -> CowVec<usize> {
        CowVec::from_vec((0..n).collect())
    }

    #[test]
    fn push_get_iter_roundtrip() {
        let mut v = CowVec::new();
        for i in 0..(3 * SEG_LEN + 7) {
            v.push(i);
        }
        assert_eq!(v.len(), 3 * SEG_LEN + 7);
        assert_eq!(*v.get(0), 0);
        assert_eq!(*v.get(SEG_LEN), SEG_LEN);
        assert_eq!(*v.get(v.len() - 1), v.len() - 1);
        let collected: Vec<usize> = v.iter().copied().collect();
        assert_eq!(collected, (0..v.len()).collect::<Vec<_>>());
    }

    #[test]
    fn clone_is_shallow_and_mutation_is_isolated() {
        let mut v = filled(2 * SEG_LEN + 5);
        let snapshot = v.clone();
        *v.get_mut(3) = 999;
        v.push(12345);
        assert_eq!(*snapshot.get(3), 3, "snapshot unaffected by get_mut");
        assert_eq!(
            snapshot.len(),
            2 * SEG_LEN + 5,
            "snapshot unaffected by push"
        );
        assert_eq!(*v.get(3), 999);
        assert_eq!(*v.get(v.len() - 1), 12345);
    }

    #[test]
    fn untouched_segments_stay_shared_after_mutation() {
        let mut v = filled(3 * SEG_LEN);
        let snapshot = v.clone();
        *v.get_mut(0) = 7; // touches segment 0 only
        assert!(
            !Arc::ptr_eq(&v.segs[0], &snapshot.segs[0]),
            "mutated segment was copied"
        );
        for s in 1..3 {
            assert!(
                Arc::ptr_eq(&v.segs[s], &snapshot.segs[s]),
                "segment {s} untouched, must remain shared"
            );
        }
    }

    #[test]
    fn unshared_mutation_does_not_copy() {
        let mut v = filled(SEG_LEN);
        let seg_before = Arc::as_ptr(&v.segs[0]);
        *v.get_mut(5) = 42;
        assert_eq!(
            Arc::as_ptr(&v.segs[0]),
            seg_before,
            "no snapshot alive: mutation must happen in place"
        );
    }

    #[test]
    fn swap_remove_semantics_match_vec() {
        for n in [1usize, 2, 5, SEG_LEN, SEG_LEN + 1, 2 * SEG_LEN + 3] {
            for i in [0usize, n / 2, n - 1] {
                let mut reference: Vec<usize> = (0..n).collect();
                let mut v = filled(n);
                assert_eq!(v.swap_remove(i), reference.swap_remove(i));
                assert_eq!(v.iter().copied().collect::<Vec<_>>(), reference);
            }
        }
    }

    #[test]
    fn pop_across_segment_boundary() {
        let mut v = filled(SEG_LEN + 1);
        assert_eq!(v.pop(), Some(SEG_LEN));
        assert_eq!(v.pop(), Some(SEG_LEN - 1));
        assert_eq!(v.len(), SEG_LEN - 1);
        v.push(77);
        assert_eq!(*v.get(SEG_LEN - 1), 77);
    }

    #[test]
    fn grow_with_fills() {
        let mut v: CowVec<Vec<u32>> = CowVec::new();
        v.grow_with(SEG_LEN + 2, Vec::new);
        assert_eq!(v.len(), SEG_LEN + 2);
        assert!(v.get(SEG_LEN + 1).is_empty());
    }
}
