//! A small, fast, non-cryptographic hasher for interner keys and dense
//! integer ids.
//!
//! The engine hashes millions of tiny keys (symbol ids, ground-atom tuples)
//! on hot paths; `std`'s SipHash is needlessly defensive for that workload.
//! This is the well-known `FxHash` multiply-xor scheme (as used by rustc),
//! implemented locally so the workspace does not need an extra dependency.
//! HashDoS resistance is irrelevant here: all keys originate from inputs the
//! caller already controls.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, BuildHasherDefault<FxHasher>>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = std::collections::HashSet<K, BuildHasherDefault<FxHasher>>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-xor hasher; identical structure to rustc's `FxHasher`.
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add_to_hash(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add_to_hash(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add_to_hash(v as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hashes_are_deterministic() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write(b"alternating fixpoint");
        b.write(b"alternating fixpoint");
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn different_inputs_differ() {
        let mut a = FxHasher::default();
        let mut b = FxHasher::default();
        a.write_u64(1);
        b.write_u64(2);
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        for i in 0..1000 {
            m.insert(i, "x");
        }
        assert_eq!(m.len(), 1000);
        assert!(m.contains_key(&999));
        assert!(!m.contains_key(&1000));
    }

    #[test]
    fn unaligned_tail_bytes_hash() {
        let mut a = FxHasher::default();
        a.write(b"abc");
        let mut b = FxHasher::default();
        b.write(b"abd");
        assert_ne!(a.finish(), b.finish());
    }
}
