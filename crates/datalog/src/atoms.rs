//! Interning of ground terms and ground atoms — the Herbrand machinery.
//!
//! The *Herbrand universe* of a program is the set of ground terms built
//! from its constants and function symbols; the *Herbrand base* `H` is the
//! set of ground atoms over those terms (Section 3). Both are interned here
//! into dense ids so that interpretations are bitsets ([`crate::bitset`])
//! and rule bodies are flat id arrays.

use crate::fx::FxHashMap;
use crate::symbol::{Symbol, SymbolStore};
use std::fmt;

/// An interned ground term (element of the Herbrand universe).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConstId(u32);

impl ConstId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// The structure of an interned ground term.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum GroundTerm {
    /// A constant.
    Const(Symbol),
    /// A function application over already-interned arguments.
    App(Symbol, Box<[ConstId]>),
}

/// An interned ground atom (element of the Herbrand base).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AtomId(pub u32);

impl AtomId {
    /// Raw index.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Intern table for the Herbrand universe (ground terms) and Herbrand base
/// (ground atoms) actually materialized by grounding.
#[derive(Default, Clone)]
pub struct HerbrandBase {
    terms: Vec<GroundTerm>,
    term_map: FxHashMap<GroundTerm, ConstId>,
    atoms: Vec<(Symbol, Box<[ConstId]>)>,
    atom_map: FxHashMap<(Symbol, Box<[ConstId]>), AtomId>,
}

impl HerbrandBase {
    /// An empty base.
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a constant.
    pub fn intern_const(&mut self, sym: Symbol) -> ConstId {
        self.intern_term(GroundTerm::Const(sym))
    }

    /// Intern a ground term.
    pub fn intern_term(&mut self, term: GroundTerm) -> ConstId {
        if let Some(&id) = self.term_map.get(&term) {
            return id;
        }
        let id = ConstId(u32::try_from(self.terms.len()).expect("too many ground terms"));
        self.terms.push(term.clone());
        self.term_map.insert(term, id);
        id
    }

    /// Intern a ground atom `pred(args…)`.
    pub fn intern_atom(&mut self, pred: Symbol, args: &[ConstId]) -> AtomId {
        let key = (pred, args.to_vec().into_boxed_slice());
        if let Some(&id) = self.atom_map.get(&key) {
            return id;
        }
        let id = AtomId(u32::try_from(self.atoms.len()).expect("too many ground atoms"));
        self.atoms.push(key.clone());
        self.atom_map.insert(key, id);
        id
    }

    /// Look up an atom without interning.
    pub fn find_atom(&self, pred: Symbol, args: &[ConstId]) -> Option<AtomId> {
        // Avoid allocating for the common probe path by linear check through
        // the map with a temporary key only when needed.
        let key = (pred, args.to_vec().into_boxed_slice());
        self.atom_map.get(&key).copied()
    }

    /// Look up a ground term without interning.
    pub fn find_term(&self, term: &GroundTerm) -> Option<ConstId> {
        self.term_map.get(term).copied()
    }

    /// Number of interned atoms (the size of the materialized Herbrand base).
    pub fn atom_count(&self) -> usize {
        self.atoms.len()
    }

    /// Number of interned ground terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Predicate and arguments of an atom.
    pub fn atom(&self, id: AtomId) -> (Symbol, &[ConstId]) {
        let (p, args) = &self.atoms[id.index()];
        (*p, args)
    }

    /// Structure of a ground term.
    pub fn term(&self, id: ConstId) -> &GroundTerm {
        &self.terms[id.index()]
    }

    /// Render a ground term.
    pub fn display_term(&self, id: ConstId, symbols: &SymbolStore) -> String {
        match self.term(id) {
            GroundTerm::Const(c) => symbols.name(*c).to_string(),
            GroundTerm::App(f, args) => {
                let inner: Vec<String> = args
                    .iter()
                    .map(|&a| self.display_term(a, symbols))
                    .collect();
                format!("{}({})", symbols.name(*f), inner.join(", "))
            }
        }
    }

    /// Render a ground atom.
    pub fn display_atom(&self, id: AtomId, symbols: &SymbolStore) -> String {
        let (pred, args) = self.atom(id);
        if args.is_empty() {
            symbols.name(pred).to_string()
        } else {
            let inner: Vec<String> = args
                .iter()
                .map(|&a| self.display_term(a, symbols))
                .collect();
            format!("{}({})", symbols.name(pred), inner.join(", "))
        }
    }

    /// Iterate over all interned atom ids.
    pub fn atom_ids(&self) -> impl Iterator<Item = AtomId> {
        (0..self.atoms.len() as u32).map(AtomId)
    }

    /// All atoms of a given predicate.
    pub fn atoms_of(&self, pred: Symbol) -> impl Iterator<Item = AtomId> + '_ {
        self.atoms
            .iter()
            .enumerate()
            .filter(move |(_, (p, _))| *p == pred)
            .map(|(i, _)| AtomId(i as u32))
    }
}

impl fmt::Debug for HerbrandBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("HerbrandBase")
            .field("terms", &self.terms.len())
            .field("atoms", &self.atoms.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_atoms_is_idempotent() {
        let mut syms = SymbolStore::new();
        let p = syms.intern("p");
        let a = syms.intern("a");
        let mut hb = HerbrandBase::new();
        let ca = hb.intern_const(a);
        let id1 = hb.intern_atom(p, &[ca]);
        let id2 = hb.intern_atom(p, &[ca]);
        assert_eq!(id1, id2);
        assert_eq!(hb.atom_count(), 1);
    }

    #[test]
    fn distinct_args_distinct_atoms() {
        let mut syms = SymbolStore::new();
        let p = syms.intern("p");
        let a = hbc(&mut syms, "a");
        let mut hb = HerbrandBase::new();
        let ca = hb.intern_const(a);
        let cb = hb.intern_const(hbc(&mut syms, "b"));
        assert_ne!(hb.intern_atom(p, &[ca]), hb.intern_atom(p, &[cb]));
    }

    fn hbc(syms: &mut SymbolStore, s: &str) -> Symbol {
        syms.intern(s)
    }

    #[test]
    fn function_terms_display() {
        let mut syms = SymbolStore::new();
        let f = syms.intern("f");
        let a = syms.intern("a");
        let p = syms.intern("p");
        let mut hb = HerbrandBase::new();
        let ca = hb.intern_const(a);
        let fa = hb.intern_term(GroundTerm::App(f, vec![ca].into_boxed_slice()));
        let ffa = hb.intern_term(GroundTerm::App(f, vec![fa].into_boxed_slice()));
        let atom = hb.intern_atom(p, &[ffa]);
        assert_eq!(hb.display_atom(atom, &syms), "p(f(f(a)))");
        assert_eq!(hb.term_count(), 3);
    }

    #[test]
    fn find_without_intern() {
        let mut syms = SymbolStore::new();
        let p = syms.intern("p");
        let a = syms.intern("a");
        let mut hb = HerbrandBase::new();
        let ca = hb.intern_const(a);
        assert!(hb.find_atom(p, &[ca]).is_none());
        let id = hb.intern_atom(p, &[ca]);
        assert_eq!(hb.find_atom(p, &[ca]), Some(id));
    }

    #[test]
    fn atoms_of_filters_by_predicate() {
        let mut syms = SymbolStore::new();
        let p = syms.intern("p");
        let q = syms.intern("q");
        let a = syms.intern("a");
        let mut hb = HerbrandBase::new();
        let ca = hb.intern_const(a);
        hb.intern_atom(p, &[ca]);
        hb.intern_atom(q, &[ca]);
        hb.intern_atom(p, &[]);
        assert_eq!(hb.atoms_of(p).count(), 2);
        assert_eq!(hb.atoms_of(q).count(), 1);
    }
}
