//! Dense bitsets over ground-atom ids.
//!
//! Interpretations in the alternating-fixpoint computation are subsets of the
//! (finite) Herbrand base. With atoms interned to dense `u32` ids, a set of
//! atoms is a dense bitset; every operator in the paper (`S_P`, `S̃_P`,
//! conjugation, union, set difference) becomes a handful of word-parallel
//! loops.
//!
//! [`AtomSet`] carries its own universe size so the *conjugate* operation of
//! Definition 3.2 — complement within the Herbrand base `H` — is well defined.

use std::fmt;

/// A set of atom ids drawn from a fixed universe `0..universe`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct AtomSet {
    universe: usize,
    words: Vec<u64>,
}

const BITS: usize = 64;

impl AtomSet {
    /// The empty set over a universe of `universe` atoms.
    pub fn empty(universe: usize) -> Self {
        AtomSet {
            universe,
            words: vec![0; universe.div_ceil(BITS)],
        }
    }

    /// The full set `{0, …, universe-1}`.
    pub fn full(universe: usize) -> Self {
        let mut s = Self::empty(universe);
        for w in &mut s.words {
            *w = !0;
        }
        s.trim();
        s
    }

    /// Build from an iterator of ids.
    pub fn from_iter(universe: usize, ids: impl IntoIterator<Item = u32>) -> Self {
        let mut s = Self::empty(universe);
        for id in ids {
            s.insert(id);
        }
        s
    }

    /// Number of atoms in the universe this set ranges over.
    #[inline]
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// Zero out any bits beyond the universe (kept as an internal invariant
    /// so that `count`, `eq`, and `hash` are exact).
    fn trim(&mut self) {
        let rem = self.universe % BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Insert an id; returns `true` if it was newly inserted.
    #[inline]
    pub fn insert(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / BITS, id as usize % BITS);
        debug_assert!((id as usize) < self.universe, "atom id out of universe");
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Remove an id; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, id: u32) -> bool {
        let (w, b) = (id as usize / BITS, id as usize % BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, id: u32) -> bool {
        let (w, b) = (id as usize / BITS, id as usize % BITS);
        w < self.words.len() && self.words[w] & (1u64 << b) != 0
    }

    /// Cardinality.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True iff the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// `self ⊆ other`. Panics in debug builds if universes differ.
    pub fn is_subset(&self, other: &AtomSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & !b == 0)
    }

    /// True iff the sets share no element.
    pub fn is_disjoint(&self, other: &AtomSet) -> bool {
        debug_assert_eq!(self.universe, other.universe);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(&a, &b)| a & b == 0)
    }

    /// In-place union.
    pub fn union_with(&mut self, other: &AtomSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection.
    pub fn intersect_with(&mut self, other: &AtomSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place set difference `self − other`.
    pub fn difference_with(&mut self, other: &AtomSet) {
        debug_assert_eq!(self.universe, other.universe);
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// The complement within the universe. This is the heart of the
    /// *conjugate* of Definition 3.2: for a positive set `I`,
    /// `Ī = ¬·(H − I)`; the polarity flip is carried by context (the caller
    /// knows whether a set holds positive or negative literals).
    pub fn complement(&self) -> AtomSet {
        let mut out = self.clone();
        for w in &mut out.words {
            *w = !*w;
        }
        out.trim();
        out
    }

    /// Fresh union.
    pub fn union(&self, other: &AtomSet) -> AtomSet {
        let mut out = self.clone();
        out.union_with(other);
        out
    }

    /// Fresh intersection.
    pub fn intersection(&self, other: &AtomSet) -> AtomSet {
        let mut out = self.clone();
        out.intersect_with(other);
        out
    }

    /// Fresh difference.
    pub fn difference(&self, other: &AtomSet) -> AtomSet {
        let mut out = self.clone();
        out.difference_with(other);
        out
    }

    /// Remove every element.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterate over member ids in increasing order.
    pub fn iter(&self) -> AtomSetIter<'_> {
        AtomSetIter {
            set: self,
            word_ix: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }
}

/// Iterator over the ids in an [`AtomSet`].
pub struct AtomSetIter<'a> {
    set: &'a AtomSet,
    word_ix: usize,
    current: u64,
}

impl Iterator for AtomSetIter<'_> {
    type Item = u32;

    fn next(&mut self) -> Option<u32> {
        loop {
            if self.current != 0 {
                let bit = self.current.trailing_zeros();
                self.current &= self.current - 1;
                return Some((self.word_ix * BITS) as u32 + bit);
            }
            self.word_ix += 1;
            if self.word_ix >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_ix];
        }
    }
}

impl<'a> IntoIterator for &'a AtomSet {
    type Item = u32;
    type IntoIter = AtomSetIter<'a>;
    fn into_iter(self) -> AtomSetIter<'a> {
        self.iter()
    }
}

impl fmt::Debug for AtomSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = AtomSet::empty(130);
        assert!(e.is_empty());
        assert_eq!(e.count(), 0);
        let f = AtomSet::full(130);
        assert_eq!(f.count(), 130);
        assert!(f.contains(0));
        assert!(f.contains(129));
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = AtomSet::empty(100);
        assert!(s.insert(63));
        assert!(!s.insert(63));
        assert!(s.insert(64));
        assert!(s.contains(63));
        assert!(s.contains(64));
        assert!(!s.contains(65));
        assert!(s.remove(63));
        assert!(!s.remove(63));
        assert!(!s.contains(63));
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn complement_respects_universe() {
        let mut s = AtomSet::empty(70);
        s.insert(0);
        s.insert(69);
        let c = s.complement();
        assert_eq!(c.count(), 68);
        assert!(!c.contains(0));
        assert!(!c.contains(69));
        assert!(c.contains(1));
        // Double complement is identity.
        assert_eq!(c.complement(), s);
    }

    #[test]
    fn set_algebra() {
        let a = AtomSet::from_iter(10, [1, 2, 3]);
        let b = AtomSet::from_iter(10, [3, 4]);
        assert_eq!(a.union(&b), AtomSet::from_iter(10, [1, 2, 3, 4]));
        assert_eq!(a.intersection(&b), AtomSet::from_iter(10, [3]));
        assert_eq!(a.difference(&b), AtomSet::from_iter(10, [1, 2]));
        assert!(AtomSet::from_iter(10, [1, 3]).is_subset(&a));
        assert!(!a.is_subset(&b));
        assert!(a.is_disjoint(&AtomSet::from_iter(10, [5, 6])));
        assert!(!a.is_disjoint(&b));
    }

    #[test]
    fn iteration_is_sorted() {
        let s = AtomSet::from_iter(200, [199, 0, 64, 65, 127, 128]);
        let v: Vec<u32> = s.iter().collect();
        assert_eq!(v, vec![0, 64, 65, 127, 128, 199]);
    }

    #[test]
    fn eq_ignores_nothing_after_trim() {
        let mut a = AtomSet::full(65);
        let b = AtomSet::full(65);
        assert_eq!(a, b);
        a.remove(64);
        assert_ne!(a, b);
        assert_eq!(a.count(), 64);
    }

    #[test]
    fn zero_universe_is_fine() {
        let s = AtomSet::empty(0);
        assert!(s.is_empty());
        assert_eq!(s.complement().count(), 0);
        assert_eq!(s.iter().count(), 0);
    }

    #[test]
    fn clear_empties() {
        let mut s = AtomSet::full(50);
        s.clear();
        assert!(s.is_empty());
    }
}
